"""Run every reproduction experiment (E1–E11) and persist the results.

This is the scripted counterpart of ``pytest benchmarks/ --benchmark-only``:
it runs the same drivers, prints the paper-style tables and writes
CSV + JSON reports under ``results/`` so the numbers can be tracked across
versions or plotted externally.

Usage:
    python scripts/run_all_experiments.py [output_dir] [--skip-slow]

``--skip-slow`` mirrors the test suite's ``slow`` pytest marker (see
``pytest.ini``): the long-horizon gates — E14's Erlang blocking sweeps,
E15's defrag blocking/reclaim replays, E16's sharded-engine replays,
E17's crash-recovery/restoration/shedding suite, E18's
observability-overhead suite, E19's RWA-service replay and E21's
chaos-hardening suite — are skipped so a quick sweep stays quick.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.analysis.bench_online import (
    online_check_against_baseline,
    online_speedup_problems,
    run_online_benchmark,
)
from repro.analysis.bench_scaling import (
    check_against_baseline,
    run_scaling_benchmark,
    speedup_problems,
)
from repro.analysis.bench_sharding import (
    run_sharding_benchmark,
    sharding_check_against_baseline,
    sharding_problems,
)
from repro.analysis.erlang import (
    defrag_check_against_baseline,
    defrag_problems,
    routing_check_against_baseline,
    routing_speedup_problems,
    run_defrag_benchmark,
    run_routing_benchmark,
)
from repro.analysis.bench_obs import (
    obs_check_against_baseline,
    obs_problems,
    run_obs_benchmark,
)
from repro.analysis.bench_chaos import (
    chaos_check_against_baseline,
    chaos_problems,
    run_chaos_benchmark,
)
from repro.analysis.bench_service import (
    run_service_benchmark,
    service_check_against_baseline,
    service_problems,
)
from repro.analysis.recovery import (
    recovery_check_against_baseline,
    recovery_problems,
    run_recovery_benchmark,
)
from repro.analysis import (
    algorithm_comparison_experiment,
    certificate_experiment,
    figure1_experiment,
    figure3_experiment,
    format_records,
    main_theorem_experiment,
    optical_rwa_experiment,
    theorem1_experiment,
    theorem2_experiment,
    theorem6_experiment,
    theorem7_experiment,
    upp_properties_experiment,
    write_csv,
    write_json,
)

EXPERIMENTS = [
    ("E01_figure1", "Figure 1 — unbounded ratio",
     lambda: figure1_experiment((2, 3, 4, 5, 6, 8, 10, 12))),
    ("E02_figure3", "Figure 3 — worked example", figure3_experiment),
    ("E03_theorem1", "Theorem 1 — w = pi without internal cycles",
     lambda: theorem1_experiment(num_instances=12)),
    ("E04_theorem2", "Theorem 2 / Figure 5 — gadget series",
     lambda: theorem2_experiment((2, 3, 4, 5, 6, 8, 10))),
    ("E05_main_theorem", "Main Theorem — both directions",
     lambda: main_theorem_experiment(num_instances=10)),
    ("E06_upp_properties", "Property 3 / Corollary 5 — UPP structure",
     lambda: upp_properties_experiment(num_instances=12)),
    ("E07_theorem6", "Theorem 6 — 4/3 colour budget",
     lambda: theorem6_experiment(num_random=12, havet_copies=(1, 2, 3, 4))),
    ("E08_theorem7", "Theorem 7 — tightness",
     lambda: theorem7_experiment((1, 2, 3, 4, 6, 8))),
    ("E09_certificates", "Certificates", lambda: certificate_experiment(10)),
    ("E10_optical", "Optical RWA end to end", optical_rwa_experiment),
    ("E11_ablation", "Algorithm comparison",
     lambda: algorithm_comparison_experiment((20, 40, 60))),
]


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Run every reproduction experiment and the bench gates")
    parser.add_argument("output_dir", nargs="?", type=Path,
                        default=Path("results"),
                        help="where to write the CSV/JSON reports")
    parser.add_argument("--skip-slow", action="store_true",
                        help="skip the gates marked slow (the Erlang "
                             "blocking sweeps of E14, the defrag "
                             "replays of E15, the sharded-engine "
                             "replays of E16, the fault-tolerance "
                             "suite of E17, the observability-"
                             "overhead suite of E18, the RWA-"
                             "service replay of E19 and the chaos-"
                             "hardening suite of E21), mirroring the "
                             "test suite's 'slow' marker")
    args = parser.parse_args()
    output_dir = args.output_dir
    output_dir.mkdir(parents=True, exist_ok=True)
    failures = 0
    for key, title, driver in EXPERIMENTS:
        start = time.perf_counter()
        records = driver()
        elapsed = time.perf_counter() - start
        print()
        print(format_records(records, title=f"{key}: {title}  ({elapsed:.1f}s)"))
        write_csv(records, output_dir / f"{key}.csv")
        write_json(records, output_dir / f"{key}.json",
                   metadata={"experiment": key, "title": title,
                             "elapsed_seconds": elapsed})
        # any explicit verification flags present in the records must be true
        for record in records:
            for flag in ("equal", "matches_theorem", "within_bound",
                         "matches_paper", "gap_witnessed"):
                if flag in record and not record[flag]:
                    failures += 1
                    print(f"!! {key}: claim flag {flag} is False in {record}")
    # Final gates: both engines must stay within 20% of their recorded
    # BENCH_*_engine.json baselines (see PERFORMANCE.md and
    # scripts/bench_report.py).
    repo_root = Path(__file__).resolve().parents[1]
    gates = [
        ("E12: bitset conflict engine vs recorded baseline ...",
         repo_root / "BENCH_conflict_engine.json",
         run_scaling_benchmark, check_against_baseline, speedup_problems,
         False),
        ("E13: online conflict engine vs recorded baseline ...",
         repo_root / "BENCH_online_engine.json",
         run_online_benchmark, online_check_against_baseline,
         online_speedup_problems, False),
        # E14 replays Erlang blocking sweeps + the speculation benchmark —
        # the long-horizon gate, skippable like the tests' `slow` marker.
        ("E14: adaptive routing + what-if speculation vs recorded "
         "baseline ...",
         repo_root / "BENCH_online_routing.json",
         run_routing_benchmark, routing_check_against_baseline,
         routing_speedup_problems, True),
        # E15 replays the defrag blocking/reclaim scenarios — deterministic
        # but long-horizon, so it is skippable like E14.
        ("E15: defragmentation blocking + reclaim vs recorded baseline ...",
         repo_root / "BENCH_defrag.json",
         run_defrag_benchmark, defrag_check_against_baseline,
         defrag_problems, True),
        # E16 times the component-sharded engine against the unsharded one
        # at 800+ concurrent lightpaths and replays the differential
        # identity traces — long-horizon, skippable like E14/E15.
        ("E16: component-sharded engine vs recorded baseline ...",
         repo_root / "BENCH_sharding.json",
         run_sharding_benchmark, sharding_check_against_baseline,
         sharding_problems, True),
        # E17 replays the fault-tolerance suite: random kill-point crash
        # recovery must stay bit-identical, fibre-cut restoration must
        # keep blocking strictly below the restoration-off baseline at
        # equal move budget, and the admission guard must bound p99
        # admission work — long-horizon, skippable like E14–E16.
        ("E17: crash recovery + restoration + shedding vs recorded "
         "baseline ...",
         repo_root / "BENCH_recovery.json",
         run_recovery_benchmark, recovery_check_against_baseline,
         recovery_problems, True),
        # E18 replays the admission workloads fully instrumented: tracing
        # must stay within the 10% overhead ceiling and must not perturb
        # a single decision (byte-identical deterministic metrics) —
        # timing-sensitive, skippable like E14–E17.
        ("E18: observability overhead + trace bit-identity vs recorded "
         "baseline ...",
         repo_root / "BENCH_obs.json",
         run_obs_benchmark, obs_check_against_baseline,
         obs_problems, True),
        # E19 replays a flash crowd through the asyncio RwaService: its
        # decisions and engine fingerprint must stay bit-identical to
        # simulate_online on the same trace, per-tenant quotas must keep
        # a quiet tenant unshed next to a flooding one, and the record
        # samples sustained admissions/sec + p99 admission latency
        # (informational) — skippable like E14–E18.
        ("E19: RWA service identity + tenant isolation vs recorded "
         "baseline ...",
         repo_root / "BENCH_service.json",
         run_service_benchmark, service_check_against_baseline,
         service_problems, True),
        # E21 drives faults through the live service loop: fault-bearing
        # serve_trace must stay decision- and fingerprint-identical to
        # simulate_online, maintenance windows must match their
        # cut/repair event oracle, supervised crash-restart must
        # converge to the uncrashed fingerprint across randomised crash
        # offsets, and restoration must strictly beat restoration-off at
        # an equal move budget — skippable like E14–E19.
        ("E21: chaos hardening — fault identity + crash-restart "
         "convergence vs recorded baseline ...",
         repo_root / "BENCH_chaos.json",
         run_chaos_benchmark, chaos_check_against_baseline,
         chaos_problems, True),
    ]
    for title, bench_path, run_bench, check, speedups, slow in gates:
        if slow and args.skip_slow:
            print(f"(--skip-slow: skipping {title.split(':')[0]})")
            continue
        if not bench_path.exists():
            print(f"(no {bench_path.name}; run scripts/bench_report.py "
                  f"to record one)")
            continue
        print()
        print(title)
        records = run_bench(repeats=3)
        problems = check(records, json.loads(bench_path.read_text()))
        problems += speedups(records)
        for problem in problems:
            failures += 1
            print(f"!! bench regression: {problem}")
        if not problems:
            print("   within tolerance "
                  + ", ".join(
                      f"{r['scenario']}={r['speedup_total']:.1f}x"
                      for r in records if "speedup_total" in r))

    # E20: the determinism & contract lint gate (see CONTRACTS.md).  The
    # static counterpart of the differential identity gates above: E13–E19
    # *observe* that decisions replay bit-identically, E20 *rejects* the
    # code patterns that would break them (wall-clock reads, global RNG,
    # unordered set iteration, untyped engine failures, mis-namespaced
    # metrics, dead code).  Pure AST analysis in well under a second, so
    # it runs even with --skip-slow.
    print()
    print("E20: determinism & contract lint gate (src/repro) ...")
    from repro.lint import lint_package

    report = lint_package()
    for finding in report.new_findings:
        failures += 1
        print(f"!! lint: {finding.render()}")
    if not report.new_findings:
        print(f"   clean ({len(report.findings)} finding(s), "
              f"{report.grandfathered} grandfathered)")
    if report.stale_baseline:
        print(f"   note: {len(report.stale_baseline)} stale baseline "
              f"entr{'y' if len(report.stale_baseline) == 1 else 'ies'} — "
              f"prune lint_baseline.json")

    print()
    print(f"reports written to {output_dir}/ "
          f"({'all claims verified' if failures == 0 else f'{failures} violations'})")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
