"""Quick smoke test of the core reproduction claims (not part of the test suite)."""
from repro import (
    assign_wavelengths,
    build_conflict_graph,
    chromatic_number,
    color_dipaths_theorem1,
    color_dipaths_theorem6,
    equality_certificate,
    has_internal_cycle,
    is_upp_dag,
    load,
    wavelength_number,
)
from repro.generators import (
    figure3_instance,
    figure5_instance,
    havet_instance,
    pathological_instance,
    random_internal_cycle_free_dag,
    random_upp_one_cycle_dag,
    random_walk_family,
    theorem2_gadget,
)
from repro.coloring.verify import num_colors

# Figure 3
dag, fam = figure3_instance()
cg = build_conflict_graph(fam)
print("fig3: pi", load(dag, fam), "w", chromatic_number(cg.adjacency()),
      "cycle?", cg.is_cycle_graph(), "internal?", has_internal_cycle(dag))

# Figure 1
dag, fam = pathological_instance(5)
cg = build_conflict_graph(fam)
print("fig1 k=5: pi", load(dag, fam), "w", chromatic_number(cg.adjacency()),
      "complete?", cg.is_complete(), "internal?", has_internal_cycle(dag))

# Figure 5 / theorem 2
dag, fam = figure5_instance(3)
cg = build_conflict_graph(fam)
print("fig5 k=3: pi", load(dag, fam), "w", chromatic_number(cg.adjacency()),
      "C7?", cg.is_cycle_graph(), "upp?", is_upp_dag(dag))

# Havet / theorem 7
dag, fam = havet_instance(1)
cg = build_conflict_graph(fam)
print("havet h=1: pi", load(dag, fam), "w", chromatic_number(cg.adjacency()),
      "upp?", is_upp_dag(dag))
dag, fam = havet_instance(3)
print("havet h=3: pi", load(dag, fam), "w",
      wavelength_number(dag, fam, method="exact"))

# Theorem 1 on random internal-cycle-free DAG
for seed in range(5):
    g = random_internal_cycle_free_dag(30, 45, seed=seed)
    f = random_walk_family(g, 40, seed=seed)
    col = color_dipaths_theorem1(g, f)
    w_exact = wavelength_number(g, f, method="exact")
    print("thm1 seed", seed, "pi", f.load(), "thm1 colors", num_colors(col),
          "exact w", w_exact, "OK" if num_colors(col) == w_exact == f.load() else "MISMATCH")

# Theorem 6 on UPP one-cycle DAGs
for seed in range(5):
    g = random_upp_one_cycle_dag(k=3, extra_depth=2, seed=seed)
    f = random_walk_family(g, 30, seed=seed, min_length=2)
    col6 = color_dipaths_theorem6(g, f)
    print("thm6 seed", seed, "pi", f.load(), "thm6 colors", num_colors(col6),
          "bound", -(-4 * f.load() // 3))

# Havet with theorem 6 algorithm
dag, fam = havet_instance(2)
col6 = color_dipaths_theorem6(dag, fam)
print("havet h=2 thm6 colors", num_colors(col6), "pi", fam.load())

# Main theorem certificate on the theorem2 gadget
cert = equality_certificate(theorem2_gadget(3))
print("certificate: equality?", cert.equality_holds, "pi", cert.witness_load,
      "w", cert.witness_wavelengths)

# auto solver
dag, fam = figure3_instance()
sol = assign_wavelengths(dag, fam, method="auto")
print("auto fig3:", sol.num_wavelengths, sol.method)
# RWA service (E19 wiring): identity with the trace loop + tenant isolation
from repro.analysis.bench_service import run_service_benchmark, service_problems

service_records = run_service_benchmark(smoke=True)
for rec in service_records:
    if rec["kind"] == "service":
        print("service:", rec["scenario"], "identical?",
              rec["decisions_equal"] and rec["fingerprint_identical"],
              "blocking", round(rec["blocking"], 4))
    else:
        print("service:", rec["scenario"], "quiet shed", rec["quiet_shed"],
              "flood shed", rec["flood_shed"],
              "partition?", rec["shed_partition_exact"])
print("SERVICE SMOKE", "OK" if not service_problems(service_records)
      else "FAILED")

# Chaos hardening (E21 wiring): faults through the live loop stay
# identical to the simulator, supervised crash-restart converges, and
# restoration pays at an equal move budget.
from repro.analysis.bench_chaos import chaos_problems, run_chaos_benchmark

chaos_records = run_chaos_benchmark(smoke=True)
for rec in chaos_records:
    if rec["kind"] in ("chaos_identity", "chaos_maintenance"):
        print("chaos:", rec["scenario"], "identical?",
              rec["decisions_equal"] and rec["fingerprint_identical"],
              "stranded", rec["stranded"])
    elif rec["kind"] == "chaos_crash":
        print("chaos:", rec["scenario"], "converged",
              f"{rec['converged']}/{rec['trials']}",
              "oracle?", rec["decisions_equal_oracle"])
    else:
        print("chaos:", rec["scenario"], "pays?", rec["restoration_pays"],
              "off", round(rec["blocking_baseline"], 4),
              "on", round(rec["blocking_restoration"], 4))
print("CHAOS SMOKE", "OK" if not chaos_problems(chaos_records)
      else "FAILED")

# Determinism & contract linter (E20 wiring) in smoke mode: the whole
# package must be clean modulo the committed baseline (CONTRACTS.md).
from repro.lint import lint_package

lint_report = lint_package()
for finding in lint_report.new_findings:
    print("lint:", finding.render())
print("LINT SMOKE", "OK" if lint_report.clean
      else f"FAILED ({len(lint_report.new_findings)} new findings)")

# Runtime audit layer: a short audited run must report zero violations.
from repro.generators import random_internal_cycle_free_dag, random_request_family
from repro.online.events import poisson_trace
from repro.online.simulator import simulate_online

_g = random_internal_cycle_free_dag(30, 45, seed=0)
_trace = poisson_trace(random_request_family(_g, 25, seed=0), 120,
                       arrival_rate=3.0, mean_holding=4.0, seed=0)
simulate_online(_g, _trace, 8, sharded=True, audit_every=10)
print("AUDIT SMOKE OK")

print("SMOKE OK")
