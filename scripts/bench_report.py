"""Benchmark runner/regression gate for the conflict + online engines.

Runs the scaling scenarios of :mod:`repro.analysis.bench_scaling` (seed
engine vs bitset engine on 500+ dipath families), the churn scenarios
of :mod:`repro.analysis.bench_online` (rebuild-per-event vs incremental
maintenance at 500+ concurrent dipaths), the adaptive-routing suite of
:mod:`repro.analysis.erlang` (blocking of adaptive vs fixed routing, plus
speculative what-if admission vs rebuild-per-candidate) and the
defragmentation suite of the same module (blocking with vs without defrag
triggers, wavelengths reclaimed vs the recolouring bounds) and the
fault-tolerance suite of :mod:`repro.analysis.recovery` (journal-replay
crash recovery bit-identity and timing, fibre-cut restoration blocking,
admission-guard load shedding) and the observability suite of
:mod:`repro.analysis.bench_obs` (full-tracing overhead ratio on the
admission workloads, span-emission throughput) and the service suite of
:mod:`repro.analysis.bench_service` (asyncio ``RwaService`` decision and
fingerprint identity with the trace loop under a flash crowd, sustained
admissions/sec and p99 admission latency, per-tenant shed isolation)
and the chaos suite of :mod:`repro.analysis.bench_chaos` (fault-bearing
``serve_trace`` decision/fingerprint identity with ``simulate_online``,
maintenance windows vs their cut/repair event oracle, supervised
crash-restart fingerprint convergence over randomised crash offsets,
restoration vs restoration-off at an equal move budget),
and either
records the results or checks them against the recorded baselines:

    python scripts/bench_report.py                   # run + write reports
    python scripts/bench_report.py --check           # run + fail on regression
    python scripts/bench_report.py --suite defrag    # one suite only
    python scripts/bench_report.py --quick           # fewer repeats (noisier)

Reports are written to ``BENCH_conflict_engine.json``,
``BENCH_online_engine.json``, ``BENCH_online_routing.json``,
``BENCH_defrag.json``, ``BENCH_sharding.json``, ``BENCH_recovery.json``,
``BENCH_obs.json``, ``BENCH_service.json`` and ``BENCH_chaos.json`` at the
repository root (``--output`` overrides the path when a single suite is
selected).  ``--check`` exits non-zero
when an engine is more than 20% slower than its recorded baseline on any
scenario, when a speedup falls under the 5x target, or when the paired
strategies disagree on edges/colours — this is the gate
``scripts/run_all_experiments.py`` runs at the end of the experiment
sweep.  See PERFORMANCE.md for how to read the numbers.

``--profile`` attributes cost **per span category** (admit, defrag,
restore, ...) on the suites that drive the online engine: it installs a
:class:`~repro.obs.profiling.SpanProfiler` as the process-wide default
(:func:`~repro.obs.profiling.set_default_profile`), every engine the
suite constructs picks it up, and the report prints each category's
call counts, wall time and top functions by cumulative time.  Suites
that never build an :class:`~repro.online.simulator.OnlineEngine`
(``conflict``, ``online``) fall back to the old whole-suite cProfile
dump.

``--trace PATH`` (service suite only) attaches a JSONL-backed
:class:`~repro.obs.trace.Tracer` to every service replay and writes the
span stream to PATH — closed (and therefore flushed) through the
tracer's context-manager protocol, so short runs keep their trailing
records.  Inspect the file with
:meth:`~repro.obs.analyze.TraceAnalyzer.from_jsonl`.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.bench_online import (
    online_benchmark_document,
    online_check_against_baseline,
    online_speedup_problems,
    run_online_benchmark,
)
from repro.analysis.bench_scaling import (
    benchmark_document,
    check_against_baseline,
    run_scaling_benchmark,
    speedup_problems,
)
from repro.analysis.bench_sharding import (
    run_sharding_benchmark,
    sharding_benchmark_document,
    sharding_check_against_baseline,
    sharding_problems,
)
from repro.analysis.erlang import (
    defrag_benchmark_document,
    defrag_check_against_baseline,
    defrag_problems,
    routing_benchmark_document,
    routing_check_against_baseline,
    routing_speedup_problems,
    run_defrag_benchmark,
    run_routing_benchmark,
)
from repro.analysis.bench_obs import (
    obs_benchmark_document,
    obs_check_against_baseline,
    obs_problems,
    run_obs_benchmark,
)
from repro.analysis.bench_chaos import (
    chaos_benchmark_document,
    chaos_check_against_baseline,
    chaos_problems,
    run_chaos_benchmark,
)
from repro.analysis.bench_service import (
    run_service_benchmark,
    service_benchmark_document,
    service_check_against_baseline,
    service_problems,
)
from repro.analysis.recovery import (
    recovery_benchmark_document,
    recovery_check_against_baseline,
    recovery_problems,
    run_recovery_benchmark,
)
from repro.obs.profiling import (
    SpanProfiler,
    clear_default_profile,
    set_default_profile,
)
from repro.obs.trace import JsonlSink, Tracer

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Suites whose runners construct :class:`OnlineEngine` instances —
#: ``--profile`` attributes their cost per span category; the rest only
#: exercise the conflict-graph layer and get the whole-suite fallback.
ENGINE_SUITES = frozenset({"routing", "defrag", "sharding", "recovery",
                           "obs", "service", "chaos"})


def _print_engine_records(records) -> None:
    header = (f"{'scenario':28s} {'n':>5s} {'edges':>7s} "
              f"{'legacy(ms)':>11s} {'new(ms)':>9s} {'speedup':>8s}")
    print(header)
    print("-" * len(header))
    for r in records:
        print(f"{r['scenario']:28s} {r['num_dipaths']:5d} {r['num_edges']:7d} "
              f"{r['legacy_total_s'] * 1000:11.2f} {r['new_total_s'] * 1000:9.2f} "
              f"{r['speedup_total']:7.1f}x")


def _print_routing_records(records) -> None:
    for r in records:
        if r["kind"] == "blocking":
            adaptive = "  ".join(
                f"{key.removeprefix('blocking_')}={r[key]:.4f}"
                for key in r if key.startswith("blocking_")
                and key != "blocking_shortest")
            verdict = "ok" if r["adaptive_beats_fixed"] else "NOT BEATEN"
            print(f"{r['scenario']:28s} W={r['wavelengths']} "
                  f"load={r['offered_load']:.0f}E "
                  f"shortest={r['blocking_shortest']:.4f}  {adaptive}  "
                  f"[{verdict}]")
        else:
            print(f"{r['scenario']:28s} n={r['num_dipaths']} "
                  f"legacy={r['legacy_total_s'] * 1000:.2f}ms "
                  f"tx={r['new_total_s'] * 1000:.2f}ms "
                  f"speedup={r['speedup_total']:.1f}x "
                  f"agree={r['decisions_equal']}")


def _print_defrag_records(records) -> None:
    for r in records:
        if r["kind"] == "defrag_blocking":
            verdict = "ok" if r["defrag_not_worse"] else "WORSE"
            print(f"{r['scenario']:28s} W={r['wavelengths']} "
                  f"load={r['offered_load']:.0f}E "
                  f"off={r['blocking_no_defrag']:.4f} "
                  f"on={r['blocking_defrag']:.4f} "
                  f"moves={r['defrag_moves']} "
                  f"reclaimed={r['wavelengths_reclaimed']}  [{verdict}]")
        else:
            verdict = "ok" if (r["reclaims_capacity"]
                               and r["coloring_proper_after"]
                               and r["within_load_bound"]) else "STUCK"
            print(f"{r['scenario']:28s} W={r['wavelengths']} "
                  f"colors {r['colors_before']} -> {r['colors_after_best']} "
                  f"(recolour-only {r['recolor_from_scratch']}, "
                  f"load {r['load_before']} -> "
                  f"{r['load_after_highest_wavelength']})  [{verdict}]")


def _print_obs_records(records) -> None:
    for r in records:
        if r["kind"] == "overhead":
            verdict = ("ok" if r["decisions_equal"] and r["metrics_identical"]
                       and r["overhead_ratio"] <= r["overhead_target"]
                       else "OVER BUDGET")
            print(f"{r['scenario']:28s} events={r['events']} "
                  f"plain={r['plain_total_s'] * 1000:.1f}ms "
                  f"traced={r['traced_total_s'] * 1000:.1f}ms "
                  f"ratio={r['overhead_ratio']:.3f} "
                  f"(<= {r['overhead_target']:.2f}) "
                  f"spans={r['spans_emitted']} "
                  f"identical={r['decisions_equal']}/"
                  f"{r['metrics_identical']}  [{verdict}]")
        else:
            print(f"{r['scenario']:28s} spans={r['spans']} "
                  f"ring={r['ring_spans_per_s']:.0f}/s "
                  f"jsonl={r['jsonl_spans_per_s']:.0f}/s")


def _print_sharding_records(records) -> None:
    for r in records:
        if r["kind"] == "throughput":
            verdict = "ok" if r["outcomes_equal"] else "DIVERGED"
            print(f"{r['scenario']:28s} n={r['concurrent']} "
                  f"W={r['wavelengths']} "
                  f"legacy={r['legacy_total_s'] * 1000:.0f}ms "
                  f"sharded={r['new_total_s'] * 1000:.0f}ms "
                  f"speedup={r['speedup_total']:.1f}x "
                  f"shards={r['shards']} "
                  f"merge/split/rebuild={r['component_merges']}/"
                  f"{r['component_splits']}/{r['shard_rebuilds']}  "
                  f"[{verdict}]")
        else:
            verdict = ("ok" if r["identical"] and r["parallel_identical"]
                       else "DIVERGED")
            print(f"{r['scenario']:28s} arrivals={r['arrivals']} "
                  f"blocking={r['blocking']:.4f} "
                  f"identical={r['identical']} "
                  f"parallel={r['parallel_identical']}  [{verdict}]")


def _print_recovery_records(records) -> None:
    for r in records:
        if r["kind"] == "crash_recovery":
            verdict = "ok" if r["bit_identical"] else "DIVERGED"
            cadence = (f"snap={r['snapshot_every']}"
                       if r["snapshot_every"] else "no-snap")
            print(f"{r['scenario']:28s} {cadence:10s} "
                  f"records={r['journal_records']} "
                  f"kills={r['trials']} mismatches={r['mismatches']} "
                  f"recover={r['recover_full_s'] * 1000:.1f}ms "
                  f"({r['records_per_second']:.0f} rec/s)  [{verdict}]")
        elif r["kind"] == "restoration":
            verdict = "ok" if r["restoration_pays"] else "NOT PAYING"
            print(f"{r['scenario']:28s} W={r['wavelengths']} "
                  f"cuts={r['fibre_cuts']} "
                  f"stranded={r['stranded_restoration']} "
                  f"restored={r['restored_restoration']} "
                  f"off={r['blocking_baseline']:.4f} "
                  f"on={r['blocking_restoration']:.4f}  [{verdict}]")
        else:
            verdict = ("ok" if r["guard_sheds"] and r["work_bounded"]
                       else "UNBOUNDED")
            print(f"{r['scenario']:28s} W={r['wavelengths']} "
                  f"bursts={r['bursts']}x{r['burst_size']} "
                  f"shed={r['shed']} "
                  f"p99 work {r['p99_work_unguarded']:.0f} -> "
                  f"{r['p99_work_guarded']:.0f}  [{verdict}]")


def _print_service_records(records) -> None:
    for r in records:
        if r["kind"] == "service":
            verdict = ("ok" if r["decisions_equal"]
                       and r["fingerprint_identical"] else "DIVERGED")
            print(f"{r['scenario']:36s} arrivals={r['arrivals']} "
                  f"blocking={r['blocking']:.4f} shed={r['shed']} "
                  f"adm/s={r['admissions_per_s']:.0f} "
                  f"p99={r['p99_latency_s'] * 1000:.2f}ms "
                  f"identical={r['decisions_equal']}/"
                  f"{r['fingerprint_identical']}  [{verdict}]")
        else:
            verdict = ("ok" if r["quiet_never_shed"] and r["flood_is_shed"]
                       and r["shed_partition_exact"] else "STARVED")
            print(f"{r['scenario']:36s} "
                  f"quiet={r['quiet_shed']}/{r['quiet_arrivals']} "
                  f"flood={r['flood_shed']}/{r['flood_arrivals']} shed "
                  f"partition={r['shed_partition_exact']}  [{verdict}]")


def _print_chaos_records(records) -> None:
    for r in records:
        if r["kind"] == "chaos_identity":
            verdict = ("ok" if r["decisions_equal"]
                       and r["fingerprint_identical"] else "DIVERGED")
            print(f"{r['scenario']:36s} events={r['events']} "
                  f"cuts={r['fibre_cuts']} stranded={r['stranded']} "
                  f"blocking={r['blocking']:.4f} "
                  f"adm/s={r['admissions_per_s']:.0f} "
                  f"identical={r['decisions_equal']}/"
                  f"{r['fingerprint_identical']}  [{verdict}]")
        elif r["kind"] == "chaos_maintenance":
            verdict = ("ok" if r["decisions_equal"]
                       and r["fingerprint_identical"] else "DIVERGED")
            print(f"{r['scenario']:36s} arcs={r['window_arcs']} "
                  f"cuts={r['fibre_cuts']} repairs={r['fibre_repairs']} "
                  f"stranded={r['stranded']} blocking={r['blocking']:.4f} "
                  f"identical={r['decisions_equal']}/"
                  f"{r['fingerprint_identical']}  [{verdict}]")
        elif r["kind"] == "chaos_crash":
            verdict = ("ok" if r["all_converged"]
                       and r["single_restart_each"]
                       and r["decisions_equal_oracle"] else "DIVERGED")
            print(f"{r['scenario']:36s} events={r['events']} "
                  f"kills={r['trials']} converged={r['converged']} "
                  f"single-restart={r['single_restart_each']} "
                  f"oracle={r['decisions_equal_oracle']}  [{verdict}]")
        else:
            verdict = "ok" if r["restoration_pays"] else "NOT PAYING"
            print(f"{r['scenario']:36s} W={r['wavelengths']} "
                  f"cuts={r['fibre_cuts']} budget={r['move_budget']} "
                  f"stranded={r['stranded_restoration']} "
                  f"off={r['blocking_baseline']:.4f} "
                  f"on={r['blocking_restoration']:.4f}  [{verdict}]")


#: suite name -> (default report path, runner, document builder,
#:                baseline checker, speedup checker, record printer)
SUITES = {
    "conflict": (REPO_ROOT / "BENCH_conflict_engine.json",
                 run_scaling_benchmark, benchmark_document,
                 check_against_baseline, speedup_problems,
                 _print_engine_records),
    "online": (REPO_ROOT / "BENCH_online_engine.json",
               run_online_benchmark, online_benchmark_document,
               online_check_against_baseline, online_speedup_problems,
               _print_engine_records),
    "routing": (REPO_ROOT / "BENCH_online_routing.json",
                run_routing_benchmark, routing_benchmark_document,
                routing_check_against_baseline, routing_speedup_problems,
                _print_routing_records),
    "defrag": (REPO_ROOT / "BENCH_defrag.json",
               run_defrag_benchmark, defrag_benchmark_document,
               defrag_check_against_baseline, defrag_problems,
               _print_defrag_records),
    "sharding": (REPO_ROOT / "BENCH_sharding.json",
                 run_sharding_benchmark, sharding_benchmark_document,
                 sharding_check_against_baseline, sharding_problems,
                 _print_sharding_records),
    "recovery": (REPO_ROOT / "BENCH_recovery.json",
                 run_recovery_benchmark, recovery_benchmark_document,
                 recovery_check_against_baseline, recovery_problems,
                 _print_recovery_records),
    "obs": (REPO_ROOT / "BENCH_obs.json",
            run_obs_benchmark, obs_benchmark_document,
            obs_check_against_baseline, obs_problems,
            _print_obs_records),
    "service": (REPO_ROOT / "BENCH_service.json",
                run_service_benchmark, service_benchmark_document,
                service_check_against_baseline, service_problems,
                _print_service_records),
    "chaos": (REPO_ROOT / "BENCH_chaos.json",
              run_chaos_benchmark, chaos_benchmark_document,
              chaos_check_against_baseline, chaos_problems,
              _print_chaos_records),
}


def _run_suite(name: str, args) -> int:
    default_path, run, document, check, speedups, print_records = SUITES[name]
    output: Path = args.output if args.output is not None else default_path
    repeats = 2 if args.quick else 3

    print(f"== suite: {name} ==")
    if args.trace is not None and name == "service":
        with Tracer(sink=JsonlSink(str(args.trace))) as tracer:
            records = run(repeats=repeats, tracer=tracer)
        print_records(records)
        print(f"-- span stream written to {args.trace} "
              f"({tracer.sink.emitted} records)")
    elif args.profile and name in ENGINE_SUITES:
        profiler = SpanProfiler(engine="cprofile")
        set_default_profile(profiler)
        try:
            records = run(repeats=repeats)
        finally:
            clear_default_profile()
        print_records(records)
        print(f"-- per-span profile for suite {name} --")
        print(profiler.report(top=10))
    elif args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        records = run(repeats=repeats)
        profiler.disable()
        print_records(records)
        print(f"-- suite {name} never builds an online engine; "
              f"whole-suite cProfile top 20 (cumulative) --")
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(20)
    else:
        records = run(repeats=repeats)
        print_records(records)

    slow = speedups(records)
    for problem in slow:
        print(f"!! {problem}")

    if args.check:
        if not output.exists():
            print(f"!! no recorded baseline at {output}; "
                  f"run without --check first")
            return 1
        baseline = json.loads(output.read_text())
        problems = check(records, baseline, tolerance=args.tolerance)
        for problem in problems:
            print(f"!! regression: {problem}")
        if problems or slow:
            return 1
        print(f"{name} engine within {args.tolerance:.0%} of the recorded "
              f"baseline ({output})")
        return 0

    if args.profile:
        # profiled timings are inflated 2-5x by instrumentation overhead;
        # recording them would turn every later --check into a free pass,
        # and failing on them would flag phantom speedup misses
        print(f"(--profile: not writing {output.name} — profiled timings "
              f"are not baseline material)")
        return 0
    if args.trace is not None:
        # traced replays carry the (small but real) span-emission cost in
        # their latency samples; keep them out of the recorded baseline
        print(f"(--trace: not writing {output.name} — traced timings are "
              f"not baseline material)")
        return 0
    output.write_text(json.dumps(document(records, repeats), indent=2) + "\n")
    print(f"report written to {output}")
    return 1 if slow else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Time the conflict/online engines and record/check "
                    "BENCH_*_engine.json")
    parser.add_argument("--suite", choices=(*SUITES, "all"), default="all",
                        help="which benchmark suite to run (default: all)")
    parser.add_argument("--output", type=Path, default=None,
                        help="report path override (single suite only)")
    parser.add_argument("--check", action="store_true",
                        help="compare against the recorded reports instead of "
                             "overwriting them; exit 1 on >20%% regression")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed slowdown vs the recorded baseline "
                             "(default 0.20 = 20%%)")
    parser.add_argument("--quick", action="store_true",
                        help="fewer timing repeats (faster, noisier; not "
                             "recommended together with --check)")
    parser.add_argument("--profile", action="store_true",
                        help="profile each selected suite per span category "
                             "(admit/defrag/restore/... via SpanProfiler) "
                             "where the suite drives the online engine, "
                             "falling back to whole-suite cProfile "
                             "elsewhere (timings are inflated; do not "
                             "combine with --check or record baselines "
                             "from a profiled run)")
    parser.add_argument("--trace", type=Path, default=None,
                        help="(service suite only) write the replays' span "
                             "stream to this JSONL file via a "
                             "Tracer(JsonlSink) closed on completion")
    args = parser.parse_args(argv)

    suites = list(SUITES) if args.suite == "all" else [args.suite]
    if args.output is not None and len(suites) > 1:
        parser.error("--output needs a single --suite")
    if args.profile and args.check:
        parser.error("--profile inflates timings 2-5x; checking them "
                     "against a recorded baseline would flag phantom "
                     "regressions — run the flags separately")
    if args.trace is not None and suites != ["service"]:
        parser.error("--trace dumps the service replays' span stream; "
                     "use it with --suite service")
    if args.trace is not None and args.profile:
        parser.error("--trace and --profile both instrument the replays; "
                     "run them separately")

    status = 0
    for name in suites:
        status |= _run_suite(name, args)
        print()
    return status


if __name__ == "__main__":
    raise SystemExit(main())
