"""Benchmark runner/regression gate for the bitset conflict engine.

Runs the scaling scenarios of :mod:`repro.analysis.bench_scaling` (seed
engine vs bitset engine on 500+ dipath families) and either records the
results or checks them against the recorded baseline:

    python scripts/bench_report.py                 # run + write the report
    python scripts/bench_report.py --check         # run + fail on regression
    python scripts/bench_report.py --quick         # fewer repeats (noisier)

The report is written to ``BENCH_conflict_engine.json`` at the repository
root (override with ``--output``).  ``--check`` exits non-zero when the
bitset engine is more than 20% slower than the recorded baseline on any
scenario, or when the two engines disagree on edges/colours — this is the
gate ``scripts/run_all_experiments.py`` runs at the end of the experiment
sweep.  See PERFORMANCE.md for how to read the numbers.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.bench_scaling import (
    benchmark_document,
    check_against_baseline,
    run_scaling_benchmark,
    speedup_problems,
)

DEFAULT_REPORT = Path(__file__).resolve().parents[1] / "BENCH_conflict_engine.json"


def _print_records(records) -> None:
    header = (f"{'scenario':28s} {'n':>5s} {'edges':>7s} "
              f"{'legacy(ms)':>11s} {'new(ms)':>9s} {'speedup':>8s}")
    print(header)
    print("-" * len(header))
    for r in records:
        print(f"{r['scenario']:28s} {r['num_dipaths']:5d} {r['num_edges']:7d} "
              f"{r['legacy_total_s'] * 1000:11.2f} {r['new_total_s'] * 1000:9.2f} "
              f"{r['speedup_total']:7.1f}x")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Time the seed vs bitset conflict engine and record/check "
                    "BENCH_conflict_engine.json")
    parser.add_argument("--output", type=Path, default=DEFAULT_REPORT,
                        help="report path (default: repo root)")
    parser.add_argument("--check", action="store_true",
                        help="compare against the recorded report instead of "
                             "overwriting it; exit 1 on >20%% regression")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed slowdown vs the recorded baseline "
                             "(default 0.20 = 20%%)")
    parser.add_argument("--quick", action="store_true",
                        help="fewer timing repeats (faster, noisier; not "
                             "recommended together with --check)")
    args = parser.parse_args(argv)

    repeats = 2 if args.quick else 3
    records = run_scaling_benchmark(repeats=repeats)
    _print_records(records)

    slow = speedup_problems(records)
    for problem in slow:
        print(f"!! {problem}")

    if args.check:
        if not args.output.exists():
            print(f"!! no recorded baseline at {args.output}; "
                  f"run without --check first")
            return 1
        baseline = json.loads(args.output.read_text())
        problems = check_against_baseline(records, baseline,
                                          tolerance=args.tolerance)
        for problem in problems:
            print(f"!! regression: {problem}")
        if problems or slow:
            return 1
        print(f"bitset engine within {args.tolerance:.0%} of the recorded "
              f"baseline ({args.output})")
        return 0

    args.output.write_text(
        json.dumps(benchmark_document(records, repeats), indent=2) + "\n")
    print(f"report written to {args.output}")
    return 1 if slow else 0


if __name__ == "__main__":
    raise SystemExit(main())
