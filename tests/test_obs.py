"""Units for the observability layer: registry, tracer, analyzer, profiler.

Covers :mod:`repro.obs.registry` (counters/gauges/histograms, the
deterministic/diagnostic snapshot split, byte-stable serialization, the
``Instrumented`` mixin), :mod:`repro.obs.trace` (span nesting, the flat
``emit_span`` fast path, the sinks, JSONL round trips compatible with the
decision journal), :mod:`repro.obs.analyze` (phase stats, link-stream
densities, waterfalls) and :mod:`repro.obs.profiling` (both engines and
the module-level default hook).  The engine-level bit-identity contract
lives in ``tests/test_obs_determinism.py``.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.obs.analyze import TraceAnalyzer, percentile
from repro.obs.profiling import (
    SpanProfiler,
    clear_default_profile,
    get_default_profile,
    set_default_profile,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    Instrumented,
    MetricsRegistry,
)
from repro.obs.trace import (
    JsonlSink,
    ListSink,
    NullSink,
    RingBufferSink,
    Tracer,
    dumps_record,
    read_jsonl,
)


# --------------------------------------------------------------------------- #
# metrics registry
# --------------------------------------------------------------------------- #
class TestMetrics:
    def test_counter_and_gauge_basics(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        gauge = Gauge("g")
        gauge.set(7)
        gauge.dec(2)
        gauge.inc()
        assert gauge.value == 6

    def test_histogram_buckets_and_summary(self):
        hist = Histogram("h", (1.0, 5.0, 10.0))
        for value in (0.5, 1.0, 3.0, 12.0):
            hist.observe(value)
        data = hist.as_dict()
        # bisect_right: a value equal to an edge lands in the bucket the
        # edge opens (1.0 -> second bucket), 12.0 overflows
        assert data["counts"] == [1, 2, 0, 1]
        assert data["count"] == 4
        assert data["sum"] == pytest.approx(16.5)
        assert data["min"] == 0.5 and data["max"] == 12.0

    def test_histogram_rejects_unsorted_edges(self):
        with pytest.raises(ValueError):
            Histogram("h", (5.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", (1.0, 1.0))

    def test_registry_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")
        assert registry.gauge("a.g") is registry.gauge("a.g")
        assert registry.histogram("a.h", (1.0,)) is \
            registry.histogram("a.h", (1.0,))

    def test_registry_rejects_histogram_edge_mismatch(self):
        registry = MetricsRegistry()
        registry.histogram("a.h", (1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("a.h", (1.0, 3.0))

    def test_snapshot_splits_diagnostic_metrics(self):
        registry = MetricsRegistry()
        registry.counter("engine.admitted").inc(3)
        registry.counter("shards.merges", diagnostic=True).inc(2)
        registry.gauge("shards.count", diagnostic=True).set(4)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"engine.admitted": 3}
        assert snapshot["diagnostics"]["counters"] == {"shards.merges": 2}
        assert snapshot["diagnostics"]["gauges"] == {"shards.count": 4}
        # the deterministic view drops the diagnostics section entirely
        assert "diagnostics" not in registry.snapshot(diagnostics=False)

    def test_to_json_is_byte_stable(self):
        def build(order):
            registry = MetricsRegistry()
            for name in order:
                registry.counter(name).inc()
            return registry
        a = build(["x.one", "x.two", "x.three"])
        b = build(["x.three", "x.one", "x.two"])
        assert a.to_json() == b.to_json()
        # canonical form: sorted keys, compact separators
        assert json.loads(a.to_json())["counters"] == \
            {"x.one": 1, "x.three": 1, "x.two": 1}
        assert ": " not in a.to_json()

    def test_value_and_names(self):
        registry = MetricsRegistry()
        registry.counter("b.c").inc(2)
        registry.gauge("a.g").set(1.5)
        registry.histogram("z.h", (1.0,)).observe(0.5)
        assert registry.names() == ["a.g", "b.c", "z.h"]
        assert registry.value("b.c") == 2
        assert registry.value("a.g") == 1.5
        assert registry.value("z.h")["count"] == 1
        with pytest.raises(KeyError):
            registry.value("missing")


class TestInstrumented:
    class Component(Instrumented):
        def __init__(self, registry=None):
            self._obs_init("comp", registry)
            self.hits = self._obs_counter("hits")

    def test_private_registry_when_none_shared(self):
        component = self.Component()
        component.hits.inc()
        assert component.metrics.value("comp.hits") == 1

    def test_shared_registry_prefixes_names(self):
        registry = MetricsRegistry()
        first = self.Component(registry)
        second = self.Component(registry)
        first.hits.inc()
        second.hits.inc()
        assert first.metrics is registry and second.metrics is registry
        assert registry.value("comp.hits") == 2


# --------------------------------------------------------------------------- #
# tracer and sinks
# --------------------------------------------------------------------------- #
class TestTracer:
    def test_span_nesting_records_parents(self):
        tracer = Tracer(sink=ListSink())
        tracer.advance(1.0)
        with tracer.span("outer", rid=1):
            tracer.advance(2.0)
            with tracer.span("inner"):
                tracer.advance(3.0)
        inner, outer = tracer.records()      # inner exits first
        assert inner["name"] == "inner" and outer["name"] == "outer"
        assert inner["parent"] == outer["id"]
        assert outer["parent"] is None
        assert (outer["t0"], outer["t1"]) == (1.0, 3.0)
        assert (inner["t0"], inner["t1"]) == (2.0, 3.0)
        assert outer["tags"] == {"rid": 1}

    def test_emit_span_matches_context_manager_record(self):
        via_cm = Tracer(sink=ListSink())
        via_cm.advance(5.0)
        with via_cm.span("admit", rid=3):
            pass
        flat = Tracer(sink=ListSink())
        flat.advance(5.0)
        flat.emit_span("admit", 5.0, {"rid": 3})
        assert via_cm.records() == flat.records()

    def test_emit_span_parents_under_open_span(self):
        tracer = Tracer(sink=ListSink())
        with tracer.span("batch"):
            tracer.emit_span("admit", 0.0, {"rid": 1})
        admit, batch = tracer.records()
        assert admit["parent"] == batch["id"]

    def test_events_are_points_in_time(self):
        tracer = Tracer(sink=ListSink())
        tracer.advance(4.5)
        tracer.event("shed", rid=9)
        (record,) = tracer.records()
        assert record["kind"] == "event"
        assert record["t"] == 4.5
        assert record["tags"] == {"rid": 9}

    def test_wall_clock_opt_in(self):
        tracer = Tracer(sink=ListSink(), wall_clock=True)
        with tracer.span("admit"):
            pass
        (record,) = tracer.records()
        assert record["wall"] >= 0.0
        plain = Tracer(sink=ListSink())
        with plain.span("admit"):
            pass
        assert "wall" not in plain.records()[0]

    def test_span_error_path_tags_exception(self):
        tracer = Tracer(sink=ListSink())
        with pytest.raises(RuntimeError):
            with tracer.span("admit"):
                raise RuntimeError("boom")
        (record,) = tracer.records()
        assert record["tags"]["error"] == "RuntimeError"
        assert not tracer._stack          # stack resynchronised

    def test_ring_buffer_sink_bounds_and_counts_drops(self):
        sink = RingBufferSink(capacity=3)
        tracer = Tracer(sink=sink)
        for i in range(5):
            tracer.emit_span("s", 0.0, {"i": i})
        records = sink.records()
        assert len(records) == 3
        assert [r["tags"]["i"] for r in records] == [2, 3, 4]
        assert sink.dropped == 2
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)

    def test_null_sink_discards(self):
        tracer = Tracer(sink=NullSink())
        with tracer.span("s"):
            pass
        assert tracer.records() == []

    def test_jsonl_round_trip_skips_journal_records(self):
        buffer = io.StringIO()
        tracer = Tracer(sink=JsonlSink(buffer))
        tracer.advance(1.0)
        with tracer.span("admit", rid=1):
            tracer.event("mark")
        # interleave a decision-journal line (``type``, no ``kind``) the
        # way a shared JSONL file would contain it
        lines = buffer.getvalue().splitlines()
        lines.insert(1, json.dumps({"type": "admit", "rid": 1}))
        records = read_jsonl(lines)
        assert [r["kind"] for r in records] == ["event", "span"]
        assert records[1]["tags"] == {"rid": 1}

    def test_dumps_record_is_canonical(self):
        line = dumps_record({"b": 1, "a": {"y": 2, "x": 3}})
        assert line == '{"a":{"x":3,"y":2},"b":1}'

    def test_jsonl_sink_close_flushes_owned_file(self, tmp_path):
        """A path-owned sink flushes buffered records and closes its fd."""
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        sink.emit({"kind": "event", "n": 1})
        sink.close()
        assert sink.closed
        assert json.loads(path.read_text()) == {"kind": "event", "n": 1}
        sink.close()                    # idempotent: no double-close crash
        with pytest.raises(ValueError):
            sink.emit({"kind": "event", "n": 2})   # fd really is closed

    def test_jsonl_sink_close_leaves_borrowed_handle_open(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        sink.emit({"kind": "event", "n": 1})
        sink.flush()
        sink.close()
        assert sink.closed and not buffer.closed   # caller owns the handle
        assert buffer.getvalue().count("\n") == 1

    def test_jsonl_sink_context_manager(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(str(path)) as sink:
            sink.emit({"kind": "event", "n": 1})
        assert sink.closed

    def test_tracer_close_and_context_manager(self, tmp_path):
        """Tracer.close() flushes a file sink; in-memory sinks are no-ops."""
        path = tmp_path / "trace.jsonl"
        with Tracer(sink=JsonlSink(str(path))) as tracer:
            with tracer.span("admit", rid=1):
                pass
        assert tracer.sink.closed
        assert json.loads(path.read_text())["name"] == "admit"
        # sinks without close() (ring/list/null) are untouched
        ring = Tracer(sink=RingBufferSink(capacity=4))
        with ring.span("s"):
            pass
        ring.close()
        assert len(ring.records()) == 1


# --------------------------------------------------------------------------- #
# trace analysis
# --------------------------------------------------------------------------- #
def _span(sid, name, t0, t1, parent=None, **tags):
    return {"kind": "span", "id": sid, "parent": parent, "name": name,
            "t0": t0, "t1": t1, "tags": tags}


class TestTraceAnalyzer:
    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50) == 2.0
        assert percentile(values, 99) == 4.0
        assert percentile(values, 0) == 1.0
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_phase_stats_event_time_and_wall(self):
        records = [
            _span(0, "admit", 0.0, 1.0),
            _span(1, "admit", 1.0, 4.0),
            _span(2, "defrag", 2.0, 2.5),
        ]
        stats = TraceAnalyzer(records).phase_stats()
        assert stats["admit"]["count"] == 2
        assert stats["admit"]["p50"] == 1.0
        assert stats["admit"]["p99"] == 3.0
        assert stats["defrag"]["mean"] == pytest.approx(0.5)
        # wall-clock wins when the trace recorded it
        walled = [dict(_span(0, "admit", 0.0, 9.0), wall=0.25)]
        assert TraceAnalyzer(walled).phase_stats()["admit"]["p50"] == 0.25

    def _admission_trace(self):
        # rid 1 on arcs (0, 1) over [0, 10]; rid 2 on arc (1,) over
        # [2, 6]; rid 3 admitted at 8, never departs (open at horizon 10)
        return [
            _span(0, "admit", 0.0, 0.0, rid=1, outcome="admitted",
                  arcs=[0, 1]),
            _span(1, "admit", 1.0, 1.0, rid=9, outcome="no_wavelength"),
            _span(2, "admit", 2.0, 2.0, rid=2, outcome="admitted",
                  arcs=[1]),
            _span(3, "depart", 6.0, 6.0, rid=2),
            _span(4, "admit", 8.0, 8.0, rid=3, outcome="admitted",
                  arcs=[0]),
            _span(5, "depart", 10.0, 10.0, rid=1),
        ]

    def test_lightpath_intervals_close_open_paths_at_horizon(self):
        intervals = TraceAnalyzer(self._admission_trace()) \
            .lightpath_intervals()
        assert intervals == [
            (0.0, 10.0, 1, (0, 1)),
            (2.0, 6.0, 2, (1,)),
            (8.0, 10.0, 3, (0,)),
        ]

    def test_fibre_density_occupancy_and_conflict(self):
        analyzer = TraceAnalyzer(self._admission_trace())
        occupancy = analyzer.fibre_occupancy(window=5.0)
        # arc 1: rid 1 for all 10s plus rid 2 over [2, 6]
        assert [w["density"] for w in occupancy[1]] == \
            pytest.approx([1.6, 1.2])
        conflict = analyzer.conflict_density(window=5.0)
        # conflicting pairs on arc 1 exist only while both are up
        assert [w["density"] for w in conflict[1]] == \
            pytest.approx([0.6, 0.2])
        hottest = analyzer.hottest_fibres(window=5.0, mode="occupancy",
                                          top=1)
        assert hottest[0][0] == 1
        with pytest.raises(ValueError):
            analyzer.fibre_density(0.0)
        with pytest.raises(ValueError):
            analyzer.fibre_density(1.0, mode="bogus")

    def test_arc_labels(self):
        analyzer = TraceAnalyzer([], arc_names={0: "0->1"})
        assert analyzer.arc_label(0) == "0->1"
        assert analyzer.arc_label(7) == "arc7"

    def test_waterfall_renders_span_tree(self):
        records = [
            _span(0, "restore", 0.0, 4.0, pending=2),
            _span(1, "admit", 1.0, 2.0, parent=0, rid=5,
                  outcome="admitted"),
            _span(2, "admit", 6.0, 7.0, rid=6, outcome="admitted"),
        ]
        text = TraceAnalyzer(records).waterfall(width=20)
        lines = text.splitlines()
        assert "restore" in lines[1]
        assert lines[2].startswith("  admit")      # indented child
        assert "rid=5" in lines[2]
        filtered = TraceAnalyzer(records).waterfall(names=["restore"])
        assert "rid=6" not in filtered and "rid=5" in filtered
        assert TraceAnalyzer([]).waterfall() == "(no spans)"

    def test_from_jsonl_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sink=JsonlSink(str(path)))
        with tracer.span("admit", rid=1, outcome="admitted", arcs=[0]):
            pass
        tracer.sink.close()
        analyzer = TraceAnalyzer.from_jsonl(str(path))
        assert analyzer.phase_stats()["admit"]["count"] == 1


# --------------------------------------------------------------------------- #
# profiling hooks
# --------------------------------------------------------------------------- #
class TestSpanProfiler:
    def test_timer_engine_counts_calls(self):
        profiler = SpanProfiler(engine="timer")
        tracer = Tracer(sink=NullSink(), profiler=profiler)
        for _ in range(3):
            with tracer.span("admit"):
                pass
        with tracer.span("defrag"):
            pass
        stats = profiler.stats()
        assert stats["admit"]["calls"] == 3
        assert stats["defrag"]["calls"] == 1
        assert profiler.categories() == ["admit", "defrag"]
        assert "admit" in profiler.report()

    def test_cprofile_engine_nests_exclusively(self):
        profiler = SpanProfiler(engine="cprofile")
        tracer = Tracer(sink=NullSink(), profiler=profiler)
        with tracer.span("outer"):
            with tracer.span("inner"):
                sum(range(100))
        stats = profiler.stats()
        assert stats["outer"]["calls"] == 1
        assert stats["inner"]["calls"] == 1
        assert "--- span 'inner'" in profiler.report(top=3)

    def test_unbalanced_exit_resynchronises(self):
        profiler = SpanProfiler(engine="timer")
        profiler.enter("a")
        profiler.enter("b")
        profiler.exit("a")               # b's exit was lost
        assert profiler._stack == []
        profiler.exit("never-entered")   # ignored, no crash
        assert profiler.stats()["b"]["calls"] == 1

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            SpanProfiler(engine="perf")

    def test_default_profile_hook(self):
        assert get_default_profile() is None
        profiler = SpanProfiler()
        set_default_profile(profiler)
        try:
            assert get_default_profile() is profiler
        finally:
            clear_default_profile()
        assert get_default_profile() is None
