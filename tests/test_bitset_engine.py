"""Equivalence tests: the bitset conflict engine vs the frozen seed engine.

Property-style checks on seeded random instances: the bitset engine
(:mod:`repro.dipaths.family` conflict masks, :class:`repro.conflict.ConflictGraph`,
mask-based cliques/colouring) must agree with the pre-bitset reference
implementation preserved in :mod:`repro.conflict.baseline` on

* the conflict-graph edge set,
* the clique number ``omega``,
* the exact chromatic number ``w``,

and UPP instances must satisfy Property 3 (``load == omega``).
"""

import pytest

from repro.conflict import build_conflict_graph, clique_number, maximal_cliques
from repro.conflict.baseline import (
    baseline_build_adjacency,
    baseline_chromatic_number,
    baseline_clique_number,
    baseline_dsatur_coloring,
)
from repro.conflict.conflict_graph import ConflictGraph
from repro.coloring import chromatic_number, dsatur_coloring
from repro.coloring.dsatur import _VECTOR_THRESHOLD, dsatur_coloring_masks
from repro.coloring.verify import is_proper_coloring, num_colors
from repro.dipaths.family import DipathFamily
from repro.generators.families import random_walk_family
from repro.generators.gadgets import figure5_family, havet_family
from repro.generators.random_dags import random_dag, random_upp_one_cycle_dag

NUM_INSTANCES = 50


def _random_instance(seed: int) -> DipathFamily:
    """A seeded random-DAG walk family, small enough for the exact solvers."""
    graph = random_dag(10 + seed % 5, 0.25 + 0.02 * (seed % 4), seed=seed)
    return random_walk_family(graph, 10 + seed % 9, seed=seed * 31 + 1)


def _edge_set(adjacency):
    return {(u, v) for u, nbrs in adjacency.items() for v in nbrs if u < v}


@pytest.mark.parametrize("seed", range(NUM_INSTANCES))
def test_engines_agree_on_seeded_instances(seed):
    family = _random_instance(seed)
    legacy_adj = baseline_build_adjacency(family)
    conflict = build_conflict_graph(family)

    # identical edge sets (and vertex sets)
    assert set(conflict.vertices()) == set(legacy_adj)
    assert set(conflict.edges()) == _edge_set(legacy_adj)
    assert set(family.conflicting_pairs()) == _edge_set(legacy_adj)

    # identical clique and chromatic numbers
    assert clique_number(conflict) == baseline_clique_number(legacy_adj)
    assert chromatic_number(conflict) == baseline_chromatic_number(legacy_adj)


@pytest.mark.parametrize("seed", range(0, NUM_INSTANCES, 7))
def test_conflicts_of_and_masks_are_consistent(seed):
    family = _random_instance(seed)
    legacy_adj = baseline_build_adjacency(family)
    masks = family.conflict_masks()
    for i in range(len(family)):
        assert family.conflicts_of(i) == sorted(legacy_adj[i])
        assert not (masks[i] >> i) & 1          # no self-conflict
        for j in family.conflicts_of(i):
            assert (masks[j] >> i) & 1          # symmetry


def test_conflicting_pairs_has_no_duplicates_and_matches_bruteforce():
    family = _random_instance(11)
    pairs = list(family.conflicting_pairs())
    assert len(pairs) == len(set(pairs))
    brute = {(i, j)
             for i in range(len(family)) for j in range(i + 1, len(family))
             if family[i].conflicts_with(family[j])}
    assert set(pairs) == brute


def test_cache_invalidated_on_add():
    family = DipathFamily([["a", "b"], ["c", "d"]])
    assert list(family.conflicting_pairs()) == []
    assert family.load() == 1
    family.add(["a", "b", "c"])                 # conflicts with member 0
    assert list(family.conflicting_pairs()) == [(0, 2)]
    assert family.load() == 2


@pytest.mark.parametrize("seed", range(8))
def test_property3_load_equals_omega_on_upp(seed):
    """Property 3 (Helly): on UPP-DAGs the load equals the clique number."""
    dag = random_upp_one_cycle_dag(k=2 + seed % 3, seed=seed)
    family = random_walk_family(dag, 14, seed=seed)
    conflict = build_conflict_graph(family)
    assert family.load() == clique_number(conflict)


@pytest.mark.parametrize("family", [havet_family(2), figure5_family(3)],
                         ids=["havet-x2", "figure5-k3"])
def test_property3_on_gadget_families(family):
    conflict = build_conflict_graph(family)
    assert family.load() == clique_number(conflict)


def test_derived_graph_operations_match_naive_rebuild():
    family = _random_instance(23)
    conflict = build_conflict_graph(family)
    naive = ConflictGraph(conflict.num_vertices, edges=conflict.edges())

    keep = [v for v in conflict.vertices() if v % 2 == 0]
    assert set(conflict.subgraph(keep).edges()) == {
        (u, v) for u, v in naive.edges() if u in keep and v in keep}

    n = conflict.num_vertices
    assert (conflict.complement().num_edges
            == n * (n - 1) // 2 - conflict.num_edges)
    comp_edges = set(conflict.complement().edges())
    assert all((u, v) not in comp_edges for u, v in conflict.edges())

    components = conflict.connected_components()
    assert sorted(v for comp in components for v in comp) == conflict.vertices()
    assert all(not (comp_a & comp_b)
               for i, comp_a in enumerate(components)
               for comp_b in components[i + 1:])


@pytest.mark.parametrize("seed", range(12))
def test_dsatur_cores_produce_identical_colorings(seed):
    """Both cores share one selection rule, so the colourings are identical."""
    import random

    from repro.coloring.dsatur import _dsatur_heap, _dsatur_vectorized

    rng = random.Random(seed)
    n = 70 + seed
    masks = [0] * n
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < 0.2:
                masks[u] |= 1 << v
                masks[v] |= 1 << u
    heap_colors, heap_order = _dsatur_heap(masks)
    vec_colors, vec_order = _dsatur_vectorized(masks)
    assert heap_colors == vec_colors
    assert heap_order == vec_order


def test_unknown_vertices_treated_as_isolated():
    """is_clique / is_independent_set follow has_edge semantics off-graph."""
    from repro.conflict.cliques import is_clique
    from repro.conflict.independent_sets import is_independent_set

    g = ConflictGraph(3, edges=[(0, 1)])
    assert is_independent_set(g, {5, 7})
    assert is_independent_set(g, {2, 5})
    assert not is_independent_set(g, {0, 1, 5})
    assert not is_clique(g, {0, 7})
    assert is_clique(g, {7})


def test_coloring_annotations_resolve():
    """GraphLike must survive runtime annotation introspection."""
    import typing

    from repro.coloring.masks import as_dense_masks

    hints = typing.get_type_hints(as_dense_masks)
    assert "graph" in hints


def test_dsatur_cores_agree_across_threshold():
    """Both DSATUR cores colour properly and hit the same count on blow-ups."""
    family = havet_family(12)                   # 96 vertices: vectorised core
    assert len(family) >= _VECTOR_THRESHOLD
    conflict = build_conflict_graph(family)
    masks = [conflict.neighbor_mask(v) for v in conflict.vertices()]

    vec_colors, vec_order = dsatur_coloring_masks(masks)
    assert sorted(vec_order) == list(range(len(masks)))

    coloring = {v: vec_colors[v] for v in conflict.vertices()}
    assert is_proper_coloring(conflict.adjacency(), coloring)

    legacy = baseline_dsatur_coloring(conflict.adjacency())
    assert num_colors(coloring) == num_colors(legacy)


def test_dsatur_small_graphs_use_heap_core_and_match_seed():
    family = _random_instance(5)
    assert len(family) < _VECTOR_THRESHOLD
    conflict = build_conflict_graph(family)
    new = dsatur_coloring(conflict)
    legacy = baseline_dsatur_coloring(conflict.adjacency())
    assert is_proper_coloring(conflict.adjacency(), new)
    assert num_colors(new) == num_colors(legacy)


def test_maximal_cliques_match_seed_semantics():
    family = _random_instance(17)
    conflict = build_conflict_graph(family)
    cliques = maximal_cliques(conflict)
    as_sets = {frozenset(c) for c in cliques}
    assert len(as_sets) == len(cliques)         # no duplicates
    adj = conflict.adjacency()
    for clique in cliques:
        members = sorted(clique)
        for i, u in enumerate(members):         # pairwise adjacent
            for v in members[i + 1:]:
                assert v in adj[u]
        for w in adj:                           # maximal
            if w not in clique:
                assert not all(w in adj[u] for u in clique)
