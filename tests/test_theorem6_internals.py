"""Edge-case tests for Theorem 6 internals and the covering fallback."""

import pytest

from repro.conflict.conflict_graph import ConflictGraph, build_conflict_graph
from repro.conflict.covering import (
    blowup_chromatic_number,
    independent_set_cover,
    replicated_family_coloring,
)
from repro.coloring.verify import is_proper_coloring, num_colors
from repro.core.theorem6 import (
    _cycle_arcs,
    color_dipaths_theorem6,
    split_arc,
    theorem6_bound,
)
from repro.cycles.internal import find_internal_cycle
from repro.dipaths.dipath import Dipath
from repro.dipaths.family import DipathFamily
from repro.generators.gadgets import (
    figure5_family,
    havet_dag,
    havet_family,
    theorem2_gadget,
)


class TestCycleArcs:
    def test_cycle_arcs_are_graph_arcs(self, gadget_dag):
        cycle = find_internal_cycle(gadget_dag)
        arcs = _cycle_arcs(gadget_dag, cycle)
        assert len(arcs) == len(cycle)
        for u, v in arcs:
            assert gadget_dag.has_arc(u, v)

    def test_cycle_arcs_closed_form_accepted(self, gadget_dag):
        cycle = find_internal_cycle(gadget_dag)
        closed = list(cycle) + [cycle[0]]
        assert _cycle_arcs(gadget_dag, closed) == _cycle_arcs(gadget_dag, cycle)


class TestSplitArcLabels:
    def test_custom_split_labels(self):
        dag = havet_dag()
        split, s, t = split_arc(dag, ("b1", "c1"), split_labels=("S", "T"))
        assert s == "S" and t == "T"
        assert split.has_arc("b1", "S")
        assert split.has_arc("T", "c1")
        assert not split.has_arc("b1", "c1")


class TestSingleArcFamilies:
    def test_family_of_only_cycle_arcs(self, gadget_dag):
        # every dipath is a copy of one cycle arc: the splitting reduces the
        # whole instance to padding-only through dipaths
        arc = _cycle_arcs(gadget_dag, find_internal_cycle(gadget_dag))[0]
        family = DipathFamily([Dipath.single_arc(*arc)] * 4, graph=gadget_dag)
        coloring = color_dipaths_theorem6(gadget_dag, family)
        # four identical copies pairwise conflict: exactly four colours, and
        # the budget ceil(4*4/3) = 6 is respected
        assert num_colors(coloring) == 4
        assert max(coloring.values()) < theorem6_bound(4)

    def test_mixed_lengths(self, gadget_dag):
        family = figure5_family(3, gadget_dag)
        family.add(Dipath.single_arc(("b", 0), ("c", 0)))
        family.add(Dipath([("a", 1), ("b", 1)]))
        coloring = color_dipaths_theorem6(gadget_dag, family)
        conflict = build_conflict_graph(family)
        assert is_proper_coloring(conflict.adjacency(), coloring)
        assert num_colors(coloring) <= theorem6_bound(family.load())


class TestCoveringEdgeCases:
    def test_empty_graph_cover(self):
        assert independent_set_cover(ConflictGraph(0), 2) == []

    def test_single_vertex_cover(self):
        cover = independent_set_cover(ConflictGraph(1), 3)
        assert len(cover) == 3

    def test_cover_on_complete_graph(self):
        complete = ConflictGraph(3, edges=[(0, 1), (1, 2), (0, 2)])
        # blow-up of K3 with h copies needs 3h colours
        assert blowup_chromatic_number(complete, 2) == 6

    def test_replicated_coloring_single_copy(self):
        family = havet_family(1)
        coloring = replicated_family_coloring(family)
        assert coloring is not None
        assert num_colors(coloring) == 3

    def test_replicated_coloring_of_figure5(self):
        dag = theorem2_gadget(2)
        family = figure5_family(2, dag).replicate(4)
        coloring = replicated_family_coloring(family)
        conflict = build_conflict_graph(family)
        assert is_proper_coloring(conflict.adjacency(), coloring)
        # C5 blow-up with h copies needs ceil(5h/2) colours
        assert num_colors(coloring) == 10
