"""`sort_events` interacting with timestamp batching and defrag triggers.

PR 4 made two things happen "at the same timestamp": capacity freed by a
departure at time ``t`` must be usable by arrivals at ``t`` (the
departure-before-arrival tie-break of :func:`~repro.online.sort_events`)
and consecutive equal-timestamp arrivals are admitted as one atomic
burst.  PR 5 adds defrag triggers that can fire *inside* the same
timestamp group — the periodic trigger crossing its boundary mid-group,
and the on-block trigger re-trying the burst's spectrum-blocked slice
after a fruitful pass.  These tests pin the three-way interaction on a
hand-built instance where every colour decision is forced:

* correctly sorted, the departure frees its fibre first, the burst's
  blocked arrival triggers a defrag pass whose single recolouring move
  frees a wavelength, and the retry admits it;
* with the tie-break inverted (arrivals before the equal-timestamp
  departure) the same pass finds no strict improvement and the arrival
  stays blocked — the admission outcome depends on the documented order.
"""

from __future__ import annotations

import random

from repro.graphs.digraph import DiGraph
from repro.online import (
    ARRIVAL,
    DEPARTURE,
    Event,
    simulate_online,
    sort_events,
)

#: Fibre chain a->b->c->w plus spur c->d.
GRAPH_ARCS = [("a", "b"), ("b", "c"), ("c", "w"), ("c", "d")]

#: The choreography (times chosen so the burst shares its timestamp with
#: P0's departure): P0 and P2 share fibre (b, c), so P2 is forced onto
#: wavelength 1; P1 takes wavelength 0 on (a, b).  The burst's first
#: arrival B crosses both fibres and needs a wavelength free on each.
P0 = ["b", "c", "w"]          # -> wavelength 0
P2 = ["b", "c"]               # conflicts P0 -> wavelength 1
P1 = ["a", "b"]               # -> wavelength 0
B = ["a", "b", "c"]           # the burst arrival that blocks at W=2
D = ["c", "d"]                # burst filler, conflict-free


def _events():
    return [
        Event(0.0, ARRIVAL, 0, dipath=P0),
        Event(1.0, ARRIVAL, 1, dipath=P2),
        Event(2.0, ARRIVAL, 2, dipath=P1),
        Event(4.0, DEPARTURE, 0),
        Event(4.0, ARRIVAL, 3, dipath=B),
        Event(4.0, ARRIVAL, 4, dipath=D),
    ]


def _run(trace, **kwargs):
    return simulate_online(DiGraph(arcs=GRAPH_ARCS), trace, 2,
                           batch_policy="greedy", defrag_on_block=True,
                           record_timeline=False, **kwargs)


def test_sort_events_puts_departure_before_equal_timestamp_batch():
    shuffled = _events()
    random.Random(5).shuffle(shuffled)
    trace = sort_events(shuffled)
    assert [(e.time, e.kind, e.request_id) for e in trace[3:]] == [
        (4.0, DEPARTURE, 0), (4.0, ARRIVAL, 3), (4.0, ARRIVAL, 4)]


def test_defrag_retry_admits_blocked_burst_arrival_when_sorted():
    result = _run(sort_events(_events()))
    # B blocked initially (P1 holds 0 on (a,b), P2 holds 1 on (b,c));
    # the on-block pass recolours P2 from 1 to 0 — P0 departed first, so
    # the strict-improvement objective accepts — and the retry admits B
    assert result.blocked == []
    assert sorted(result.accepted) == [0, 1, 2, 3, 4]
    assert result.defrag_passes >= 1
    assert result.defrag_moves >= 1
    assert result.wavelengths_used == 2


def test_inverted_tie_break_blocks_the_same_arrival():
    # arrivals before the equal-timestamp departure: P0 still holds
    # wavelength 0 on (b, c) while the burst is admitted, the defrag
    # pass finds no strict improvement, and B stays blocked for good
    events = _events()
    inverted = events[:3] + [events[4], events[5], events[3]]
    result = _run(inverted)
    assert result.blocked == [3]
    assert result.rejections[3] == "no_wavelength"


def test_periodic_trigger_fires_inside_the_timestamp_group():
    # defrag_every=5: the counter crosses its boundary at the first
    # arrival of the equal-timestamp burst (processed events 5 and 6),
    # so exactly one periodic pass must run for the whole group
    result = _run(sort_events(_events()), defrag_every=5)
    assert result.blocked == []
    # one periodic pass for the group plus the on-block pass and the
    # retried admission triggered before it
    assert result.defrag_passes == 2


def test_sort_events_is_deterministic_within_time_and_kind():
    events = [Event(1.0, ARRIVAL, rid, dipath=D) for rid in (5, 3, 9)]
    events += [Event(1.0, DEPARTURE, rid) for rid in (8, 2)]
    trace = sort_events(events)
    assert [(e.kind, e.request_id) for e in trace] == [
        (DEPARTURE, 2), (DEPARTURE, 8),
        (ARRIVAL, 3), (ARRIVAL, 5), (ARRIVAL, 9)]
