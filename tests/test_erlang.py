"""Tests for the Erlang blocking sweeps (repro.analysis.erlang).

The fast tests pin the record schema, determinism and argument
validation on a small instance; the ``slow``-marked test (deselected by
default, see pytest.ini) replays a benchmark-sized sweep and asserts the
qualitative claims the E14 gate records: blocking grows with offered
load and adaptive routing never does worse than fixed shortest-path.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.erlang import (
    ADAPTIVE_ROUTINGS,
    erlang_sweep,
    measure_blocking_scenario,
    measure_defrag_blocking_scenario,
    measure_defrag_reclaim_scenario,
    measure_speculation_scenario,
)
from repro.generators.random_dags import random_dag
from repro.optical.traffic import hotspot_traffic


@pytest.fixture(scope="module")
def small_instance():
    graph = random_dag(14, 0.3, seed=5)
    pool = hotspot_traffic(graph, 60, num_hotspots=2, seed=5)
    return graph, pool


class TestErlangSweep:
    def test_record_schema_and_grid(self, small_instance):
        graph, pool = small_instance
        records = erlang_sweep(graph, pool, 3, [2.0, 8.0],
                               routings=("shortest", "least_loaded"),
                               num_arrivals=80, seed=1)
        assert len(records) == 4               # 2 loads x 2 routings
        for record in records:
            assert 0.0 <= record["blocking"] <= 1.0
            assert record["blocked_no_route"] + \
                record["blocked_no_wavelength"] == \
                round(record["blocking"] * record["arrivals"])
            assert record["routing"] in ("shortest", "least_loaded")

    def test_sweep_is_deterministic(self, small_instance):
        graph, pool = small_instance
        kwargs = dict(num_arrivals=60, seed=9)
        assert erlang_sweep(graph, pool, 3, [4.0], **kwargs) == \
            erlang_sweep(graph, pool, 3, [4.0], **kwargs)

    def test_rejects_bad_offered_load(self, small_instance):
        graph, pool = small_instance
        with pytest.raises(ValueError):
            erlang_sweep(graph, pool, 3, [0.0])

    def test_speculation_scenario_contract(self):
        record = measure_speculation_scenario("speculate-walks-550",
                                              repeats=1)
        assert record["num_dipaths"] >= 500
        assert record["decisions_equal"]
        assert record["mask_rebuilds"] <= 1


class TestParallelSweep:
    """The ``workers`` fan-out must be invisible in the records."""

    def test_parallel_records_are_byte_identical_to_serial(self,
                                                           small_instance):
        graph, pool = small_instance
        kwargs = dict(routings=("shortest", "least_loaded"),
                      num_arrivals=60, seed=7)
        serial = erlang_sweep(graph, pool, 3, [2.0, 5.0, 9.0], workers=1,
                              **kwargs)
        parallel = erlang_sweep(graph, pool, 3, [2.0, 5.0, 9.0], workers=2,
                                **kwargs)
        assert json.dumps(serial) == json.dumps(parallel)

    def test_default_workers_path_matches_serial(self, small_instance):
        graph, pool = small_instance
        kwargs = dict(routings=("shortest",), num_arrivals=40, seed=2)
        serial = erlang_sweep(graph, pool, 3, [3.0], workers=1, **kwargs)
        auto = erlang_sweep(graph, pool, 3, [3.0], workers=None, **kwargs)
        assert json.dumps(serial) == json.dumps(auto)


@pytest.mark.slow
class TestLongHorizonSweeps:
    def test_blocking_grows_with_load_and_adaptive_helps(self):
        graph = random_dag(30, 0.25, seed=11)
        pool = hotspot_traffic(graph, 400, num_hotspots=2, seed=11)
        records = erlang_sweep(graph, pool, 5, [20.0, 75.0, 150.0],
                               num_arrivals=600, seed=42)
        by_routing = {}
        for record in records:
            by_routing.setdefault(record["routing"], []).append(
                (record["offered_load"], record["blocking"]))
        for routing, curve in by_routing.items():
            curve.sort()
            assert curve[0][1] <= curve[-1][1], routing
        fixed = dict(by_routing["shortest"])
        for routing in ADAPTIVE_ROUTINGS:
            for load, blocking in by_routing[routing]:
                assert blocking <= fixed[load], (routing, load)

    def test_benchmark_blocking_scenarios_hold(self):
        for name in ("erlang-icf36-hotspot", "erlang-dag30-hotspot"):
            record = measure_blocking_scenario(name)
            assert record["adaptive_beats_fixed"], record

    def test_defrag_blocking_scenarios_hold(self):
        """E15a: blocking with defrag triggers never exceeds without."""
        for name in ("erlang-icf36-hotspot", "erlang-dag30-hotspot"):
            record = measure_defrag_blocking_scenario(name)
            assert record["defrag_not_worse"], record
            assert record["defrag_moves"] >= 1, record

    def test_defrag_reclaim_scenarios_hold(self):
        """E15b: passes reclaim wavelengths, never below the load bound."""
        for name in ("reclaim-icf36-hotspot", "reclaim-dag30-hotspot"):
            record = measure_defrag_reclaim_scenario(name)
            assert record["reclaims_capacity"], record
            assert record["coloring_proper_after"], record
            assert record["within_load_bound"], record
