"""Unit tests for :mod:`repro.graphs.dag` and :mod:`repro.graphs.traversal`."""

import pytest

from repro.exceptions import NotADAGError
from repro.graphs.dag import DAG, as_dag
from repro.graphs.digraph import DiGraph
from repro.graphs.properties import (
    degree_summary,
    is_out_tree,
    is_weakly_connected,
    underlying_cyclomatic_number,
    underlying_is_forest,
    vertex_classification,
    weakly_connected_components,
)
from repro.graphs.traversal import (
    ancestors,
    count_dipaths,
    count_dipaths_matrix,
    descendants,
    enumerate_dipaths,
    find_directed_cycle,
    is_acyclic,
    longest_path_length,
    reachable_from,
    shortest_dipath,
    topological_order,
    transitive_closure_sets,
)


class TestDAGValidation:
    def test_valid_dag(self):
        dag = DAG(arcs=[("a", "b"), ("b", "c")])
        assert dag.is_valid()

    def test_cycle_rejected_with_certificate(self):
        with pytest.raises(NotADAGError) as excinfo:
            DAG(arcs=[("a", "b"), ("b", "c"), ("c", "a")])
        cycle = excinfo.value.cycle
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        assert len(cycle) >= 4  # 3 vertices + closing repeat

    def test_as_dag_validates(self):
        g = DiGraph(arcs=[("a", "b"), ("b", "a")])
        with pytest.raises(NotADAGError):
            as_dag(g)

    def test_as_dag_passthrough(self, simple_dag):
        assert as_dag(simple_dag) is simple_dag

    def test_subgraph_and_reverse_stay_dags(self, simple_dag):
        sub = simple_dag.subgraph(["a", "b", "c"])
        assert isinstance(sub, DAG)
        rev = simple_dag.reverse()
        assert isinstance(rev, DAG)
        assert rev.has_arc("b", "a")


class TestTopologicalOrder:
    def test_order_respects_arcs(self, simple_dag):
        order = topological_order(simple_dag)
        position = {v: i for i, v in enumerate(order)}
        for u, v in simple_dag.arcs():
            assert position[u] < position[v]

    def test_order_covers_all_vertices(self, simple_dag):
        assert set(topological_order(simple_dag)) == set(simple_dag.vertices())

    def test_cycle_detection(self):
        g = DiGraph(arcs=[("a", "b"), ("b", "c"), ("c", "a")])
        assert not is_acyclic(g)
        cycle = find_directed_cycle(g)
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        for u, v in zip(cycle, cycle[1:]):
            assert g.has_arc(u, v)

    def test_acyclic_has_no_cycle(self, simple_dag):
        assert find_directed_cycle(simple_dag) is None


class TestReachability:
    def test_reachable_from(self, simple_dag):
        assert reachable_from(simple_dag, "a") == {"a", "b", "c", "d", "e"}
        assert reachable_from(simple_dag, "f") == {"f", "c", "d"}

    def test_descendants_ancestors(self, simple_dag):
        assert descendants(simple_dag, "b") == {"c", "d", "e"}
        assert ancestors(simple_dag, "d") == {"a", "b", "c", "f"}

    def test_transitive_closure(self, simple_dag):
        closure = transitive_closure_sets(simple_dag)
        assert closure["a"] == {"b", "c", "d", "e"}
        assert closure["d"] == set()


class TestDipathCounting:
    def test_single_path(self, simple_dag):
        assert count_dipaths(simple_dag, "a", "d") == 1
        assert count_dipaths(simple_dag, "d", "a") == 0
        assert count_dipaths(simple_dag, "a", "a") == 0

    def test_two_paths_diamond(self):
        dag = DAG(arcs=[("s", "x"), ("s", "y"), ("x", "t"), ("y", "t")])
        assert count_dipaths(dag, "s", "t") == 2

    def test_count_matrix_matches_pointwise(self, simple_dag):
        matrix = count_dipaths_matrix(simple_dag)
        for x in simple_dag.vertices():
            for y in simple_dag.vertices():
                if x != y:
                    assert matrix[x].get(y, 0) == count_dipaths(simple_dag, x, y)

    def test_count_matrix_cap(self):
        dag = DAG(arcs=[("s", "x"), ("s", "y"), ("x", "t"), ("y", "t")])
        matrix = count_dipaths_matrix(dag, cap=1)
        assert matrix["s"]["t"] == 1  # saturated

    def test_enumerate_dipaths(self):
        dag = DAG(arcs=[("s", "x"), ("s", "y"), ("x", "t"), ("y", "t")])
        paths = enumerate_dipaths(dag, "s", "t")
        assert sorted(paths) == [["s", "x", "t"], ["s", "y", "t"]]

    def test_enumerate_with_limit(self):
        dag = DAG(arcs=[("s", "x"), ("s", "y"), ("x", "t"), ("y", "t")])
        assert len(enumerate_dipaths(dag, "s", "t", limit=1)) == 1

    def test_shortest_dipath(self, simple_dag):
        assert shortest_dipath(simple_dag, "a", "d") == ["a", "b", "c", "d"]
        assert shortest_dipath(simple_dag, "d", "a") is None
        assert shortest_dipath(simple_dag, "a", "a") == ["a"]

    def test_longest_path_length(self, simple_dag):
        assert longest_path_length(simple_dag) == 3


class TestProperties:
    def test_degree_summary(self, simple_dag):
        summary = degree_summary(simple_dag)
        assert summary["num_sources"] == 2       # a and f
        assert summary["num_sinks"] == 2         # d and e
        assert summary["max_out"] == 2

    def test_weak_connectivity(self):
        g = DiGraph(arcs=[("a", "b"), ("c", "d")])
        comps = weakly_connected_components(g)
        assert len(comps) == 2
        assert not is_weakly_connected(g)

    def test_forest_detection(self, simple_dag):
        # simple_dag's underlying graph has 6 vertices and 5 edges: a tree.
        assert underlying_is_forest(simple_dag)
        assert underlying_cyclomatic_number(simple_dag) == 0

    def test_cyclomatic_number_positive(self, gadget_dag):
        assert underlying_cyclomatic_number(gadget_dag) >= 1

    def test_vertex_classification(self, simple_dag):
        classes = vertex_classification(simple_dag)
        assert set(classes["sources"]) == {"a", "f"}
        assert set(classes["sinks"]) == {"d", "e"}
        assert set(classes["internal"]) == {"b", "c"}
        assert classes["isolated"] == []

    def test_is_out_tree(self):
        tree = DiGraph(arcs=[("r", "a"), ("r", "b"), ("a", "c")])
        assert is_out_tree(tree)
        not_tree = DiGraph(arcs=[("r", "a"), ("b", "a")])
        assert not is_out_tree(not_tree)
