"""Tests for the defragmentation & batched-admission subsystem (PR 4).

Covers the three layers the subsystem spans:

* **nested what-if transactions** — commit splices into the parent, the
  parent's rollback undoes committed children bit-identically, resolution
  is LIFO, and ``__exit__`` never commits on an exception nor masks one
  with a rollback failure;
* **batched admission** — the three partial-commit policies, atomicity of
  ``all_or_nothing`` (bit-identical unwind), engine-level timestamp
  batching in :func:`simulate_online`;
* **defragmentation passes** — strict-improvement acceptance, walk
  orders, move budgets, engine triggers (every-N / on-block / utilisation
  threshold), ``request -> member`` coherence, and the differential claim
  of the E15 gate: a whole committed defrag move wrapped in an outer
  transaction rolls back to a bit-identical never-touched twin.
"""

from __future__ import annotations

import pytest

from test_differential_online import engine_state

from repro.coloring.verify import is_proper_coloring
from repro.conflict import DynamicConflictGraph, build_conflict_graph
from repro.dipaths.dipath import Dipath
from repro.dipaths.family import DipathFamily
from repro.generators.families import random_walk_family
from repro.generators.random_dags import random_dag
from repro.online import (
    ARRIVAL,
    BatchTransaction,
    DefragPass,
    Event,
    OnlineEngine,
    OnlineWavelengthAssigner,
    WhatIfTransaction,
    admit_batch,
    max_color_in_use,
    poisson_trace,
    simulate_online,
)
from repro.optical.traffic import uniform_random_traffic


def _engine(wavelengths=4, policy="first_fit"):
    conflict = DynamicConflictGraph(DipathFamily())
    # seeded so bit-identity comparisons between twins include RNG state
    assigner = OnlineWavelengthAssigner(wavelengths, policy=policy, seed=5)
    return conflict, assigner


def _state(conflict, assigner):
    return engine_state(conflict.family, conflict, assigner)


# ---------------------------------------------------------------------- #
# nested transactions
# ---------------------------------------------------------------------- #
class TestNestedTransactions:
    def test_parent_rollback_undoes_committed_child_bit_identically(self):
        conflict, assigner = _engine()
        twin_c, twin_a = _engine()
        for dipath in (["a", "b", "c"], ["b", "c", "d"]):
            for c, a in ((conflict, assigner), (twin_c, twin_a)):
                idx = c.add_dipath(dipath)
                assert a.assign(c, idx) is not None
        before = _state(conflict, assigner)
        with WhatIfTransaction(conflict, assigner) as outer:
            with WhatIfTransaction(conflict, assigner) as inner:
                inner.admit(["c", "d", "e"])
                inner.commit()
            with WhatIfTransaction(conflict, assigner) as inner:
                inner.release(0)
                inner.remove_dipath(0)
                inner.commit()
            assert len(conflict.family) == 2    # committed into the outer
        assert _state(conflict, assigner) == before
        assert _state(conflict, assigner) == _state(twin_c, twin_a)

    def test_child_rollback_keeps_parent_speculation(self):
        conflict, assigner = _engine()
        with WhatIfTransaction(conflict, assigner) as outer:
            idx, color = outer.admit(["a", "b"])
            assert color is not None
            with WhatIfTransaction(conflict, assigner) as inner:
                inner.admit(["b", "c"])
                # not committed: rolled back on exit
            assert len(conflict.family) == 1
            assert conflict.family.is_active(idx)
            outer.commit()
        assert len(conflict.family) == 1

    def test_three_levels_deep(self):
        conflict, assigner = _engine()
        before = _state(conflict, assigner)
        with WhatIfTransaction(conflict, assigner) as t1:
            t1.admit(["a", "b"])
            with WhatIfTransaction(conflict, assigner) as t2:
                t2.admit(["b", "c"])
                with WhatIfTransaction(conflict, assigner) as t3:
                    t3.admit(["c", "d"])
                    t3.commit()
                t2.commit()
            assert len(conflict.family) == 3
        assert _state(conflict, assigner) == before

    def test_resolution_is_lifo(self):
        conflict, assigner = _engine()
        outer = WhatIfTransaction(conflict, assigner)
        inner = WhatIfTransaction(conflict, assigner)
        with pytest.raises(RuntimeError):
            outer.commit()
        with pytest.raises(RuntimeError):
            outer.rollback()
        inner.rollback()
        outer.rollback()


class TestExitSemantics:
    """Satellite: ``__exit__`` under exceptions (never commit, never mask)."""

    def test_exception_mid_block_rolls_back_mutations(self):
        conflict, assigner = _engine()
        idx = conflict.add_dipath(["a", "b"])
        assert assigner.assign(conflict, idx) is not None
        before = _state(conflict, assigner)
        with pytest.raises(KeyError, match="boom"):
            with WhatIfTransaction(conflict, assigner) as tx:
                tx.admit(["a", "b", "c"])
                tx.release(idx)
                tx.remove_dipath(idx)
                raise KeyError("boom")
        assert _state(conflict, assigner) == before

    def test_exception_after_commit_keeps_the_commit(self):
        conflict, assigner = _engine()
        with pytest.raises(ValueError):
            with WhatIfTransaction(conflict, assigner) as tx:
                idx, color = tx.admit(["a", "b"])
                tx.commit()
                raise ValueError("after commit")
        assert color is not None
        assert conflict.family.is_active(idx)

    def test_failed_rollback_does_not_mask_the_original_exception(
            self, monkeypatch):
        conflict, assigner = _engine()

        def broken_retract(idx, state):
            raise RuntimeError("rollback broke")

        with pytest.raises(KeyError, match="original") as excinfo:
            with WhatIfTransaction(conflict, assigner) as tx:
                tx.admit(["a", "b"])
                monkeypatch.setattr(
                    DipathFamily, "_retract_add",
                    lambda self, idx, state: broken_retract(idx, state))
                raise KeyError("original")
        # the rollback failure rides along as a note, not as the exception
        notes = getattr(excinfo.value, "__notes__", [])
        assert any("rollback failed" in note for note in notes)

    def test_failed_rollback_without_exception_still_raises(
            self, monkeypatch):
        conflict, assigner = _engine()

        def broken_retract(idx, state):
            raise RuntimeError("rollback broke")

        with pytest.raises(RuntimeError, match="rollback broke"):
            with WhatIfTransaction(conflict, assigner) as tx:
                tx.admit(["a", "b"])
                monkeypatch.setattr(
                    DipathFamily, "_retract_add",
                    lambda self, idx, state: broken_retract(idx, state))


# ---------------------------------------------------------------------- #
# batched admission
# ---------------------------------------------------------------------- #
class TestBatchAdmission:
    def test_all_or_nothing_unwinds_bit_identically(self):
        conflict, assigner = _engine(wavelengths=2)
        before = _state(conflict, assigner)
        # third copy of the same arc cannot fit W=2: everything unwinds
        result = admit_batch(conflict, assigner,
                             [["a", "b"], ["a", "b"], ["a", "b"]],
                             policy="all_or_nothing")
        assert not result.committed
        assert result.admitted == []
        assert result.blocked == [0, 1, 2]
        assert _state(conflict, assigner) == before

    def test_all_or_nothing_commits_a_feasible_batch(self):
        conflict, assigner = _engine(wavelengths=2)
        result = admit_batch(conflict, assigner, [["a", "b"], ["a", "b"]])
        assert result.committed
        assert [pos for pos, _, _ in result.admitted] == [0, 1]
        assert len(conflict.family) == 2
        colors = {color for _, _, color in result.admitted}
        assert colors == {0, 1}

    def test_best_prefix_stops_at_first_failure(self):
        conflict, assigner = _engine(wavelengths=2)
        result = admit_batch(conflict, assigner,
                             [["a", "b"], ["a", "b"], ["a", "b"],
                              ["b", "c"]],
                             policy="best_prefix")
        assert result.committed
        assert [pos for pos, _, _ in result.admitted] == [0, 1]
        assert result.blocked == [2, 3]     # 3 unattempted past the cut
        assert len(conflict.family) == 2

    def test_greedy_skips_only_the_infeasible(self):
        conflict, assigner = _engine(wavelengths=2)
        result = admit_batch(conflict, assigner,
                             [["a", "b"], ["a", "b"], ["a", "b"],
                              ["b", "c"]],
                             policy="greedy")
        assert result.committed
        assert [pos for pos, _, _ in result.admitted] == [0, 1, 3]
        assert result.blocked == [2]
        assert len(conflict.family) == 3

    def test_unknown_policy_rejected(self):
        conflict, assigner = _engine()
        with pytest.raises(ValueError):
            admit_batch(conflict, assigner, [["a", "b"]], policy="optimal")
        with pytest.raises(ValueError):
            BatchTransaction(conflict, assigner, policy="optimal")

    def test_batch_transaction_front_end(self):
        conflict, assigner = _engine(wavelengths=2)
        batcher = BatchTransaction(conflict, assigner, policy="greedy")
        assert batcher.policy == "greedy"
        result = batcher.admit([["a", "b"], ["a", "b"], ["a", "b"]])
        assert len(result.admitted) == 2 and result.blocked == [2]
        # per-call override
        strict = batcher.admit([["c", "d"], ["c", "d"], ["c", "d"]],
                               policy="all_or_nothing")
        assert not strict.committed and strict.admitted == []

    def test_simulate_online_timestamp_batching(self):
        # two arrivals at t=0 fight for one arc under W=1: one-by-one
        # admits the first, all_or_nothing blocks both atomically.
        graph = random_dag(3, 1.0, seed=0)
        arc = next(iter(graph.arcs()))
        dipath = Dipath([arc[0], arc[1]])
        events = [Event(0.0, ARRIVAL, 0, dipath=dipath),
                  Event(0.0, ARRIVAL, 1, dipath=dipath)]
        solo = simulate_online(graph, events, 1)
        batched = simulate_online(graph, events, 1,
                                  batch_policy="all_or_nothing")
        assert solo.accepted == [0] and solo.blocked == [1]
        assert batched.accepted == [] and batched.blocked == [0, 1]
        assert batched.batch_policy == "all_or_nothing"
        assert len(batched.timeline) == len(events)

    def test_simulate_online_batching_matches_serial_for_greedy(self):
        graph = random_dag(12, 0.3, seed=3)
        pool = uniform_random_traffic(graph, 20, seed=3)
        trace = poisson_trace(pool, 80, arrival_rate=6.0, seed=3)
        solo = simulate_online(graph, trace, 3, record_timeline=False)
        batched = simulate_online(graph, trace, 3, record_timeline=False,
                                  batch_policy="greedy")
        # distinct timestamps almost surely: batching must be a no-op; if
        # the trace ever had equal-time arrivals greedy admits the same set
        assert batched.accepted == solo.accepted
        assert batched.blocked == solo.blocked


# ---------------------------------------------------------------------- #
# defragmentation
# ---------------------------------------------------------------------- #
def _fragmented_pair():
    """A W=4 engine left fragmented by departures (colour 0+2 free-able)."""
    conflict, assigner = _engine(wavelengths=4)
    # four copies of one arc -> colours 0..3; remove colours 0 and 2
    indices = []
    for _ in range(4):
        idx = conflict.add_dipath(["a", "b"])
        assert assigner.assign(conflict, idx) is not None
        indices.append(idx)
    for idx in (indices[0], indices[2]):
        assigner.release(idx)
        conflict.remove_dipath(idx)
    # colours in use now {1, 3}: first-fit from scratch would use {0, 1}
    return conflict, assigner


class TestDefragPass:
    def test_recolour_compaction_reclaims_the_tail(self):
        conflict, assigner = _fragmented_pair()
        assert max_color_in_use(assigner) == 3
        report = DefragPass(conflict, assigner).run()
        # colour 3 drops to 0; the colour-1 member is already optimal
        assert report.moves_committed == 1
        assert report.max_color_before == 3
        assert report.max_color_after == 1
        assert sorted(assigner.coloring.values()) == [0, 1]
        assert report.reclaimed == 0        # count unchanged: 2 -> 2
        assert not report.budget_exhausted

    def test_pass_is_idempotent_at_the_fixpoint(self):
        conflict, assigner = _fragmented_pair()
        DefragPass(conflict, assigner).run()
        again = DefragPass(conflict, assigner).run()
        assert again.moves_committed == 0
        assert again.attempted == 2

    def test_moves_never_commit_without_strict_improvement(self):
        conflict, assigner = _engine(wavelengths=4)
        for _ in range(3):
            idx = conflict.add_dipath(["a", "b"])
            assert assigner.assign(conflict, idx) is not None
        conflict.family.load()      # prime the lazy cache before snapshotting
        before = _state(conflict, assigner)
        report = DefragPass(conflict, assigner).run()
        assert report.moves_committed == 0
        assert _state(conflict, assigner) == before

    def test_max_moves_budget(self):
        conflict, assigner = _fragmented_pair()
        report = DefragPass(conflict, assigner, max_moves=1).run()
        assert report.moves_committed == 1
        assert report.budget_exhausted

    def test_zero_time_budget_moves_nothing(self):
        conflict, assigner = _fragmented_pair()
        report = DefragPass(conflict, assigner, time_budget=0.0).run()
        assert report.moves_committed == 0
        assert report.budget_exhausted

    def test_orderings_validated_and_all_reach_the_fixpoint(self):
        with pytest.raises(ValueError):
            DefragPass(*_engine(), order="random")
        for order in ("highest_wavelength", "longest_route",
                      "most_conflicted"):
            conflict, assigner = _fragmented_pair()
            DefragPass(conflict, assigner, order=order).run()
            assert sorted(assigner.coloring.values()) == [0, 1], order

    def test_committed_move_is_rollback_safe(self):
        """The E15 differential claim: a committed defrag move inside an
        outer transaction unwinds to a bit-identical never-touched twin."""
        conflict, assigner = _fragmented_pair()
        twin_c, twin_a = _fragmented_pair()
        conflict.family.load()      # prime the lazy cache before snapshotting
        twin_c.family.load()
        before = _state(conflict, assigner)
        assert before == _state(twin_c, twin_a)
        with WhatIfTransaction(conflict, assigner):
            report = DefragPass(conflict, assigner).run()
            assert report.moves_committed >= 1      # moves really committed
            assert max_color_in_use(assigner) == 1
        assert _state(conflict, assigner) == before
        assert _state(conflict, assigner) == _state(twin_c, twin_a)

    def test_defrag_keeps_colouring_proper_under_churn(self):
        graph = random_dag(14, 0.3, seed=7)
        paths = list(random_walk_family(graph, 40, seed=7))
        conflict, assigner = _engine(wavelengths=6)
        import random as _random
        rng = _random.Random(7)
        active = []
        for step, dipath in enumerate(paths):
            idx = conflict.add_dipath(dipath)
            if assigner.assign(conflict, idx) is None:
                conflict.remove_dipath(idx)
            else:
                active.append(idx)
            if active and rng.random() < 0.4:
                victim = active.pop(rng.randrange(len(active)))
                assigner.release(victim)
                conflict.remove_dipath(victim)
            if step % 10 == 9:
                DefragPass(conflict, assigner).run()
        DefragPass(conflict, assigner).run()
        family = conflict.family
        slots = family.active_indices()
        rebuilt = build_conflict_graph(
            DipathFamily([family[i] for i in slots]))
        remap = {slot: pos for pos, slot in enumerate(slots)}
        dense = {remap[s]: c for s, c in assigner.coloring.items()}
        assert set(dense) == set(range(len(slots)))
        assert is_proper_coloring(rebuilt.adjacency(), dense)


class TestEngineDefragWiring:
    def _scenario(self):
        graph = random_dag(16, 0.3, seed=9)
        pool = uniform_random_traffic(graph, 30, seed=9)
        trace = poisson_trace(pool, 150, arrival_rate=8.0, mean_holding=3.0,
                              seed=9)
        return graph, trace

    def test_engine_defrag_keeps_vertex_map_coherent(self):
        graph, trace = self._scenario()
        engine = OnlineEngine(graph, 4, routing="k_shortest")
        for event in trace[:100]:
            if event.kind == ARRIVAL:
                engine.admit(event.request_id, request=event.request,
                             dipath=event.dipath)
            else:
                engine.depart(event.request_id)
        report = engine.defrag()
        assert engine.defrag_passes == 1
        assert engine.defrag_moves == report.moves_committed
        assert sorted(engine.vertex_of.values()) == \
            engine.family.active_indices()
        # every provisioned lightpath still holds a colour
        assert set(engine.vertex_of.values()) == set(engine.assigner.coloring)

    def test_defrag_every_trigger_counts_passes(self):
        graph, trace = self._scenario()
        result = simulate_online(graph, trace, 4, record_timeline=False,
                                 defrag_every=50)
        assert result.defrag_passes == len(trace) // 50
        assert result.defrag_moves >= 0

    def test_defrag_on_block_never_blocks_more(self):
        graph, trace = self._scenario()
        base = simulate_online(graph, trace, 3, routing="k_shortest",
                               record_timeline=False)
        helped = simulate_online(graph, trace, 3, routing="k_shortest",
                                 record_timeline=False, defrag_on_block=True)
        assert helped.blocking_rate <= base.blocking_rate
        assert helped.defrag_passes >= 1

    def test_utilisation_trigger_fires_on_crossing(self):
        graph, trace = self._scenario()
        result = simulate_online(graph, trace, 4, record_timeline=False,
                                 defrag_utilization=0.5)
        assert result.defrag_passes >= 1
        with pytest.raises(ValueError):
            simulate_online(graph, trace, 4, defrag_utilization=1.5)

    def test_defrag_off_by_default(self):
        graph, trace = self._scenario()
        result = simulate_online(graph, trace, 4, record_timeline=False)
        assert result.defrag_passes == 0
        assert result.defrag_moves == 0
        assert result.wavelengths_reclaimed == 0

    def test_trigger_arguments_validated_up_front(self):
        graph, trace = self._scenario()
        with pytest.raises(ValueError):
            simulate_online(graph, trace, 4, defrag_every=0)
        with pytest.raises(ValueError):
            simulate_online(graph, trace, 4, defrag_every=-5)
        with pytest.raises(ValueError):
            simulate_online(graph, trace, 4, batch_policy="all-or-nothing")

    def test_batched_timeline_samples_are_independent_dicts(self):
        graph = random_dag(3, 1.0, seed=0)
        arc = next(iter(graph.arcs()))
        dipath = Dipath([arc[0], arc[1]])
        events = [Event(0.0, ARRIVAL, 0, dipath=dipath),
                  Event(0.0, ARRIVAL, 1, dipath=dipath)]
        result = simulate_online(graph, events, 2, batch_policy="greedy")
        assert len(result.timeline) == 2
        result.timeline[0]["blocked_total"] = 99.0
        assert result.timeline[1]["blocked_total"] != 99.0

    def test_defrag_on_block_also_helps_batched_bursts(self):
        graph, trace = self._scenario()
        base = simulate_online(graph, trace, 3, routing="k_shortest",
                               record_timeline=False, batch_policy="greedy")
        helped = simulate_online(graph, trace, 3, routing="k_shortest",
                                 record_timeline=False, batch_policy="greedy",
                                 defrag_on_block=True)
        assert helped.blocking_rate <= base.blocking_rate
