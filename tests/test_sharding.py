"""Unit coverage for the component-sharded engine.

Covers the shard tracker (merge on arrival, lazy split-check on
departure, rebuild fallback, counters), the compact shard views, the
lazy-adjacency :class:`~repro.conflict.ShardedConflictGraph`, the
per-fibre :class:`~repro.online.ArcColorIndex`, the shard-scoped and
shard-parallel engine paths, the multi-region generators and the
topology-versioned route caches.
"""

from __future__ import annotations

import random
from dataclasses import asdict

import pytest

from repro.conflict import (
    DynamicConflictGraph,
    ShardedConflictGraph,
    build_conflict_graph,
)
from repro.dipaths.family import DipathFamily
from repro.dipaths.requests import Request
from repro.generators.families import random_walk_family
from repro.generators.random_dags import random_dag
from repro.generators.regions import (
    multi_region_topology,
    multi_region_traffic,
    region_of_vertex,
)
from repro.graphs.digraph import DiGraph
from repro.online import (
    ArcColorIndex,
    OnlineEngine,
    OnlineWavelengthAssigner,
    WhatIfTransaction,
    churn_trace,
)
from repro.online.routing import KShortestRouter, StaticRouter
from repro.online.sharding import PARALLEL_SAFE_POLICY


def _both_classes():
    return (DynamicConflictGraph, ShardedConflictGraph)


# ---------------------------------------------------------------------- #
# component tracking
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("cls", _both_classes())
def test_disjoint_dipaths_form_separate_shards(cls):
    g = cls(DipathFamily())
    g.add_dipath(["a", "b", "c"])
    g.add_dipath(["b", "c", "d"])
    g.add_dipath(["x", "y", "z"])
    assert g.shard_map() == {0: [0, 1], 2: [2]}
    assert g.component_merges == 0


@pytest.mark.parametrize("cls", _both_classes())
def test_bridging_arrival_merges_shards(cls):
    g = cls(DipathFamily())
    g.add_dipath(["a", "b", "c"])
    g.add_dipath(["x", "y", "z"])
    bridge = g.add_dipath(["b", "c", "x", "y"])
    assert g.component_merges == 1
    assert g.shard_map() == {0: [0, 1, 2]}
    assert g.shard_of_member(bridge) is g.shard_of_member(0)


@pytest.mark.parametrize("cls", _both_classes())
def test_departure_splits_lazily_with_rebuild(cls):
    g = cls(DipathFamily())
    g.add_dipath(["a", "b", "c"])
    g.add_dipath(["x", "y", "z"])
    bridge = g.add_dipath(["b", "c", "x", "y"])
    g.remove_dipath(bridge)
    # before the refresh the shard conservatively overapproximates
    assert g.shard_map(refresh=False) == {0: [0, 1]}
    assert g.component_splits == 0
    assert g.shard_map() == {0: [0], 1: [1]}
    assert g.component_splits == 1
    assert g.shard_rebuilds == 1


@pytest.mark.parametrize("cls", _both_classes())
def test_speculative_rollback_does_not_trigger_rebuilds(cls):
    g = cls(DipathFamily())
    g.add_dipath(["a", "b", "c"])
    g.shard_map()
    rebuilds = g.shard_rebuilds
    for _ in range(5):
        with WhatIfTransaction(g) as tx:
            tx.add_dipath(["b", "c", "d"])
        # rollback removed the member it added: the join-undo heuristic
        # must keep the shard clean, so no rebuild is pending
    g.shard_map()
    assert g.shard_rebuilds == rebuilds


def test_empty_shard_is_released():
    g = ShardedConflictGraph(DipathFamily())
    idx = g.add_dipath(["a", "b"])
    g.remove_dipath(idx)
    assert g.shard_map() == {}
    other = g.add_dipath(["a", "b"])
    assert g.shard_map() == {other: [other]}


@pytest.mark.parametrize("cls", _both_classes())
def test_dead_fibre_ownership_is_dropped_on_clean_removal(cls):
    # Y=[2,3]; X=[1,2,3] joins Y's shard without merging; X's clean
    # removal (undoes the join, shard never dirty) must drop ownership
    # of the now-unused fibre (1,2) — otherwise Z=[1,2], which conflicts
    # with nobody, would be welded into Y's shard with no split-check
    # ever scheduled to undo it.
    g = cls(DipathFamily())
    y = g.add_dipath([2, 3])
    x = g.add_dipath([1, 2, 3])
    g.remove_dipath(x)
    z = g.add_dipath([1, 2])
    assert g.neighbor_mask(z) == 0
    assert g.shard_of_member(z) is not g.shard_of_member(y)
    assert g.shard_map() == {y: [y], z: [z]}


def test_stale_join_stamp_cannot_suppress_a_real_split():
    # A member's join stamp must be tied to the shard *object* it joined:
    # after a rebuild relocates the member to a fresh shard, a bare
    # version number could collide with the new shard's version and
    # wrongly skip the dirty flag when the member (now a cut vertex)
    # departs.
    g = ShardedConflictGraph(DipathFamily())
    a = g.add_dipath(["a", "b", "c"])          # 0
    b = g.add_dipath(["b", "c", "d"])          # 1
    bridge = g.add_dipath(["x", "y", "a", "b"])  # joins the shard
    g.remove_dipath(a)
    g.shard_map()                              # rebuild relocates members
    # grow the surviving shard so its version climbs past the old stamp
    mid = g.add_dipath(["c", "d", "e"])
    g.add_dipath(["d", "e", "f"])
    g.add_dipath(["y", "a"])
    # now remove a cut vertex whose stamp predates the rebuild
    g.remove_dipath(b)
    assert sorted(len(m) for m in g.shard_map().values()) == \
        sorted(len(c) for c in g.connected_components())


def test_batch_workers_falls_back_inside_open_transaction():
    engine = _three_region_engine(events=40)
    from repro.online.events import ARRIVAL, Event
    from repro.online.transaction import WhatIfTransaction

    path = engine.family[engine.family.active_indices()[0]]
    events = [Event(0.0, ARRIVAL, 9000, dipath=path),
              Event(0.0, ARRIVAL, 9001, dipath=path)]
    with WhatIfTransaction(engine.conflict, engine.assigner):
        # the sharded fast path must defer to the (correctly nesting)
        # serial path while a transaction is open: leaving the block
        # rolls everything back without stranding coloured members
        before = len(engine.family)
        engine.admit_batch(events, policy="greedy", workers=2)
    assert len(engine.family) == before
    for idx in engine.family.active_indices():
        engine.assigner.color_of(idx)          # everyone still coloured


def test_arc_ownership_survives_departure():
    # a new arrival on a fibre whose only user departed must land in the
    # departed user's shard while the split-check is still pending
    g = ShardedConflictGraph(DipathFamily())
    g.add_dipath(["a", "b", "c"])
    middle = g.add_dipath(["b", "c", "d"])
    g.add_dipath(["c", "d", "e"])
    g.remove_dipath(middle)
    again = g.add_dipath(["b", "c", "d"])
    assert g.shard_of_member(again) is g.shard_of_member(0)
    assert g.shard_map() == {0: [0, 1, 2]}


# ---------------------------------------------------------------------- #
# shard views
# ---------------------------------------------------------------------- #
def test_shard_view_compact_remap_and_masks():
    g = ShardedConflictGraph(DipathFamily())
    g.add_dipath(["p", "q"])                   # index 0: a separate shard
    a = g.add_dipath(["a", "b", "c"])          # 1
    b = g.add_dipath(["b", "c", "d"])          # 2
    c = g.add_dipath(["c", "d", "e"])          # 3
    view = g.shard_view(g.shard_of_member(a))
    assert view.size == 3
    assert view.globals() == [a, b, c]
    assert view.to_local(b) == 1 and view.to_global(1) == b
    # masks are shard-width: 1 conflicts 2, 2 conflicts 1 and 3
    assert view.neighbor_mask(0) == 0b010
    assert view.neighbor_mask(1) == 0b101
    assert view.degree(1) == 2
    local = view.as_conflict_graph()
    assert local.num_edges == 2
    assert local.vertices() == [0, 1, 2]


def test_shard_view_invalidated_on_structural_change():
    g = ShardedConflictGraph(DipathFamily())
    a = g.add_dipath(["a", "b", "c"])
    view = g.shard_view(g.shard_of_member(a))
    assert view.is_current()
    g.add_dipath(["b", "c", "d"])              # member added to the shard
    assert not view.is_current()
    fresh = g.shard_view(g.shard_of_member(a))
    assert fresh.is_current()
    g.add_dipath(["x", "y"])                   # a different shard
    assert fresh.is_current()


# ---------------------------------------------------------------------- #
# lazy adjacency equivalence
# ---------------------------------------------------------------------- #
def test_sharded_graph_matches_dynamic_graph_under_churn():
    graph = random_dag(18, 0.25, seed=3)
    pool = list(random_walk_family(graph, 60, seed=4))
    dyn = DynamicConflictGraph(DipathFamily())
    lazy = ShardedConflictGraph(DipathFamily())
    rng = random.Random(9)
    active = []
    for step in range(120):
        if active and rng.random() < 0.4:
            idx = active.pop(rng.randrange(len(active)))
            dyn.remove_dipath(idx)
            lazy.remove_dipath(idx)
        else:
            path = pool[step % len(pool)]
            idx = dyn.add_dipath(path)
            assert lazy.add_dipath(path) == idx
            active.append(idx)
        for v in lazy.family.active_indices():
            assert lazy.neighbor_mask(v) == dyn.neighbor_mask(v)
            assert lazy.degree(v) == dyn.degree(v)
    # inherited mask algorithms run through the lazy mapping
    assert lazy.num_edges == dyn.num_edges
    assert lazy.connected_components() == dyn.connected_components()
    assert sorted(lazy.vertices()) == sorted(dyn.vertices())
    rebuilt = build_conflict_graph(lazy.family)
    assert frozenset(rebuilt.edges()) == frozenset(dyn.edges())


# ---------------------------------------------------------------------- #
# the per-fibre colour index
# ---------------------------------------------------------------------- #
def _forbidden_by_neighbors(conflict, assigner, vertex):
    forbidden = 0
    for j, color in assigner.coloring.items():
        if conflict.neighbor_mask(vertex) >> j & 1:
            forbidden |= 1 << color
    return forbidden


def test_arc_color_index_matches_neighbor_union_under_churn():
    graph = random_dag(16, 0.3, seed=5)
    pool = list(random_walk_family(graph, 50, seed=6))
    conflict = ShardedConflictGraph(DipathFamily())
    index = ArcColorIndex(conflict.family)
    assigner = OnlineWavelengthAssigner(4, policy="first_fit")
    assigner.attach_color_index(index)
    rng = random.Random(11)
    active = []
    for step in range(150):
        if active and rng.random() < 0.45:
            idx = active.pop(rng.randrange(len(active)))
            assigner.release(idx)
            conflict.remove_dipath(idx)
        else:
            idx = conflict.add_dipath(pool[step % len(pool)])
            expected = _forbidden_by_neighbors(conflict, assigner, idx)
            assert index.forbidden_mask(idx) == expected
            if assigner.assign(conflict, idx) is None:
                conflict.remove_dipath(idx)
            else:
                active.append(idx)


def test_arc_color_index_rolls_back_with_the_assigner():
    conflict = ShardedConflictGraph(DipathFamily())
    index = ArcColorIndex(conflict.family)
    assigner = OnlineWavelengthAssigner(3, policy="first_fit")
    assigner.attach_color_index(index)
    a = conflict.add_dipath(["a", "b", "c"])
    assigner.assign(conflict, a)
    snapshot = [index.colors_on_arc_id(aid)
                for aid in range(len(conflict.family._arcs))]
    with WhatIfTransaction(conflict, assigner) as tx:
        idx, color = tx.admit(["b", "c", "d"])
        assert color == 1
        aid = conflict.family.arc_id(("b", "c"))
        assert index.colors_on_arc_id(aid) == 0b11
    assert [index.colors_on_arc_id(aid)
            for aid in range(len(snapshot))] == snapshot
    # only a's own colour remains on its fibres after the rollback
    assert index.forbidden_mask(a) == 1 << assigner.color_of(a)


def test_attach_color_index_rejects_warm_assigner():
    conflict = ShardedConflictGraph(DipathFamily())
    assigner = OnlineWavelengthAssigner(2)
    idx = conflict.add_dipath(["a", "b"])
    assigner.assign(conflict, idx)
    with pytest.raises(RuntimeError):
        assigner.attach_color_index(ArcColorIndex(conflict.family))


def test_adopt_replays_fresh_and_recolour():
    conflict = ShardedConflictGraph(DipathFamily())
    assigner = OnlineWavelengthAssigner(4)
    idx = conflict.add_dipath(["a", "b"])
    assigner.adopt(idx, 2)
    assert assigner.color_of(idx) == 2
    assert assigner.colors_in_use() == 1
    assigner.adopt(idx, 3)                    # recolour
    assert assigner.color_of(idx) == 3
    assert assigner.usage()[2] == 0 and assigner.usage()[3] == 1
    with pytest.raises(ValueError):
        assigner.adopt(idx, 4)


# ---------------------------------------------------------------------- #
# engine-level sharding
# ---------------------------------------------------------------------- #
def _three_region_engine(wavelengths=8, events=160, **kwargs):
    graph = multi_region_topology(regions=3, region_size=14, coupling=1,
                                  seed=8)
    pool = random_walk_family(graph, 300, seed=9, min_length=2)
    trace = churn_trace(pool, 90, events, seed=10)
    engine = OnlineEngine(graph, wavelengths, sharded=True, **kwargs)
    for event in trace:
        if event.kind == "arrival":
            engine.admit(event.request_id, dipath=event.dipath)
        else:
            engine.depart(event.request_id)
    return engine


def test_engine_shard_map_partitions_active_members():
    engine = _three_region_engine()
    shard_map = engine.shard_map()
    members = sorted(i for shard in shard_map.values() for i in shard)
    assert members == engine.family.active_indices()
    assert len(shard_map) >= 3          # at least one shard per region


def test_defrag_restricted_to_one_shard_leaves_others_untouched():
    engine = _three_region_engine()
    shard_map = engine.shard_map()
    anchor = max(shard_map, key=lambda a: len(shard_map[a]))
    others = {i: engine.assigner.color_of(i)
              for a, shard in shard_map.items() if a != anchor
              for i in shard}
    routes = {i: engine.family[i]
              for a, shard in shard_map.items() if a != anchor
              for i in shard}
    engine.defrag(shard=anchor)
    for i, color in others.items():
        assert engine.assigner.color_of(i) == color
        assert engine.family[i] == routes[i]
    with pytest.raises(ValueError):
        engine.defrag(shard=-5)


def _engine_state(engine):
    return (dict(engine.assigner.coloring),
            {i: tuple(engine.family[i].vertices)
             for i in engine.family.active_indices()},
            engine.assigner.usage(),
            engine.assigner.kempe_repairs,
            engine.defrag_moves)


def test_defrag_sharded_serial_equals_parallel():
    serial = _three_region_engine()
    parallel = _three_region_engine()
    r1 = serial.defrag_sharded(workers=1)
    r2 = parallel.defrag_sharded(workers=2)
    assert _engine_state(serial) == _engine_state(parallel)
    assert len(r1.moves) == len(r2.moves)
    assert [asdict_move(m) for m in r1.moves] == \
        [asdict_move(m) for m in r2.moves]


def asdict_move(move):
    return (move.index, move.old_color, move.new_color,
            tuple(move.old_route.vertices), tuple(move.new_route.vertices))


def test_defrag_sharded_max_moves_bounds_the_whole_pass():
    unbounded = _three_region_engine()
    total = len(unbounded.defrag_sharded(workers=1).moves)
    if total < 2:
        pytest.skip("scenario produced too few moves to bound")
    budget = total - 1
    for workers in (1, 2):
        engine = _three_region_engine()
        report = engine.defrag_sharded(max_moves=budget, workers=workers)
        assert len(report.moves) == budget
        assert report.budget_exhausted


def test_defrag_sharded_requires_first_fit():
    graph = multi_region_topology(regions=2, region_size=10, coupling=1,
                                  seed=2)
    engine = OnlineEngine(graph, 4, policy="least_used", sharded=True)
    with pytest.raises(ValueError):
        engine.defrag_sharded()
    assert PARALLEL_SAFE_POLICY == "first_fit"


def test_admit_batch_workers_matches_serial_batch():
    graph = multi_region_topology(regions=3, region_size=14, coupling=1,
                                  seed=8)
    pool = random_walk_family(graph, 60, seed=12, min_length=2)
    dipaths = list(pool)[:12]
    for policy in ("all_or_nothing", "best_prefix", "greedy"):
        results = []
        for workers in (None, 1, 2):
            engine = OnlineEngine(graph, 3, sharded=True)
            from repro.online.events import ARRIVAL, Event
            events = [Event(0.0, ARRIVAL, rid, dipath=d)
                      for rid, d in enumerate(dipaths)]
            reasons = engine.admit_batch(events, policy=policy,
                                         workers=workers)
            results.append((reasons, dict(engine.assigner.coloring),
                            sorted(engine.vertex_of.items())))
        assert results[0] == results[1] == results[2], policy


# ---------------------------------------------------------------------- #
# multi-region generators
# ---------------------------------------------------------------------- #
def test_multi_region_topology_structure():
    graph = multi_region_topology(regions=3, region_size=12, coupling=2,
                                  seed=1)
    regions = {region_of_vertex(v) for v in graph.vertices()}
    assert regions == {0, 1, 2}
    cross = [(u, v) for u, v in graph.arcs()
             if region_of_vertex(u) != region_of_vertex(v)]
    assert len(cross) == 4                    # coupling per consecutive pair
    assert all(region_of_vertex(v) == region_of_vertex(u) + 1
               for u, v in cross)
    from repro.graphs.traversal import topological_order
    topological_order(graph)                  # raises if the union cycles


def test_multi_region_traffic_fraction_and_fallback():
    graph = multi_region_topology(regions=3, region_size=12, coupling=2,
                                  seed=1)
    requests = multi_region_traffic(graph, 300, inter_fraction=0.3, seed=2)
    pairs = requests.pairs()
    inter = sum(1 for a, b in pairs
                if region_of_vertex(a) != region_of_vertex(b))
    assert len(pairs) == 300
    assert 0 < inter < 150                    # some, but a minority
    isolated = multi_region_topology(regions=2, region_size=10, coupling=0,
                                     seed=3)
    only_intra = multi_region_traffic(isolated, 50, inter_fraction=0.9,
                                      seed=3)
    assert all(region_of_vertex(a) == region_of_vertex(b)
               for a, b in only_intra.pairs())
    with pytest.raises(ValueError):
        multi_region_traffic(graph, 10, inter_fraction=1.5)


# ---------------------------------------------------------------------- #
# route-cache invalidation (topology version)
# ---------------------------------------------------------------------- #
def test_digraph_version_bumps_on_arc_changes_only():
    g = DiGraph()
    v0 = g.version
    g.add_vertex("a")
    assert g.version == v0                    # vertices cannot create routes
    g.add_arc("a", "b")
    assert g.version == v0 + 1
    g.add_arc("a", "b")                       # duplicate: no-op
    assert g.version == v0 + 1
    g.remove_arc("a", "b")
    assert g.version == v0 + 2
    assert g.copy().version == g.version


def test_static_router_cache_invalidated_on_topology_change():
    g = DiGraph(arcs=[("a", "b"), ("b", "c")])
    router = StaticRouter(g, "shortest")
    request = Request("a", "c")
    assert list(router.route(request).vertices) == ["a", "b", "c"]
    g.add_arc("a", "c")                       # a shortcut appears
    assert list(router.route(request).vertices) == ["a", "c"]
    g.remove_arc("a", "c")
    assert list(router.route(request).vertices) == ["a", "b", "c"]


def test_k_shortest_router_cache_invalidated_on_topology_change():
    g = DiGraph(arcs=[("a", "b"), ("b", "c")])
    family = DipathFamily()
    router = KShortestRouter(g, family, k=3)
    assert len(router.candidates(Request("a", "c"))) == 1
    g.add_arc("a", "c")
    cands = router.candidates(Request("a", "c"))
    assert [list(d.vertices) for d in cands] == [["a", "c"], ["a", "b", "c"]]
