"""Tests for the wavelength-assignment front-end (:mod:`repro.core.wavelengths`)."""

import pytest

from repro.coloring.verify import is_proper_coloring
from repro.conflict.conflict_graph import build_conflict_graph
from repro.core.load import load, load_of_arc, load_per_arc, maximum_load_arcs
from repro.core.wavelengths import (
    WavelengthSolution,
    assign_wavelengths,
    wavelength_lower_bounds,
    wavelength_number,
)
from repro.dipaths.family import DipathFamily
from repro.exceptions import InternalCycleError, InvalidDipathError
from repro.generators.gadgets import figure3_instance, havet_instance
from repro.generators.pathological import pathological_instance


class TestLoadWrappers:
    def test_load(self, simple_dag, simple_family):
        assert load(simple_dag, simple_family) == 3
        assert load(None, simple_family) == 3
        assert load(simple_dag, simple_family, validate=True) == 3

    def test_load_validation_failure(self, simple_dag):
        family = DipathFamily([["x", "y"]])
        with pytest.raises(InvalidDipathError):
            load(simple_dag, family, validate=True)

    def test_load_helpers(self, simple_family):
        assert load_of_arc(simple_family, ("c", "d")) == 3
        assert load_per_arc(simple_family)[("b", "c")] == 2
        assert maximum_load_arcs(simple_family) == [("c", "d")]

    def test_empty_family(self, simple_dag):
        assert load(simple_dag, DipathFamily()) == 0


class TestAssignWavelengths:
    def test_methods_all_proper(self, simple_dag, simple_family):
        adjacency = build_conflict_graph(simple_family).adjacency()
        for method in ("auto", "theorem1", "exact", "dsatur", "greedy"):
            solution = assign_wavelengths(simple_dag, simple_family, method=method)
            assert isinstance(solution, WavelengthSolution)
            assert is_proper_coloring(adjacency, solution.coloring)
            assert solution.num_wavelengths >= solution.load == 3

    def test_theorem1_and_exact_are_optimal(self, simple_dag, simple_family):
        t1 = assign_wavelengths(simple_dag, simple_family, method="theorem1")
        ex = assign_wavelengths(simple_dag, simple_family, method="exact")
        assert t1.num_wavelengths == ex.num_wavelengths == 3
        assert t1.optimal and ex.optimal

    def test_unknown_method(self, simple_dag, simple_family):
        with pytest.raises(ValueError):
            assign_wavelengths(simple_dag, simple_family, method="bogus")  # type: ignore[arg-type]

    def test_theorem1_rejected_on_internal_cycle(self):
        dag, family = figure3_instance()
        with pytest.raises(InternalCycleError):
            assign_wavelengths(dag, family, method="theorem1")

    def test_auto_on_figure3_is_exact(self):
        dag, family = figure3_instance()
        solution = assign_wavelengths(dag, family, method="auto")
        assert solution.num_wavelengths == 3
        assert solution.method == "exact"

    def test_auto_on_internal_cycle_free_uses_theorem1(self, simple_dag,
                                                       simple_family):
        solution = assign_wavelengths(simple_dag, simple_family, method="auto")
        assert solution.method == "theorem1"
        assert solution.num_wavelengths == 3

    def test_auto_on_havet_uses_theorem6(self):
        dag, family = havet_instance(2)
        solution = assign_wavelengths(dag, family, method="auto")
        assert solution.method == "theorem6"
        assert solution.num_wavelengths == 6

    def test_empty_family_solution(self, simple_dag):
        solution = assign_wavelengths(simple_dag, DipathFamily())
        assert solution.num_wavelengths == 0
        assert solution.coloring == {}
        assert solution.optimal

    def test_wavelength_of_accessor(self, simple_dag, simple_family):
        solution = assign_wavelengths(simple_dag, simple_family)
        assert solution.wavelength_of(0) == solution.coloring[0]


class TestWavelengthNumber:
    def test_figure1_values(self):
        for k in (2, 3, 5):
            dag, family = pathological_instance(k)
            assert load(dag, family) == 2
            assert wavelength_number(dag, family, method="exact") == k

    def test_equality_on_internal_cycle_free(self, simple_dag, simple_family):
        assert wavelength_number(simple_dag, simple_family) == 3

    def test_heuristics_upper_bound_exact(self, simple_dag, simple_family):
        exact = wavelength_number(simple_dag, simple_family, method="exact")
        for method in ("dsatur", "greedy"):
            assert wavelength_number(simple_dag, simple_family, method=method) >= exact


class TestLowerBounds:
    def test_bounds_on_figure3(self):
        dag, family = figure3_instance()
        bounds = wavelength_lower_bounds(dag, family)
        assert bounds["load"] == 2
        assert bounds["clique"] == 2

    def test_clique_can_exceed_load(self):
        dag, family = pathological_instance(4)
        bounds = wavelength_lower_bounds(dag, family)
        assert bounds["load"] == 2
        assert bounds["clique"] == 4
