"""Tests for the Theorem 1 constructive algorithm (w = pi without internal cycles)."""

import pytest

from repro.coloring.verify import is_proper_coloring, num_colors
from repro.conflict.conflict_graph import build_conflict_graph
from repro.core.theorem1 import (
    arc_elimination_order,
    color_dipaths_theorem1,
    theorem1_applies,
)
from repro.core.wavelengths import wavelength_number
from repro.dipaths.family import DipathFamily
from repro.exceptions import InternalCycleError, InvalidDipathError
from repro.generators.families import all_to_all_family, random_walk_family
from repro.generators.gadgets import figure3_instance
from repro.generators.pathological import pathological_instance
from repro.generators.random_dags import random_internal_cycle_free_dag
from repro.generators.trees import caterpillar, out_tree, random_out_tree, spider
from repro.graphs.dag import DAG


def assert_optimal_coloring(dag, family):
    """The Theorem 1 colouring must be proper and use exactly ``pi`` colours."""
    coloring = color_dipaths_theorem1(dag, family)
    conflict = build_conflict_graph(family)
    assert is_proper_coloring(conflict.adjacency(), coloring)
    assert num_colors(coloring) == family.load()
    return coloring


class TestEliminationOrder:
    def test_covers_all_arcs(self, simple_dag):
        order = arc_elimination_order(simple_dag)
        assert len(order) == simple_dag.num_arcs
        assert set(order) == set(simple_dag.arcs())

    def test_tail_is_source_at_removal_time(self, simple_dag):
        work = simple_dag.copy()
        for (x, y) in arc_elimination_order(simple_dag):
            assert work.in_degree(x) == 0
            work.remove_arc(x, y)

    def test_gadget_order_also_valid(self, gadget_dag):
        # the elimination order exists for any DAG, internal cycle or not
        order = arc_elimination_order(gadget_dag)
        assert len(order) == gadget_dag.num_arcs


class TestHypothesis:
    def test_applies(self, simple_dag, gadget_dag):
        assert theorem1_applies(simple_dag)
        assert not theorem1_applies(gadget_dag)

    def test_internal_cycle_rejected_with_certificate(self, figure3):
        dag, family = figure3
        with pytest.raises(InternalCycleError) as excinfo:
            color_dipaths_theorem1(dag, family)
        assert excinfo.value.cycle is not None

    def test_invalid_family_rejected(self, simple_dag):
        family = DipathFamily([["x", "y"]])
        with pytest.raises(InvalidDipathError):
            color_dipaths_theorem1(simple_dag, family)

    def test_empty_family(self, simple_dag):
        assert color_dipaths_theorem1(simple_dag, DipathFamily()) == {}


class TestSmallInstances:
    def test_simple_family(self, simple_dag, simple_family):
        assert_optimal_coloring(simple_dag, simple_family)

    def test_single_dipath(self, simple_dag):
        family = DipathFamily([["a", "b", "c", "d"]], graph=simple_dag)
        coloring = assert_optimal_coloring(simple_dag, family)
        assert coloring == {0: 0}

    def test_identical_dipaths(self, simple_dag):
        family = DipathFamily([["a", "b", "c"]] * 4, graph=simple_dag)
        coloring = assert_optimal_coloring(simple_dag, family)
        assert sorted(coloring.values()) == [0, 1, 2, 3]

    def test_disjoint_dipaths_one_color(self, simple_dag):
        family = DipathFamily([["a", "b"], ["c", "d"], ["f", "c"]],
                              graph=simple_dag)
        coloring = assert_optimal_coloring(simple_dag, family)
        assert num_colors(coloring) == 1

    def test_on_path_graph(self):
        # overlapping intervals on a directed path: the classical interval case
        dag = DAG(arcs=[(i, i + 1) for i in range(6)])
        family = DipathFamily([[0, 1, 2, 3], [2, 3, 4], [3, 4, 5], [1, 2, 3, 4, 5],
                               [0, 1], [4, 5]], graph=dag)
        assert_optimal_coloring(dag, family)

    def test_on_out_tree_multicast(self):
        tree = out_tree(3, 2)
        family = all_to_all_family(tree)
        assert_optimal_coloring(tree, family)

    def test_on_spider_and_caterpillar(self):
        for dag in (spider(4, 3), caterpillar(5, 2)):
            family = random_walk_family(dag, 25, seed=7)
            assert_optimal_coloring(dag, family)


class TestRandomInstances:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_internal_cycle_free(self, seed):
        dag = random_internal_cycle_free_dag(30, 45, seed=seed)
        family = random_walk_family(dag, 40, seed=seed)
        coloring = assert_optimal_coloring(dag, family)
        # independently verify optimality with the exact solver
        if len(family) <= 60:
            assert num_colors(coloring) == wavelength_number(dag, family,
                                                             method="exact")

    @pytest.mark.parametrize("seed", range(4))
    def test_random_trees(self, seed):
        tree = random_out_tree(40, seed=seed)
        family = random_walk_family(tree, 50, seed=seed)
        assert_optimal_coloring(tree, family)

    def test_larger_instance_runs(self):
        dag = random_internal_cycle_free_dag(120, 180, seed=3)
        family = random_walk_family(dag, 250, seed=3)
        coloring = color_dipaths_theorem1(dag, family)
        assert num_colors(coloring) == family.load()


class TestCheckHypothesisFlag:
    def test_skip_check_still_fails_on_figure1(self):
        # Figure 1 DAGs have internal cycles; without the upfront check the
        # algorithm may or may not hit Case C depending on the order, but the
        # result must never silently be wrong: either it raises or it returns
        # a proper colouring.
        dag, family = pathological_instance(4)
        try:
            coloring = color_dipaths_theorem1(dag, family,
                                              check_hypothesis=False)
        except InternalCycleError:
            return
        conflict = build_conflict_graph(family)
        assert is_proper_coloring(conflict.adjacency(), coloring)
