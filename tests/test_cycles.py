"""Unit tests for :mod:`repro.cycles` (oriented and internal cycles)."""

import pytest

from repro.cycles.internal import (
    enumerate_internal_cycles,
    find_internal_cycle,
    has_internal_cycle,
    has_unique_internal_cycle,
    internal_cyclomatic_number,
    internal_vertex_set,
    is_internal_cycle,
)
from repro.cycles.oriented import (
    canonical_cycle,
    cycle_orientation_profile,
    cycle_switch_vertices,
    decompose_cycle_into_dipaths,
    enumerate_simple_cycles,
    fundamental_cycles,
    is_oriented_cycle,
)
from repro.exceptions import GraphError
from repro.generators.gadgets import figure3_dag, havet_dag, theorem2_gadget
from repro.generators.trees import out_tree
from repro.graphs.dag import DAG


@pytest.fixture
def diamond() -> DAG:
    """A diamond: s -> x -> t, s -> y -> t (an oriented, non-internal cycle)."""
    return DAG(arcs=[("s", "x"), ("s", "y"), ("x", "t"), ("y", "t")])


class TestOrientedCycles:
    def test_is_oriented_cycle_diamond(self, diamond):
        assert is_oriented_cycle(diamond, ["s", "x", "t", "y"])
        assert is_oriented_cycle(diamond, ["s", "x", "t", "y", "s"])  # closed form

    def test_not_a_cycle(self, diamond):
        assert not is_oriented_cycle(diamond, ["s", "x", "t"])        # open path
        assert not is_oriented_cycle(diamond, ["s", "x"])             # too short
        assert not is_oriented_cycle(diamond, ["s", "x", "x", "y"])   # repeated

    def test_orientation_profile(self, diamond):
        profile = cycle_orientation_profile(diamond, ["s", "x", "t", "y"])
        assert profile == [1, 1, -1, -1]

    def test_orientation_profile_rejects_non_cycle(self, diamond):
        with pytest.raises(GraphError):
            cycle_orientation_profile(diamond, ["s", "x", "t"])

    def test_switch_vertices(self, diamond):
        local_sources, local_sinks = cycle_switch_vertices(
            diamond, ["s", "x", "t", "y"])
        assert set(local_sources) == {"s"}
        assert set(local_sinks) == {"t"}

    def test_decompose_into_dipaths(self, diamond):
        segments = decompose_cycle_into_dipaths(diamond, ["s", "x", "t", "y"])
        assert len(segments) == 2
        assert sorted(segments) == [["s", "x", "t"], ["s", "y", "t"]]
        for seg in segments:
            for u, v in zip(seg, seg[1:]):
                assert diamond.has_arc(u, v)

    def test_decompose_gadget_cycle(self):
        dag = theorem2_gadget(3)
        cycle = find_internal_cycle(dag)
        segments = decompose_cycle_into_dipaths(dag, cycle)
        assert len(segments) % 2 == 0
        # every segment is a genuine dipath
        for seg in segments:
            for u, v in zip(seg, seg[1:]):
                assert dag.has_arc(u, v)

    def test_canonical_cycle_invariant(self):
        a = canonical_cycle([1, 2, 3, 4])
        b = canonical_cycle([3, 4, 1, 2])
        c = canonical_cycle([4, 3, 2, 1])
        assert a == b == c

    def test_fundamental_cycles_count(self, diamond):
        cycles = fundamental_cycles(diamond)
        assert len(cycles) == 1
        assert len(cycles[0]) == 4

    def test_fundamental_cycles_tree_empty(self):
        assert fundamental_cycles(out_tree(2, 3)) == []

    def test_enumerate_simple_cycles(self, diamond):
        cycles = enumerate_simple_cycles(diamond)
        assert len(cycles) == 1

    def test_enumerate_simple_cycles_havet(self):
        # underlying graph of the b/c core is a 4-cycle; plus the attachments
        # create no further cycles.
        cycles = enumerate_simple_cycles(havet_dag())
        assert len(cycles) == 1
        assert len(cycles[0]) == 4


class TestInternalCycles:
    def test_diamond_cycle_is_not_internal(self, diamond):
        # s is a source and t a sink, so the oriented cycle is not internal.
        assert not has_internal_cycle(diamond)
        assert find_internal_cycle(diamond) is None
        assert not is_internal_cycle(diamond, ["s", "x", "t", "y"])

    def test_figure3_has_internal_cycle(self):
        dag = figure3_dag()
        assert has_internal_cycle(dag)
        cycle = find_internal_cycle(dag)
        assert cycle is not None
        assert is_internal_cycle(dag, cycle)
        assert set(cycle) == {"b", "c", "d", "m"}

    def test_gadget_unique_internal_cycle(self):
        dag = theorem2_gadget(4)
        assert has_internal_cycle(dag)
        assert has_unique_internal_cycle(dag)
        assert internal_cyclomatic_number(dag) == 1
        cycle = find_internal_cycle(dag)
        assert len(cycle) == 8  # 2k vertices for k = 4

    def test_havet_unique_internal_cycle(self):
        dag = havet_dag()
        assert internal_cyclomatic_number(dag) == 1
        assert set(find_internal_cycle(dag)) == {"b1", "b2", "c1", "c2"}

    def test_trees_have_no_internal_cycle(self):
        assert not has_internal_cycle(out_tree(3, 3))
        assert internal_cyclomatic_number(out_tree(3, 3)) == 0

    def test_internal_vertex_set(self):
        dag = figure3_dag()
        assert internal_vertex_set(dag) == {"b", "c", "d", "m"}

    def test_enumerate_internal_cycles(self):
        dag = theorem2_gadget(2)
        cycles = enumerate_internal_cycles(dag)
        assert len(cycles) == 1
        assert is_internal_cycle(dag, cycles[0])

    def test_diamond_with_attachments_becomes_internal(self, diamond):
        # Giving s a predecessor and t a successor turns the oriented cycle
        # into an internal one (this is exactly Figure 2a vs 2b).
        dag = DAG(arcs=list(diamond.arcs()) + [("pre", "s"), ("t", "post")])
        assert has_internal_cycle(dag)
        assert set(find_internal_cycle(dag)) == {"s", "x", "t", "y"}

    def test_growing_cyclomatic_number(self):
        # two disjoint planted gadgets -> two independent internal cycles
        dag = DAG(validate=False)
        for prefix in ("p", "q"):
            g = theorem2_gadget(2)
            for u, v in g.arcs():
                dag.add_arc((prefix, u), (prefix, v))
        assert internal_cyclomatic_number(dag) == 2
        assert not has_unique_internal_cycle(dag)
