"""Unit tests for :mod:`repro.dipaths.family`."""

import pytest

from repro.dipaths.dipath import Dipath
from repro.dipaths.family import DipathFamily
from repro.exceptions import InvalidDipathError
from repro.graphs.digraph import DiGraph


class TestConstruction:
    def test_empty_family(self):
        fam = DipathFamily()
        assert len(fam) == 0
        assert fam.load() == 0
        assert fam.arcs_used() == []

    def test_add_returns_index(self):
        fam = DipathFamily()
        assert fam.add(["a", "b"]) == 0
        assert fam.add(Dipath(["b", "c"])) == 1
        assert len(fam) == 2

    def test_graph_validation(self):
        g = DiGraph(arcs=[("a", "b")])
        fam = DipathFamily(graph=g)
        fam.add(["a", "b"])
        with pytest.raises(InvalidDipathError):
            fam.add(["b", "a"])
        with pytest.raises(InvalidDipathError):
            fam.add(Dipath(["x", "y"]))

    def test_validate_against(self, simple_dag, simple_family):
        simple_family.validate_against(simple_dag)
        other = DiGraph(arcs=[("a", "b")])
        with pytest.raises(InvalidDipathError):
            simple_family.validate_against(other)

    def test_iteration_and_indexing(self, simple_family):
        assert simple_family[0] == Dipath(["a", "b", "c", "d"])
        assert len(list(simple_family)) == 3
        assert simple_family.index_of(Dipath(["b", "c", "d"])) == 1


class TestLoad:
    def test_load_simple(self, simple_family):
        # all three dipaths end with the arc (c, d)
        assert simple_family.load() == 3
        assert simple_family.load_of_arc(("c", "d")) == 3
        assert simple_family.load_of_arc(("a", "b")) == 1
        assert simple_family.load_of_arc(("zz", "yy")) == 0

    def test_load_per_arc(self, simple_family):
        per_arc = simple_family.load_per_arc()
        assert per_arc[("a", "b")] == 1
        assert per_arc[("b", "c")] == 2
        assert per_arc[("c", "d")] == 3
        assert ("x", "y") not in per_arc

    def test_maximum_load_arcs(self, simple_family):
        assert simple_family.maximum_load_arcs() == [("c", "d")]

    def test_members_on_arc(self, simple_family):
        assert simple_family.members_on_arc(("b", "c")) == [0, 1]
        assert simple_family.members_on_arc(("zz", "yy")) == []

    def test_identical_dipaths_both_count(self):
        fam = DipathFamily([["a", "b"], ["a", "b"]])
        assert fam.load() == 2

    def test_replicate(self):
        fam = DipathFamily([["a", "b"], ["b", "c"]])
        rep = fam.replicate(3)
        assert len(rep) == 6
        assert rep.load() == 3
        with pytest.raises(ValueError):
            fam.replicate(0)


class TestConflicts:
    def test_conflicting_pairs(self, simple_family):
        pairs = set(simple_family.conflicting_pairs())
        assert pairs == {(0, 1), (0, 2), (1, 2)}

    def test_conflicts_of(self, simple_family):
        assert simple_family.conflicts_of(0) == [1, 2]

    def test_disjoint_paths_do_not_conflict(self):
        fam = DipathFamily([["a", "b"], ["c", "d"]])
        assert list(fam.conflicting_pairs()) == []


class TestDynamicFamily:
    """remove(), free-list recycling and incremental cache maintenance."""

    def test_remove_returns_dipath_and_updates_load(self, simple_family):
        removed = simple_family.remove(0)
        assert removed == Dipath(["a", "b", "c", "d"])
        assert len(simple_family) == 2
        assert simple_family.load() == 2
        assert simple_family.load_of_arc(("a", "b")) == 0
        assert simple_family.members_on_arc(("c", "d")) == [1, 2]

    def test_remove_invalid_index(self, simple_family):
        with pytest.raises(IndexError):
            simple_family.remove(7)
        simple_family.remove(1)
        with pytest.raises(IndexError):
            simple_family.remove(1)  # already freed

    def test_free_slot_is_recycled(self, simple_family):
        simple_family.remove(1)
        assert simple_family.active_indices() == [0, 2]
        assert not simple_family.is_active(1)
        idx = simple_family.add(["b", "e"])
        assert idx == 1
        assert simple_family.is_active(1)
        assert simple_family.num_slots == 3
        # fresh indices resume after the slots are exhausted
        assert simple_family.add(["a", "b"]) == 3

    def test_getitem_and_iteration_skip_freed_slots(self, simple_family):
        simple_family.remove(1)
        with pytest.raises(IndexError):
            simple_family[1]
        assert len(list(simple_family)) == 2
        assert len(simple_family.dipaths) == 2

    def test_arcs_used_shrinks_after_removal(self):
        fam = DipathFamily([["a", "b"], ["b", "c"]])
        fam.remove(0)
        assert fam.arcs_used() == [("b", "c")]
        assert fam.num_arcs_used == 1
        assert fam.load_per_arc() == {("b", "c"): 1}
        assert fam.maximum_load_arcs() == [("b", "c")]
        assert fam.union_digraph().num_arcs == 1

    def test_empty_after_removals(self):
        fam = DipathFamily([["a", "b"]])
        fam.remove(0)
        assert len(fam) == 0
        assert fam.load() == 0
        assert fam.maximum_load_arcs() == []

    def test_conflict_masks_patch_on_remove_and_readd(self, simple_family):
        assert set(simple_family.conflicting_pairs()) == {(0, 1), (0, 2), (1, 2)}
        simple_family.remove(1)
        assert set(simple_family.conflicting_pairs()) == {(0, 2)}
        assert simple_family.conflicts_of(0) == [2]
        idx = simple_family.add(["b", "c", "d"])
        assert idx == 1
        assert set(simple_family.conflicting_pairs()) == {(0, 1), (0, 2), (1, 2)}

    def test_add_remove_never_trigger_full_mask_rebuild(self):
        """Regression: PR 1 dropped the mask cache on every add."""
        fam = DipathFamily([["a", "b", "c"], ["b", "c", "d"]])
        fam.conflict_masks()
        assert fam.mask_rebuilds == 1
        for _ in range(5):
            idx = fam.add(["c", "d", "e"])
            fam.conflict_masks()
            fam.remove(idx)
            fam.conflict_masks()
        fam.add(["a", "b"])
        fam.conflict_masks()
        assert fam.mask_rebuilds == 1
        fam.invalidate_caches()
        fam.conflict_masks()
        assert fam.mask_rebuilds == 2

    def test_incremental_masks_match_fresh_family(self):
        import random

        rng = random.Random(5)
        fam = DipathFamily()
        fam.conflict_masks()            # warm the cache so mutations patch it
        pool = [["a", "b", "c"], ["b", "c", "d"], ["c", "d", "e"],
                ["a", "b"], ["d", "e"], ["b", "c"]]
        active = []
        for _ in range(120):
            if active and rng.random() < 0.45:
                victim = rng.choice(active)
                active.remove(victim)
                fam.remove(victim)
            else:
                active.append(fam.add(rng.choice(pool)))
        # compare against a from-scratch family over the active dipaths
        fresh = DipathFamily([fam[i] for i in sorted(fam.active_indices())])
        remap = {slot: pos for pos, slot in
                 enumerate(sorted(fam.active_indices()))}
        got = {(remap[i], remap[j])
               for i, j in fam.conflicting_pairs()
               if fam.is_active(i) and fam.is_active(j)}
        assert got == set(fresh.conflicting_pairs())
        assert fam.mask_rebuilds == 1
        assert fam.load() == fresh.load()


class TestTransformations:
    def test_restricted_to_arcs(self, simple_family):
        sub = simple_family.restricted_to_arcs([("a", "b")])
        assert len(sub) == 1

    def test_copy_independent(self, simple_family):
        copy = simple_family.copy()
        copy.add(["b", "e"])
        assert len(simple_family) == 3
        assert len(copy) == 4

    def test_union_digraph(self, simple_family):
        g = simple_family.union_digraph()
        assert g.has_arc("a", "b")
        assert g.has_arc("f", "c")
        assert g.num_arcs == 4  # (a,b), (b,c), (c,d), (f,c)
