"""Unit tests for :mod:`repro.dipaths.family`."""

import pytest

from repro.dipaths.dipath import Dipath
from repro.dipaths.family import DipathFamily
from repro.exceptions import InvalidDipathError
from repro.graphs.digraph import DiGraph


class TestConstruction:
    def test_empty_family(self):
        fam = DipathFamily()
        assert len(fam) == 0
        assert fam.load() == 0
        assert fam.arcs_used() == []

    def test_add_returns_index(self):
        fam = DipathFamily()
        assert fam.add(["a", "b"]) == 0
        assert fam.add(Dipath(["b", "c"])) == 1
        assert len(fam) == 2

    def test_graph_validation(self):
        g = DiGraph(arcs=[("a", "b")])
        fam = DipathFamily(graph=g)
        fam.add(["a", "b"])
        with pytest.raises(InvalidDipathError):
            fam.add(["b", "a"])
        with pytest.raises(InvalidDipathError):
            fam.add(Dipath(["x", "y"]))

    def test_validate_against(self, simple_dag, simple_family):
        simple_family.validate_against(simple_dag)
        other = DiGraph(arcs=[("a", "b")])
        with pytest.raises(InvalidDipathError):
            simple_family.validate_against(other)

    def test_iteration_and_indexing(self, simple_family):
        assert simple_family[0] == Dipath(["a", "b", "c", "d"])
        assert len(list(simple_family)) == 3
        assert simple_family.index_of(Dipath(["b", "c", "d"])) == 1


class TestLoad:
    def test_load_simple(self, simple_family):
        # all three dipaths end with the arc (c, d)
        assert simple_family.load() == 3
        assert simple_family.load_of_arc(("c", "d")) == 3
        assert simple_family.load_of_arc(("a", "b")) == 1
        assert simple_family.load_of_arc(("zz", "yy")) == 0

    def test_load_per_arc(self, simple_family):
        per_arc = simple_family.load_per_arc()
        assert per_arc[("a", "b")] == 1
        assert per_arc[("b", "c")] == 2
        assert per_arc[("c", "d")] == 3
        assert ("x", "y") not in per_arc

    def test_maximum_load_arcs(self, simple_family):
        assert simple_family.maximum_load_arcs() == [("c", "d")]

    def test_members_on_arc(self, simple_family):
        assert simple_family.members_on_arc(("b", "c")) == [0, 1]
        assert simple_family.members_on_arc(("zz", "yy")) == []

    def test_identical_dipaths_both_count(self):
        fam = DipathFamily([["a", "b"], ["a", "b"]])
        assert fam.load() == 2

    def test_replicate(self):
        fam = DipathFamily([["a", "b"], ["b", "c"]])
        rep = fam.replicate(3)
        assert len(rep) == 6
        assert rep.load() == 3
        with pytest.raises(ValueError):
            fam.replicate(0)


class TestConflicts:
    def test_conflicting_pairs(self, simple_family):
        pairs = set(simple_family.conflicting_pairs())
        assert pairs == {(0, 1), (0, 2), (1, 2)}

    def test_conflicts_of(self, simple_family):
        assert simple_family.conflicts_of(0) == [1, 2]

    def test_disjoint_paths_do_not_conflict(self):
        fam = DipathFamily([["a", "b"], ["c", "d"]])
        assert list(fam.conflicting_pairs()) == []


class TestTransformations:
    def test_restricted_to_arcs(self, simple_family):
        sub = simple_family.restricted_to_arcs([("a", "b")])
        assert len(sub) == 1

    def test_copy_independent(self, simple_family):
        copy = simple_family.copy()
        copy.add(["b", "e"])
        assert len(simple_family) == 3
        assert len(copy) == 4

    def test_union_digraph(self, simple_family):
        g = simple_family.union_digraph()
        assert g.has_arc("a", "b")
        assert g.has_arc("f", "c")
        assert g.num_arcs == 4  # (a,b), (b,c), (c,d), (f,c)
