"""The determinism & contract linter (src/repro/lint/, CONTRACTS.md).

Two halves, mirroring the tentpole's acceptance criteria:

* every rule fires on a fixture snippet and is silenced by its
  suppression mechanism (``# noqa: REPRO-<id>`` pragma, module
  allowlist, ``__all__``, baseline);
* the real package is clean — ``lint_package()`` reports nothing beyond
  the committed ``lint_baseline.json``, which stays within its
  ≤5-finding budget.
"""

from pathlib import Path

import pytest

from repro.lint import (
    ALL_RULES,
    check_source,
    lint_package,
    load_baseline,
    run_lint,
    write_baseline,
)
from repro.lint.cli import main as lint_main

pytestmark = pytest.mark.lint

REPO_ROOT = Path(__file__).resolve().parents[1]


def rules_of(findings):
    return [f.rule for f in findings]


# --------------------------------------------------------------------- #
# D1 — no wall clock
# --------------------------------------------------------------------- #
class TestNoWallClock:
    def test_fires_on_time_time_in_deterministic_module(self):
        findings = check_source(
            "import time\n\ndef f():\n    return time.time()\n",
            rel="online/foo.py")
        assert rules_of(findings) == ["D1"]
        assert "time.time" in findings[0].message

    def test_fires_through_import_alias(self):
        findings = check_source(
            "import time as _clock\n\ndef f():\n"
            "    return _clock.perf_counter_ns()\n",
            rel="conflict/foo.py")
        assert rules_of(findings) == ["D1"]

    def test_fires_on_from_import(self):
        findings = check_source(
            "from time import perf_counter\n\ndef f():\n"
            "    return perf_counter()\n",
            rel="coloring/foo.py")
        assert rules_of(findings) == ["D1"]

    def test_fires_on_datetime_now(self):
        findings = check_source(
            "from datetime import datetime\n\ndef f():\n"
            "    return datetime.now()\n",
            rel="dipaths/foo.py")
        assert rules_of(findings) == ["D1"]

    def test_allowlist_suppresses_trace_and_benchmarks(self):
        source = "import time\n\ndef f():\n    return time.time()\n"
        assert check_source(source, rel="obs/trace.py") == []
        assert check_source(source, rel="service/service.py") == []
        assert check_source(source, rel="analysis/bench_foo.py") == []

    def test_noqa_pragma_suppresses(self):
        findings = check_source(
            "import time\n\ndef f():\n"
            "    return time.time()  # noqa: REPRO-D1 -- test fixture\n",
            rel="online/foo.py")
        assert findings == []

    def test_noqa_with_wrong_code_does_not_suppress(self):
        findings = check_source(
            "import time\n\ndef f():\n"
            "    return time.time()  # noqa: REPRO-D2\n",
            rel="online/foo.py")
        assert rules_of(findings) == ["D1"]

    def test_local_variable_named_time_is_not_flagged(self):
        findings = check_source(
            "def f(time):\n    return time.time()\n",
            rel="online/foo.py")
        assert findings == []


# --------------------------------------------------------------------- #
# D2 — no global RNG
# --------------------------------------------------------------------- #
class TestNoGlobalRng:
    def test_fires_on_module_level_random_call(self):
        findings = check_source(
            "import random\n\ndef f():\n    return random.randrange(10)\n",
            rel="core/foo.py")
        assert rules_of(findings) == ["D2"]

    def test_fires_on_from_import(self):
        findings = check_source(
            "from random import shuffle\n\ndef f(xs):\n    shuffle(xs)\n",
            rel="online/foo.py")
        assert rules_of(findings) == ["D2"]

    def test_constructing_an_rng_is_allowed(self):
        findings = check_source(
            "import random\n\ndef f(seed):\n"
            "    return random.Random(seed)\n",
            rel="online/foo.py")
        assert findings == []

    def test_drawing_from_injected_rng_is_allowed(self):
        findings = check_source(
            "def f(rng):\n    return rng.randrange(10)\n",
            rel="online/foo.py")
        assert findings == []

    def test_noqa_suppresses(self):
        findings = check_source(
            "import random\n\ndef f():\n"
            "    return random.random()  # noqa: REPRO-D2\n",
            rel="core/foo.py")
        assert findings == []


# --------------------------------------------------------------------- #
# D3 — unordered iteration
# --------------------------------------------------------------------- #
class TestUnorderedIteration:
    def test_fires_on_for_over_set_call(self):
        findings = check_source(
            "def f(xs):\n    for x in set(xs):\n        print(x)\n",
            rel="online/foo.py")
        assert rules_of(findings) == ["D3"]

    def test_fires_on_comprehension_over_set_literal(self):
        findings = check_source(
            "def f(a, b):\n    return [x for x in {a, b}]\n",
            rel="conflict/foo.py")
        assert rules_of(findings) == ["D3"]

    def test_fires_on_set_variable_pop(self):
        findings = check_source(
            "def f(xs):\n    pending = set(xs)\n    return pending.pop()\n",
            rel="graphs/foo.py")
        assert rules_of(findings) == ["D3"]

    def test_fires_on_list_of_set(self):
        findings = check_source(
            "def f(xs):\n    return list(set(xs))\n",
            rel="dipaths/foo.py")
        assert rules_of(findings) == ["D3"]

    def test_sorted_wrapping_is_clean(self):
        findings = check_source(
            "def f(xs):\n"
            "    for x in sorted(set(xs)):\n        print(x)\n"
            "    return sorted({x + 1 for x in xs})\n",
            rel="online/foo.py")
        assert findings == []

    def test_out_of_scope_module_is_clean(self):
        findings = check_source(
            "def f(xs):\n    for x in set(xs):\n        print(x)\n",
            rel="analysis/foo.py")
        assert findings == []

    def test_noqa_suppresses(self):
        findings = check_source(
            "def f(xs):\n"
            "    for x in set(xs):  # noqa: REPRO-D3\n        print(x)\n",
            rel="online/foo.py")
        assert findings == []


# --------------------------------------------------------------------- #
# D4 — exception discipline
# --------------------------------------------------------------------- #
class TestExceptionDiscipline:
    def test_fires_on_state_dependent_runtime_error(self):
        findings = check_source(
            "def f(self):\n"
            "    if self._journal and self._journal[-1] is None:\n"
            "        raise RuntimeError('journal out of step')\n",
            rel="online/foo.py")
        assert rules_of(findings) == ["D4"]

    def test_fires_on_value_error_guarded_by_local(self):
        findings = check_source(
            "def f(table, key):\n"
            "    members = table.get(key)\n"
            "    if members is None:\n"
            "        raise ValueError('no shard anchored there')\n",
            rel="online/foo.py")
        assert rules_of(findings) == ["D4"]

    def test_argument_validation_is_allowed(self):
        findings = check_source(
            "def f(count, rate):\n"
            "    if count < 0 or rate <= 0:\n"
            "        raise ValueError('count and rate must be positive')\n",
            rel="online/foo.py")
        assert findings == []

    def test_constructor_validation_is_allowed(self):
        findings = check_source(
            "class C:\n"
            "    def __init__(self, n):\n"
            "        if n < 1:\n"
            "            raise ValueError('n must be >= 1')\n",
            rel="conflict/foo.py")
        assert findings == []

    def test_typed_repro_exception_is_clean(self):
        findings = check_source(
            "from ..exceptions import EngineStateError\n\n"
            "def f(self):\n"
            "    if self._broken:\n"
            "        raise EngineStateError('bookkeeping broke')\n",
            rel="online/foo.py")
        assert findings == []

    def test_bare_except_fires_everywhere(self):
        findings = check_source(
            "def f():\n"
            "    try:\n        return 1\n"
            "    except:\n        return 2\n",
            rel="analysis/foo.py")
        assert rules_of(findings) == ["D4"]
        assert "bare" in findings[0].message

    def test_out_of_engine_scope_raises_are_allowed(self):
        findings = check_source(
            "def f(self):\n"
            "    if self._journal and self._journal[-1] is None:\n"
            "        raise RuntimeError('fine outside the engine')\n",
            rel="analysis/foo.py")
        assert findings == []

    def test_noqa_suppresses(self):
        findings = check_source(
            "def f(table, key):\n"
            "    members = table.get(key)\n"
            "    if members is None:\n"
            "        raise ValueError('x')  # noqa: REPRO-D4\n",
            rel="online/foo.py")
        assert findings == []


# --------------------------------------------------------------------- #
# M1 — metric namespaces
# --------------------------------------------------------------------- #
class TestMetricNamespace:
    def test_deterministic_namespace_is_clean(self):
        findings = check_source(
            "class Engine:\n"
            "    def __init__(self, metrics):\n"
            "        self._obs_init('engine', metrics)\n"
            "        self._m = self._obs_counter('admitted')\n",
            rel="online/foo.py")
        assert findings == []

    def test_diagnostic_namespace_requires_diagnostic_true(self):
        source = (
            "class Tracker:\n"
            "    def __init__(self, metrics):\n"
            "        self._obs_init('shards', metrics)\n"
            "        self._m = self._obs_counter('merges'%s)\n")
        findings = check_source(source % "", rel="conflict/foo.py")
        assert rules_of(findings) == ["M1"]
        assert "diagnostic=True" in findings[0].message
        assert check_source(source % ", diagnostic=True",
                            rel="conflict/foo.py") == []

    def test_unknown_namespace_fires(self):
        findings = check_source(
            "def f(registry):\n"
            "    return registry.counter('bogus.name')\n",
            rel="online/foo.py")
        assert rules_of(findings) == ["M1"]

    def test_fstring_with_constant_prefix_is_checked(self):
        findings = check_source(
            "class Guard:\n"
            "    def __init__(self, metrics):\n"
            "        self._obs_init('guard', metrics)\n"
            "    def shed(self, tenant):\n"
            "        self._obs_counter(f'tenant.{tenant}.shed',\n"
            "                          diagnostic=True)\n",
            rel="online/foo.py")
        assert findings == []

    def test_direct_registry_call_in_known_namespace_is_clean(self):
        findings = check_source(
            "def f(registry):\n"
            "    return registry.gauge('result.wavelengths_used')\n",
            rel="online/foo.py")
        assert findings == []

    def test_noqa_suppresses(self):
        findings = check_source(
            "def f(registry):\n"
            "    return registry.counter('bogus.name')  # noqa: REPRO-M1\n",
            rel="online/foo.py")
        assert findings == []


# --------------------------------------------------------------------- #
# C1 — dead code
# --------------------------------------------------------------------- #
class TestDeadCode:
    def test_fires_on_unused_import(self):
        findings = check_source(
            "import json\n\ndef f():\n    return 1\n",
            rel="core/foo.py")
        assert rules_of(findings) == ["C1"]
        assert "json" in findings[0].message

    def test_used_import_is_clean(self):
        findings = check_source(
            "import json\n\ndef f(x):\n    return json.dumps(x)\n",
            rel="core/foo.py")
        assert findings == []

    def test_all_export_suppresses(self):
        findings = check_source(
            "from .engine import run\n\n__all__ = ['run']\n",
            rel="core/foo.py")
        assert findings == []

    def test_fires_on_dead_module_level_name(self):
        findings = check_source(
            "LIMIT = 10\n\ndef f():\n    return 1\n",
            rel="core/foo.py")
        assert rules_of(findings) == ["C1"]
        assert "LIMIT" in findings[0].message

    def test_future_import_and_dunders_are_exempt(self):
        findings = check_source(
            "from __future__ import annotations\n\n"
            "__version__ = '1.0'\n\ndef f():\n    return 1\n",
            rel="core/foo.py")
        assert findings == []

    def test_init_reexport_referenced_elsewhere_is_clean(self, tmp_path):
        package = tmp_path / "pkg"
        package.mkdir()
        (package / "__init__.py").write_text(
            "from .engine import run\n")
        (package / "engine.py").write_text(
            "def run():\n    return 1\n")
        (package / "user.py").write_text(
            "from pkg import run\n\n__all__ = ['run']\n")
        report = run_lint([package])
        assert report.findings == []

    def test_init_import_unreferenced_anywhere_fires(self, tmp_path):
        package = tmp_path / "pkg"
        package.mkdir()
        (package / "__init__.py").write_text("import json\n")
        report = run_lint([package])
        assert rules_of(report.findings) == ["C1"]


# --------------------------------------------------------------------- #
# baseline workflow + CLI
# --------------------------------------------------------------------- #
class TestBaselineAndCli:
    DIRTY = "import time\n\ndef f():\n    return time.time()\n"

    def test_baseline_grandfathers_and_goes_stale(self, tmp_path):
        target = tmp_path / "online"
        target.mkdir()
        (target / "__init__.py").write_text("")
        dirty = target / "foo.py"
        dirty.write_text(self.DIRTY)
        baseline_path = tmp_path / "lint_baseline.json"

        report = run_lint([target])
        assert rules_of(report.new_findings) == ["D1"]
        write_baseline(baseline_path, report.findings)
        assert len(load_baseline(baseline_path)) == 1

        grandfathered = run_lint([target], baseline=baseline_path)
        assert grandfathered.clean
        assert grandfathered.grandfathered == 1

        dirty.write_text("def f():\n    return 0.0\n")
        fixed = run_lint([target], baseline=baseline_path)
        assert fixed.clean and fixed.findings == []
        assert len(fixed.stale_baseline) == 1

    def test_cli_exit_codes_and_json(self, tmp_path, capsys):
        target = tmp_path / "online"
        target.mkdir()
        (target / "__init__.py").write_text("")
        (target / "foo.py").write_text(self.DIRTY)

        assert lint_main([str(target), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "D1" in out and "1 new finding" in out

        import json as json_module
        assert lint_main([str(target), "--no-baseline",
                          "--format", "json"]) == 1
        payload = json_module.loads(capsys.readouterr().out)
        assert payload["new"][0]["rule"] == "D1"

        baseline_path = tmp_path / "baseline.json"
        assert lint_main([str(target), "--baseline", str(baseline_path),
                          "--write-baseline"]) == 0
        capsys.readouterr()
        assert lint_main([str(target), "--baseline",
                          str(baseline_path)]) == 0
        assert "1 grandfathered" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.id in out


# --------------------------------------------------------------------- #
# the real package is clean
# --------------------------------------------------------------------- #
class TestRepositoryClean:
    def test_src_repro_clean_modulo_baseline(self):
        report = lint_package()
        assert report.new_findings == [], [
            f.render() for f in report.new_findings]

    def test_committed_baseline_within_budget(self):
        entries = load_baseline(REPO_ROOT / "lint_baseline.json")
        assert len(entries) <= 5

    def test_cli_on_real_tree_exits_zero(self):
        assert lint_main([str(REPO_ROOT / "src" / "repro"),
                          "--baseline",
                          str(REPO_ROOT / "lint_baseline.json")]) == 0
