"""Tests for Theorem 2 (witness families) and the Main Theorem characterisation."""

import pytest

from repro.coloring.exact import chromatic_number
from repro.conflict.conflict_graph import build_conflict_graph
from repro.core.characterization import (
    equality_certificate,
    min_wavelengths_equal_load,
    verify_equality_on_family,
)
from repro.core.load import load
from repro.core.theorem2 import internal_cycle_standard_form, witness_family_theorem2
from repro.cycles.internal import find_internal_cycle
from repro.exceptions import NoInternalCycleError
from repro.generators.families import random_walk_family
from repro.generators.gadgets import (
    figure3_dag,
    figure5_instance,
    havet_dag,
    theorem2_gadget,
)
from repro.generators.random_dags import (
    random_dag,
    random_internal_cycle_free_dag,
)
from repro.generators.trees import out_tree
from repro.graphs.dag import DAG


class TestStandardForm:
    @pytest.mark.parametrize("k", [2, 3, 5])
    def test_gadget_standard_form(self, k):
        dag = theorem2_gadget(k)
        cycle = find_internal_cycle(dag)
        right, left = internal_cycle_standard_form(dag, cycle)
        assert len(right) == len(left) == k
        sinks_right = {seg[-1] for seg in right}
        sinks_left = {seg[-1] for seg in left}
        assert sinks_right == sinks_left
        sources_right = {seg[0] for seg in right}
        sources_left = {seg[0] for seg in left}
        assert sources_right == sources_left


class TestWitnessFamily:
    @pytest.mark.parametrize("builder,expected_k", [
        (figure3_dag, 1),
        (lambda: theorem2_gadget(2), 2),
        (lambda: theorem2_gadget(4), 4),
        (havet_dag, 2),
    ])
    def test_witness_has_pi2_w3(self, builder, expected_k):
        dag = builder()
        family = witness_family_theorem2(dag)
        assert len(family) == 2 * expected_k + 1
        family.validate_against(dag)
        assert load(dag, family) == 2
        conflict = build_conflict_graph(family)
        assert chromatic_number(conflict.adjacency()) == 3
        assert conflict.is_cycle_graph()

    def test_requires_internal_cycle(self, simple_dag):
        with pytest.raises(NoInternalCycleError):
            witness_family_theorem2(simple_dag)
        with pytest.raises(NoInternalCycleError):
            witness_family_theorem2(out_tree(2, 3))

    def test_explicit_cycle_argument(self):
        dag = theorem2_gadget(3)
        cycle = find_internal_cycle(dag)
        family = witness_family_theorem2(dag, cycle)
        assert load(dag, family) == 2

    def test_rejects_non_internal_cycle(self):
        dag = DAG(arcs=[("s", "x"), ("s", "y"), ("x", "t"), ("y", "t"),
                        ("p", "s"), ("t", "q")])
        with pytest.raises(NoInternalCycleError):
            witness_family_theorem2(dag, ["s", "x", "q", "y"])

    @pytest.mark.parametrize("seed", range(5))
    def test_witness_on_random_dags(self, seed):
        dag = random_dag(18, 0.3, seed=seed)
        if find_internal_cycle(dag) is None:
            pytest.skip("random DAG happens to have no internal cycle")
        family = witness_family_theorem2(dag)
        family.validate_against(dag)
        pi = load(dag, family)
        w = chromatic_number(build_conflict_graph(family).adjacency())
        assert w > pi


class TestMainTheorem:
    def test_decision_procedure(self, simple_dag, gadget_dag):
        assert min_wavelengths_equal_load(simple_dag)
        assert not min_wavelengths_equal_load(gadget_dag)
        assert min_wavelengths_equal_load(out_tree(2, 4))
        assert not min_wavelengths_equal_load(figure3_dag())

    def test_certificate_equality_side(self, simple_dag):
        cert = equality_certificate(simple_dag)
        assert cert.equality_holds
        assert cert.internal_cycle is None
        assert cert.witness_family is None

    def test_certificate_gap_side(self, gadget_dag):
        cert = equality_certificate(gadget_dag)
        assert not cert.equality_holds
        assert cert.internal_cycle is not None
        assert cert.witness_load == 2
        assert cert.witness_wavelengths == 3
        assert cert.witness_wavelengths > cert.witness_load

    @pytest.mark.parametrize("seed", range(6))
    def test_equality_verified_on_random_families(self, seed):
        dag = random_internal_cycle_free_dag(24, 36, seed=seed)
        family = random_walk_family(dag, 25, seed=seed)
        assert verify_equality_on_family(dag, family)

    def test_gap_on_figure5_families(self):
        dag, family = figure5_instance(3)
        # pi = 2 but w = 3: equality fails on this family, as Theorem 2 states
        assert not verify_equality_on_family(dag, family)

    def test_empty_family_trivially_equal(self, gadget_dag):
        from repro.dipaths.family import DipathFamily

        assert verify_equality_on_family(gadget_dag, DipathFamily())
