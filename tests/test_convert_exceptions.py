"""Tests for the networkx converters and the exception hierarchy."""

import networkx as nx
import pytest

import repro.exceptions as exc
from repro.graphs.convert import from_networkx, to_networkx, to_networkx_undirected
from repro.graphs.dag import DAG
from repro.graphs.digraph import DiGraph


class TestConverters:
    def test_to_networkx_roundtrip(self, simple_dag):
        g = to_networkx(simple_dag)
        assert isinstance(g, nx.DiGraph)
        assert g.number_of_nodes() == simple_dag.num_vertices
        assert g.number_of_edges() == simple_dag.num_arcs
        back = from_networkx(g)
        assert back == DiGraph(arcs=simple_dag.arcs(), vertices=simple_dag.vertices())

    def test_from_networkx_as_dag(self):
        g = nx.DiGraph([("a", "b"), ("b", "c")])
        dag = from_networkx(g, as_dag_type=True)
        assert isinstance(dag, DAG)

    def test_from_networkx_as_dag_rejects_cycle(self):
        g = nx.DiGraph([("a", "b"), ("b", "a")])
        with pytest.raises(exc.NotADAGError):
            from_networkx(g, as_dag_type=True)

    def test_to_networkx_undirected(self, simple_dag):
        g = to_networkx_undirected(simple_dag)
        assert isinstance(g, nx.Graph)
        assert g.number_of_edges() == len(simple_dag.underlying_edges())

    def test_networkx_agrees_on_acyclicity(self, simple_dag, gadget_dag):
        for dag in (simple_dag, gadget_dag):
            assert nx.is_directed_acyclic_graph(to_networkx(dag))

    def test_networkx_agrees_on_dipath_counts(self, simple_dag):
        from repro.graphs.traversal import count_dipaths

        g = to_networkx(simple_dag)
        for x in simple_dag.vertices():
            for y in simple_dag.vertices():
                if x == y:
                    continue
                expected = len(list(nx.all_simple_paths(g, x, y)))
                assert count_dipaths(simple_dag, x, y) == expected


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(exc):
            obj = getattr(exc, name)
            if isinstance(obj, type) and issubclass(obj, Exception) \
                    and obj is not exc.ReproError and name.endswith("Error"):
                assert issubclass(obj, exc.ReproError), name

    def test_key_errors_double_as_keyerror(self):
        assert issubclass(exc.VertexNotFoundError, KeyError)
        assert issubclass(exc.ArcNotFoundError, KeyError)

    def test_value_errors_double_as_valueerror(self):
        for cls in (exc.NotADAGError, exc.SelfLoopError, exc.DuplicateArcError,
                    exc.NotUPPError, exc.InternalCycleError,
                    exc.NoInternalCycleError, exc.InvalidDipathError,
                    exc.InvalidColoringError):
            assert issubclass(cls, ValueError), cls

    def test_payloads(self):
        assert exc.VertexNotFoundError("x").vertex == "x"
        assert exc.ArcNotFoundError(("a", "b")).arc == ("a", "b")
        assert exc.NotADAGError(cycle=["a", "b", "a"]).cycle == ["a", "b", "a"]
        assert exc.InternalCycleError(cycle=["u", "v", "w"]).cycle == ["u", "v", "w"]
        assert exc.NotUPPError(pair=("x", "y")).pair == ("x", "y")
        err = exc.BoundViolationError(used=7, budget=6)
        assert err.used == 7 and err.budget == 6
        assert "7" in str(err) and "6" in str(err)
        assert exc.InvalidColoringError(conflict=(1, 2)).conflict == (1, 2)

    def test_catching_base_class(self, simple_dag):
        from repro.dipaths.family import DipathFamily
        from repro.core.theorem1 import color_dipaths_theorem1

        with pytest.raises(exc.ReproError):
            color_dipaths_theorem1(simple_dag, DipathFamily([["nope", "nada"]]))
