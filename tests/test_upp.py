"""Tests for the UPP property and its structural consequences (Property 3, Lemma 4, Cor. 5)."""

import pytest

from repro.conflict.cliques import clique_number
from repro.conflict.conflict_graph import build_conflict_graph
from repro.dipaths.dipath import Dipath
from repro.dipaths.family import DipathFamily
from repro.exceptions import NotUPPError
from repro.generators.families import random_walk_family
from repro.generators.gadgets import (
    figure3_dag,
    havet_dag,
    havet_family,
    theorem2_gadget,
)
from repro.generators.pathological import pathological_dag
from repro.generators.random_dags import random_upp_one_cycle_dag
from repro.generators.trees import out_tree, random_out_tree
from repro.graphs.dag import DAG
from repro.upp.crossing import (
    conflict_graph_has_no_k23,
    crossing_lemma_holds,
    intersection_position,
)
from repro.upp.helly import (
    clique_common_arcs,
    clique_number_equals_load,
    helly_property_holds,
    pairwise_intersection_is_interval,
)
from repro.upp.property_check import (
    assert_upp,
    find_upp_violation,
    is_upp_dag,
    upp_violation_witness_paths,
)


class TestUPPCheck:
    def test_trees_are_upp(self):
        assert is_upp_dag(out_tree(3, 3))
        assert is_upp_dag(random_out_tree(30, seed=1))

    def test_gadgets_are_upp(self):
        assert is_upp_dag(theorem2_gadget(3))
        assert is_upp_dag(havet_dag())

    def test_diamond_is_not_upp(self):
        dag = DAG(arcs=[("s", "x"), ("s", "y"), ("x", "t"), ("y", "t")])
        assert not is_upp_dag(dag)
        assert find_upp_violation(dag) == ("s", "t")
        p, q = upp_violation_witness_paths(dag)
        assert p != q
        assert p[0] == q[0] == "s" and p[-1] == q[-1] == "t"

    def test_figure3_is_not_upp(self):
        assert not is_upp_dag(figure3_dag())

    def test_assert_upp(self):
        assert_upp(out_tree(2, 2))
        with pytest.raises(NotUPPError) as excinfo:
            assert_upp(figure3_dag())
        assert excinfo.value.pair is not None

    def test_upp_dag_has_no_witness(self):
        assert upp_violation_witness_paths(theorem2_gadget(2)) is None

    @pytest.mark.parametrize("seed", range(4))
    def test_random_generator_produces_upp(self, seed):
        assert is_upp_dag(random_upp_one_cycle_dag(k=2, extra_depth=3, seed=seed))


class TestHellyProperty:
    def test_pairwise_single_interval(self):
        p = Dipath(["a", "b", "c", "d", "e"])
        q = Dipath(["x", "b", "c", "d", "y"])
        assert pairwise_intersection_is_interval(p, q)

    def test_pairwise_two_intervals_detected(self):
        p = Dipath(["a", "b", "c", "d"])
        q = Dipath(["z", "a", "b", "x", "c", "d"])
        assert not pairwise_intersection_is_interval(p, q)

    def test_clique_common_arcs(self, havet):
        dag, family = havet
        conflict = build_conflict_graph(family)
        # indices 0 and 2 share the arc (a1, b1)
        assert ("a1", "b1") in clique_common_arcs(family, [0, 2])
        assert clique_common_arcs(family, []) == set()

    def test_helly_on_upp_families(self, havet, figure5_k3):
        for dag, family in (havet, figure5_k3):
            assert helly_property_holds(family)
            assert clique_number_equals_load(family)

    def test_helly_can_fail_without_upp(self):
        # Figure 1 instances: pairwise conflicting but no common arc for k >= 3
        from repro.generators.pathological import pathological_family

        family = pathological_family(4)
        assert not helly_property_holds(family)
        # and the clique number (= k) exceeds the load (= 2)
        assert clique_number(build_conflict_graph(family)) == 4
        assert family.load() == 2
        assert not clique_number_equals_load(family)

    @pytest.mark.parametrize("seed", range(4))
    def test_property3_on_random_upp_instances(self, seed):
        dag = random_upp_one_cycle_dag(k=3, extra_depth=2, seed=seed)
        family = random_walk_family(dag, 25, seed=seed, min_length=2)
        assert clique_number_equals_load(family)
        assert helly_property_holds(family)


class TestCrossingLemmaAndK23:
    def test_intersection_position(self):
        p = Dipath(["a", "b", "c", "d"])
        q = Dipath(["x", "c", "d", "y"])
        assert intersection_position(p, q) == 2
        assert intersection_position(q, p) == 1
        assert intersection_position(p, Dipath(["u", "v"])) is None

    def test_crossing_lemma_on_upp_families(self, havet, figure5_k3):
        for dag, family in (havet, figure5_k3):
            assert crossing_lemma_holds(family)

    @pytest.mark.parametrize("seed", range(4))
    def test_no_k23_on_random_upp_instances(self, seed):
        dag = random_upp_one_cycle_dag(k=3, extra_depth=2, seed=seed)
        family = random_walk_family(dag, 25, seed=seed, min_length=2)
        assert conflict_graph_has_no_k23(family)

    def test_k23_possible_without_upp(self):
        # A crossing pattern: two "vertical" dipaths Q1, Q2 each sharing one
        # dedicated arc with each of three pairwise-disjoint "horizontal"
        # dipaths P1, P2, P3.  The resulting digraph is not UPP and the
        # conflict graph is an induced K_{2,3}.
        def x(i, j):
            return ("x", i, j)

        def y(i, j):
            return ("y", i, j)

        arcs = []
        p_paths, q_paths = [], []
        for j in (1, 2, 3):
            path = [("a", j), x(1, j), y(1, j), x(2, j), y(2, j), ("b", j)]
            p_paths.append(path)
            arcs += list(zip(path, path[1:]))
        for i in (1, 2):
            path = [("c", i), x(i, 1), y(i, 1), x(i, 2), y(i, 2),
                    x(i, 3), y(i, 3), ("d", i)]
            q_paths.append(path)
            arcs += list(zip(path, path[1:]))
        dag = DAG(arcs=arcs)
        family = DipathFamily(p_paths + q_paths, graph=dag)
        assert not is_upp_dag(dag)
        assert not conflict_graph_has_no_k23(family)
