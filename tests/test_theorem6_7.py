"""Tests for Theorem 6 (the 4/3 algorithm) and Theorem 7 (tightness)."""

import math

import pytest

from repro.coloring.exact import chromatic_number
from repro.coloring.verify import is_proper_coloring, num_colors
from repro.conflict.conflict_graph import build_conflict_graph
from repro.conflict.covering import blowup_chromatic_number
from repro.core.theorem6 import (
    color_dipaths_theorem6,
    multi_cycle_bound,
    split_arc,
    theorem6_bound,
)
from repro.dipaths.family import DipathFamily
from repro.exceptions import InternalCycleError, NoInternalCycleError, NotUPPError
from repro.generators.families import random_walk_family
from repro.generators.gadgets import (
    figure5_family,
    figure5_instance,
    havet_family,
    havet_instance,
    theorem2_gadget,
)
from repro.generators.random_dags import random_upp_one_cycle_dag
from repro.graphs.dag import DAG


def assert_within_bound(dag, family):
    coloring = color_dipaths_theorem6(dag, family)
    conflict = build_conflict_graph(family)
    assert is_proper_coloring(conflict.adjacency(), coloring)
    assert num_colors(coloring) <= theorem6_bound(family.load())
    return coloring


class TestBoundHelpers:
    @pytest.mark.parametrize("pi,expected", [(0, 0), (1, 2), (2, 3), (3, 4),
                                             (4, 6), (6, 8), (9, 12), (10, 14)])
    def test_theorem6_bound(self, pi, expected):
        assert theorem6_bound(pi) == expected

    def test_multi_cycle_bound(self):
        assert multi_cycle_bound(6, 1) == 8
        assert multi_cycle_bound(6, 2) == math.ceil(6 * 16 / 9)
        assert multi_cycle_bound(5, 0) == 5


class TestSplitArc:
    def test_split_removes_internal_cycle(self, gadget_dag):
        from repro.cycles.internal import find_internal_cycle, has_internal_cycle
        from repro.core.theorem6 import _cycle_arcs

        cycle = find_internal_cycle(gadget_dag)
        arc = _cycle_arcs(gadget_dag, cycle)[0]
        split, s, t = split_arc(gadget_dag, arc)
        assert not split.has_arc(*arc)
        assert split.has_arc(arc[0], s)
        assert split.has_arc(t, arc[1])
        assert not has_internal_cycle(split)
        assert split.num_arcs == gadget_dag.num_arcs + 1


class TestHypothesisChecks:
    def test_rejects_non_upp(self, figure3):
        dag, family = figure3
        with pytest.raises(NotUPPError):
            color_dipaths_theorem6(dag, family)

    def test_rejects_no_internal_cycle(self, simple_dag, simple_family):
        with pytest.raises(NoInternalCycleError):
            color_dipaths_theorem6(simple_dag, simple_family)

    def test_rejects_multiple_internal_cycles(self):
        dag = DAG(validate=False)
        for prefix in ("p", "q"):
            g = theorem2_gadget(2)
            for u, v in g.arcs():
                dag.add_arc((prefix, u), (prefix, v))
        family = DipathFamily([[("p", ("a", 0)), ("p", ("b", 0))]], graph=dag)
        with pytest.raises(InternalCycleError):
            color_dipaths_theorem6(dag, family)

    def test_empty_family(self, gadget_dag):
        assert color_dipaths_theorem6(gadget_dag, DipathFamily()) == {}


class TestGadgetInstances:
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_figure5_within_bound(self, k):
        dag, family = figure5_instance(k)
        coloring = assert_within_bound(dag, family)
        # the family needs exactly 3 colours (pi = 2) and the bound is 3
        assert num_colors(coloring) == 3

    @pytest.mark.parametrize("k,h", [(2, 2), (3, 2), (2, 3)])
    def test_figure5_replicated_within_bound(self, k, h):
        dag = theorem2_gadget(k)
        family = figure5_family(k, dag).replicate(h)
        assert_within_bound(dag, family)

    @pytest.mark.parametrize("h", [1, 2, 3, 4, 6])
    def test_havet_replicated_meets_theorem7_value(self, h):
        dag, family = havet_instance(h)
        coloring = assert_within_bound(dag, family)
        # Theorem 7: these instances are tight, so the algorithm must use
        # exactly ceil(8h/3) = ceil(4*pi/3) colours (no fewer exist).
        assert num_colors(coloring) == math.ceil(8 * h / 3)

    def test_havet_exact_wavelength_number_small(self):
        for h in (1, 2):
            dag, family = havet_instance(h)
            w = chromatic_number(build_conflict_graph(family).adjacency())
            assert w == math.ceil(8 * h / 3)

    def test_havet_blowup_cover_matches_exact(self):
        base = build_conflict_graph(havet_family(1))
        for h in (1, 2, 3):
            dag, family = havet_instance(h)
            exact = chromatic_number(build_conflict_graph(family).adjacency())
            assert blowup_chromatic_number(base, h) == exact


class TestRandomInstances:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_one_cycle_upp(self, seed):
        dag = random_upp_one_cycle_dag(k=2 + seed % 3, extra_depth=2, seed=seed)
        family = random_walk_family(dag, 30, seed=seed, min_length=2)
        assert_within_bound(dag, family)

    def test_family_with_paths_avoiding_the_cycle(self, gadget_dag):
        # dipaths that never touch the internal cycle arc: padding handles it
        family = DipathFamily([[("a", 0), ("b", 0)], [("a", 1), ("b", 1)],
                               [("c", 2), ("d", 2)]], graph=gadget_dag)
        coloring = assert_within_bound(gadget_dag, family)
        assert num_colors(coloring) == 1
