"""Differential harness: sharded vs unsharded engines, decision-identical.

The component-sharded engine routes its hot paths through per-fibre
colour occupancy and lazy arc-derived adjacency; the claim that buys the
speedup is that **no decision changes**: the forbidden-colour set of an
arrival equals the colour set of its conflict neighbours, first-fit and
friends see the same free colours, Kempe chains explore the same
components, defrag accepts the same moves.  This harness pins the claim
the way the PR 3 harness pinned rollback bit-identity:

* a 50-seed sweep of random multi-region churn traces replayed through
  ``simulate_online`` twice (sharded and unsharded) under a rotating mix
  of routing/policy/defrag/batch configurations, asserting the full
  :class:`~repro.online.OnlineResult` compares equal (blocking,
  rejection reasons, colour counts, defrag counters, timelines);
* hand-built traces engineered to force component **merges** (a bridge
  lightpath arriving across two warm regions) and **splits** (the bridge
  departing mid-run, with a defrag trigger forcing the split-check while
  the system is loaded), asserting identity *and* that the counters
  prove the machinery actually fired.
"""

from __future__ import annotations

from dataclasses import asdict

import pytest

from repro.generators.regions import multi_region_topology, multi_region_traffic
from repro.obs.trace import RingBufferSink, Tracer
from repro.online import (
    ARRIVAL,
    DEPARTURE,
    Event,
    poisson_trace,
    simulate_online,
    sort_events,
)

#: Result fields describing the shard machinery itself, excluded from
#: the identity comparison: both engines track components, but the
#: unsharded one knows each removed member's degree for free and skips
#: more split-checks, so the *diagnostic* counters legitimately differ —
#: every decision-bearing field must still compare equal.
_SHARD_FIELDS = ("sharded", "component_merges", "component_splits",
                 "shard_rebuilds")

#: Per-seed configuration rotation: every seed exercises one of these.
_CONFIGS = (
    dict(routing="shortest", policy="first_fit"),
    dict(routing="shortest", policy="least_used"),
    dict(routing="shortest", policy="random"),
    dict(routing="k_shortest", speculative=True),
    dict(routing="k_shortest", kempe_repair=True),
    dict(routing="least_loaded", defrag_every=30),
    dict(routing="k_shortest", defrag_on_block=True,
         defrag_order="most_conflicted"),
    dict(routing="k_shortest", batch_policy="greedy"),
    dict(routing="shortest", batch_policy="all_or_nothing",
         defrag_every=25),
    dict(routing="widest", policy="most_used"),
)


def _deterministic_metrics(snapshot):
    """The decision-bearing section of a metrics snapshot (see
    :mod:`repro.obs.registry`): everything except ``diagnostics``."""
    return {k: v for k, v in snapshot.items() if k != "diagnostics"}


def _compare(graph, trace, wavelengths, **kwargs):
    base = simulate_online(graph, trace, wavelengths, seed=3, **kwargs)
    # the sharded side runs fully instrumented: per the observability
    # layer's contract, tracing must not perturb a single decision
    shard = simulate_online(graph, trace, wavelengths, seed=3, sharded=True,
                            tracer=Tracer(sink=RingBufferSink(capacity=512)),
                            **kwargs)
    plain, mirrored = asdict(base), asdict(shard)
    for field in _SHARD_FIELDS:
        plain.pop(field), mirrored.pop(field)
    # metrics: the deterministic section must match exactly; diagnostics
    # (shard tracker, colour index) legitimately differ per code path
    plain_metrics = plain.pop("metrics")
    shard_metrics = mirrored.pop("metrics")
    assert (_deterministic_metrics(plain_metrics)
            == _deterministic_metrics(shard_metrics))
    assert plain == mirrored, {
        key: (plain[key], mirrored[key])
        for key in plain if plain[key] != mirrored[key]}
    return shard


@pytest.mark.parametrize("seed", range(50))
def test_sharded_engine_is_decision_identical(seed):
    graph = multi_region_topology(regions=3, region_size=12, coupling=2,
                                  seed=seed)
    pool = multi_region_traffic(graph, 120, inter_fraction=0.15, seed=seed)
    trace = poisson_trace(pool, 130, arrival_rate=15.0, mean_holding=3.0,
                          seed=seed)
    config = dict(_CONFIGS[seed % len(_CONFIGS)])
    _compare(graph, trace, 4 + seed % 3, record_timeline=True, **config)


def _two_region_graph():
    """Two chain regions joined by one bridge arc ``a3 -> b0``."""
    from repro.graphs.digraph import DiGraph

    return DiGraph(arcs=[("a0", "a1"), ("a1", "a2"), ("a2", "a3"),
                         ("b0", "b1"), ("b1", "b2"), ("b2", "b3"),
                         ("a3", "b0")])


def test_engineered_merge_and_split_trace():
    """A bridge lightpath merges two regions mid-run, then splits them.

    The bridge dipath overlaps a warm member's fibres in *both* regions,
    so its arrival must fold the two components into one shard; its
    departure leaves the merged shard dirty, and the defrag trigger's
    split-check — running while both regions are still loaded — must
    find the two components again.
    """
    graph = _two_region_graph()
    events = [
        Event(0.0, ARRIVAL, 0, dipath=["a0", "a1", "a2"]),
        Event(0.0, ARRIVAL, 1, dipath=["b0", "b1", "b2"]),
        Event(1.0, ARRIVAL, 2, dipath=["a1", "a2", "a3", "b0", "b1"]),
        Event(2.0, ARRIVAL, 3, dipath=["a2", "a3"]),
        Event(3.0, DEPARTURE, 2),
        Event(4.0, DEPARTURE, 3),
        Event(4.0, ARRIVAL, 4, dipath=["b1", "b2", "b3"]),
        Event(5.0, ARRIVAL, 5, dipath=["a0", "a1"]),
    ]
    trace = sort_events(events)
    result = _compare(graph, trace, 4, routing="shortest", defrag_every=6)
    assert result.component_merges >= 1
    assert result.component_splits >= 1


def test_engineered_merge_split_under_batching_and_speculation():
    """Same merge/split choreography, driven through a timestamp burst."""
    graph = _two_region_graph()
    events = [
        Event(0.0, ARRIVAL, 0, dipath=["a0", "a1", "a2"]),
        Event(0.0, ARRIVAL, 1, dipath=["b0", "b1", "b2"]),
        # an equal-timestamp burst containing the merging bridge
        Event(1.0, ARRIVAL, 2, dipath=["a1", "a2", "a3", "b0", "b1"]),
        Event(1.0, ARRIVAL, 3, dipath=["a2", "a3"]),
        Event(1.0, ARRIVAL, 4, dipath=["b2", "b3"]),
        Event(2.0, DEPARTURE, 2),
        Event(3.0, DEPARTURE, 4),
        Event(3.0, ARRIVAL, 5, dipath=["b1", "b2"]),
        Event(4.0, ARRIVAL, 6, dipath=["a0", "a1"]),
    ]
    trace = sort_events(events)
    result = _compare(graph, trace, 4, routing="shortest",
                      batch_policy="greedy", defrag_every=7)
    assert result.component_merges >= 1
    assert result.component_splits >= 1
