"""Differential harness for the what-if transaction layer.

Randomized churn sequences drive two engines in lockstep — one of them
additionally runs speculative :class:`~repro.online.WhatIfTransaction`
what-ifs that are always rolled back — and the harness asserts the three
contracts of the rollback design:

(a) after every rollback the speculating engine's ``DipathFamily``,
    ``DynamicConflictGraph`` and ``OnlineWavelengthAssigner`` are
    **bit-identical** to the never-touched twin: every internal bitmask,
    list, free-slot stack, cache and counter compares equal;
(b) assignments produced under *adaptive* routing (least-loaded,
    k-shortest, widest, speculative or not) always pass
    :mod:`repro.coloring.verify` against a conflict graph rebuilt from
    scratch off the raw dipaths;
(c) ``mask_rebuilds`` never moves on the rollback path — speculation and
    rollback patch caches, they never drop them.

The sequences come from two generators: a hypothesis-driven one (60
examples exploring the op space adversarially, shrinkable on failure) and
a fixed 50-seed sweep that guarantees the 50+ randomized sequences run on
every invocation regardless of hypothesis' adaptive example budget.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.coloring.verify import is_proper_coloring
from repro.conflict import DynamicConflictGraph, build_conflict_graph
from repro.dipaths.family import DipathFamily
from repro.generators.families import random_walk_family
from repro.generators.random_dags import random_dag
from repro.online import (
    ARRIVAL,
    OnlineEngine,
    OnlineWavelengthAssigner,
    WhatIfTransaction,
    poisson_trace,
)
from repro.optical.traffic import uniform_random_traffic

SETTINGS = dict(max_examples=60, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

WAVELENGTHS = 4


def engine_state(family, conflict, assigner):
    """Every internal field of the dynamic trio, for bit-level comparison.

    Masks and counters are plain ints, so equality here *is* bit identity;
    dict comparisons ignore insertion order, which is the one
    representation detail rollback is allowed to disturb.
    """
    return {
        "paths": list(family._paths),
        "arc_ids": dict(family._arc_ids),
        "arcs": list(family._arcs),
        "arc_members": list(family._arc_members),
        "path_arc_ids": list(family._path_arc_ids),
        "conflict_masks": (None if family._conflict_masks is None
                           else list(family._conflict_masks)),
        "free_slots": list(family._free_slots),
        "load_cache": family._load_cache,
        "mask_rebuilds": family._mask_rebuilds,
        "nbr": dict(conflict._nbr),
        "vmask": conflict._vmask,
        "color": dict(assigner._color),
        "usage": list(assigner._usage),
        "ever_used": assigner._ever_used,
        "repairs": assigner._repairs,
        "rng": assigner._rng.getstate(),
    }


class _Twin:
    """One dynamic engine half of the differential pair."""

    def __init__(self, kempe_repair=False, policy="least_used"):
        self.conflict = DynamicConflictGraph(DipathFamily())
        self.assigner = OnlineWavelengthAssigner(
            WAVELENGTHS, policy=policy, kempe_repair=kempe_repair, seed=99)
        self.active = []

    def state(self):
        return engine_state(self.conflict.family, self.conflict,
                            self.assigner)

    def arrive(self, dipath):
        idx = self.conflict.add_dipath(dipath)
        if self.assigner.assign(self.conflict, idx) is None:
            self.conflict.remove_dipath(idx)
        else:
            self.active.append(idx)

    def depart(self, position):
        idx = self.active.pop(position % len(self.active))
        self.assigner.release(idx)
        self.conflict.remove_dipath(idx)


def _speculate(twin, rng, paths, num_ops):
    """Run a random what-if on ``twin`` and roll every bit of it back.

    Some operations run inside a *nested* child transaction that commits
    (or rolls back) into this one — the outer rollback must still erase
    everything, including the committed children (PR 4 nesting contract).
    """
    with WhatIfTransaction(twin.conflict, twin.assigner) as tx:
        local = list(twin.active)
        for _ in range(num_ops):
            if local and rng.random() < 0.4:
                victim = local.pop(rng.randrange(len(local)))
                tx.release(victim)
                tx.remove_dipath(victim)
            elif rng.random() < 0.3:
                with WhatIfTransaction(twin.conflict, twin.assigner) as sub:
                    idx, color = sub.admit(rng.choice(paths))
                    if color is not None and rng.random() < 0.5:
                        sub.commit()        # spliced into tx's journal
                        local.append(idx)
                    # else: the child rolls back by itself
            else:
                idx, color = tx.admit(rng.choice(paths))
                if color is None:
                    tx.remove_dipath(idx)
                else:
                    local.append(idx)
        # leaving the block without commit() rolls everything back


def _run_differential_sequence(seed, churn_steps, kempe_repair=False,
                               policy="least_used"):
    """One randomized churn+speculation sequence; returns twins checked."""
    rng = random.Random(seed)
    graph = random_dag(12, 0.3, seed=seed % 17)
    paths = list(random_walk_family(graph, 30, seed=seed % 13))
    if not paths:
        return False
    speculating = _Twin(kempe_repair=kempe_repair, policy=policy)
    untouched = _Twin(kempe_repair=kempe_repair, policy=policy)
    rebuilds_before = speculating.conflict.family.mask_rebuilds
    for step in range(churn_steps):
        # identical committed churn on both twins
        if speculating.active and rng.random() < 0.4:
            position = rng.randrange(len(speculating.active))
            speculating.depart(position)
            untouched.depart(position)
        else:
            dipath = rng.choice(paths)
            speculating.arrive(dipath)
            untouched.arrive(dipath)
        # a random what-if on the speculating twin only, always rolled back
        _speculate(speculating, rng, paths, num_ops=rng.randrange(1, 5))
        assert speculating.conflict.family.mask_rebuilds == rebuilds_before
    assert speculating.state() == untouched.state(), f"seed {seed}"
    return True


class TestRollbackBitIdentity:
    """(a) + (c): rollback leaves the state bit-identical, caches intact."""

    @given(seed=st.integers(0, 10_000), churn_steps=st.integers(5, 25),
           kempe=st.booleans(),
           policy=st.sampled_from(("first_fit", "least_used", "random")))
    @settings(**SETTINGS)
    def test_hypothesis_sequences(self, seed, churn_steps, kempe, policy):
        # `random` matters here: speculative assigns consume RNG draws, so
        # rollback must also rewind the policy RNG to keep the twins in
        # lockstep (the checkpoint records getstate()).
        _run_differential_sequence(seed, churn_steps, kempe_repair=kempe,
                                   policy=policy)

    def test_fifty_seeded_sequences(self):
        """The fixed floor: 50+ randomized sequences on every run."""
        checked = 0
        for seed in range(55):
            if _run_differential_sequence(seed, 15,
                                          kempe_repair=seed % 2 == 0):
                checked += 1
        assert checked >= 50

    def test_uncommitted_exit_equals_explicit_rollback(self):
        graph = random_dag(10, 0.3, seed=3)
        paths = list(random_walk_family(graph, 12, seed=3))
        twin = _Twin()
        for p in paths[:6]:
            twin.arrive(p)
        before = twin.state()
        tx = WhatIfTransaction(twin.conflict, twin.assigner)
        tx.admit(paths[6])
        tx.rollback()
        assert twin.state() == before
        with WhatIfTransaction(twin.conflict, twin.assigner) as tx:
            tx.admit(paths[7])
        assert twin.state() == before

    def test_commit_keeps_the_speculation(self):
        twin = _Twin()
        with WhatIfTransaction(twin.conflict, twin.assigner) as tx:
            idx, color = tx.admit(["a", "b", "c"])
            tx.commit()
        assert color is not None
        assert twin.conflict.family.is_active(idx)
        assert twin.assigner.color_of(idx) == color

    def test_rollback_survives_exceptions(self):
        twin = _Twin()
        twin.arrive(["a", "b"])
        before = twin.state()
        with pytest.raises(RuntimeError):
            with WhatIfTransaction(twin.conflict, twin.assigner) as tx:
                tx.admit(["a", "b", "c"])
                raise RuntimeError("speculation gone wrong")
        assert twin.state() == before


class TestAdaptiveRoutingVerifies:
    """(b): adaptive assignments verify against a from-scratch rebuild."""

    @given(seed=st.integers(0, 5_000),
           routing=st.sampled_from(("least_loaded", "k_shortest", "widest")),
           speculative=st.booleans(), kempe=st.booleans())
    @settings(**SETTINGS)
    def test_coloring_proper_against_rebuild(self, seed, routing,
                                             speculative, kempe):
        graph = random_dag(12, 0.25, seed=seed % 19)
        try:
            pool = uniform_random_traffic(graph, 25, seed=seed % 11)
        except ValueError:          # a DAG with no connected pairs
            return
        trace = poisson_trace(pool, 60, arrival_rate=4.0, mean_holding=3.0,
                              seed=seed)
        engine = OnlineEngine(graph, WAVELENGTHS, routing=routing,
                              kempe_repair=kempe, speculative=speculative)
        for event in trace:
            if event.kind == ARRIVAL:
                engine.admit(event.request_id, request=event.request)
            else:
                engine.depart(event.request_id)
        coloring = dict(engine.assigner.coloring)
        assert set(coloring) == set(engine.conflict.vertices())
        assert all(0 <= c < WAVELENGTHS for c in coloring.values())
        # rebuild from the raw dipaths (dense indices), remap, verify
        active = engine.family.active_indices()
        rebuilt = build_conflict_graph(
            DipathFamily([engine.family[i] for i in active]))
        remap = {slot: pos for pos, slot in enumerate(active)}
        dense = {remap[slot]: c for slot, c in coloring.items()}
        assert is_proper_coloring(rebuilt.adjacency(), dense)
        # and the dynamic graph's edges agree with the rebuild
        relabelled = sorted(
            (min(remap[u], remap[v]), max(remap[u], remap[v]))
            for u, v in engine.conflict.edges())
        assert relabelled == sorted(rebuilt.edges())
