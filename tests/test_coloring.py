"""Unit tests for :mod:`repro.coloring`."""

import pytest

from repro.coloring.dsatur import dsatur_coloring, dsatur_order
from repro.coloring.exact import (
    chromatic_number,
    greedy_clique_lower_bound,
    is_k_colorable,
    optimal_coloring,
)
from repro.coloring.greedy import greedy_coloring
from repro.coloring.kempe import kempe_component, kempe_swap
from repro.coloring.verify import (
    assert_proper_coloring,
    color_classes,
    is_proper_coloring,
    normalize_coloring,
    num_colors,
)
from repro.exceptions import InvalidColoringError


def cycle_adj(n):
    return {i: {(i - 1) % n, (i + 1) % n} for i in range(n)}


def complete_adj(n):
    return {i: set(range(n)) - {i} for i in range(n)}


def path_adj(n):
    adj = {i: set() for i in range(n)}
    for i in range(n - 1):
        adj[i].add(i + 1)
        adj[i + 1].add(i)
    return adj


PETERSEN = {
    0: {1, 4, 5}, 1: {0, 2, 6}, 2: {1, 3, 7}, 3: {2, 4, 8}, 4: {0, 3, 9},
    5: {0, 7, 8}, 6: {1, 8, 9}, 7: {2, 5, 9}, 8: {3, 5, 6}, 9: {4, 6, 7},
}


class TestVerify:
    def test_is_proper(self):
        adj = cycle_adj(4)
        assert is_proper_coloring(adj, {0: 0, 1: 1, 2: 0, 3: 1})
        assert not is_proper_coloring(adj, {0: 0, 1: 0, 2: 1, 3: 1})
        assert not is_proper_coloring(adj, {0: 0, 1: 1, 2: 0})  # missing vertex

    def test_assert_proper_raises(self):
        with pytest.raises(InvalidColoringError):
            assert_proper_coloring(cycle_adj(3), {0: 0, 1: 0, 2: 1})
        with pytest.raises(InvalidColoringError):
            assert_proper_coloring(cycle_adj(3), {0: 0, 1: 1})

    def test_num_colors_and_classes(self):
        coloring = {0: 2, 1: 5, 2: 2}
        assert num_colors(coloring) == 2
        assert color_classes(coloring) == {2: {0, 2}, 5: {1}}
        assert num_colors({}) == 0

    def test_normalize(self):
        assert normalize_coloring({0: 7, 1: 3, 2: 7}) == {0: 0, 1: 1, 2: 0}


class TestGreedy:
    @pytest.mark.parametrize("strategy", ["given", "largest-first",
                                          "smallest-last", "random"])
    def test_greedy_is_proper(self, strategy):
        adj = PETERSEN
        coloring = greedy_coloring(adj, strategy=strategy, seed=1)
        assert is_proper_coloring(adj, coloring)

    def test_greedy_explicit_order(self):
        adj = path_adj(5)
        coloring = greedy_coloring(adj, order=[0, 1, 2, 3, 4])
        assert num_colors(coloring) == 2

    def test_greedy_order_missing_vertex_rejected(self):
        with pytest.raises(ValueError):
            greedy_coloring(path_adj(3), order=[0, 1])

    def test_greedy_unknown_strategy(self):
        with pytest.raises(ValueError):
            greedy_coloring(path_adj(3), strategy="bogus")  # type: ignore[arg-type]

    def test_smallest_last_optimal_on_cycle(self):
        coloring = greedy_coloring(cycle_adj(6), strategy="smallest-last")
        assert num_colors(coloring) == 2


class TestDSATUR:
    def test_proper_and_reasonable(self):
        coloring = dsatur_coloring(PETERSEN)
        assert is_proper_coloring(PETERSEN, coloring)
        assert num_colors(coloring) == 3     # DSATUR is optimal on Petersen

    def test_even_cycle_two_colors(self):
        assert num_colors(dsatur_coloring(cycle_adj(8))) == 2

    def test_odd_cycle_three_colors(self):
        assert num_colors(dsatur_coloring(cycle_adj(7))) == 3

    def test_complete_graph(self):
        assert num_colors(dsatur_coloring(complete_adj(6))) == 6

    def test_empty(self):
        assert dsatur_coloring({}) == {}

    def test_order_covers_all(self):
        assert set(dsatur_order(PETERSEN)) == set(PETERSEN)


class TestExact:
    @pytest.mark.parametrize("adj,expected", [
        (cycle_adj(5), 3),
        (cycle_adj(6), 2),
        (complete_adj(5), 5),
        (path_adj(6), 2),
        (PETERSEN, 3),
        ({}, 0),
        ({0: set()}, 1),
    ])
    def test_chromatic_number_known(self, adj, expected):
        assert chromatic_number(adj) == expected

    def test_optimal_coloring_is_proper(self):
        coloring = optimal_coloring(PETERSEN)
        assert is_proper_coloring(PETERSEN, coloring)
        assert num_colors(coloring) == 3

    def test_is_k_colorable(self):
        assert is_k_colorable(cycle_adj(5), 2) is None
        result = is_k_colorable(cycle_adj(5), 3)
        assert result is not None
        assert is_proper_coloring(cycle_adj(5), result)
        assert is_k_colorable(complete_adj(4), 3) is None

    def test_is_k_colorable_zero(self):
        assert is_k_colorable({0: set()}, 0) is None
        assert is_k_colorable({}, 0) == {}
        with pytest.raises(ValueError):
            is_k_colorable({}, -1)

    def test_lower_bound(self):
        assert greedy_clique_lower_bound(complete_adj(4)) == 4
        assert greedy_clique_lower_bound(cycle_adj(6)) == 2
        assert greedy_clique_lower_bound({}) == 0

    def test_exact_never_below_clique(self):
        for adj in (PETERSEN, cycle_adj(9), complete_adj(5)):
            assert chromatic_number(adj) >= greedy_clique_lower_bound(adj)


class TestKempe:
    def test_component(self):
        adj = path_adj(4)
        coloring = {0: 0, 1: 1, 2: 0, 3: 1}
        comp = kempe_component(adj, coloring, 0, 0, 1)
        assert comp == {0, 1, 2, 3}

    def test_component_requires_matching_color(self):
        with pytest.raises(ValueError):
            kempe_component(path_adj(3), {0: 0, 1: 1, 2: 0}, 1, 0, 2)

    def test_swap_preserves_properness(self):
        adj = cycle_adj(6)
        coloring = dsatur_coloring(adj)
        new_coloring, component = kempe_swap(adj, coloring, 0, 0, 1)
        assert is_proper_coloring(adj, new_coloring)
        assert 0 in component

    def test_swap_changes_start_color(self):
        adj = path_adj(2)
        coloring = {0: 0, 1: 1}
        new_coloring, _ = kempe_swap(adj, coloring, 0, 0, 1)
        assert new_coloring == {0: 1, 1: 0}
