"""Tests for the rooted-tree special case (:mod:`repro.core.rooted_trees`)."""

import pytest

from repro.coloring.verify import is_proper_coloring, num_colors
from repro.conflict.conflict_graph import build_conflict_graph
from repro.core.rooted_trees import (
    color_dipaths_rooted_tree,
    is_rooted_tree,
    tree_depths,
)
from repro.core.theorem1 import color_dipaths_theorem1
from repro.dipaths.family import DipathFamily
from repro.exceptions import GraphError
from repro.generators.families import all_to_all_family, random_walk_family
from repro.generators.gadgets import figure3_dag
from repro.generators.trees import caterpillar, out_tree, random_out_tree, spider
from repro.graphs.dag import DAG


class TestRecognitionAndDepths:
    def test_is_rooted_tree(self):
        assert is_rooted_tree(out_tree(2, 3))
        assert is_rooted_tree(spider(3, 2))
        assert not is_rooted_tree(figure3_dag())
        assert not is_rooted_tree(DAG(arcs=[("a", "b"), ("c", "b")]))

    def test_tree_depths(self):
        tree = out_tree(2, 2)
        depths = tree_depths(tree)
        assert depths[()] == 0
        assert depths[(0,)] == 1
        assert depths[(1, 1)] == 2

    def test_tree_depths_rejects_non_tree(self):
        with pytest.raises(GraphError):
            tree_depths(DAG(arcs=[("a", "b"), ("c", "d")]))


class TestRootedTreeColoring:
    def _check(self, tree, family):
        coloring = color_dipaths_rooted_tree(tree, family)
        conflict = build_conflict_graph(family)
        assert is_proper_coloring(conflict.adjacency(), coloring)
        assert num_colors(coloring) == family.load()
        return coloring

    def test_empty_family(self):
        assert color_dipaths_rooted_tree(out_tree(2, 2), DipathFamily()) == {}

    def test_all_to_all_on_complete_binary_tree(self):
        tree = out_tree(2, 3)
        family = all_to_all_family(tree)
        self._check(tree, family)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_trees_random_walks(self, seed):
        tree = random_out_tree(35, seed=seed)
        family = random_walk_family(tree, 60, seed=seed)
        self._check(tree, family)

    @pytest.mark.parametrize("builder", [lambda: spider(5, 4),
                                         lambda: caterpillar(6, 2),
                                         lambda: out_tree(3, 2)])
    def test_structured_trees(self, builder):
        tree = builder()
        family = random_walk_family(tree, 40, seed=11)
        self._check(tree, family)

    def test_agrees_with_theorem1(self):
        tree = random_out_tree(30, seed=9)
        family = random_walk_family(tree, 50, seed=9)
        direct = color_dipaths_rooted_tree(tree, family)
        general = color_dipaths_theorem1(tree, family)
        assert num_colors(direct) == num_colors(general) == family.load()

    def test_rejects_non_tree(self, simple_dag, simple_family):
        with pytest.raises(GraphError):
            color_dipaths_rooted_tree(simple_dag, simple_family)

    def test_check_can_be_skipped_on_tree_like_input(self):
        # skipping the hypothesis check still works when the input IS a tree
        tree = out_tree(2, 2)
        family = random_walk_family(tree, 10, seed=0)
        coloring = color_dipaths_rooted_tree(tree, family,
                                             check_hypothesis=False)
        assert num_colors(coloring) == family.load()
