"""Unit tests for :mod:`repro.dipaths.dipath`."""

import pytest

from repro.dipaths.dipath import Dipath
from repro.exceptions import InvalidDipathError
from repro.graphs.digraph import DiGraph


class TestConstruction:
    def test_basic(self):
        p = Dipath(["a", "b", "c"])
        assert p.source == "a"
        assert p.target == "c"
        assert p.length == 2
        assert list(p.arcs()) == [("a", "b"), ("b", "c")]

    def test_too_short_rejected(self):
        with pytest.raises(InvalidDipathError):
            Dipath(["a"])
        with pytest.raises(InvalidDipathError):
            Dipath([])

    def test_repeated_vertex_rejected(self):
        with pytest.raises(InvalidDipathError):
            Dipath(["a", "b", "a"])

    def test_validation_against_graph(self):
        g = DiGraph(arcs=[("a", "b"), ("b", "c")])
        Dipath(["a", "b", "c"], graph=g)  # fine
        with pytest.raises(InvalidDipathError):
            Dipath(["a", "c"], graph=g)

    def test_from_arcs(self):
        p = Dipath.from_arcs([("a", "b"), ("b", "c")])
        assert p == Dipath(["a", "b", "c"])

    def test_from_arcs_non_consecutive_rejected(self):
        with pytest.raises(InvalidDipathError):
            Dipath.from_arcs([("a", "b"), ("c", "d")])

    def test_from_arcs_empty_rejected(self):
        with pytest.raises(InvalidDipathError):
            Dipath.from_arcs([])

    def test_single_arc(self):
        p = Dipath.single_arc("x", "y")
        assert p.length == 1

    def test_hash_and_equality(self):
        assert Dipath(["a", "b"]) == Dipath(["a", "b"])
        assert hash(Dipath(["a", "b"])) == hash(Dipath(["a", "b"]))
        assert Dipath(["a", "b"]) != Dipath(["b", "a"])
        assert len({Dipath(["a", "b"]), Dipath(["a", "b"])}) == 1


class TestQueries:
    def test_contains(self):
        p = Dipath(["a", "b", "c"])
        assert p.contains_vertex("b")
        assert not p.contains_vertex("z")
        assert p.contains_arc(("a", "b"))
        assert not p.contains_arc(("b", "a"))

    def test_index(self):
        p = Dipath(["a", "b", "c"])
        assert p.index("c") == 2

    def test_iteration_and_getitem(self):
        p = Dipath(["a", "b", "c"])
        assert list(p) == ["a", "b", "c"]
        assert p[1] == "b"
        assert len(p) == 3

    def test_is_valid_in(self):
        g = DiGraph(arcs=[("a", "b")])
        assert Dipath(["a", "b"]).is_valid_in(g)
        assert not Dipath(["b", "a"]).is_valid_in(g)


class TestConflicts:
    def test_conflicting_paths(self):
        p = Dipath(["a", "b", "c", "d"])
        q = Dipath(["x", "b", "c", "y"])
        assert p.conflicts_with(q)
        assert q.conflicts_with(p)
        assert p.shared_arcs(q) == {("b", "c")}

    def test_vertex_sharing_is_not_conflict(self):
        p = Dipath(["a", "b", "c"])
        q = Dipath(["x", "b", "y"])
        assert not p.conflicts_with(q)

    def test_intersection_intervals_single(self):
        p = Dipath(["a", "b", "c", "d", "e"])
        q = Dipath(["x", "b", "c", "d", "y"])
        intervals = p.intersection_intervals(q)
        assert len(intervals) == 1
        assert intervals[0] == Dipath(["b", "c", "d"])

    def test_intersection_intervals_multiple(self):
        # Shared arcs (a,b) and (c,d) with a detour in between: two intervals.
        p = Dipath(["a", "b", "c", "d"])
        q = Dipath(["z", "a", "b", "x", "c", "d"])
        intervals = p.intersection_intervals(q)
        assert len(intervals) == 2

    def test_no_intersection(self):
        assert Dipath(["a", "b"]).intersection_intervals(Dipath(["c", "d"])) == []


class TestEdits:
    def test_subpath(self):
        p = Dipath(["a", "b", "c", "d"])
        assert p.subpath("b", "d") == Dipath(["b", "c", "d"])
        with pytest.raises(InvalidDipathError):
            p.subpath("d", "b")

    def test_without_first_last_arc(self):
        p = Dipath(["a", "b", "c"])
        assert p.without_first_arc() == Dipath(["b", "c"])
        assert p.without_last_arc() == Dipath(["a", "b"])
        assert Dipath(["a", "b"]).without_first_arc() is None

    def test_without_arc_first(self):
        p = Dipath(["a", "b", "c"])
        pieces = p.without_arc(("a", "b"))
        assert pieces == [Dipath(["b", "c"])]

    def test_without_arc_middle_splits(self):
        p = Dipath(["a", "b", "c", "d"])
        pieces = p.without_arc(("b", "c"))
        assert pieces == [Dipath(["a", "b"]), Dipath(["c", "d"])]

    def test_without_arc_absent(self):
        p = Dipath(["a", "b"])
        assert p.without_arc(("x", "y")) == [p]

    def test_without_only_arc_vanishes(self):
        assert Dipath(["a", "b"]).without_arc(("a", "b")) == []

    def test_concatenate(self):
        p = Dipath(["a", "b"])
        q = Dipath(["b", "c"])
        assert p.concatenate(q) == Dipath(["a", "b", "c"])
        with pytest.raises(InvalidDipathError):
            q.concatenate(p)
