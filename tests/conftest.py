"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.dipaths.family import DipathFamily
from repro.generators.gadgets import (
    figure3_instance,
    figure5_instance,
    havet_instance,
    theorem2_gadget,
)
from repro.generators.pathological import pathological_instance
from repro.graphs.dag import DAG


@pytest.fixture
def simple_dag() -> DAG:
    """A small internal-cycle-free DAG used by many unit tests.

        a -> b -> c -> d
             b -> e
        f -> c
    """
    return DAG(arcs=[("a", "b"), ("b", "c"), ("c", "d"), ("b", "e"), ("f", "c")])


@pytest.fixture
def simple_family(simple_dag) -> DipathFamily:
    """Three dipaths on :func:`simple_dag` with load 2."""
    return DipathFamily(
        [["a", "b", "c", "d"], ["b", "c", "d"], ["f", "c", "d"]],
        graph=simple_dag)


@pytest.fixture
def figure3():
    """The Figure 3 instance ``(dag, family)``."""
    return figure3_instance()


@pytest.fixture
def figure5_k3():
    """The Theorem 2 / Figure 5 gadget with ``k = 3``."""
    return figure5_instance(3)


@pytest.fixture
def havet():
    """The Figure 9 (Havet) instance with one copy per dipath."""
    return havet_instance(1)


@pytest.fixture
def pathological_k4():
    """The Figure 1 instance with ``k = 4`` dipaths."""
    return pathological_instance(4)


@pytest.fixture
def gadget_dag() -> DAG:
    """The bare Theorem 2 gadget DAG with ``k = 3`` (one internal cycle, UPP)."""
    return theorem2_gadget(3)
