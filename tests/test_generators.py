"""Tests for the instance generators (gadgets, random DAGs, trees, families)."""

import pytest

from repro.coloring.exact import chromatic_number
from repro.conflict.conflict_graph import build_conflict_graph
from repro.cycles.internal import (
    has_internal_cycle,
    has_unique_internal_cycle,
    internal_cyclomatic_number,
)
from repro.generators.families import (
    all_to_all_family,
    family_with_target_load,
    multicast_family,
    random_request_family,
    random_walk_family,
)
from repro.generators.gadgets import (
    figure3_instance,
    figure5_instance,
    havet_instance,
    theorem2_gadget,
)
from repro.generators.pathological import pathological_instance
from repro.generators.random_dags import (
    random_dag,
    random_dag_with_internal_cycle,
    random_internal_cycle_free_dag,
    random_layered_dag,
    random_upp_one_cycle_dag,
)
from repro.generators.trees import (
    caterpillar,
    in_tree,
    out_path,
    out_tree,
    random_out_tree,
    spider,
)
from repro.graphs.properties import is_out_tree
from repro.upp.property_check import is_upp_dag


class TestPaperGadgets:
    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_pathological_claims(self, k):
        dag, family = pathological_instance(k)
        assert len(family) == k
        family.validate_against(dag)
        conflict = build_conflict_graph(family)
        assert conflict.is_complete()
        if k >= 2:
            assert family.load() == 2
            assert chromatic_number(conflict.adjacency()) == k

    def test_pathological_invalid_k(self):
        with pytest.raises(ValueError):
            pathological_instance(0)

    def test_figure3_claims(self):
        dag, family = figure3_instance()
        family.validate_against(dag)
        assert family.load() == 2
        conflict = build_conflict_graph(family)
        assert conflict.num_vertices == 5 and conflict.is_cycle_graph()
        assert has_internal_cycle(dag)

    @pytest.mark.parametrize("k", [2, 3, 4, 6])
    def test_figure5_claims(self, k):
        dag, family = figure5_instance(k)
        family.validate_against(dag)
        assert len(family) == 2 * k + 1
        assert family.load() == 2
        conflict = build_conflict_graph(family)
        assert conflict.is_cycle_graph()
        assert chromatic_number(conflict.adjacency()) == 3
        assert is_upp_dag(dag)
        assert has_unique_internal_cycle(dag)

    def test_figure5_invalid_k(self):
        with pytest.raises(ValueError):
            theorem2_gadget(1)

    @pytest.mark.parametrize("h", [1, 2, 3])
    def test_havet_claims(self, h):
        dag, family = havet_instance(h)
        family.validate_against(dag)
        assert len(family) == 8 * h
        assert family.load() == 2 * h
        assert is_upp_dag(dag)
        assert has_unique_internal_cycle(dag)

    def test_havet_base_conflict_structure(self):
        dag, family = havet_instance(1)
        conflict = build_conflict_graph(family)
        # Wagner graph: 8 vertices, cubic, 12 edges, chromatic number 3
        assert conflict.num_vertices == 8
        assert conflict.num_edges == 12
        assert conflict.degree_sequence() == [3] * 8
        assert chromatic_number(conflict.adjacency()) == 3
        assert not conflict.contains_k23()


class TestRandomDAGs:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_dag_is_dag(self, seed):
        dag = random_dag(25, 0.2, seed=seed)
        assert dag.is_valid()
        assert dag.num_vertices == 25

    def test_random_dag_probability_bounds(self):
        with pytest.raises(ValueError):
            random_dag(10, 1.5)
        assert random_dag(10, 0.0).num_arcs == 0

    @pytest.mark.parametrize("seed", range(6))
    def test_internal_cycle_free_generator(self, seed):
        dag = random_internal_cycle_free_dag(30, 45, seed=seed)
        assert dag.is_valid()
        assert not has_internal_cycle(dag)
        assert dag.num_arcs > 0

    @pytest.mark.parametrize("seed", range(3))
    def test_with_internal_cycle_generator(self, seed):
        dag = random_dag_with_internal_cycle(20, 0.25, seed=seed)
        assert dag.is_valid()
        assert has_internal_cycle(dag)

    def test_layered_dag(self):
        dag = random_layered_dag(4, 5, 0.3, seed=1)
        assert dag.is_valid()
        assert dag.num_vertices == 20
        # every non-final-layer vertex has at least one outgoing arc
        for layer in range(3):
            for pos in range(5):
                assert dag.out_degree((layer, pos)) >= 1

    @pytest.mark.parametrize("seed", range(4))
    def test_upp_one_cycle_generator(self, seed):
        dag = random_upp_one_cycle_dag(k=2 + seed % 2, extra_depth=2, seed=seed)
        assert dag.is_valid()
        assert is_upp_dag(dag)
        assert internal_cyclomatic_number(dag) == 1

    def test_reproducibility(self):
        a = random_internal_cycle_free_dag(20, 30, seed=42)
        b = random_internal_cycle_free_dag(20, 30, seed=42)
        assert a == b


class TestTrees:
    def test_out_tree_shape(self):
        tree = out_tree(2, 3)
        assert tree.num_vertices == 1 + 2 + 4 + 8
        assert is_out_tree(tree)
        assert not has_internal_cycle(tree)

    def test_in_tree(self):
        tree = in_tree(2, 2)
        assert len(tree.sinks()) == 1

    def test_random_out_tree(self):
        tree = random_out_tree(30, seed=5)
        assert tree.num_vertices == 30
        assert is_out_tree(tree)

    def test_out_path_spider_caterpillar(self):
        assert out_path(5).num_arcs == 5
        s = spider(3, 4)
        assert len(s.sinks()) == 3
        c = caterpillar(4, 2)
        assert c.is_valid()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            out_tree(0, 2)
        with pytest.raises(ValueError):
            random_out_tree(0)
        with pytest.raises(ValueError):
            spider(0, 1)
        with pytest.raises(ValueError):
            out_path(0)
        with pytest.raises(ValueError):
            caterpillar(0)


class TestFamilies:
    def test_random_walk_family(self, simple_dag):
        family = random_walk_family(simple_dag, 12, seed=0)
        assert len(family) == 12
        family.validate_against(simple_dag)

    def test_random_walk_family_reproducible(self, simple_dag):
        a = random_walk_family(simple_dag, 10, seed=3)
        b = random_walk_family(simple_dag, 10, seed=3)
        assert [p.vertices for p in a] == [p.vertices for p in b]

    def test_random_walk_needs_arcs(self):
        from repro.graphs.dag import DAG

        with pytest.raises(ValueError):
            random_walk_family(DAG(vertices=["a", "b"]), 3)

    def test_random_request_family(self, simple_dag):
        requests = random_request_family(simple_dag, 15, seed=1)
        assert len(requests) == 15

    def test_all_to_all_on_tree(self):
        tree = out_tree(2, 2)
        family = all_to_all_family(tree)
        family.validate_against(tree)
        # one dipath per (ancestor, strict descendant) pair:
        # root -> 6 descendants, each of the 2 children -> its 2 children
        assert len(family) == 6 + 2 * 2

    def test_multicast_family(self):
        tree = out_tree(2, 2)
        family = multicast_family(tree, origin=())
        assert len(family) == 6
        assert all(p.source == () for p in family)

    def test_family_with_target_load(self, simple_dag):
        family = family_with_target_load(simple_dag, 4, seed=2)
        assert family.load() <= 4
        assert family.load() >= 1
