"""The runtime audit layer: ``audit() -> list[str]`` (CONTRACTS.md).

Every redundant structure the online engine keeps — shard tracker,
per-fibre colour index, assigner usage counters, request map, conflict
adjacency — can be cross-checked on demand.  These tests corrupt each
one deliberately and assert the audit names it, then run full audited
simulations (including fault injection) and assert they stay silent.
"""

from __future__ import annotations

import pytest

from repro.dipaths.requests import Request
from repro.exceptions import AuditError
from repro.generators import (
    random_internal_cycle_free_dag,
    random_request_family,
)
from repro.graphs.digraph import DiGraph
from repro.online.events import (
    ARRIVAL,
    DEPARTURE,
    Event,
    cut_event,
    poisson_trace,
    repair_event,
    sort_events,
)
from repro.online.simulator import OnlineEngine, simulate_online


def diamond() -> DiGraph:
    graph = DiGraph()
    for v in range(4):
        graph.add_vertex(v)
    graph.add_arcs([(0, 1), (1, 3), (0, 2), (2, 3)])
    return graph


def loaded_engine(**kwargs) -> OnlineEngine:
    """A diamond engine carrying two overlapping lightpaths."""
    engine = OnlineEngine(diamond(), wavelengths=4, routing="k_shortest",
                          k_candidates=4, **kwargs)
    assert engine.admit(0, request=Request(0, 3)) is None
    assert engine.admit(1, request=Request(0, 3)) is None
    assert engine.admit(2, request=Request(0, 3)) is None
    engine.depart(1)
    return engine


# --------------------------------------------------------------------------- #
# clean engines audit clean
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("sharded", [False, True])
def test_engine_audit_clean_after_churn(sharded):
    engine = loaded_engine(sharded=sharded)
    assert engine.audit() == []


def test_component_audits_clean_on_live_engine():
    engine = loaded_engine(sharded=True)
    assert engine.conflict.audit() == []
    assert engine.assigner.color_index.audit() == []


# --------------------------------------------------------------------------- #
# corrupted components are named
# --------------------------------------------------------------------------- #
def test_corrupted_shard_tracker_is_detected():
    engine = loaded_engine(sharded=True)
    shard = engine.conflict.shard_of_member(engine.vertex_of[0])
    shard.member_mask = 0                       # zombie shard
    problems = engine.conflict.audit()
    assert problems and any("member_mask" in p for p in problems)
    assert any(p.startswith("tracker:") for p in engine.audit())


def test_corrupted_color_index_mask_is_detected():
    engine = loaded_engine(sharded=True)
    index = engine.assigner.color_index
    aid = next(a for a, per_color in enumerate(index._counts) if per_color)
    index._masks[aid] ^= 1 << 7                 # flip an unused colour bit
    problems = index.audit()
    assert problems and any("disagrees" in p for p in problems)
    assert any("colorindex" in p or "disagrees" in p
               for p in engine.audit())


def test_corrupted_color_index_count_is_detected():
    engine = loaded_engine(sharded=True)
    index = engine.assigner.color_index
    aid = next(a for a, per_color in enumerate(index._counts) if per_color)
    color = next(iter(index._counts[aid]))
    index._counts[aid][color] = 0               # record() never leaves zeros
    assert any("non-positive" in p for p in index.audit())
    assert engine.audit() != []


def test_corrupted_assigner_usage_is_detected():
    engine = loaded_engine()
    engine.assigner._usage[0] += 1
    problems = engine.audit()
    assert problems and any("usage" in p for p in problems)


def test_corrupted_request_map_is_detected():
    engine = loaded_engine()
    engine.vertex_of[99] = engine.vertex_of[0]  # two requests, one member
    problems = engine.audit()
    assert problems and any("request" in p or "member" in p
                            for p in problems)


def test_improper_recolouring_is_detected():
    engine = loaded_engine()
    first, second = engine.vertex_of[0], engine.vertex_of[2]
    engine.assigner._color[second] = engine.assigner._color[first]
    # keep the usage counters self-consistent so only properness trips
    usage = engine.assigner._usage
    usage[engine.assigner._color[first]] += 1
    for color in range(len(usage)):
        if usage[color] and color != engine.assigner._color[first]:
            usage[color] -= 1
            break
    assert engine.audit() != []


# --------------------------------------------------------------------------- #
# simulate_online(audit_every=...)
# --------------------------------------------------------------------------- #
def test_audit_every_validates_its_argument():
    with pytest.raises(ValueError):
        simulate_online(diamond(), [], wavelengths=2, audit_every=0)


def test_audit_every_raises_audit_error_on_violation(monkeypatch):
    monkeypatch.setattr(OnlineEngine, "audit", lambda self: ["boom"])
    events = [Event(0.0, ARRIVAL, 0, request=Request(0, 3))]
    with pytest.raises(AuditError) as excinfo:
        simulate_online(diamond(), events, wavelengths=4,
                        routing="k_shortest", audit_every=1)
    assert excinfo.value.problems == ["boom"]


def test_audited_fault_injection_run_is_clean():
    graph = diamond()
    events = sort_events([
        Event(0.0, ARRIVAL, 0, request=Request(0, 3)),
        Event(0.5, ARRIVAL, 1, request=Request(0, 3)),
        cut_event(1.0, (0, 1), fault_id=100),
        Event(1.5, ARRIVAL, 2, request=Request(0, 3)),
        repair_event(2.0, (0, 1), fault_id=101),
        Event(2.5, ARRIVAL, 3, request=Request(0, 3)),
        Event(3.0, DEPARTURE, 0),
        Event(3.5, DEPARTURE, 2),
    ])
    # audit after every event, serial and sharded, with defrag on top
    for sharded in (False, True):
        result = simulate_online(graph, events, wavelengths=4,
                                 routing="k_shortest", sharded=sharded,
                                 defrag_every=3, audit_every=1)
        assert result.fibre_cuts == 1


def test_audit_every_matches_unaudited_decisions():
    graph = random_internal_cycle_free_dag(24, 36, seed=3)
    trace = poisson_trace(random_request_family(graph, 18, seed=3), 90,
                          arrival_rate=3.0, mean_holding=4.0, seed=3)
    plain = simulate_online(graph, trace, 8, sharded=True)
    audited = simulate_online(graph, trace, 8, sharded=True, audit_every=7)
    assert audited.accepted == plain.accepted
    assert audited.blocked == plain.blocked
    assert audited.wavelengths_used == plain.wavelengths_used


# --------------------------------------------------------------------------- #
# 50-seed sweep, faults included (the acceptance criterion)
# --------------------------------------------------------------------------- #
def test_fifty_seed_audited_sweep_including_faults():
    for seed in range(50):
        graph = random_internal_cycle_free_dag(20, 30, seed=seed)
        events = list(poisson_trace(
            random_request_family(graph, 12, seed=seed), 40,
            arrival_rate=2.5, mean_holding=3.0, seed=seed))
        if seed % 2:                            # fault scenario on odd seeds
            arc = next(iter(graph.arcs()))
            horizon = max(e.time for e in events)
            events = sort_events(events + [
                cut_event(horizon / 3, arc, fault_id=1000),
                repair_event(2 * horizon / 3, arc, fault_id=1001),
            ])
        simulate_online(graph, events, 6, sharded=bool(seed % 3),
                        defrag_every=None if seed % 5 else 25,
                        audit_every=10)
