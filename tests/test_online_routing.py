"""Tests for adaptive online routing (repro.online.routing), per-event
rejection reasons and the what-if transaction API surface.

The differential harness (tests/test_differential_online.py) covers the
bit-identity contract; these tests pin the behavioural corners: which
route each policy picks under load, how blocked arrivals are classified
(no-route vs no-wavelength), and how the transaction object reacts to
misuse.
"""

from __future__ import annotations

import pytest

from repro.conflict import DynamicConflictGraph
from repro.dipaths.dipath import Dipath
from repro.dipaths.family import DipathFamily
from repro.dipaths.requests import Request
from repro.exceptions import RoutingError
from repro.graphs.digraph import DiGraph
from repro.graphs.traversal import k_shortest_dipaths
from repro.online import (
    ARRIVAL,
    Event,
    NO_ROUTE,
    NO_WAVELENGTH,
    OnlineWavelengthAssigner,
    WhatIfTransaction,
    admit_best,
    make_online_router,
    replay_trace,
    simulate_online,
)


def diamond():
    """a -> b -> d and a -> c -> d: two arc-disjoint routes per request."""
    return DiGraph(arcs=[("a", "b"), ("b", "d"), ("a", "c"), ("c", "d")])


def diamond_with_detour():
    """The diamond plus a 3-hop detour a -> x -> y -> d."""
    g = diamond()
    for u, v in [("a", "x"), ("x", "y"), ("y", "d")]:
        g.add_arc(u, v)
    return g


class TestKShortestDipaths:
    def test_orders_paths_shortest_first(self):
        paths = k_shortest_dipaths(diamond_with_detour(), "a", "d", 5)
        assert len(paths) == 3
        assert sorted(map(len, paths)) == [3, 3, 4]
        assert len(paths[0]) == 3 and len(paths[-1]) == 4

    def test_respects_k(self):
        assert len(k_shortest_dipaths(diamond_with_detour(), "a", "d", 2)) == 2

    def test_unreachable_and_identical_endpoints(self):
        g = diamond()
        assert k_shortest_dipaths(g, "d", "a", 3) == []
        assert k_shortest_dipaths(g, "a", "a", 3) == [["a"]]

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            k_shortest_dipaths(diamond(), "a", "d", 0)


class TestRouters:
    def _router(self, name, graph=None, family=None, **kwargs):
        graph = graph or diamond()
        family = family if family is not None else DipathFamily()
        return make_online_router(graph, name, family=family, **kwargs), family

    def test_unknown_routing_rejected(self):
        with pytest.raises(ValueError):
            make_online_router(diamond(), "mystery", family=DipathFamily())

    def test_adaptive_routing_requires_family(self):
        with pytest.raises(ValueError):
            make_online_router(diamond(), "least_loaded")

    def test_widest_requires_budget(self):
        with pytest.raises(ValueError):
            make_online_router(diamond(), "widest", family=DipathFamily())

    def test_static_router_caches_and_returns_none_off_topology(self):
        router, _ = self._router("shortest")
        assert router.route(Request("a", "d")).vertices[0] == "a"
        assert router.route(Request("d", "a")) is None     # unreachable

    def test_unique_router_raises_on_ambiguity(self):
        router, _ = self._router("unique")
        with pytest.raises(RoutingError):
            router.route(Request("a", "d"))                # two routes

    def test_least_loaded_steers_around_congestion(self):
        router, family = self._router("least_loaded")
        first = router.route(Request("a", "d"))
        family.add(first)                                  # congest it
        second = router.route(Request("a", "d"))
        assert set(first.arcs()).isdisjoint(second.arcs())

    def test_widest_prefers_residual_capacity(self):
        router, family = self._router("widest", wavelengths=2)
        first = router.route(Request("a", "d"))
        family.add(first)
        family.add(first)                                  # saturated at W=2
        second = router.route(Request("a", "d"))
        assert set(first.arcs()).isdisjoint(second.arcs())

    def test_widest_still_routes_through_saturation(self):
        g = DiGraph(arcs=[("a", "b"), ("b", "c")])
        family = DipathFamily([["a", "b", "c"]] * 3)
        router = make_online_router(g, "widest", family=family, wavelengths=2)
        assert router.route(Request("a", "c")) is not None  # blocked later
        assert router.route(Request("c", "a")) is None      # truly no route

    def test_k_shortest_picks_least_loaded_candidate(self):
        router, family = self._router("k_shortest",
                                      graph=diamond_with_detour(), k=3)
        cands = router.candidates(Request("a", "d"))
        assert len(cands) == 3
        first = router.route(Request("a", "d"))
        assert len(first.vertices) == 3                    # a 2-hop route
        family.add(first)
        second = router.route(Request("a", "d"))
        assert set(first.arcs()).isdisjoint(second.arcs())
        assert len(second.vertices) == 3                   # the other 2-hop

    def test_k_shortest_candidates_are_cached(self):
        router, _ = self._router("k_shortest", k=2)
        a = router.candidates(Request("a", "d"))
        b = router.candidates(Request("a", "d"))
        assert a is b


class TestRejectionReasons:
    def test_no_route_vs_no_wavelength(self):
        """Regression: the two blocking causes are reported separately."""
        g = DiGraph(arcs=[("a", "b")])
        g.add_vertex("z")
        trace = [
            Event(0.0, ARRIVAL, 0, request=Request("a", "b")),   # admitted
            Event(1.0, ARRIVAL, 1, request=Request("a", "b")),   # no colour
            Event(2.0, ARRIVAL, 2, request=Request("a", "z")),   # no route
        ]
        result = simulate_online(g, trace, 1)
        assert result.accepted == [0]
        assert result.blocked == [1, 2]
        assert result.rejections == {1: NO_WAVELENGTH, 2: NO_ROUTE}
        assert result.blocked_no_wavelength == [1]
        assert result.blocked_no_route == [2]

    def test_unroutable_requests_block_instead_of_raising(self):
        g = DiGraph(arcs=[("a", "b")])
        trace = [Event(0.0, ARRIVAL, 0, request=Request("b", "a"))]
        for routing in ("shortest", "least_loaded", "k_shortest", "widest"):
            result = simulate_online(g, trace, 2, routing=routing)
            assert result.blocked == [0]
            assert result.rejections[0] == NO_ROUTE

    def test_adaptive_routing_lowers_blocking_on_diamond(self):
        # four identical requests, W = 2: static shortest routing stacks
        # them all on one route (2 admitted), load-aware routing splits
        # them across the two arc-disjoint routes (4 admitted).
        g = diamond()
        trace = [Event(float(i), ARRIVAL, i, request=Request("a", "d"))
                 for i in range(4)]
        static = simulate_online(g, trace, 2, routing="shortest")
        assert len(static.accepted) == 2
        for routing in ("least_loaded", "k_shortest", "widest"):
            adaptive = simulate_online(g, trace, 2, routing=routing)
            assert adaptive.blocked == [], routing

    def test_speculative_matches_direct_on_single_candidate(self):
        g = diamond()
        family = DipathFamily([["a", "b", "d"], ["a", "c", "d"]] * 2)
        trace = replay_trace(family)
        direct = simulate_online(g, trace, 2)
        speculative = simulate_online(g, trace, 2, speculative=True)
        assert (direct.accepted, direct.blocked) == \
            (speculative.accepted, speculative.blocked)

    def test_speculative_k_shortest_spreads_load(self):
        g = diamond()
        trace = [Event(float(i), ARRIVAL, i, request=Request("a", "d"))
                 for i in range(4)]
        result = simulate_online(g, trace, 2, routing="k_shortest",
                                 speculative=True)
        assert result.blocked == []
        assert result.speculative and result.routing == "k_shortest"


class TestTransactionSurface:
    def _engine(self):
        conflict = DynamicConflictGraph(DipathFamily())
        assigner = OnlineWavelengthAssigner(2)
        return conflict, assigner

    def test_closed_transaction_rejects_operations(self):
        conflict, assigner = self._engine()
        tx = WhatIfTransaction(conflict, assigner)
        tx.commit()
        assert not tx.is_open
        for call in (lambda: tx.add_dipath(["a", "b"]), tx.commit,
                     tx.rollback, lambda: tx.assign(0)):
            with pytest.raises(RuntimeError):
                call()

    def test_transactions_nest_and_resolve_lifo(self):
        conflict, assigner = self._engine()
        with WhatIfTransaction(conflict, assigner) as outer:
            inner = WhatIfTransaction(conflict, assigner)
            inner.add_dipath(["a", "b"])
            with pytest.raises(RuntimeError):
                outer.rollback()                    # child still open
            inner.commit()                          # merges into outer
            assert len(conflict.family) == 1
        # outer rollback undoes the committed child too
        assert len(conflict.family) == 0

    def test_structure_only_transaction(self):
        conflict, _ = self._engine()
        with WhatIfTransaction(conflict) as tx:     # no assigner
            idx = tx.add_dipath(["a", "b"])
            with pytest.raises(RuntimeError):
                tx.assign(idx)
        assert len(conflict.family) == 0

    def test_admit_best_prefers_spread(self):
        conflict, assigner = self._engine()
        taken = conflict.add_dipath(["a", "b", "d"])
        assert assigner.assign(conflict, taken) is not None
        decision = admit_best(conflict, assigner,
                              [Dipath(["a", "b", "d"]),
                               Dipath(["a", "c", "d"])])
        assert decision is not None
        assert decision.candidate == 1              # the empty route wins
        assert conflict.family.is_active(decision.index)

    def test_admit_best_returns_none_when_budget_exhausted(self):
        conflict, assigner = self._engine()
        for _ in range(2):
            idx = conflict.add_dipath(["a", "b"])
            assert assigner.assign(conflict, idx) is not None
        before = len(conflict.family)
        assert admit_best(conflict, assigner, [Dipath(["a", "b"])]) is None
        assert len(conflict.family) == before       # nothing leaked

    def test_assigner_checkpoint_misuse(self):
        _, assigner = self._engine()
        token = assigner.checkpoint()
        inner = assigner.checkpoint()               # checkpoints stack
        with pytest.raises(RuntimeError):
            assigner.commit(token)                  # but resolve LIFO
        with pytest.raises(RuntimeError):
            assigner.rollback(token)
        assigner.rollback(inner)
        assigner.commit(token)
        with pytest.raises(RuntimeError):
            assigner.rollback(token)                # already consumed
