"""Property-based tests (hypothesis) for the core invariants.

These exercise the paper's claims and the library's invariants on randomly
generated structures:

* Theorem 1: on DAGs without internal cycle, the constructive colouring is
  proper and uses exactly ``pi`` colours — and the exact solver agrees.
* ``pi <= omega <= w`` always; equality of the first pair on UPP-DAGs.
* Colouring algorithms always produce proper colourings; the exact solver is
  never beaten by a heuristic.
* Internal-cycle detection agrees with a brute-force definition check.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.coloring.dsatur import dsatur_coloring
from repro.coloring.exact import chromatic_number, optimal_coloring
from repro.coloring.greedy import greedy_coloring
from repro.coloring.verify import is_proper_coloring, num_colors
from repro.conflict.cliques import clique_number
from repro.conflict.conflict_graph import build_conflict_graph
from repro.core.theorem1 import color_dipaths_theorem1
from repro.cycles.internal import (
    enumerate_internal_cycles,
    has_internal_cycle,
    is_internal_cycle,
)
from repro.dipaths.dipath import Dipath
from repro.dipaths.family import DipathFamily
from repro.generators.families import random_walk_family
from repro.generators.random_dags import (
    random_dag,
    random_internal_cycle_free_dag,
)
from repro.graphs.dag import DAG
from repro.graphs.traversal import topological_order

# Keep the per-example work small: hypothesis runs many examples.
SETTINGS = dict(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


# --------------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------------- #
@st.composite
def small_adjacency(draw):
    """A random undirected graph as an adjacency mapping on 1..10 vertices."""
    n = draw(st.integers(min_value=1, max_value=10))
    adjacency = {v: set() for v in range(n)}
    for u in range(n):
        for v in range(u + 1, n):
            if draw(st.booleans()):
                adjacency[u].add(v)
                adjacency[v].add(u)
    return adjacency


@st.composite
def icf_dag_and_family(draw):
    """A random internal-cycle-free DAG together with a random-walk family."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n = draw(st.integers(min_value=5, max_value=25))
    m = draw(st.integers(min_value=n // 2, max_value=2 * n))
    num_paths = draw(st.integers(min_value=1, max_value=30))
    dag = random_internal_cycle_free_dag(n, m, seed=seed)
    if dag.num_arcs == 0:
        dag.add_arc(0, 1)
    family = random_walk_family(dag, num_paths, seed=seed)
    return dag, family


@st.composite
def any_dag_and_family(draw):
    """A random DAG (any kind) together with a random-walk family."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n = draw(st.integers(min_value=4, max_value=18))
    p = draw(st.floats(min_value=0.1, max_value=0.5))
    dag = random_dag(n, p, seed=seed)
    if dag.num_arcs == 0:
        dag.add_arc(0, 1)
    family = random_walk_family(dag, draw(st.integers(min_value=1, max_value=20)),
                                seed=seed)
    return dag, family


# --------------------------------------------------------------------------- #
# colouring invariants
# --------------------------------------------------------------------------- #
@settings(**SETTINGS)
@given(small_adjacency())
def test_coloring_algorithms_always_proper(adjacency):
    for coloring in (greedy_coloring(adjacency), dsatur_coloring(adjacency),
                     optimal_coloring(adjacency)):
        assert is_proper_coloring(adjacency, coloring)


@settings(**SETTINGS)
@given(small_adjacency())
def test_exact_is_never_beaten(adjacency):
    exact = chromatic_number(adjacency)
    assert exact <= num_colors(dsatur_coloring(adjacency))
    assert exact <= num_colors(greedy_coloring(adjacency))


@settings(**SETTINGS)
@given(small_adjacency())
def test_exact_at_least_max_degree_bound(adjacency):
    # chi <= Delta + 1 (Brooks-style easy bound) and chi >= 1 when nonempty
    exact = chromatic_number(adjacency)
    max_degree = max((len(nbrs) for nbrs in adjacency.values()), default=0)
    assert 1 <= exact <= max_degree + 1


# --------------------------------------------------------------------------- #
# theorem 1 and load invariants
# --------------------------------------------------------------------------- #
@settings(**SETTINGS)
@given(icf_dag_and_family())
def test_theorem1_equality_on_random_instances(data):
    dag, family = data
    assert not has_internal_cycle(dag)
    coloring = color_dipaths_theorem1(dag, family)
    conflict = build_conflict_graph(family)
    assert is_proper_coloring(conflict.adjacency(), coloring)
    assert num_colors(coloring) == family.load()


@settings(**SETTINGS)
@given(any_dag_and_family())
def test_load_clique_wavelength_chain(data):
    dag, family = data
    if len(family) == 0:
        return
    conflict = build_conflict_graph(family)
    pi = family.load()
    omega = clique_number(conflict)
    w = chromatic_number(conflict.adjacency())
    assert pi <= omega <= w


@settings(**SETTINGS)
@given(any_dag_and_family())
def test_load_equals_max_arc_multiplicity(data):
    _, family = data
    per_arc = family.load_per_arc()
    assert family.load() == (max(per_arc.values()) if per_arc else 0)
    # recompute the load naively from the dipaths themselves
    naive = {}
    for p in family:
        for arc in p.arcs():
            naive[arc] = naive.get(arc, 0) + 1
    assert naive == per_arc


# --------------------------------------------------------------------------- #
# structure invariants
# --------------------------------------------------------------------------- #
@settings(**SETTINGS)
@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=4, max_value=14),
       st.floats(min_value=0.1, max_value=0.6))
def test_internal_cycle_detection_matches_enumeration(seed, n, p):
    dag = random_dag(n, p, seed=seed)
    cycles = enumerate_internal_cycles(dag, limit=200)
    assert has_internal_cycle(dag) == (len(cycles) > 0)
    for cycle in cycles[:5]:
        assert is_internal_cycle(dag, cycle)


@settings(**SETTINGS)
@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=5, max_value=30),
       st.floats(min_value=0.05, max_value=0.4))
def test_topological_order_is_consistent(seed, n, p):
    dag = random_dag(n, p, seed=seed)
    order = topological_order(dag)
    position = {v: i for i, v in enumerate(order)}
    assert all(position[u] < position[v] for u, v in dag.arcs())


@settings(**SETTINGS)
@given(icf_dag_and_family())
def test_conflict_graph_matches_pairwise_definition(data):
    _, family = data
    conflict = build_conflict_graph(family)
    for i in range(len(family)):
        for j in range(i + 1, len(family)):
            expected = family[i].conflicts_with(family[j])
            assert conflict.has_edge(i, j) == expected


@settings(**SETTINGS)
@given(st.lists(st.lists(st.integers(min_value=0, max_value=12),
                         min_size=2, max_size=6, unique=True),
                min_size=1, max_size=10))
def test_family_replication_scales_load(sequences):
    paths = [Dipath(seq) for seq in sequences]
    family = DipathFamily(paths)
    replicated = family.replicate(3)
    assert replicated.load() == 3 * family.load()
    assert len(replicated) == 3 * len(family)
