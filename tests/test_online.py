"""Tests for the online RWA engine (repro.online).

Covers the three equivalence contracts of the subsystem:

* randomized add/remove sequences leave :class:`DynamicConflictGraph`
  identical to a from-scratch :func:`build_conflict_graph` (50+ seeded
  instances);
* the online simulator with a pure-arrival replay trace reproduces the
  historical per-fibre first-fit admission loop exactly (blocking
  decisions and wavelength counts), which makes ``simulate_admission`` a
  faithful front-end;
* the traffic generators are deterministic under equal seeds (the
  simulator's reproducibility depends on it).
"""

import random

import pytest

from repro.conflict import DynamicConflictGraph, build_conflict_graph
from repro.coloring.verify import is_proper_coloring
from repro.dipaths.dipath import Dipath
from repro.dipaths.family import DipathFamily
from repro.dipaths.requests import RequestFamily
from repro.dipaths.routing import route_all
from repro.exceptions import SimulationError
from repro.generators.families import random_walk_family
from repro.generators.random_dags import random_dag
from repro.generators.trees import out_tree
from repro.online import (
    ARRIVAL,
    DEPARTURE,
    Event,
    FIBRE_CUT,
    NO_ROUTE,
    NO_WAVELENGTH,
    OnlineResult,
    OnlineWavelengthAssigner,
    POLICIES,
    SHED,
    churn_trace,
    poisson_trace,
    replay_trace,
    simulate_online,
    sort_events,
)
from repro.graphs.dag import DAG
from repro.optical.network import OpticalNetwork
from repro.optical.simulation import simulate_admission
from repro.optical.traffic import (
    hotspot_traffic,
    traffic_rng,
    uniform_random_traffic,
)


def _graphs_equal(dynamic, family):
    """Dynamic graph == from-scratch graphs (same labels and dense)."""
    rebuilt = build_conflict_graph(family)
    if sorted(dynamic.edges()) != sorted(rebuilt.edges()):
        return False
    if dynamic.vertices() != rebuilt.vertices():
        return False
    # also against a densely re-indexed fresh family of the active dipaths
    active = family.active_indices()
    fresh = build_conflict_graph(
        DipathFamily([family[i] for i in active]))
    remap = {slot: pos for pos, slot in enumerate(active)}
    relabelled = sorted((min(remap[u], remap[v]), max(remap[u], remap[v]))
                        for u, v in dynamic.edges())
    return relabelled == sorted(fresh.edges())


class TestDynamicConflictGraph:
    def test_starts_from_existing_family(self, simple_family):
        dyn = DynamicConflictGraph(simple_family)
        assert sorted(dyn.edges()) == [(0, 1), (0, 2), (1, 2)]
        assert dyn.family is simple_family

    def test_add_and_remove_patch_adjacency(self, simple_family):
        dyn = DynamicConflictGraph(simple_family)
        idx = dyn.add_dipath(["b", "e"])
        assert idx == 3
        assert dyn.degree(3) == 0
        dyn.remove_dipath(0)
        assert sorted(dyn.edges()) == [(1, 2)]
        assert dyn.vertices() == [1, 2, 3]
        with pytest.raises(IndexError):
            dyn.remove_dipath(0)

    def test_randomized_equivalence_50_instances(self):
        """Random churn == from-scratch rebuild, 50+ seeded instances."""
        checked = 0
        for seed in range(50):
            rng = random.Random(1000 + seed)
            graph = random_dag(12, 0.25, seed=seed)
            pool = random_walk_family(graph, 30, seed=seed)
            if len(pool) == 0:
                continue
            paths = list(pool)
            dyn = DynamicConflictGraph(DipathFamily())
            active = []
            for _ in range(80):
                if active and rng.random() < 0.4:
                    victim = rng.choice(active)
                    active.remove(victim)
                    dyn.remove_dipath(victim)
                else:
                    active.append(dyn.add_dipath(rng.choice(paths)))
            assert _graphs_equal(dyn, dyn.family), f"seed {seed}"
            assert dyn.family.mask_rebuilds <= 1
            checked += 1
        assert checked >= 50

    def test_no_rebuild_during_churn(self):
        dyn = DynamicConflictGraph(DipathFamily([["a", "b"], ["b", "c"]]))
        assert dyn.family.mask_rebuilds == 1
        for _ in range(10):
            idx = dyn.add_dipath(["a", "b", "c"])
            dyn.remove_dipath(idx)
        assert dyn.family.mask_rebuilds == 1


class TestSparseFamiliesInOfflineConsumers:
    """Offline algorithms keep working on families with freed slots."""

    def _holed_family(self, graph):
        fam = DipathFamily(graph=graph)
        dyn = DynamicConflictGraph(fam)
        paths = list(random_walk_family(graph, 12, seed=1))
        slots = [dyn.add_dipath(p) for p in paths]
        dyn.remove_dipath(slots[0])
        dyn.remove_dipath(slots[5])
        return fam

    def test_assign_wavelengths_on_holed_family(self):
        from repro.core.wavelengths import assign_wavelengths

        graph = random_dag(12, 0.3, seed=6)
        fam = self._holed_family(graph)
        for method in ("theorem1", "dsatur", "exact"):
            solution = assign_wavelengths(graph, fam, method=method)
            assert set(solution.coloring) == set(fam.active_indices())

    def test_grooming_on_holed_family(self):
        from repro.optical.grooming import (
            adm_count,
            groom_requests,
            max_requests_within_wavelengths,
        )

        fam = DipathFamily([["a", "b"], ["a", "b"], ["b", "c"]])
        fam.remove(0)
        selected = max_requests_within_wavelengths(fam, 1)
        assert selected == [1, 2]
        result = groom_requests(fam, 1)
        assert sorted(i for ws in result.assignment.values() for i in ws) \
            == [1, 2]
        assert adm_count(fam, {1: 0, 2: 0}) == 3   # shared ADM at b

    def test_rooted_tree_colouring_on_holed_family(self):
        from repro.core.rooted_trees import color_dipaths_rooted_tree

        tree = out_tree(2, 3)
        fam = DipathFamily(graph=tree)
        for _ in range(2):
            fam.add([(), (0,), (0, 0)])
        fam.add([(0,), (0, 1)])
        fam.remove(0)
        coloring = color_dipaths_rooted_tree(tree, fam)
        assert set(coloring) == {1, 2}
        assert coloring[1] != coloring[2] or fam.conflicts_of(1) == []

    def test_replication_structure_on_holed_family(self):
        from repro.conflict.covering import replication_structure

        fam = DipathFamily([["a", "b"], ["a", "b"], ["b", "c"], ["b", "c"]])
        fam.remove(1)
        fam.remove(2)
        structure = replication_structure(fam)
        assert structure is not None
        representatives, copies = structure
        assert copies == 1
        assert sorted(representatives) == [0, 3]


def _reference_admission(graph, requests, wavelengths, routing):
    """The seed per-fibre first-fit loop, kept as the oracle."""
    family = route_all(graph, requests, policy=routing)
    network = OpticalNetwork.from_digraph(graph, capacity=wavelengths)
    accepted, blocked = [], []
    for idx, dipath in enumerate(family):
        chosen = None
        for wavelength in range(wavelengths):
            if all(network.is_wavelength_free(arc, wavelength)
                   for arc in dipath.arcs()):
                chosen = wavelength
                break
        if chosen is None:
            blocked.append(idx)
        else:
            network.provision(dipath, chosen, request_id=idx)
            accepted.append(idx)
    return accepted, blocked, network.wavelengths_used()


class TestReplayEquivalence:
    @pytest.mark.parametrize("wavelengths", [1, 2, 4])
    def test_matches_per_fibre_reference_on_random_dags(self, wavelengths):
        for seed in range(12):
            graph = random_dag(14, 0.2, seed=seed)
            try:
                traffic = uniform_random_traffic(graph, 40, seed=seed)
            except ValueError:
                continue
            ref = _reference_admission(graph, traffic, wavelengths, "shortest")
            got = simulate_admission(graph, traffic, wavelengths,
                                     routing="shortest")
            assert (got.accepted, got.blocked, got.wavelengths_used) == ref

    def test_matches_reference_on_tree_unique_routing(self):
        tree = out_tree(2, 3)
        traffic = RequestFamily.all_to_all(tree)
        for wavelengths in (1, 2, traffic.total_demand()):
            ref = _reference_admission(tree, traffic, wavelengths, "unique")
            got = simulate_admission(tree, traffic, wavelengths,
                                     routing="unique")
            assert (got.accepted, got.blocked, got.wavelengths_used) == ref

    def test_simulate_online_replay_of_prerouted_family(self):
        graph = random_dag(10, 0.3, seed=2)
        traffic = uniform_random_traffic(graph, 25, seed=2)
        family = route_all(graph, traffic, policy="shortest")
        ref = _reference_admission(graph, traffic, 3, "shortest")
        result = simulate_online(graph, replay_trace(family), 3)
        assert (result.accepted, result.blocked,
                result.wavelengths_used) == ref
        assert result.blocking_rate == pytest.approx(
            len(ref[1]) / (len(ref[0]) + len(ref[1])))


class TestPolicies:
    def _family_of_disjoint_paths(self):
        return DipathFamily([["a", "b"], ["c", "d"], ["e", "f"]])

    def test_first_fit_packs_least_used_spreads(self):
        graph = random_dag(6, 0.5, seed=0)   # topology unused for prerouted
        family = self._family_of_disjoint_paths()
        ff = simulate_online(graph, replay_trace(family), 3,
                             policy="first_fit")
        lu = simulate_online(graph, replay_trace(family), 3,
                             policy="least_used")
        assert ff.wavelengths_used == 1      # disjoint paths all take colour 0
        assert lu.wavelengths_used == 3      # least-used rotates the spectrum

    def test_policy_parameter_selects_policy(self):
        """simulate_admission(policy=...) picks the wavelength policy."""
        graph = out_tree(3, 1)               # root -> three leaves, disjoint
        traffic = RequestFamily.multicast(graph, ())
        assert traffic.total_demand() == 3
        ff = simulate_admission(graph, traffic, 3, routing="unique")
        lu = simulate_admission(graph, traffic, 3, routing="unique",
                                policy="least_used")
        assert ff.blocked == [] and lu.blocked == []
        assert ff.wavelengths_used == 1
        assert lu.wavelengths_used == 3

    def test_first_fit_flag_deprecated_but_equivalent(self):
        """The legacy boolean warns and maps onto the policy names."""
        graph = out_tree(3, 1)
        traffic = RequestFamily.multicast(graph, ())
        with pytest.warns(DeprecationWarning, match="least-used"):
            legacy_lu = simulate_admission(graph, traffic, 3,
                                           routing="unique", first_fit=False)
        with pytest.warns(DeprecationWarning):
            legacy_ff = simulate_admission(graph, traffic, 3,
                                           routing="unique", first_fit=True)
        lu = simulate_admission(graph, traffic, 3, routing="unique",
                                policy="least_used")
        ff = simulate_admission(graph, traffic, 3, routing="unique")
        assert legacy_lu == lu
        assert legacy_ff == ff
        with pytest.raises(TypeError):
            simulate_admission(graph, traffic, 3, routing="unique",
                               policy="least_used", first_fit=False)

    def test_all_policies_produce_proper_colourings(self):
        graph = random_dag(14, 0.25, seed=7)
        traffic = uniform_random_traffic(graph, 60, seed=7)
        pool = route_all(graph, traffic, policy="shortest")
        trace = churn_trace(pool, 20, 40, seed=7)
        for policy in POLICIES:
            dyn = DynamicConflictGraph(DipathFamily())
            assigner = OnlineWavelengthAssigner(4, policy=policy, seed=3)
            slots = {}
            for event in trace:
                if event.kind == ARRIVAL:
                    idx = dyn.add_dipath(event.dipath)
                    if assigner.assign(dyn, idx) is None:
                        dyn.remove_dipath(idx)
                    else:
                        slots[event.request_id] = idx
                elif event.request_id in slots:
                    idx = slots.pop(event.request_id)
                    assigner.release(idx)
                    dyn.remove_dipath(idx)
            coloring = dict(assigner.coloring)
            assert set(coloring) == set(dyn.vertices())
            assert is_proper_coloring(dyn.adjacency(), coloring)
            assert all(0 <= c < 4 for c in coloring.values())

    def test_random_policy_is_seeded(self):
        graph = random_dag(10, 0.3, seed=4)
        traffic = uniform_random_traffic(graph, 30, seed=4)
        pool = route_all(graph, traffic, policy="shortest")
        trace = replay_trace(pool)
        a = simulate_online(graph, trace, 4, policy="random", seed=9)
        b = simulate_online(graph, trace, 4, policy="random", seed=9)
        assert (a.accepted, a.blocked, a.wavelengths_used) == \
            (b.accepted, b.blocked, b.wavelengths_used)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            OnlineWavelengthAssigner(2, policy="mystery")
        with pytest.raises(ValueError):
            OnlineWavelengthAssigner(0)


class TestKempeRepair:
    def test_repair_rescues_blocked_arrival(self):
        # u1=[a,b] and u2=[b,c] are disjoint; v=[a,b,c] conflicts with both.
        # least_used gives u1 -> 0, u2 -> 1, so v is blocked at W=2 unless
        # the Kempe swap recolours u1 to 1 and frees colour 0.
        graph = random_dag(4, 0.5, seed=0)   # unused (prerouted arrivals)
        family = DipathFamily([["a", "b"], ["b", "c"], ["a", "b", "c"]])
        trace = replay_trace(family)
        plain = simulate_online(graph, trace, 2, policy="least_used")
        assert plain.blocked == [2]
        repaired = simulate_online(graph, trace, 2, policy="least_used",
                                   kempe_repair=True)
        assert repaired.blocked == []
        assert repaired.kempe_repairs == 1
        assert repaired.wavelengths_used == 2

    def test_repair_cannot_exceed_budget(self):
        # three pairwise-conflicting copies of one arc: chi = 3 > W = 2,
        # no swap can help.
        graph = random_dag(4, 0.5, seed=0)
        family = DipathFamily([["a", "b"], ["a", "b"], ["a", "b"]])
        result = simulate_online(graph, replay_trace(family), 2,
                                 policy="first_fit", kempe_repair=True)
        assert result.blocked == [2]
        assert result.kempe_repairs == 0

    def test_repaired_run_keeps_colouring_proper(self):
        graph = random_dag(16, 0.2, seed=11)
        traffic = hotspot_traffic(graph, 80, num_hotspots=2, seed=11)
        pool = route_all(graph, traffic, policy="shortest")
        trace = poisson_trace(traffic, 120, arrival_rate=3.0,
                              mean_holding=4.0, seed=11)
        offline_load = DipathFamily(list(pool)).load()
        wavelengths = max(2, offline_load // 2)
        result = simulate_online(graph, trace, wavelengths,
                                 policy="first_fit", kempe_repair=True)
        # every accepted request was actually colourable within the budget
        assert result.wavelengths_used <= wavelengths
        assert len(result.accepted) + len(result.blocked) == 120


class TestEvents:
    def test_replay_trace_expands_multiplicities(self):
        requests = RequestFamily([("a", "b", 2), ("b", "c")])
        trace = replay_trace(requests)
        assert [e.request_id for e in trace] == [0, 1, 2]
        assert all(e.kind == ARRIVAL for e in trace)
        assert trace[1].request.source == "a"

    def test_poisson_trace_is_seeded_and_sorted(self):
        tree = out_tree(2, 3)
        pool = uniform_random_traffic(tree, 20, seed=0)
        a = poisson_trace(pool, 50, arrival_rate=2.0, mean_holding=1.5, seed=5)
        b = poisson_trace(pool, 50, arrival_rate=2.0, mean_holding=1.5, seed=5)
        assert a == b
        assert len(a) == 100
        times = [e.time for e in a]
        assert times == sorted(times)
        arrivals = [e for e in a if e.kind == ARRIVAL]
        departures = [e for e in a if e.kind == DEPARTURE]
        assert len(arrivals) == len(departures) == 50

    def test_poisson_trace_validates_arguments(self):
        tree = out_tree(2, 2)
        pool = uniform_random_traffic(tree, 5, seed=0)
        with pytest.raises(ValueError):
            poisson_trace(pool, -1)
        with pytest.raises(ValueError):
            poisson_trace(pool, 5, arrival_rate=0.0)
        with pytest.raises(ValueError):
            poisson_trace(RequestFamily(), 5)

    def test_churn_trace_keeps_concurrency_constant(self):
        tree = out_tree(2, 3)
        pool = uniform_random_traffic(tree, 30, seed=1)
        trace = churn_trace(pool, 10, 15, seed=2)
        active = 0
        peak = []
        for event in trace:
            active += 1 if event.kind == ARRIVAL else -1
            peak.append(active)
        assert max(peak) == 10
        assert peak[-1] == 10
        assert len(trace) == 10 + 2 * 15

    def test_simulator_rejects_malformed_traces(self):
        tree = out_tree(2, 2)
        with pytest.raises(SimulationError):
            simulate_online(tree, [Event(1.0, ARRIVAL, 0,
                                         dipath=None, request=None)], 2)
        request = RequestFamily([((), (0,))])[0]
        bad_order = [Event(2.0, ARRIVAL, 0, request=request),
                     Event(1.0, ARRIVAL, 1, request=request)]
        with pytest.raises(SimulationError):
            simulate_online(tree, bad_order, 2)
        duplicate = [Event(1.0, ARRIVAL, 0, request=request),
                     Event(2.0, ARRIVAL, 0, request=request)]
        with pytest.raises(SimulationError):
            simulate_online(tree, duplicate, 2)

    def test_timeline_records_engine_state(self):
        tree = out_tree(2, 3)
        pool = uniform_random_traffic(tree, 20, seed=3)
        trace = poisson_trace(pool, 40, arrival_rate=2.0, mean_holding=2.0,
                              seed=3)
        result = simulate_online(tree, trace, 3)
        assert len(result.timeline) == len(trace)
        assert result.peak_active() >= 1
        final = result.timeline[-1]
        assert final["blocked_total"] == float(len(result.blocked))


class TestEventTieBreaking:
    """Departures must sort before arrivals at equal timestamps: capacity
    freed at time ``t`` is usable by a request arriving at time ``t``."""

    def _contested_arc(self):
        graph = DAG(arcs=[("a", "b")])
        dipath = Dipath(["a", "b"])
        return graph, dipath

    def _handover_events(self, dipath, t=5.0):
        """Request 0 leaves at ``t``, request 1 wants the same arc at ``t``."""
        return [Event(0.0, ARRIVAL, 0, dipath=dipath),
                Event(t, DEPARTURE, 0),
                Event(t, ARRIVAL, 1, dipath=dipath)]

    def test_sort_events_puts_departures_first(self):
        graph, dipath = self._contested_arc()
        correct = self._handover_events(dipath)
        shuffled = [correct[2], correct[0], correct[1]]
        assert sort_events(shuffled) == correct
        # same time + kind: request_id breaks the remaining ties
        storm = [Event(1.0, ARRIVAL, i, dipath=dipath)
                 for i in (3, 1, 2)] + [Event(1.0, DEPARTURE, 0)]
        ordered = sort_events(storm)
        assert [(e.kind, e.request_id) for e in ordered] == \
            [(DEPARTURE, 0), (ARRIVAL, 1), (ARRIVAL, 2), (ARRIVAL, 3)]

    def test_handover_blocks_iff_the_order_is_wrong(self):
        """The crafted equal-timestamp trace of the regression: W=1, one
        arc; the back-to-back handover only works departures-first."""
        graph, dipath = self._contested_arc()
        correct = self._handover_events(dipath)
        good = simulate_online(graph, correct, 1)
        assert good.blocked == []           # freed at t, reused at t
        wrong = [correct[0], correct[2], correct[1]]    # arrival first
        bad = simulate_online(graph, wrong, 1)          # legal: times rise
        assert bad.blocked == [1]
        assert bad.rejections[1] == "no_wavelength"
        # sort_events repairs exactly that mis-ordering
        assert simulate_online(graph, sort_events(wrong), 1).blocked == []

    def test_poisson_trace_orders_departures_before_arrivals(self):
        tree = out_tree(2, 3)
        pool = uniform_random_traffic(tree, 20, seed=11)
        trace = poisson_trace(pool, 200, arrival_rate=5.0, mean_holding=1.0,
                              seed=11)
        assert trace == sort_events(trace)
        for first, second in zip(trace, trace[1:]):
            if first.time == second.time:
                assert not (first.kind == ARRIVAL and
                            second.kind == DEPARTURE)

    def test_churn_trace_orders_departures_before_arrivals(self):
        tree = out_tree(2, 3)
        pool = uniform_random_traffic(tree, 30, seed=4)
        trace = churn_trace(pool, 8, 20, seed=4)
        for first, second in zip(trace, trace[1:]):
            if first.time == second.time:
                assert not (first.kind == ARRIVAL and
                            second.kind == DEPARTURE)


class TestTrafficDeterminism:
    def test_uniform_random_traffic_reproducible(self):
        graph = random_dag(15, 0.25, seed=3)
        a = uniform_random_traffic(graph, 50, seed=42, max_multiplicity=3)
        b = uniform_random_traffic(graph, 50, seed=42, max_multiplicity=3)
        assert [r.as_tuple() for r in a] == [r.as_tuple() for r in b]

    def test_hotspot_traffic_reproducible(self):
        graph = random_dag(15, 0.25, seed=3)
        a = hotspot_traffic(graph, 50, num_hotspots=2, seed=42)
        b = hotspot_traffic(graph, 50, num_hotspots=2, seed=42)
        assert [r.as_tuple() for r in a] == [r.as_tuple() for r in b]

    def test_traffic_rng_passthrough_threads_one_stream(self):
        graph = random_dag(15, 0.25, seed=3)
        shared = traffic_rng(7)
        first = uniform_random_traffic(graph, 10, seed=shared)
        second = uniform_random_traffic(graph, 10, seed=shared)
        # one shared stream: the second draw continues where the first ended
        assert traffic_rng(shared) is shared
        replay = traffic_rng(7)
        combined = uniform_random_traffic(graph, 10, seed=replay)
        continued = uniform_random_traffic(graph, 10, seed=replay)
        assert [r.as_tuple() for r in first] == [r.as_tuple() for r in combined]
        assert [r.as_tuple() for r in second] == [r.as_tuple() for r in continued]

    def test_simulation_reproducible_end_to_end(self):
        graph = random_dag(15, 0.25, seed=8)
        def run():
            traffic = hotspot_traffic(graph, 40, num_hotspots=2, seed=8)
            trace = poisson_trace(traffic, 80, arrival_rate=2.0,
                                  mean_holding=2.0, seed=8)
            result = simulate_online(graph, trace, 3, policy="random", seed=8)
            return result.accepted, result.blocked, result.wavelengths_used
        assert run() == run()


class TestResultAccessors:
    """`blocked_count` / `blocking_rate` on and off the registry path."""

    def test_blocked_count_falls_back_to_id_lists_without_metrics(self):
        """A hand-built result (metrics=None) counts from its id lists."""
        result = OnlineResult(
            accepted=[0, 1],
            blocked=[2, 3, 4],
            rejections={2: NO_ROUTE, 3: NO_WAVELENGTH, 4: SHED})
        assert result.metrics is None
        assert result.blocked_count() == 3
        assert result.blocked_count(NO_ROUTE) == 1
        assert result.blocked_count(NO_WAVELENGTH) == 1
        assert result.blocked_count(SHED) == 1
        assert result.blocked_count(FIBRE_CUT) == 0
        assert result.blocking_rate == pytest.approx(3 / 5)

    def test_blocked_count_empty_result_is_all_zeros(self):
        empty = OnlineResult()
        assert empty.blocking_rate == 0.0
        assert empty.blocked_count() == 0
        assert all(empty.blocked_count(r) == 0 for r in
                   (NO_ROUTE, NO_WAVELENGTH, SHED, FIBRE_CUT))

    def test_registry_and_id_list_paths_agree_on_the_same_run(self):
        """Strip the snapshot off a real run: every accessor must agree."""
        graph = random_dag(14, 0.25, seed=11)
        traffic = hotspot_traffic(graph, 50, num_hotspots=2, seed=11)
        trace = poisson_trace(traffic, 120, arrival_rate=5.0,
                              mean_holding=3.0, seed=11)
        result = simulate_online(graph, trace, 2, shed_work_budget=3.0,
                                 shed_queue_depth=6)
        assert result.metrics is not None
        assert result.blocked            # the workload actually blocks
        reasons = (NO_ROUTE, NO_WAVELENGTH, SHED, FIBRE_CUT)
        via_registry = (result.blocking_rate, result.blocked_count(),
                        [result.blocked_count(r) for r in reasons])
        result.metrics = None            # force the id-list fallback
        via_lists = (result.blocking_rate, result.blocked_count(),
                     [result.blocked_count(r) for r in reasons])
        assert via_registry == via_lists
        # and the per-reason id-list accessors are the same partition
        assert via_lists[2] == [len(result.blocked_no_route),
                                len(result.blocked_no_wavelength),
                                len(result.blocked_shed),
                                len(result.blocked_fibre_cut)]
        assert sum(via_lists[2]) == via_lists[1] == len(result.blocked)
