"""Journal-replay crash recovery: the durable engine's bit-identity
contract.

:class:`~repro.online.persistence.DurableEngine` executes every op, then
appends one JSONL record; :func:`~repro.online.persistence.recover`
rebuilds an engine from the journal — jumping to the latest snapshot and
re-executing the tail through the real engine code paths, verifying each
recorded outcome on the way.  The contract under test:

* killed at **any** byte offset, recovery discards the torn tail and
  rebuilds state bit-identical (by :func:`~repro.online.persistence.
  engine_fingerprint`) to the live engine at the surviving record
  boundary — fuzzed here with hypothesis over op sequences and kill
  points, and swept over 50 seeds with random crash offsets in the
  ``slow`` sweep;
* a corrupted (non-torn) record, a truncated genesis, or a replay whose
  outcome disagrees with the journal raises
  :class:`~repro.exceptions.RecoveryError` with the record index;
* snapshots are pure accelerators: recovery through a snapshot and
  recovery replayed from genesis agree bit-for-bit.
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.recovery import _drive_durable
from repro.dipaths.requests import Request
from repro.exceptions import RecoveryError, ReproError, TransactionError
from repro.generators.regions import multi_region_topology, multi_region_traffic
from repro.online.events import ARRIVAL, Event
from repro.online.persistence import DurableEngine, engine_fingerprint, recover
from repro.graphs.digraph import DiGraph

pytestmark = pytest.mark.recovery

SETTINGS = dict(max_examples=20, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


def diamond() -> DiGraph:
    graph = DiGraph()
    for v in range(4):
        graph.add_vertex(v)
    graph.add_arcs([(0, 1), (1, 3), (0, 2), (2, 3)])
    return graph


def small_workload(tmp_path, name="journal.jsonl", **kwargs):
    durable = DurableEngine(diamond(), str(tmp_path / name), wavelengths=4,
                            routing="k_shortest", speculative=True, **kwargs)
    durable.admit(0, request=Request(0, 3))
    durable.admit(1, request=Request(0, 3))
    durable.admit_batch([Event(0.0, ARRIVAL, 2, request=Request(2, 3)),
                         Event(0.0, ARRIVAL, 3, request=Request(0, 1))],
                        policy="greedy")
    durable.cut((0, 1))
    durable.depart(1)
    durable.defrag(order="highest_wavelength", max_moves=4)
    durable.repair((0, 1))
    return durable


# --------------------------------------------------------------------------- #
# round trips
# --------------------------------------------------------------------------- #
def test_recover_full_journal_is_bit_identical(tmp_path):
    durable = small_workload(tmp_path)
    durable.close()
    recovered = recover(durable.path)
    recovered.close()
    assert recovered.fingerprint() == durable.fingerprint()
    assert recovered.records == durable.records


def test_recovered_engine_continues_journalling(tmp_path):
    durable = small_workload(tmp_path)
    durable.close()
    recovered = recover(durable.path)
    recovered.admit(9, request=Request(0, 3))
    recovered.close()
    twin = recover(recovered.path)
    twin.close()
    assert twin.fingerprint() == recovered.fingerprint()
    assert twin.records == durable.records + 1


def test_snapshot_recovery_matches_genesis_replay(tmp_path):
    with_snap = small_workload(tmp_path, name="snap.jsonl",
                               snapshot_every=3)
    without = small_workload(tmp_path, name="plain.jsonl")
    with_snap.close(), without.close()
    assert with_snap.fingerprint() == without.fingerprint()
    a = recover(with_snap.path)
    b = recover(without.path)
    a.close(), b.close()
    assert a.fingerprint() == b.fingerprint() == without.fingerprint()


def test_torn_tail_is_discarded_and_truncated(tmp_path):
    durable = small_workload(tmp_path)
    durable.close()
    data = Path(durable.path).read_bytes()
    boundary = data.rindex(b"\n", 0, len(data) - 1) + 1
    clean = tmp_path / "clean.jsonl"
    clean.write_bytes(data[:boundary])
    reference = recover(str(clean))
    reference.close()

    torn = tmp_path / "torn.jsonl"
    torn.write_bytes(data[:boundary] + b'{"type": "adm')
    recovered = recover(str(torn))
    recovered.close()
    assert recovered.fingerprint() == reference.fingerprint()
    assert torn.read_bytes() == data[:boundary]     # tail truncated away


def test_torn_tail_with_trailing_garbage_is_discarded(tmp_path):
    """A torn record followed by stray bytes is still one torn suffix.

    A dying process can flush arbitrary garbage after the half-written
    record (buffered bytes, a partial fsync).  As long as no *clean*
    record follows, the whole suffix is torn: recovery discards it and
    truncates the journal to the last clean boundary.
    """
    durable = small_workload(tmp_path)
    durable.close()
    data = Path(durable.path).read_bytes()
    boundary = data.rindex(b"\n", 0, len(data) - 1) + 1
    clean = tmp_path / "clean.jsonl"
    clean.write_bytes(data[:boundary])
    reference = recover(str(clean))
    reference.close()

    for suffix in (b'{"type": "adm\n\x00\xff\xfe',   # torn line + raw bytes
                   b'\x00\xff\n\xfe\xfa'):           # garbage split by \n...
        # ...whose last chunk is itself unterminated
        torn = tmp_path / "garbage.jsonl"
        torn.write_bytes(data[:boundary] + suffix)
        recovered = recover(str(torn))
        recovered.close()
        assert recovered.fingerprint() == reference.fingerprint()
        assert torn.read_bytes() == data[:boundary]

    # negative control: garbage *followed by* a clean record is
    # corruption in the middle of the journal, never a torn tail
    lines = data.splitlines(keepends=True)
    bad = tmp_path / "mid.jsonl"
    bad.write_bytes(b"".join(lines[:-1]) + b"\x00garbage\n" + lines[-1])
    with pytest.raises(RecoveryError):
        recover(str(bad))


@pytest.mark.parametrize("final", ["cut", "repair"])
def test_torn_fault_record_tail_is_discarded(tmp_path, final):
    """A journal whose final, torn record is a CUT/REPAIR recovers cleanly.

    Fault records rewrite graph structure on replay, so a half-written
    one must be discarded exactly like a torn admit: recovery lands on
    the last clean boundary, bit-identical to an engine that never saw
    the fault — with or without trailing flush garbage.
    """
    durable = DurableEngine(diamond(), str(tmp_path / "faults.jsonl"),
                            wavelengths=4, routing="k_shortest",
                            speculative=True)
    durable.admit(0, request=Request(0, 3))
    durable.admit(1, request=Request(0, 3))
    durable.cut((0, 1))
    if final == "repair":
        durable.repair((0, 1))
    else:
        durable.repair((0, 1))
        durable.cut((0, 2))
    durable.close()
    data = Path(durable.path).read_bytes()
    boundary = data.rindex(b"\n", 0, len(data) - 1) + 1
    last = json.loads(data[boundary:])
    assert last["type"] == final             # the scenario tears a fault op

    clean = tmp_path / "clean.jsonl"
    clean.write_bytes(data[:boundary])
    reference = recover(str(clean))
    reference.close()

    for suffix in (data[boundary:boundary + 12],       # half-written record
                   data[boundary:boundary + 12] + b"\n\x00\xff\xfe"):
        torn = tmp_path / "torn.jsonl"
        torn.write_bytes(data[:boundary] + suffix)
        recovered = recover(str(torn))
        recovered.close()
        assert recovered.fingerprint() == reference.fingerprint()
        assert torn.read_bytes() == data[:boundary]

    # negative control: garbage *before* the clean fault record is mid-
    # journal corruption, never a torn tail
    bad = tmp_path / "mid.jsonl"
    bad.write_bytes(data[:boundary] + b"\x00garbage\n" + data[boundary:])
    with pytest.raises(RecoveryError):
        recover(str(bad))


def test_fsync_error_degrades_to_flush_once(tmp_path, monkeypatch):
    """fsync=True on a target that rejects fsync must not crash.

    Pipes and some pseudo-filesystems fail ``os.fsync`` with
    EINVAL/ENOTSUP.  The engine must try exactly once, note it in the
    diagnostic ``journal.fsync_unsupported`` counter, and journal on
    with plain flushes.
    """
    import repro.online.persistence as persistence

    calls = []

    def failing_fsync(fd):
        calls.append(fd)
        raise OSError(22, "Invalid argument")

    monkeypatch.setattr(persistence.os, "fsync", failing_fsync)
    durable = small_workload(tmp_path, name="nofsync.jsonl", fsync=True)
    durable.close()
    assert len(calls) == 1       # one attempt (the genesis append), then off
    diag = durable.engine.metrics.snapshot()["diagnostics"]["counters"]
    assert diag["journal.fsync_unsupported"] == 1
    recovered = recover(durable.path)
    recovered.close()
    assert recovered.fingerprint() == durable.fingerprint()


def test_fsync_target_without_fileno_degrades_to_flush(tmp_path):
    """An in-memory-style handle (no ``fileno()``) only loses fsync."""
    durable = DurableEngine(diamond(), str(tmp_path / "mem.jsonl"),
                            wavelengths=4, fsync=True)

    class NoFdStream:            # write/flush/close but no fileno()
        def __init__(self, fh):
            self._fh = fh

        def write(self, s):
            return self._fh.write(s)

        def flush(self):
            self._fh.flush()

        def close(self):
            self._fh.close()

        @property
        def closed(self):
            return self._fh.closed

    durable._file = NoFdStream(durable._file)
    assert durable.admit(0, request=Request(0, 3)) is None
    durable.admit(1, request=Request(0, 3))
    durable.depart(0)
    durable.close()
    diag = durable.engine.metrics.snapshot()["diagnostics"]["counters"]
    assert diag["journal.fsync_unsupported"] == 1    # once, not per append
    recovered = recover(durable.path)
    recovered.close()
    assert recovered.fingerprint() == durable.fingerprint()


def test_empty_or_torn_genesis_raises(tmp_path):
    empty = tmp_path / "empty.jsonl"
    empty.write_bytes(b"")
    with pytest.raises(RecoveryError):
        recover(str(empty))
    torn = tmp_path / "torn.jsonl"
    torn.write_bytes(b'{"type": "genesis"')          # no newline: torn
    with pytest.raises(RecoveryError):
        recover(str(torn))


def test_corrupt_middle_record_raises_with_index(tmp_path):
    durable = small_workload(tmp_path)
    durable.close()
    lines = Path(durable.path).read_bytes().splitlines(keepends=True)
    lines[2] = b'not json at all\n'
    bad = tmp_path / "bad.jsonl"
    bad.write_bytes(b"".join(lines))
    with pytest.raises(RecoveryError) as excinfo:
        recover(str(bad))
    assert excinfo.value.record == 2
    assert issubclass(RecoveryError, ReproError)


def test_tampered_outcome_is_caught_by_replay_verification(tmp_path):
    durable = small_workload(tmp_path)
    durable.close()
    lines = Path(durable.path).read_text().splitlines()
    index, admit = next((i, json.loads(line))
                        for i, line in enumerate(lines)
                        if json.loads(line).get("type") == "admit")
    admit["color"] = 3 - (admit["color"] or 0)       # lie about the outcome
    lines[index] = json.dumps(admit, separators=(",", ":"), sort_keys=True)
    tampered = tmp_path / "tampered.jsonl"
    tampered.write_text("\n".join(lines) + "\n")
    with pytest.raises(RecoveryError) as excinfo:
        recover(str(tampered))
    assert excinfo.value.record == index


def test_defrag_time_budget_refused(tmp_path):
    durable = small_workload(tmp_path)
    with pytest.raises(TransactionError):
        durable.defrag(time_budget=0.5)
    durable.close()


# --------------------------------------------------------------------------- #
# crash-point fuzzing
# --------------------------------------------------------------------------- #
@given(seed=st.integers(min_value=0, max_value=2 ** 20),
       ops=st.integers(min_value=1, max_value=25),
       snapshot_every=st.none() | st.integers(min_value=1, max_value=6),
       kill=st.floats(min_value=0.0, max_value=1.0))
@settings(**SETTINGS)
def test_crash_at_arbitrary_journal_offsets_recovers_bit_identical(
        tmp_path_factory, seed, ops, snapshot_every, kill):
    tmp = tmp_path_factory.mktemp("fuzz")
    graph = multi_region_topology(regions=2, region_size=10,
                                  arc_probability=0.2, coupling=2,
                                  seed=seed % 97)
    pairs = multi_region_traffic(graph, 40, inter_fraction=0.3,
                                 seed=seed % 89).pairs()
    durable = DurableEngine(graph, str(tmp / "journal.jsonl"),
                            wavelengths=6, routing="k_shortest",
                            speculative=True, snapshot_every=snapshot_every,
                            restore_retries=1, restore_move_budget=4)
    driven = _drive_durable(durable, pairs, ops, seed)
    durable.close()
    data = Path(durable.path).read_bytes()
    genesis_end = data.index(b"\n") + 1
    offset = genesis_end + round(kill * (len(data) - genesis_end))
    crash = tmp / "crash.jsonl"
    crash.write_bytes(data[:offset])
    recovered = recover(str(crash))
    recovered.close()
    complete = data[:offset].count(b"\n")
    assert recovered.fingerprint() == driven["fp_at"][complete]


@pytest.mark.slow
def test_fifty_seed_random_crash_offset_sweep(tmp_path):
    mismatches = []
    for seed in range(50):
        graph = multi_region_topology(regions=2, region_size=12,
                                      arc_probability=0.18, coupling=2,
                                      seed=seed)
        pairs = multi_region_traffic(graph, 60, inter_fraction=0.25,
                                     seed=seed + 1).pairs()
        journal = tmp_path / f"journal-{seed}.jsonl"
        durable = DurableEngine(graph, str(journal), wavelengths=6,
                                routing="k_shortest", speculative=True,
                                snapshot_every=9 if seed % 2 else None,
                                restore_retries=1, restore_move_budget=6)
        driven = _drive_durable(durable, pairs, ops=60, seed=seed + 2)
        durable.close()
        data = journal.read_bytes()
        genesis_end = data.index(b"\n") + 1
        rng = random.Random(seed * 31 + 7)
        for trial in range(4):
            offset = rng.randrange(genesis_end, len(data) + 1)
            crash = tmp_path / "crash.jsonl"
            crash.write_bytes(data[:offset])
            recovered = recover(str(crash))
            recovered.close()
            complete = data[:offset].count(b"\n")
            if recovered.fingerprint() != driven["fp_at"][complete]:
                mismatches.append((seed, offset))
    assert mismatches == []
