"""Tests for the WDM optical-network substrate."""

import pytest

from repro.dipaths.dipath import Dipath
from repro.dipaths.requests import RequestFamily
from repro.exceptions import CapacityError, NotADAGError, RoutingError
from repro.generators.random_dags import random_internal_cycle_free_dag
from repro.generators.trees import out_tree, random_out_tree
from repro.graphs.dag import DAG
from repro.optical.grooming import (
    adm_count,
    groom_requests,
    max_requests_within_wavelengths,
)
from repro.optical.network import FibreLink, Lightpath, OpticalNetwork
from repro.optical.rwa import provision_solution, solve_rwa
from repro.optical.simulation import simulate_admission
from repro.optical.traffic import (
    all_to_all_traffic,
    hotspot_traffic,
    multicast_traffic,
    uniform_random_traffic,
)


@pytest.fixture
def small_network() -> OpticalNetwork:
    return OpticalNetwork([("a", "b"), ("b", "c"), ("b", "d")],
                          default_capacity=2)


class TestOpticalNetwork:
    def test_topology(self, small_network):
        assert small_network.num_nodes == 4
        assert small_network.num_links == 3
        assert small_network.link(("a", "b")).capacity == 2

    def test_fibrelink_forms(self):
        net = OpticalNetwork([FibreLink("x", "y", 8), ("y", "z", 4)])
        assert net.link(("x", "y")).capacity == 8
        assert net.link(("y", "z")).capacity == 4

    def test_as_dag(self, small_network):
        assert small_network.as_dag().num_arcs == 3
        cyclic = OpticalNetwork([("a", "b"), ("b", "a")])
        with pytest.raises(NotADAGError):
            cyclic.as_dag()

    def test_provision_and_release(self, small_network):
        lp = small_network.provision(Dipath(["a", "b", "c"]), 0)
        assert isinstance(lp, Lightpath)
        assert small_network.wavelengths_in_use(("a", "b")) == {0}
        assert small_network.max_utilization() == 1
        assert small_network.adm_count() == 2
        small_network.release(lp)
        assert small_network.wavelengths_in_use(("a", "b")) == set()
        assert small_network.lightpaths() == []

    def test_wavelength_collision_rejected(self, small_network):
        small_network.provision(Dipath(["a", "b", "c"]), 0)
        with pytest.raises(CapacityError):
            small_network.provision(Dipath(["a", "b", "d"]), 0)
        # a different wavelength is fine
        small_network.provision(Dipath(["a", "b", "d"]), 1)

    def test_capacity_enforced(self, small_network):
        with pytest.raises(CapacityError):
            small_network.provision(Dipath(["a", "b"]), 5)

    def test_unknown_fibre_rejected(self, small_network):
        with pytest.raises(RoutingError):
            small_network.provision(Dipath(["c", "d"]), 0)

    def test_release_unknown_lightpath(self, small_network):
        foreign = Lightpath(Dipath(["a", "b"]), 0)
        with pytest.raises(RoutingError):
            small_network.release(foreign)

    def test_summary(self, small_network):
        small_network.provision(Dipath(["a", "b", "c"]), 0)
        summary = small_network.summary()
        assert summary["lightpaths"] == 1
        assert summary["wavelengths_used"] == 1
        assert summary["fibres"] == 3

    def test_from_digraph(self, simple_dag):
        net = OpticalNetwork.from_digraph(simple_dag, capacity=3)
        assert net.num_links == simple_dag.num_arcs


class TestTraffic:
    def test_all_to_all(self, simple_dag):
        traffic = all_to_all_traffic(simple_dag)
        assert all(len(traffic.pairs()) > 0 for _ in [0])
        assert ("d", "a") not in traffic.pairs()

    def test_multicast_default_origin(self, simple_dag):
        traffic = multicast_traffic(simple_dag)
        assert traffic.is_multicast()

    def test_uniform_random(self, simple_dag):
        traffic = uniform_random_traffic(simple_dag, 20, seed=0, max_multiplicity=2)
        assert len(traffic) == 20
        assert traffic.total_demand() >= 20

    def test_hotspot(self, simple_dag):
        traffic = hotspot_traffic(simple_dag, 30, num_hotspots=1, seed=0)
        targets = [r.target for r in traffic]
        most_common = max(set(targets), key=targets.count)
        assert targets.count(most_common) >= 10

    def test_traffic_needs_connected_pairs(self):
        lonely = DAG(vertices=["a", "b"])
        with pytest.raises(ValueError):
            uniform_random_traffic(lonely, 5)


class TestRWAPipeline:
    def test_tree_all_to_all_equality(self):
        tree = out_tree(2, 3)
        traffic = all_to_all_traffic(tree)
        solution = solve_rwa(tree, traffic, routing="unique")
        assert solution.num_wavelengths == solution.load
        assert len(solution.family) == traffic.total_demand()
        assert len(solution.wavelength_of) == len(solution.family)

    def test_random_tree_random_traffic(self):
        tree = random_out_tree(25, seed=3)
        traffic = uniform_random_traffic(tree, 40, seed=3)
        solution = solve_rwa(tree, traffic, routing="unique")
        assert solution.num_wavelengths == solution.load
        assert solution.assignment_method == "theorem1"

    def test_icf_dag_shortest_routing(self):
        dag = random_internal_cycle_free_dag(25, 38, seed=4)
        traffic = uniform_random_traffic(dag, 40, seed=4)
        solution = solve_rwa(dag, traffic, routing="shortest")
        assert solution.num_wavelengths == solution.load

    def test_provisioning_respects_assignment(self):
        tree = out_tree(2, 2)
        traffic = all_to_all_traffic(tree)
        solution = solve_rwa(tree, traffic, routing="unique")
        network = OpticalNetwork.from_digraph(tree,
                                              capacity=solution.num_wavelengths)
        lightpaths = provision_solution(network, solution)
        assert len(lightpaths) == len(solution.family)
        assert network.wavelengths_used() == solution.num_wavelengths
        assert network.max_utilization() == solution.load

    def test_provisioning_fails_with_too_little_capacity(self):
        tree = out_tree(2, 2)
        traffic = all_to_all_traffic(tree)
        solution = solve_rwa(tree, traffic, routing="unique")
        network = OpticalNetwork.from_digraph(
            tree, capacity=max(1, solution.num_wavelengths - 1))
        with pytest.raises(CapacityError):
            provision_solution(network, solution)


class TestGrooming:
    def test_adm_count_sharing(self):
        from repro.dipaths.family import DipathFamily

        family = DipathFamily([["a", "b", "c"], ["c", "d"], ["a", "b"]])
        # colouring: 0 and 1 share wavelength 0 and endpoint c -> shared ADM
        coloring = {0: 0, 1: 0, 2: 1}
        assert adm_count(family, coloring) == 5

    def test_groom_requests_capacity(self):
        from repro.dipaths.family import DipathFamily

        family = DipathFamily([["a", "b"]] * 4)
        result = groom_requests(family, grooming_factor=2)
        assert result.num_wavelengths == 2
        assert result.wavelength_of(0) == 0
        with pytest.raises(ValueError):
            groom_requests(family, 0)

    def test_grooming_factor_one_is_wavelength_assignment(self):
        from repro.dipaths.family import DipathFamily

        family = DipathFamily([["a", "b"], ["a", "b"], ["b", "c"]])
        result = groom_requests(family, 1)
        assert result.num_wavelengths == 2

    def test_max_requests_within_wavelengths(self, simple_dag, simple_family):
        selected = max_requests_within_wavelengths(simple_family, 1)
        assert len(selected) >= 1
        sub = [simple_family[i] for i in selected]
        from repro.dipaths.family import DipathFamily

        assert DipathFamily(sub).load() <= 1
        assert max_requests_within_wavelengths(simple_family, 3) == [0, 1, 2]
        with pytest.raises(ValueError):
            max_requests_within_wavelengths(simple_family, -1)


class TestAdmissionSimulation:
    def test_enough_wavelengths_no_blocking(self):
        tree = out_tree(2, 3)
        traffic = all_to_all_traffic(tree)
        # With one wavelength per request available, first-fit can never block.
        result = simulate_admission(tree, traffic, traffic.total_demand(),
                                    routing="unique")
        assert result.blocked == []
        assert result.blocking_rate == 0.0
        # and it must use at least the offline optimum (= the load)
        offline = solve_rwa(tree, traffic, routing="unique")
        assert result.wavelengths_used >= offline.num_wavelengths

    def test_too_few_wavelengths_blocks(self):
        tree = out_tree(2, 3)
        traffic = all_to_all_traffic(tree)
        offline = solve_rwa(tree, traffic, routing="unique")
        assert offline.num_wavelengths > 1
        result = simulate_admission(tree, traffic, 1, routing="unique")
        assert result.blocking_rate > 0.0

    def test_invalid_budget(self, simple_dag):
        with pytest.raises(ValueError):
            simulate_admission(simple_dag, RequestFamily([("a", "d")]), 0)
