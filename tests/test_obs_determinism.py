"""Bit-identity contract of the observability layer.

Instrumentation must be *observation-only*: attaching a tracer, a
profiler or a shared registry to the online engine may not change a
single decision, and the deterministic section of the metrics snapshot
must be a pure function of the decisions — identical across equivalent
code paths (traced vs untraced, serial vs parallel shard fan-out) and
byte-identical across repeats of the same seed.  This file pins that
contract:

* a 50-seed sweep (every fifth seed with fibre cut/repair faults)
  asserting tracing on vs off leaves decisions and deterministic
  metrics byte-identical;
* :func:`~repro.online.persistence.engine_fingerprint` equality for a
  traced vs untraced engine fed the same request stream;
* byte-identical ``to_json`` registry serialization across same-seed
  repeats, with and without tracing, and across shard-worker counts;
* the rejection accounting regression: every blocked arrival carries
  exactly one reason (``no_route`` / ``no_wavelength`` / ``shed`` /
  ``fibre_cut``) and the ``result.blocked.*`` counters partition the
  blocked total.
"""

from __future__ import annotations

import json

import pytest

from repro.generators.random_dags import random_internal_cycle_free_dag
from repro.graphs.digraph import DiGraph
from repro.obs.profiling import SpanProfiler
from repro.obs.trace import ListSink, RingBufferSink, Tracer
from repro.online.events import (
    ARRIVAL,
    Event,
    churn_trace,
    cut_event,
    sort_events,
)
from repro.online.persistence import engine_fingerprint
from repro.online.simulator import (
    FIBRE_CUT,
    NO_ROUTE,
    NO_WAVELENGTH,
    SHED,
    OnlineEngine,
    simulate_online,
)
from repro.optical.traffic import uniform_random_traffic
from repro.dipaths.requests import Request


def _decisions(result):
    """The decision-bearing projection of an :class:`OnlineResult`."""
    return (result.accepted, result.blocked, result.rejections,
            result.wavelengths_used, result.kempe_repairs,
            result.defrag_moves, result.wavelengths_reclaimed)


def _deterministic_json(result):
    """Canonical serialization of the deterministic metrics section."""
    return json.dumps({k: v for k, v in result.metrics.items()
                       if k != "diagnostics"},
                      sort_keys=True, separators=(",", ":"))


def _workload(seed, with_faults=False):
    """A small churn workload; optionally with a fibre cut mid-trace."""
    graph = random_internal_cycle_free_dag(24, 48, seed=seed)
    pool = uniform_random_traffic(graph, 60, seed=seed)
    trace = churn_trace(pool, 40, 40, seed=seed)
    if with_faults:
        arc = sorted(graph.arcs())[seed % graph.num_arcs]
        trace = sort_events(trace + [cut_event(45.0, arc, fault_id=0)])
    return graph, trace


class TestTracingBitIdentity:
    def test_50_seed_sweep_tracing_on_vs_off(self):
        """Tracing must not perturb one decision across 50 seeded runs."""
        for seed in range(50):
            graph, trace = _workload(seed, with_faults=seed % 5 == 0)
            kwargs = dict(wavelengths=12, routing="k_shortest",
                          defrag_every=25)
            plain = simulate_online(graph, trace, **kwargs)
            tracer = Tracer(sink=RingBufferSink(capacity=1024))
            traced = simulate_online(graph, trace, tracer=tracer, **kwargs)
            assert _decisions(plain) == _decisions(traced), f"seed {seed}"
            assert _deterministic_json(plain) == \
                _deterministic_json(traced), f"seed {seed}"
            assert tracer.records()     # it did actually trace

    def test_profiler_does_not_perturb_decisions(self):
        graph, trace = _workload(7)
        plain = simulate_online(graph, trace, wavelengths=12)
        for engine in ("timer", "cprofile"):
            profiled = simulate_online(
                graph, trace, wavelengths=12,
                profile=SpanProfiler(engine=engine))
            assert _decisions(plain) == _decisions(profiled)
            assert _deterministic_json(plain) == \
                _deterministic_json(profiled)

    def test_engine_fingerprint_identical_with_tracer(self):
        graph = random_internal_cycle_free_dag(20, 40, seed=3)
        requests = uniform_random_traffic(graph, 30, seed=3).pairs()
        # same graph object for both: admissions never mutate topology,
        # and graph.copy() does not guarantee identical adjacency order
        # (set-backed), which would shift routing tie-breaks
        plain = OnlineEngine(graph, wavelengths=8)
        traced = OnlineEngine(graph, wavelengths=8,
                              tracer=Tracer(sink=ListSink()))
        for rid, (source, target) in enumerate(requests):
            assert plain.admit(rid, Request(source, target)) == \
                traced.admit(rid, Request(source, target))
        assert engine_fingerprint(plain) == engine_fingerprint(traced)


class TestSnapshotByteIdentity:
    def test_same_seed_repeats_serialize_identically(self):
        graph, trace = _workload(11)
        kwargs = dict(wavelengths=12, defrag_every=25)
        runs = [simulate_online(graph, trace, **kwargs) for _ in range(2)]
        traced = simulate_online(
            graph, trace, tracer=Tracer(sink=RingBufferSink()), **kwargs)
        # full snapshots (diagnostics included) are byte-identical
        # across repeats of one code path ...
        first, second = (json.dumps(r.metrics, sort_keys=True,
                                    separators=(",", ":")) for r in runs)
        assert first == second
        # ... and the deterministic section also survives turning
        # tracing on (the diagnostics may not care, but check anyway:
        # tracing registers no metrics at all)
        assert first == json.dumps(traced.metrics, sort_keys=True,
                                   separators=(",", ":"))

    def test_serial_vs_parallel_shard_workers_identical(self):
        graph, trace = _workload(13)
        kwargs = dict(wavelengths=12, sharded=True, policy="first_fit")
        serial = simulate_online(graph, trace, shard_workers=1, **kwargs)
        parallel = simulate_online(graph, trace, shard_workers=2, **kwargs)
        assert _decisions(serial) == _decisions(parallel)
        # same code path (sharded) either way: the *full* snapshot,
        # diagnostics included, must match across worker counts
        assert json.dumps(serial.metrics, sort_keys=True) == \
            json.dumps(parallel.metrics, sort_keys=True)

    def test_unsharded_vs_sharded_deterministic_sections_match(self):
        # no defrag here: serial defrag ranks moves by a global
        # objective while the sharded pass works component-local, so
        # decisions (legitimately) diverge once a pass runs
        graph, trace = _workload(17)
        plain = simulate_online(graph, trace, wavelengths=12)
        sharded = simulate_online(graph, trace, wavelengths=12,
                                  sharded=True)
        assert _decisions(plain) == _decisions(sharded)
        assert _deterministic_json(plain) == _deterministic_json(sharded)


# --------------------------------------------------------------------------- #
# rejection-reason accounting
# --------------------------------------------------------------------------- #
def _four_reason_workload():
    """One blocked arrival per rejection reason, plus one survivor.

    Topology: a path ``0 -> 1 -> 2``, a disjoint arc ``3 -> 4`` and an
    isolated vertex ``5``.  With one wavelength, no restoration and a
    same-timestamp queue depth of one:

    * rid 0 ``(0, 2)`` admitted and held to the end (the survivor);
    * rid 1 ``(0, 2)`` — route exists, spectrum full -> ``no_wavelength``;
    * rid 2 ``(3, 4)`` admitted, rid 3 ``(3, 4)`` same timestamp ->
      ``shed`` by the queue-depth guard;
    * rid 4 ``(0, 5)`` — vertex 5 unreachable -> ``no_route``;
    * a cut of ``(3, 4)`` strands rid 2 with restoration off ->
      ``fibre_cut``.
    """
    graph = DiGraph()
    for v in range(6):
        graph.add_vertex(v)
    graph.add_arcs([(0, 1), (1, 2), (3, 4)])
    events = sort_events([
        Event(0.0, ARRIVAL, 0, request=Request(0, 2)),
        Event(1.0, ARRIVAL, 1, request=Request(0, 2)),
        Event(2.0, ARRIVAL, 2, request=Request(3, 4)),
        Event(2.0, ARRIVAL, 3, request=Request(3, 4)),
        Event(3.0, ARRIVAL, 4, request=Request(0, 5)),
        cut_event(4.0, (3, 4), fault_id=0),
    ])
    return graph, events


class TestRejectionAccounting:
    def _result(self, **kwargs):
        graph, events = _four_reason_workload()
        return simulate_online(graph, events, wavelengths=1,
                               shed_queue_depth=1, restoration=False,
                               **kwargs)

    def test_every_reason_counted_exactly_once(self):
        result = self._result()
        assert result.accepted == [0]
        assert result.rejections == {1: NO_WAVELENGTH, 3: SHED,
                                     4: NO_ROUTE, 2: FIBRE_CUT}
        for reason in (NO_ROUTE, NO_WAVELENGTH, SHED, FIBRE_CUT):
            assert result.blocked_count(reason) == 1, reason
            counter = result.metrics["counters"][f"result.blocked.{reason}"]
            assert counter == 1, reason
        # the per-reason counts partition the blocked total: nothing is
        # double-counted, nothing is dropped
        assert sum(result.blocked_count(r) for r in
                   (NO_ROUTE, NO_WAVELENGTH, SHED, FIBRE_CUT)) == \
            result.blocked_count() == len(result.blocked) == 4
        assert result.blocking_rate == pytest.approx(4 / 5)

    def test_reason_lists_match_registry_counts(self):
        result = self._result()
        assert result.blocked_no_route == [4]
        assert result.blocked_no_wavelength == [1]
        assert result.blocked_shed == [3]
        assert result.blocked_fibre_cut == [2]
        for reason, rids in ((NO_ROUTE, [4]), (NO_WAVELENGTH, [1]),
                             (SHED, [3]), (FIBRE_CUT, [2])):
            assert result.blocked_count(reason) == len(rids)

    def test_accounting_survives_tracing(self):
        plain = self._result()
        tracer = Tracer(sink=ListSink())
        traced = self._result(tracer=tracer)
        assert _decisions(plain) == _decisions(traced)
        assert _deterministic_json(plain) == _deterministic_json(traced)
        outcomes = sorted(
            r["tags"]["outcome"] for r in tracer.records()
            if r["name"] == "admit" and "outcome" in r["tags"])
        # the trace tells the same story: one admit span per
        # non-shed arrival (shed happens before routing), with the
        # spectrum and routing rejections tagged by reason
        assert outcomes.count(NO_WAVELENGTH) == 1
        assert outcomes.count(NO_ROUTE) == 1
