"""Fibre-cut injection, restoration, reversion and load shedding.

Covers :mod:`repro.online.faults` (the :class:`FaultInjector` control
plane), the :data:`CUT` / :data:`REPAIR` event kinds and their ordering,
the :class:`AdmissionGuard` token bucket, and the :data:`SHED` /
:data:`FIBRE_CUT` rejection accounting of
:func:`~repro.online.simulator.simulate_online`.
"""

from __future__ import annotations

import pytest

from repro.dipaths.requests import Request
from repro.exceptions import FaultError, ReproError
from repro.online.events import (
    ARRIVAL,
    CUT,
    DEPARTURE,
    REPAIR,
    Event,
    cut_event,
    poisson_trace,
    repair_event,
    sort_events,
)
from repro.online.faults import FaultInjector
from repro.online.simulator import (
    FIBRE_CUT,
    SHED,
    AdmissionGuard,
    OnlineEngine,
    simulate_online,
)
from repro.generators.regions import multi_region_topology, multi_region_traffic
from repro.graphs.digraph import DiGraph

pytestmark = pytest.mark.recovery


def diamond() -> DiGraph:
    """Two parallel routes 0 -> 3: via 1 (short) and via 2."""
    graph = DiGraph()
    for v in range(4):
        graph.add_vertex(v)
    graph.add_arcs([(0, 1), (1, 3), (0, 2), (2, 3)])
    return graph


def engine_on_diamond(**kwargs) -> OnlineEngine:
    return OnlineEngine(diamond(), wavelengths=4, routing="k_shortest",
                        k_candidates=4, **kwargs)


# --------------------------------------------------------------------------- #
# fault events
# --------------------------------------------------------------------------- #
def test_cut_and_repair_event_constructors():
    cut = cut_event(2.5, (0, 1), fault_id=7)
    repair = repair_event(3.5, (0, 1), fault_id=8)
    assert cut.kind == CUT and cut.arc == (0, 1) and cut.time == 2.5
    assert repair.kind == REPAIR and repair.request_id == 8


def test_equal_timestamp_ordering_departure_repair_cut_arrival():
    events = [Event(1.0, ARRIVAL, 3, request=Request(0, 3)),
              cut_event(1.0, (0, 1), fault_id=2),
              repair_event(1.0, (0, 2), fault_id=1),
              Event(1.0, DEPARTURE, 0)]
    kinds = [e.kind for e in sort_events(events)]
    assert kinds == [DEPARTURE, REPAIR, CUT, ARRIVAL]


# --------------------------------------------------------------------------- #
# FaultInjector
# --------------------------------------------------------------------------- #
def test_cut_strands_and_restores_on_the_surviving_route():
    engine = engine_on_diamond()
    assert engine.admit(0, request=Request(0, 3)) is None
    route_before = engine.family[engine.vertex_of[0]]
    assert (0, 1) in route_before.arcs()        # the short route wins

    injector = FaultInjector(engine)
    report = injector.cut((0, 1))
    assert report.kind == "cut" and report.arc == (0, 1)
    assert report.stranded == [0] and report.restored == [0]
    assert report.still_stranded == []
    assert not engine.graph.has_arc(0, 1)
    # restored on the detour, registered as rerouted
    route_after = engine.family[engine.vertex_of[0]]
    assert (0, 2) in route_after.arcs()
    assert injector.rerouted() == [0] and injector.stranded() == []


def test_cut_without_restoration_waits_for_repair():
    engine = engine_on_diamond()
    engine.admit(0, request=Request(0, 3))
    injector = FaultInjector(engine, restoration=False)
    report = injector.cut((0, 1))
    assert report.stranded == [0] and report.restored == []
    assert injector.stranded() == [0]
    assert 0 not in engine.vertex_of

    repaired = injector.repair((0, 1))
    assert repaired.kind == "repair" and repaired.restored == [0]
    assert injector.stranded() == [] and 0 in engine.vertex_of
    assert engine.graph.has_arc(0, 1)


def test_cut_validation_errors():
    engine = engine_on_diamond()
    injector = FaultInjector(engine)
    with pytest.raises(FaultError):
        injector.cut((9, 9))                    # not in the topology
    injector.cut((0, 1))
    with pytest.raises(FaultError):
        injector.cut((0, 1))                    # already cut
    with pytest.raises(FaultError):
        injector.repair((0, 2))                 # not cut
    with pytest.raises(FaultError):
        FaultInjector(engine, retries=-1)
    assert issubclass(FaultError, ReproError)


def test_forget_stops_repair_from_resurrecting_departed_requests():
    engine = engine_on_diamond()
    engine.admit(0, request=Request(0, 3))
    injector = FaultInjector(engine, restoration=False)
    injector.cut((0, 1))
    injector.forget(0)                          # its holding time expired
    report = injector.repair((0, 1))
    assert report.restored == [] and injector.stranded() == []
    assert 0 not in engine.vertex_of


def test_revert_on_repair_returns_detour_to_original_route():
    engine = engine_on_diamond()
    # a neighbour occupying (2, 3): the detour must take wavelength 1
    engine.admit(1, request=Request(2, 3))
    engine.admit(0, request=Request(0, 3))
    injector = FaultInjector(engine, revert_on_repair=True)
    injector.cut((0, 1))
    assert injector.rerouted() == [0]
    assert engine.assigner.colors_in_use() == 2

    report = injector.repair((0, 1))
    assert report.reverted == [0]
    assert injector.rerouted() == []
    restored = engine.family[engine.vertex_of[0]]
    assert (0, 1) in restored.arcs()
    assert engine.assigner.colors_in_use() == 1  # the strict improvement


# --------------------------------------------------------------------------- #
# AdmissionGuard
# --------------------------------------------------------------------------- #
def test_admission_guard_validation():
    with pytest.raises(ValueError):
        AdmissionGuard(work_budget=0.0)
    with pytest.raises(ValueError):
        AdmissionGuard(queue_depth=0)
    with pytest.raises(ValueError):
        AdmissionGuard(burst=4.0)               # burst needs a budget
    with pytest.raises(ValueError):
        AdmissionGuard(work_budget=4.0, burst=2.0)


def test_admission_guard_token_bucket_refills_with_event_time():
    guard = AdmissionGuard(work_budget=2.0, burst=4.0)
    assert guard.admits(0.0, cost=4.0)          # starts full
    assert not guard.admits(0.0, cost=1.0)      # drained at t=0
    assert guard.shed_count == 1
    assert guard.admits(1.0, cost=2.0)          # refilled 2 units
    assert not guard.admits(1.0, cost=1.0)
    assert guard.admits(100.0, cost=4.0)        # refill caps at burst
    assert not guard.admits(100.0, cost=1.0)


def test_admission_guard_queue_depth_caps_equal_timestamp_groups():
    guard = AdmissionGuard(queue_depth=2)
    assert guard.admits(0.0) and guard.admits(0.0)
    assert not guard.admits(0.0)                # third of the group
    assert guard.admits(1.0)                    # new timestamp, new group
    assert guard.shed_count == 1


# --------------------------------------------------------------------------- #
# simulate_online wiring
# --------------------------------------------------------------------------- #
def test_simulate_online_shed_accounting():
    graph = diamond()
    events = sort_events(
        [Event(0.0, ARRIVAL, rid, request=Request(0, 3))
         for rid in range(6)]
        + [Event(5.0, DEPARTURE, rid) for rid in range(6)])
    result = simulate_online(graph, events, wavelengths=8,
                             routing="k_shortest", shed_queue_depth=2)
    assert result.blocked_shed == [2, 3, 4, 5]
    assert all(result.rejections[rid] == SHED
               for rid in result.blocked_shed)
    assert result.accepted == [0, 1]
    # every arrival is accounted exactly once
    assert len(result.accepted) + len(result.blocked) == 6
    assert result.blocking_rate == pytest.approx(4 / 6)


def test_simulate_online_shed_burst_requires_budget():
    with pytest.raises(ValueError):
        simulate_online(diamond(), [], wavelengths=2, shed_burst=8.0)


def test_simulate_online_cut_restoration_and_counters():
    graph = diamond()
    events = sort_events([
        Event(0.0, ARRIVAL, 0, request=Request(0, 3)),
        cut_event(1.0, (0, 1), fault_id=100),
        Event(2.0, DEPARTURE, 0),
    ])
    result = simulate_online(graph, events, wavelengths=4,
                             routing="k_shortest")
    assert result.fibre_cuts == 1
    assert result.lightpaths_stranded == 1
    assert result.lightpaths_restored == 1
    assert result.accepted == [0] and result.blocked == []
    # fault runs operate on a private copy of the topology
    assert graph.has_arc(0, 1)


def test_simulate_online_unrestored_cut_blocks_with_fibre_cut():
    graph = DiGraph()
    graph.add_arcs([(0, 1), (1, 2)])            # a single path, no detour
    events = sort_events([
        Event(0.0, ARRIVAL, 0, request=Request(0, 2)),
        cut_event(1.0, (1, 2), fault_id=100),
        Event(2.0, DEPARTURE, 0),
    ])
    result = simulate_online(graph, events, wavelengths=4)
    assert result.blocked_fibre_cut == [0]
    assert result.rejections[0] == FIBRE_CUT
    assert result.accepted == []
    assert result.blocking_rate == 1.0


def test_simulate_online_repair_restores_when_no_detour_exists():
    graph = DiGraph()
    graph.add_arcs([(0, 1), (1, 2)])
    events = sort_events([
        Event(0.0, ARRIVAL, 0, request=Request(0, 2)),
        cut_event(1.0, (1, 2), fault_id=100),
        repair_event(2.0, (1, 2), fault_id=101),
        Event(3.0, DEPARTURE, 0),
    ])
    result = simulate_online(graph, events, wavelengths=4)
    assert result.fibre_repairs == 1
    assert result.lightpaths_restored == 1
    assert result.accepted == [0] and result.blocked == []


def test_restoration_beats_no_restoration_on_a_seeded_trace():
    graph = multi_region_topology(regions=2, region_size=14,
                                  arc_probability=0.18, coupling=3, seed=3)
    pool = multi_region_traffic(graph, 120, inter_fraction=0.3, seed=4)
    trace = poisson_trace(pool, 200, arrival_rate=12.0, mean_holding=3.0,
                          seed=5)
    horizon = trace[-1].time
    # cut the busiest fibre of a probe routing of the whole pool
    probe = OnlineEngine(graph, wavelengths=200, routing="shortest")
    for rid, (s, t) in enumerate(pool.pairs()):
        probe.admit(rid, request=Request(s, t))
    hot = max(graph.arcs(),
              key=lambda a: (probe.family.load_of_arc(a), a))
    events = sort_events(trace + [cut_event(0.5 * horizon, hot,
                                            fault_id=10 ** 6)])
    on = simulate_online(graph, events, wavelengths=8, routing="k_shortest",
                         restoration=True)
    off = simulate_online(graph, events, wavelengths=8, routing="k_shortest",
                          restoration=False)
    assert on.lightpaths_stranded == off.lightpaths_stranded
    assert on.lightpaths_restored >= off.lightpaths_restored
    assert on.blocking_rate <= off.blocking_rate
