"""Tests for :mod:`repro.analysis.reporting` (CSV / JSON persistence)."""

import csv
import json

from repro.analysis.reporting import (
    read_json,
    summarize_records,
    write_csv,
    write_json,
)

RECORDS = [
    {"k": 2, "load": 2, "w": 2, "ratio": 1.0},
    {"k": 3, "load": 2, "w": 3, "ratio": 1.5},
    {"k": 4, "load": 2, "w": 4, "ratio": 2.0, "extra": ("tuple", "value")},
]


class TestCSV:
    def test_roundtrip_columns(self, tmp_path):
        path = write_csv(RECORDS, tmp_path / "out.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 3
        assert rows[1]["w"] == "3"
        # missing fields are blank, extra column appears in the header
        assert rows[0]["extra"] == ""

    def test_explicit_columns(self, tmp_path):
        path = write_csv(RECORDS, tmp_path / "cols.csv", columns=["k", "w"])
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert list(rows[0].keys()) == ["k", "w"]

    def test_creates_parent_dirs(self, tmp_path):
        path = write_csv(RECORDS, tmp_path / "deep" / "nested" / "out.csv")
        assert path.exists()


class TestJSON:
    def test_roundtrip(self, tmp_path):
        path = write_json(RECORDS, tmp_path / "out.json",
                          metadata={"experiment": "E1"})
        loaded = read_json(path)
        assert len(loaded) == 3
        assert loaded[1]["w"] == 3
        with path.open() as handle:
            payload = json.load(handle)
        assert payload["metadata"]["experiment"] == "E1"

    def test_non_serialisable_values_stringified(self, tmp_path):
        path = write_json(RECORDS, tmp_path / "tuples.json")
        loaded = read_json(path)
        assert isinstance(loaded[2]["extra"], (str, list))


class TestSummaries:
    def test_summarize_records(self):
        records = [{"size": 10, "time": 1.0}, {"size": 10, "time": 3.0},
                   {"size": 20, "time": 2.0}]
        summary = summarize_records(records, group_by="size", value="time")
        assert len(summary) == 2
        first = summary[0]
        assert first["size"] == 10
        assert first["time_mean"] == 2.0
        assert first["count"] == 2

    def test_summarize_skips_missing_fields(self):
        records = [{"size": 10}, {"size": 10, "time": 4.0}]
        summary = summarize_records(records, group_by="size", value="time")
        assert summary[0]["count"] == 1
