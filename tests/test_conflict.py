"""Unit tests for :mod:`repro.conflict` (conflict graph, cliques, independent sets, covers)."""

import pytest

from repro.conflict.cliques import (
    clique_number,
    greedy_clique,
    is_clique,
    maximal_cliques,
    maximum_clique,
)
from repro.conflict.conflict_graph import ConflictGraph, build_conflict_graph
from repro.conflict.covering import (
    blowup_chromatic_number,
    independent_set_cover,
    replicated_family_coloring,
    replication_structure,
)
from repro.conflict.independent_sets import (
    greedy_independent_set,
    independence_number,
    is_independent_set,
    maximum_independent_set,
    partition_lower_bound,
)
from repro.coloring.verify import is_proper_coloring, num_colors
from repro.dipaths.family import DipathFamily
from repro.generators.gadgets import figure3_family, havet_family


def cycle_graph(n: int) -> ConflictGraph:
    return ConflictGraph(n, edges=[(i, (i + 1) % n) for i in range(n)])


def complete_graph(n: int) -> ConflictGraph:
    return ConflictGraph(n, edges=[(i, j) for i in range(n) for j in range(i + 1, n)])


class TestConflictGraph:
    def test_build_from_family(self, simple_family):
        cg = build_conflict_graph(simple_family)
        assert cg.num_vertices == 3
        assert cg.num_edges == 3
        assert cg.is_complete()

    def test_figure3_conflict_graph_is_c5(self):
        cg = build_conflict_graph(figure3_family())
        assert cg.num_vertices == 5
        assert cg.is_cycle_graph()

    def test_no_self_loops(self):
        cg = ConflictGraph(2)
        with pytest.raises(ValueError):
            cg.add_edge(0, 0)

    def test_subgraph_and_complement(self):
        c5 = cycle_graph(5)
        sub = c5.subgraph([0, 1, 2])
        assert sub.num_edges == 2
        comp = c5.complement()
        assert comp.num_edges == 5 * 4 // 2 - 5

    def test_connected_components(self):
        cg = ConflictGraph(4, edges=[(0, 1), (2, 3)])
        assert len(cg.connected_components()) == 2

    def test_degree_sequence(self):
        assert cycle_graph(4).degree_sequence() == [2, 2, 2, 2]

    def test_contains_k23(self):
        k23 = ConflictGraph(5, edges=[(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4)])
        assert k23.contains_k23()
        assert not cycle_graph(6).contains_k23()

    def test_is_cycle_graph_negative(self):
        assert not complete_graph(4).is_cycle_graph()
        assert not ConflictGraph(3).is_cycle_graph()
        # two disjoint triangles: 2-regular but disconnected
        two_triangles = ConflictGraph(6, edges=[(0, 1), (1, 2), (2, 0),
                                                (3, 4), (4, 5), (5, 3)])
        assert not two_triangles.is_cycle_graph()


class TestCliques:
    def test_clique_number_known_graphs(self):
        assert clique_number(complete_graph(5)) == 5
        assert clique_number(cycle_graph(5)) == 2
        assert clique_number(cycle_graph(3)) == 3
        assert clique_number(ConflictGraph(4)) == 1

    def test_maximum_clique_is_clique(self):
        cg = build_conflict_graph(havet_family(2))
        clique = maximum_clique(cg)
        assert is_clique(cg, clique)

    def test_greedy_clique_is_clique(self):
        cg = cycle_graph(7)
        assert is_clique(cg, greedy_clique(cg))

    def test_maximal_cliques_c4(self):
        cliques = maximal_cliques(cycle_graph(4))
        assert sorted(sorted(c) for c in cliques) == [[0, 1], [0, 3], [1, 2], [2, 3]]

    def test_maximal_cliques_limit(self):
        assert len(maximal_cliques(cycle_graph(8), limit=3)) == 3

    def test_clique_number_matches_load_on_figure3(self):
        family = figure3_family()
        cg = build_conflict_graph(family)
        assert clique_number(cg) == family.load() == 2


class TestIndependentSets:
    def test_independence_number_known(self):
        assert independence_number(cycle_graph(5)) == 2
        assert independence_number(cycle_graph(6)) == 3
        assert independence_number(complete_graph(4)) == 1

    def test_maximum_independent_set_valid(self):
        cg = cycle_graph(7)
        mis = maximum_independent_set(cg)
        assert is_independent_set(cg, mis)
        assert len(mis) == 3

    def test_greedy_independent_set_valid(self):
        cg = build_conflict_graph(havet_family(1))
        assert is_independent_set(cg, greedy_independent_set(cg))

    def test_havet_independence_number_is_3(self):
        cg = build_conflict_graph(havet_family(1))
        assert independence_number(cg) == 3

    def test_partition_lower_bound(self):
        cg = build_conflict_graph(havet_family(1))
        assert partition_lower_bound(cg) == 3   # ceil(8/3)
        assert partition_lower_bound(ConflictGraph(0)) == 0


class TestCovering:
    def test_cover_demand_one_is_coloring(self):
        cg = cycle_graph(5)
        cover = independent_set_cover(cg, 1)
        assert len(cover) == 3   # chromatic number of C5
        covered = set()
        for s in cover:
            covered |= set(s)
        assert covered == set(cg.vertices())

    def test_cover_demand_validates(self):
        with pytest.raises(ValueError):
            independent_set_cover(cycle_graph(4), 0)

    def test_blowup_chromatic_number_wagner(self):
        base = build_conflict_graph(havet_family(1))
        assert blowup_chromatic_number(base, 1) == 3
        assert blowup_chromatic_number(base, 2) == 6
        assert blowup_chromatic_number(base, 3) == 8
        assert blowup_chromatic_number(base, 6) == 16

    def test_replication_structure(self):
        fam = havet_family(3)
        reps, copies = replication_structure(fam)
        assert copies == 3
        assert len(reps) == 8
        # not uniformly replicated:
        mixed = DipathFamily([["a", "b"], ["a", "b"], ["b", "c"]])
        assert replication_structure(mixed) is None

    def test_replicated_family_coloring_valid_and_optimal(self):
        fam = havet_family(3)
        coloring = replicated_family_coloring(fam)
        assert coloring is not None
        cg = build_conflict_graph(fam)
        assert is_proper_coloring(cg.adjacency(), coloring)
        assert num_colors(coloring) == 8     # ceil(8*3/3)

    def test_replicated_family_coloring_none_for_irregular(self):
        mixed = DipathFamily([["a", "b"], ["a", "b"], ["b", "c"]])
        assert replicated_family_coloring(mixed) is None
