"""Chaos-hardening: crash-restart convergence, live faults, client resilience.

The PR-10 contracts pinned here:

* **Supervised crash-restart.**  A journal-backed service killed between
  ops (the deterministic ``crash_after_n_ops`` hook) is restarted by
  :class:`~repro.service.ServiceSupervisor` from its journal; in-flight
  futures are re-resolved by the new incarnation, and the final
  :func:`~repro.online.persistence.engine_fingerprint` **converges to
  the uncrashed supervised run's** — fuzzed over crash offsets.  The
  uncrashed supervised run itself makes decisions identical to
  :func:`~repro.online.simulator.simulate_online`; its fingerprint is
  compared durable-to-durable because a :class:`DurableEngine`
  canonicalizes adjacency-set iteration order from its genesis record
  (decision-neutral here, but a legitimate fingerprint component — see
  ``engine_fingerprint``'s docstring).
* **Maintenance windows.**  :meth:`RwaService.schedule_maintenance` is
  decision- and fingerprint-identical to replaying
  :func:`~repro.online.events.maintenance_events` through the simulator.
* **Equal-time ordering.**  Ops racing into the queue with one timestamp
  are processed in the events.py tie-break order (departure < repair <
  cut < arrival), so a scrambled live submission matches the
  ``sort_events`` oracle.
* **Client resilience.**  ``submit(timeout=)`` raises a typed
  :class:`~repro.exceptions.TimedOut` while the op is still decided
  exactly once; ``deadline=`` expiry raises :class:`~repro.exceptions.
  Expired` pre-routing under its own ``result.blocked.expired``
  partition; ``retry=True`` resubmissions are answered from the decision
  log; :class:`~repro.service.RetryingClient` drives the loop with a
  deterministic seeded backoff schedule.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.analysis.recovery import _hot_arcs
from repro.dipaths.requests import Request
from repro.exceptions import (Expired, ServiceError, SimulationError,
                              TimedOut)
from repro.generators.regions import multi_region_topology, multi_region_traffic
from repro.graphs.digraph import DiGraph
from repro.online.events import (ARRIVAL, CUT, DEPARTURE, REPAIR, Event,
                                 cut_event, maintenance_events, poisson_trace,
                                 repair_event, sort_events)
from repro.online.persistence import engine_fingerprint
from repro.online.simulator import NO_WAVELENGTH, simulate_online
from repro.service import (EXPIRED, RetryingClient, RwaService,
                           ServiceSupervisor)
from repro.service.service import _percentile

pytestmark = pytest.mark.chaos


# --------------------------------------------------------------------------- #
# workloads and drivers
# --------------------------------------------------------------------------- #
def _fault_workload(num_requests=40, seed=3, arrival_rate=5.0):
    """A Poisson trace with one genuinely-stranding cut and its repair."""
    graph = multi_region_topology(regions=2, region_size=10,
                                  arc_probability=0.22, coupling=2, seed=seed)
    pool = multi_region_traffic(graph, num_requests, inter_fraction=0.3,
                                seed=seed + 1)
    trace = poisson_trace(pool, num_requests, arrival_rate=arrival_rate,
                          mean_holding=2.0, seed=seed + 2)
    horizon = max(event.time for event in trace)
    hot = _hot_arcs(graph, pool.pairs(), 1)[0]
    events = sort_events(trace + [
        cut_event(0.4 * horizon, hot, fault_id=10 ** 6),
        repair_event(0.75 * horizon, hot, fault_id=10 ** 6)])
    return graph, events


def _enqueue_trace(target, events):
    """Enqueue a sorted trace through the nowait proxies, in order."""
    futures = []
    for event in events:
        if event.kind == ARRIVAL:
            futures.append(target.submit_nowait(
                event.request_id, request=event.request, time=event.time))
        elif event.kind == DEPARTURE:
            futures.append(target.depart_nowait(event.request_id,
                                                time=event.time))
        elif event.kind == CUT:
            futures.append(target.cut_nowait(event.arc, time=event.time))
        elif event.kind == REPAIR:
            futures.append(target.repair_nowait(event.arc, time=event.time))
    return futures


def _run_supervised(graph, events, wavelengths, journal_path, *,
                    crash_after=None, max_restarts=3):
    """One full supervised replay; returns (fingerprint, result, restarts)."""
    async def go():
        supervisor = ServiceSupervisor(graph.copy(), wavelengths,
                                       journal_path=str(journal_path),
                                       max_restarts=max_restarts,
                                       crash_after_n_ops=crash_after)
        async with supervisor:
            futures = _enqueue_trace(supervisor, events)
            for future in futures:
                await future
            fingerprint = engine_fingerprint(supervisor.service.engine)
            result = supervisor.service.result()
            return fingerprint, result, supervisor.restarts
    return asyncio.run(go())


def _decisions(result):
    return (result.accepted, result.blocked, result.rejections,
            result.wavelengths_used)


def _diamond() -> DiGraph:
    graph = DiGraph()
    for v in range(4):
        graph.add_vertex(v)
    graph.add_arcs([(0, 1), (1, 3), (0, 2), (2, 3)])
    return graph


# --------------------------------------------------------------------------- #
# supervised crash-restart
# --------------------------------------------------------------------------- #
def test_supervisor_converges_over_crash_offsets(tmp_path):
    """Crashed-and-restarted runs reach the uncrashed run's fingerprint."""
    graph, events = _fault_workload(num_requests=40)
    reference_fp, reference, restarts = _run_supervised(
        graph, events, 6, tmp_path / "uncrashed.jsonl")
    assert restarts == 0

    for offset in (1, 13, 37, 61):
        assert offset < len(events)
        fingerprint, _, restarts = _run_supervised(
            graph, events, 6, tmp_path / f"crash-{offset}.jsonl",
            crash_after=offset)
        assert restarts == 1
        assert fingerprint == reference_fp

    # the uncrashed supervised run decides exactly as the trace loop;
    # fingerprints are compared durable-to-durable above because the
    # durable engine canonicalizes adjacency iteration from genesis
    oracle = simulate_online(graph, events, 6, record_timeline=False)
    assert _decisions(reference) == _decisions(oracle)
    assert reference.fibre_cuts == oracle.fibre_cuts == 1
    assert reference.lightpaths_stranded == oracle.lightpaths_stranded
    assert reference.lightpaths_restored == oracle.lightpaths_restored


def test_supervisor_restart_budget_exhausted_fails_typed(tmp_path):
    """Past the budget, every unresolved future fails with ServiceError."""
    graph, events = _fault_workload(num_requests=20)

    async def go():
        supervisor = ServiceSupervisor(graph.copy(), 6,
                                       journal_path=str(tmp_path / "j.jsonl"),
                                       max_restarts=0, crash_after_n_ops=5)
        async with supervisor:
            futures = _enqueue_trace(supervisor, events)
            outcomes = await asyncio.gather(*futures,
                                            return_exceptions=True)
            return supervisor, outcomes

    supervisor, outcomes = asyncio.run(go())
    assert supervisor.failed
    assert supervisor.restarts == 0
    failed = [o for o in outcomes if isinstance(o, ServiceError)]
    assert failed and all("restart budget" in str(exc) and "not applied"
                          in str(exc) for exc in failed)
    # the ops applied before the crash were decided normally
    assert len(failed) < len(outcomes)


def test_supervisor_restart_with_engine_knobs(tmp_path):
    """Engine knobs passed to the supervisor survive a crash-restart.

    The supervisor hands one kwargs dict to every incarnation; on
    restart ``from_durable`` must ignore the engine-knob entries (the
    journal's genesis record is authoritative) instead of raising a
    duplicate-keyword TypeError that would kill the watcher with every
    in-flight future hanging.
    """
    graph, events = _fault_workload(num_requests=30)
    knobs = dict(routing="shortest", policy="first_fit", seed=11,
                 restoration=True, restore_retries=3)

    async def go(path, crash_after):
        supervisor = ServiceSupervisor(graph.copy(), 6,
                                       journal_path=str(path),
                                       crash_after_n_ops=crash_after,
                                       **knobs)
        async with supervisor:
            futures = _enqueue_trace(supervisor, events)
            await asyncio.wait_for(asyncio.gather(*futures), timeout=60.0)
            return (engine_fingerprint(supervisor.service.engine),
                    supervisor.restarts)

    reference_fp, restarts = asyncio.run(go(tmp_path / "ref.jsonl", None))
    assert restarts == 0
    fingerprint, restarts = asyncio.run(go(tmp_path / "crash.jsonl", 7))
    assert restarts == 1
    assert fingerprint == reference_fp


def test_supervisor_restart_failure_fails_futures_typed(tmp_path,
                                                        monkeypatch):
    """A restart that itself fails (unreadable journal) resolves every
    pending future with a typed ServiceError instead of hanging them."""
    graph, events = _fault_workload(num_requests=20)

    def unreadable(*args, **kwargs):
        raise OSError("journal unreadable")

    monkeypatch.setattr("repro.service.supervisor.recover", unreadable)

    async def go():
        supervisor = ServiceSupervisor(graph.copy(), 6,
                                       journal_path=str(tmp_path / "j.jsonl"),
                                       max_restarts=3, crash_after_n_ops=5)
        async with supervisor:
            futures = _enqueue_trace(supervisor, events)
            outcomes = await asyncio.wait_for(
                asyncio.gather(*futures, return_exceptions=True),
                timeout=30.0)
            return supervisor, outcomes

    supervisor, outcomes = asyncio.run(go())
    assert supervisor.failed
    failed = [o for o in outcomes if isinstance(o, ServiceError)]
    assert failed and all("restart failed" in str(exc) and "not applied"
                          in str(exc) for exc in failed)
    # the ops applied before the crash were decided normally
    assert len(failed) < len(outcomes)


# --------------------------------------------------------------------------- #
# maintenance windows and equal-time ordering
# --------------------------------------------------------------------------- #
def test_maintenance_window_matches_event_oracle():
    """schedule_maintenance == maintenance_events through the simulator."""
    graph = multi_region_topology(regions=2, region_size=10,
                                  arc_probability=0.22, coupling=2, seed=5)
    pool = multi_region_traffic(graph, 40, inter_fraction=0.3, seed=6)
    trace = poisson_trace(pool, 40, arrival_rate=5.0, mean_holding=2.0,
                          seed=7)
    horizon = max(event.time for event in trace)
    arcs = _hot_arcs(graph, pool.pairs(), 2)
    start, duration = 0.35 * horizon, 0.3 * horizon

    async def go():
        service = RwaService(graph.copy(), 6)
        async with service:
            cut_futs, repair_futs = service.schedule_maintenance(
                arcs, start, duration)
            futures = _enqueue_trace(service, trace)
            for future in futures:
                await future
            result = service.result()
        for future in cut_futs + repair_futs:
            assert future.done() and future.exception() is None
        return result

    served = asyncio.run(go())
    oracle = simulate_online(
        graph, sort_events(trace + maintenance_events(arcs, start, duration,
                                                      fault_id=10 ** 6)),
        6, record_timeline=False)
    assert _decisions(served) == _decisions(oracle)
    assert served.fibre_cuts == oracle.fibre_cuts == len(arcs)
    assert served.fibre_repairs == oracle.fibre_repairs == len(arcs)
    assert engine_fingerprint(served.engine) == \
        engine_fingerprint(oracle.engine)


def test_supervisor_replans_pending_maintenance(tmp_path):
    """Maintenance still pending at the crash is re-*planned*, not run.

    Un-released scheduled ops handed over by ``take_unfinished`` must
    re-enter the restarted incarnation's schedule (released when the
    stream reaches the window), not its queue — queueing would execute
    the window immediately, dragging the clock to the window time and
    failing all earlier traffic on the time-regression check.
    """
    graph = multi_region_topology(regions=2, region_size=10,
                                  arc_probability=0.22, coupling=2, seed=5)
    pool = multi_region_traffic(graph, 40, inter_fraction=0.3, seed=6)
    trace = poisson_trace(pool, 40, arrival_rate=5.0, mean_holding=2.0,
                          seed=7)
    horizon = max(event.time for event in trace)
    arcs = _hot_arcs(graph, pool.pairs(), 2)
    start, duration = 0.5 * horizon, 0.3 * horizon

    async def go(path, crash_after):
        supervisor = ServiceSupervisor(graph.copy(), 6,
                                       journal_path=str(path),
                                       crash_after_n_ops=crash_after)
        async with supervisor:
            cut_futs, repair_futs = supervisor.schedule_maintenance(
                arcs, start, duration)
            futures = _enqueue_trace(supervisor, trace)
            await asyncio.wait_for(asyncio.gather(*futures), timeout=60.0)
            reports = await asyncio.wait_for(
                asyncio.gather(*cut_futs, *repair_futs), timeout=60.0)
            assert all(report is not None for report in reports)
            fingerprint = engine_fingerprint(supervisor.service.engine)
            result = supervisor.service.result()
            return fingerprint, result, supervisor.restarts

    reference_fp, reference, restarts = asyncio.run(
        go(tmp_path / "uncrashed.jsonl", None))
    assert restarts == 0
    # crash well before the window opens, while it is still scheduled
    fingerprint, crashed, restarts = asyncio.run(
        go(tmp_path / "crashed.jsonl", 5))
    assert restarts == 1
    assert fingerprint == reference_fp
    assert _decisions(crashed) == _decisions(reference)
    assert crashed.fibre_cuts == reference.fibre_cuts == len(arcs)
    assert crashed.fibre_repairs == reference.fibre_repairs == len(arcs)


def test_maintenance_window_validation():
    async def go():
        async with RwaService(_diamond(), 2) as service:
            with pytest.raises(ValueError):
                service.schedule_maintenance([(0, 1)], 1.0, 0.0)
            with pytest.raises(ValueError):
                service.schedule_maintenance([], 1.0, 2.0)
    asyncio.run(go())


def test_equal_time_ops_reorder_by_rank():
    """Scrambled same-timestamp ops match the sort_events oracle.

    With one wavelength, request 1 at t=1.0 is admitted only if request
    0's departure at the same instant is processed first — the service
    must apply the departure < repair < cut < arrival tie-break to a
    batch that was enqueued arrival-first.
    """
    events = [Event(0.0, ARRIVAL, 0, request=Request(0, 3)),
              Event(1.0, ARRIVAL, 1, request=Request(0, 3)),
              Event(1.0, DEPARTURE, 0)]
    oracle = simulate_online(_diamond(), sort_events(events), 1,
                             routing="shortest", record_timeline=False)
    assert oracle.accepted == [0, 1]        # the reorder genuinely matters

    async def go(scrambled):
        async with RwaService(_diamond(), 1, routing="shortest") as service:
            futures = _enqueue_trace(service, scrambled)
            for future in futures:
                await future
            return service.result()

    served = asyncio.run(go(events))        # arrival 1 enqueued before depart
    assert _decisions(served) == _decisions(oracle)
    assert engine_fingerprint(served.engine) == \
        engine_fingerprint(oracle.engine)


def test_equal_time_cut_precedes_arrival():
    """A cut racing a same-instant arrival is applied first."""
    events = [Event(0.0, ARRIVAL, 0, request=Request(0, 3)),
              Event(1.0, ARRIVAL, 1, request=Request(0, 3)),
              Event(1.0, CUT, 10 ** 6, arc=(0, 1))]
    oracle = simulate_online(_diamond(), sort_events(events), 2,
                             routing="shortest", record_timeline=False)

    async def go():
        service = RwaService(_diamond().copy(), 2, routing="shortest")
        async with service:
            futures = _enqueue_trace(service, events)  # arrival-first order
            for future in futures:
                await future
            return service.result()

    served = asyncio.run(go())
    assert _decisions(served) == _decisions(oracle)
    assert engine_fingerprint(served.engine) == \
        engine_fingerprint(oracle.engine)


# --------------------------------------------------------------------------- #
# timeouts, deadlines, retries
# --------------------------------------------------------------------------- #
def _gated_service(service):
    """Hold the drain task's queue shut until the returned gate is set."""
    gate = asyncio.Event()
    real_get = service._queue.get

    async def gated_get():
        await gate.wait()
        return await real_get()

    service._queue.get = gated_get
    return gate


def test_submit_timeout_is_typed_and_decided_once():
    async def go():
        service = RwaService(_diamond(), 2)
        await service.start()
        gate = _gated_service(service)
        with pytest.raises(TimedOut) as excinfo:
            await service.submit(0, request=Request(0, 3), time=0.0,
                                 timeout=0.01)
        assert excinfo.value.request_id == 0
        assert isinstance(excinfo.value, TimeoutError)   # asyncio-compatible
        assert isinstance(excinfo.value, ServiceError)
        gate.set()
        # the original op is still queued and decided exactly once; the
        # retry is answered from the decision log
        decision = await service.submit(0, request=Request(0, 3), time=0.0,
                                        retry=True)
        assert decision is None
        result = service.result()
        await service.stop()
        return result

    result = asyncio.run(go())
    assert result.accepted == [0]
    assert result.metrics["counters"]["result.accepted"] == 1


def test_deadline_expiry_is_typed_and_partitioned():
    async def go():
        async with RwaService(_diamond(), 2) as service:
            assert await service.submit(0, request=Request(0, 3),
                                        time=0.0) is None
            with pytest.raises(Expired) as excinfo:
                await service.submit(1, request=Request(0, 3), time=5.0,
                                     deadline=1.0)
            assert excinfo.value.request_id == 1
            assert excinfo.value.deadline == 1.0
            assert excinfo.value.time == 5.0
            # expired retries are answered from the log, typed again
            with pytest.raises(Expired):
                await service.submit(1, request=Request(0, 3), time=5.0,
                                     deadline=1.0, retry=True)
            return service.result(), service.engine.active
    result, active = asyncio.run(go())
    assert result.rejections == {1: EXPIRED}
    assert result.blocked == [1]
    assert active == 1                       # the engine never saw request 1
    counters = result.metrics["counters"]
    assert counters["result.blocked.expired"] == 1
    assert counters["result.blocked"] == 1


def test_retry_answered_after_clock_advance():
    """A retry carrying its original time beats the regression check.

    ``retry=True`` resubmissions legitimately arrive after later
    traffic advanced the service clock past their original ``time`` —
    they must be answered from the decision log, not rejected by the
    time-regression check the first fresh submission would hit.
    """
    async def go():
        async with RwaService(_diamond(), 2) as service:
            assert await service.submit(0, request=Request(0, 3),
                                        time=0.0) is None
            with pytest.raises(Expired):
                await service.submit(1, request=Request(0, 3), time=2.0,
                                     deadline=1.0)
            assert await service.submit(2, request=Request(0, 3),
                                        time=5.0) is None
            # the clock sits at 5.0; both retries carry their old times
            assert await service.submit(0, request=Request(0, 3),
                                        time=0.0, retry=True) is None
            with pytest.raises(Expired):
                await service.submit(1, request=Request(0, 3), time=2.0,
                                     deadline=1.0, retry=True)
            # a *fresh* out-of-order submission still fails typed
            with pytest.raises(SimulationError):
                await service.submit(3, request=Request(0, 3), time=1.0)
            return service.result()
    result = asyncio.run(go())
    assert result.accepted == [0, 2]
    assert result.rejections == {1: EXPIRED}
    assert result.metrics["counters"]["result.accepted"] == 2


def test_stop_after_crash_fails_fast():
    """stop() on a crashed service raises typed instead of hanging.

    With ``max_pending`` set and the queue refilled after the consumer
    died, the old stop() blocked forever putting its sentinel; without
    a bound it re-raised the raw crash.  Either way the API now fails
    fast and leaves the leftovers recoverable via take_unfinished().
    """
    async def go():
        service = RwaService(_diamond(), 2, max_pending=1,
                             crash_after_n_ops=0)
        await service.start()
        service.submit_nowait(0, request=Request(0, 3), time=0.0)
        while not service._drain_task.done():
            await asyncio.sleep(0)
        # refill the bounded queue: a sentinel put would block forever
        service.submit_nowait(1, request=Request(0, 3), time=0.0)
        with pytest.raises(ServiceError) as excinfo:
            await asyncio.wait_for(service.stop(), timeout=5.0)
        assert "crashed" in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, ServiceError)
        leftovers = service.take_unfinished()
        assert {op.request_id for op in leftovers} == {0, 1}
    asyncio.run(go())


def test_expired_counter_is_lazy_for_snapshot_identity():
    """A deadline-free run's metrics know nothing of the expired reason."""
    graph, events = _fault_workload(num_requests=20)
    from repro.service import serve_trace
    served = serve_trace(graph, events, 6)
    reference = simulate_online(graph, events, 6, record_timeline=False)
    assert "result.blocked.expired" not in served.metrics["counters"]
    assert served.metrics == reference.metrics


def test_retrying_client_backoff_schedule_is_deterministic():
    a = RetryingClient(object(), seed=99, base_delay=0.01, max_delay=0.25)
    b = RetryingClient(object(), seed=99, base_delay=0.01, max_delay=0.25)
    schedule_a = [a.backoff_delay(i) for i in range(8)]
    schedule_b = [b.backoff_delay(i) for i in range(8)]
    assert schedule_a == schedule_b
    for index, delay in enumerate(schedule_a):
        cap = min(0.25, 0.01 * 2 ** index)
        assert 0.5 * cap <= delay < cap
    other = RetryingClient(object(), seed=100, base_delay=0.01,
                           max_delay=0.25)
    assert [other.backoff_delay(i) for i in range(8)] != schedule_a


def test_retrying_client_validation():
    with pytest.raises(ValueError):
        RetryingClient(object(), timeout=0.0)
    with pytest.raises(ValueError):
        RetryingClient(object(), max_attempts=0)
    with pytest.raises(ValueError):
        RetryingClient(object(), base_delay=0.2, max_delay=0.1)


def test_retrying_client_retries_until_decided():
    async def go():
        service = RwaService(_diamond(), 2)
        await service.start()
        gate = _gated_service(service)
        client = RetryingClient(service, timeout=0.02, max_attempts=4,
                                base_delay=0.001, max_delay=0.005, seed=7)
        task = asyncio.get_running_loop().create_task(
            client.submit(0, request=Request(0, 3), time=0.0))
        while client.timeouts < 1:
            await asyncio.sleep(0.001)
        gate.set()
        decision = await task
        result = service.result()
        await service.stop()
        return client, decision, result

    client, decision, result = asyncio.run(go())
    assert decision is None
    assert client.timeouts >= 1
    assert client.attempts == client.timeouts + 1
    assert client.retries == client.attempts - 1
    # N racing attempts cost exactly one engine decision
    assert result.accepted == [0]
    assert result.metrics["counters"]["result.accepted"] == 1


def test_retrying_client_exhausts_and_reraises():
    async def go():
        service = RwaService(_diamond(), 2)
        await service.start()
        gate = _gated_service(service)       # stays shut through every attempt
        client = RetryingClient(service, timeout=0.005, max_attempts=2,
                                base_delay=0.001, max_delay=0.002, seed=1)
        with pytest.raises(TimedOut):
            await client.submit(0, request=Request(0, 3), time=0.0)
        assert client.attempts == 2
        assert client.timeouts == 2
        gate.set()                           # let stop() drain the leftovers
        await service.stop()
        return service.result()

    result = asyncio.run(go())
    # both abandoned attempts resolved to one engine decision
    assert result.accepted == [0]
    assert result.metrics["counters"]["result.accepted"] == 1


# --------------------------------------------------------------------------- #
# latency statistics edge cases (satellite: _percentile hardening)
# --------------------------------------------------------------------------- #
def test_percentile_edge_cases():
    assert _percentile([], 0.0) == 0.0
    assert _percentile([], 0.5) == 0.0
    assert _percentile([], 1.0) == 0.0
    assert _percentile([4.2], 0.0) == 4.2    # a single sample is every
    assert _percentile([4.2], 0.5) == 4.2    # percentile of itself
    assert _percentile([4.2], 0.99) == 4.2
    assert _percentile([4.2], 1.0) == 4.2
    assert _percentile([1.0, 2.0, 3.0, 4.0], 0.0) == 1.0     # minimum
    assert _percentile([1.0, 2.0, 3.0, 4.0], 1.0) == 4.0     # maximum
    assert _percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.0
    with pytest.raises(ValueError):
        _percentile([1.0], -0.01)
    with pytest.raises(ValueError):
        _percentile([1.0], 1.01)


def test_latency_stats_zero_and_single_sample():
    service = RwaService(_diamond(), 2)
    stats = service.latency_stats()
    assert stats == {"count": 0.0, "mean_s": 0.0, "p50_s": 0.0,
                     "p99_s": 0.0, "max_s": 0.0}
    service._latencies.append(0.25)
    stats = service.latency_stats()
    assert stats["count"] == 1.0
    assert stats["mean_s"] == stats["p50_s"] == stats["p99_s"] == \
        stats["max_s"] == 0.25
