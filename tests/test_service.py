"""RWA service: trace-loop identity, tenant quotas, lifecycle, reads.

The headline contracts (marker ``service``):

* :class:`repro.service.RwaService` makes **bit-identical** decisions to
  :func:`repro.online.simulator.simulate_online` on the same ordered
  trace, fingerprints included (:func:`repro.service.serve_trace` is the
  replay harness);
* per-tenant quotas are starvation-free — a flooding tenant exhausts
  only its own weighted-fair share and the per-tenant shed counters
  partition the ``guard.shed`` total exactly;
* a durable service's journal recovers to the exact live engine;
* reads issued against a backlogged service observe coherent
  between-batch snapshots and never stall admission.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.dipaths.requests import Request
from repro.exceptions import ServiceError, SimulationError
from repro.generators.regions import multi_region_topology, multi_region_traffic
from repro.graphs.digraph import DiGraph
from repro.online.events import (ARRIVAL, CUT, Event, cut_event,
                                 poisson_trace, repair_event, sort_events)
from repro.online.persistence import engine_fingerprint, recover
from repro.online.simulator import (
    DEFAULT_TENANT,
    SHED,
    AdmissionGuard,
    simulate_online,
)
from repro.service import RwaService, serve_trace

pytestmark = pytest.mark.service


def _workload(num_requests=140, seed_topo=7, seed_traffic=8, seed_trace=9,
              arrival_rate=6.0):
    graph = multi_region_topology(regions=2, region_size=14,
                                  arc_probability=0.2, coupling=2,
                                  seed=seed_topo)
    pool = multi_region_traffic(graph, num_requests, inter_fraction=0.2,
                                seed=seed_traffic)
    trace = poisson_trace(pool, num_requests, arrival_rate=arrival_rate,
                          mean_holding=2.0, seed=seed_trace)
    return graph, pool, trace


def _decisions(result):
    return (result.accepted, result.blocked, result.rejections)


def _line_graph():
    graph = DiGraph()
    for v in range(4):
        graph.add_vertex(v)
    for v in range(3):
        graph.add_arc(v, v + 1)
    return graph


# --------------------------------------------------------------------------- #
# decision identity with the trace loop
# --------------------------------------------------------------------------- #
class TestTraceLoopIdentity:
    @pytest.mark.parametrize("svc_kwargs,sim_kwargs", [
        ({}, {}),
        ({"batch_policy": "best_prefix"}, {"batch_policy": "best_prefix"}),
        ({"batch_policy": "greedy", "work_budget": 4.0, "queue_depth": 6},
         {"batch_policy": "greedy", "shed_work_budget": 4.0,
          "shed_queue_depth": 6}),
        ({"sharded": True}, {"sharded": True}),
        ({"routing": "k_shortest", "speculative": True, "work_budget": 9.0},
         {"routing": "k_shortest", "speculative": True,
          "shed_work_budget": 9.0}),
    ])
    def test_decisions_and_fingerprint_match(self, svc_kwargs, sim_kwargs):
        graph, _, trace = _workload()
        reference = simulate_online(graph, trace, 8, record_timeline=False,
                                    **sim_kwargs)
        served = serve_trace(graph, trace, 8, **svc_kwargs)
        assert _decisions(served) == _decisions(reference)
        assert engine_fingerprint(served.engine) \
            == engine_fingerprint(reference.engine)

    def test_result_fields_match_trace_loop(self):
        graph, _, trace = _workload()
        reference = simulate_online(graph, trace, 6, record_timeline=False,
                                    batch_policy="all_or_nothing")
        served = serve_trace(graph, trace, 6,
                             batch_policy="all_or_nothing")
        for field in ("wavelengths_used", "kempe_repairs", "defrag_passes",
                      "component_merges", "component_splits",
                      "shard_rebuilds", "batch_policy", "policy",
                      "routing", "sharded"):
            assert getattr(served, field) == getattr(reference, field), field

    def test_deterministic_metrics_match_trace_loop(self):
        graph, _, trace = _workload()
        reference = simulate_online(graph, trace, 8, record_timeline=False,
                                    batch_policy="best_prefix")
        served = serve_trace(graph, trace, 8, batch_policy="best_prefix")
        canonical = [json.dumps({k: v for k, v in r.metrics.items()
                                 if k != "diagnostics"}, sort_keys=True)
                     for r in (served, reference)]
        assert canonical[0] == canonical[1]

    def test_serve_trace_latency_summary(self):
        graph, _, trace = _workload(num_requests=40)
        served = serve_trace(graph, trace, 8)
        arrivals = sum(1 for e in trace if e.kind == ARRIVAL)
        assert served.latency["count"] == float(arrivals)
        assert 0.0 <= served.latency["p50_s"] <= served.latency["p99_s"] \
            <= served.latency["max_s"]

    def test_serve_trace_accepts_fault_events(self):
        """A fault-bearing trace replays through the service loop and
        stays decision-identical to the simulator oracle (the E21
        contract; the chaos suite fuzzes it harder)."""
        graph, _, trace = _workload(num_requests=60)
        arc = next(iter(graph.arcs()))
        horizon = max(e.time for e in trace)
        trace = sort_events(trace +
                            [cut_event(0.4 * horizon, arc, fault_id=10_000),
                             repair_event(0.7 * horizon, arc,
                                          fault_id=10_000)])
        reference = simulate_online(graph, trace, 8, record_timeline=False)
        served = serve_trace(graph, trace, 8)
        assert served.fibre_cuts == reference.fibre_cuts == 1
        assert served.fibre_repairs == reference.fibre_repairs == 1
        assert served.lightpaths_stranded == reference.lightpaths_stranded
        assert served.lightpaths_restored == reference.lightpaths_restored
        for field in ("accepted", "blocked", "rejections",
                      "wavelengths_used"):
            assert getattr(served, field) == getattr(reference, field), field
        assert engine_fingerprint(served.engine) == \
            engine_fingerprint(reference.engine)


# --------------------------------------------------------------------------- #
# per-tenant quotas: starvation-freedom and shed accounting
# --------------------------------------------------------------------------- #
class TestTenantQuotas:
    def _run_flood_vs_quiet(self, bursts=30, flood_per_burst=12):
        """One quiet arrival rides every flood burst; returns outcomes."""
        graph, pool, _ = _workload()
        pairs = pool.pairs()

        async def scenario():
            service = RwaService(graph, 8, work_budget=6.0, burst=12.0,
                                 tenants={"flood": 1.0, "quiet": 1.0})
            reasons = {"flood": [], "quiet": []}
            async with service:
                rid = 0
                for tick in range(bursts):
                    for _ in range(flood_per_burst):
                        s, t = pairs[rid % len(pairs)]
                        reasons["flood"].append(await service.submit(
                            rid, request=Request(s, t), time=float(tick),
                            tenant="flood"))
                        rid += 1
                    s, t = pairs[rid % len(pairs)]
                    reasons["quiet"].append(await service.submit(
                        rid, request=Request(s, t), time=float(tick),
                        tenant="quiet"))
                    rid += 1
                return reasons, service.blocking_stats(), \
                    service.metrics_snapshot()

        return asyncio.run(scenario())

    def test_flooding_tenant_cannot_starve_quiet_one(self):
        reasons, stats, _ = self._run_flood_vs_quiet()
        flood_shed = sum(1 for r in reasons["flood"] if r == SHED)
        quiet_shed = sum(1 for r in reasons["quiet"] if r == SHED)
        # the flood runs far past its fair share and pays for it ...
        assert flood_shed > 0
        # ... while the quiet tenant, arriving under its own share,
        # is never shed — the flood cannot reach its bucket
        assert quiet_shed == 0

    def test_tenant_shed_counters_partition_the_total(self):
        reasons, stats, snapshot = self._run_flood_vs_quiet()
        shed_total = snapshot["counters"]["guard.shed"]
        by_tenant = stats["shed_by_tenant"]
        assert sum(by_tenant.values()) == shed_total
        assert by_tenant["flood"] == sum(1 for r in reasons["flood"]
                                         if r == SHED)
        diag = snapshot["diagnostics"]["counters"]
        assert diag["guard.tenant.flood.shed"] == by_tenant["flood"]
        assert "guard.tenant.quiet.shed" not in diag   # lazily created

    def test_guard_single_bucket_mode_unchanged(self):
        """Without tenants= the guard is the old global token bucket."""
        legacy = AdmissionGuard(work_budget=2.0, burst=4.0)
        outcomes = [legacy.admits(0.0) for _ in range(6)]
        assert outcomes == [True] * 4 + [False] * 2
        assert legacy.shed_count == 2
        assert legacy.tenants() == [DEFAULT_TENANT]
        assert legacy.tenant_shed_counts() == {DEFAULT_TENANT: 2}

    def test_guard_undeclared_tenant_draws_from_default_bucket(self):
        guard = AdmissionGuard(work_budget=3.0, burst=3.0,
                               tenants={"a": 2.0})
        # weights: a=2, default=1 -> default bucket holds burst 3/3 = 1
        assert guard.admits(0.0, tenant="mystery") is True
        assert guard.admits(0.0, tenant="mystery") is False
        # the shed is accounted to the *named* tenant, not "default"
        assert guard.tenant_shed_counts() == {"mystery": 1}
        assert guard.tokens_available("a") == 2.0   # untouched

    def test_guard_weight_validation(self):
        with pytest.raises(ValueError, match="positive weight"):
            AdmissionGuard(work_budget=1.0, tenants={"bad": 0.0})

    def test_guard_queue_depth_is_per_tenant(self):
        guard = AdmissionGuard(queue_depth=1,
                               tenants={"a": 1.0, "b": 1.0})
        assert guard.admits(0.0, tenant="a") is True
        assert guard.admits(0.0, tenant="b") is True   # b's own depth
        assert guard.admits(0.0, tenant="a") is False  # a's second


# --------------------------------------------------------------------------- #
# durable service
# --------------------------------------------------------------------------- #
class TestDurableService:
    def test_journal_recovers_to_live_fingerprint(self, tmp_path):
        graph, _, trace = _workload(num_requests=100)
        path = tmp_path / "service.jsonl"
        served = serve_trace(graph, trace, 8, journal_path=str(path),
                             snapshot_every=32, batch_policy="best_prefix")
        recovered = recover(str(path))
        assert recovered.fingerprint() == engine_fingerprint(served.engine)
        recovered.close()

    def test_shed_arrivals_are_not_journalled(self, tmp_path):
        """Quota refusal is front-door policy, not engine state."""
        graph, _, trace = _workload()
        path = tmp_path / "guarded.jsonl"
        served = serve_trace(graph, trace, 8, journal_path=str(path),
                             work_budget=3.0, queue_depth=4)
        shed = set(served.blocked_shed)
        assert shed    # the guard fired
        journalled = {record["rid"]
                      for record in map(json.loads,
                                        path.read_text().splitlines())
                      if record.get("type") == "admit"}
        assert journalled.isdisjoint(shed)
        # recovery replays only engine decisions and still matches
        recovered = recover(str(path))
        assert recovered.fingerprint() == engine_fingerprint(served.engine)
        recovered.close()


# --------------------------------------------------------------------------- #
# service lifecycle + live reads
# --------------------------------------------------------------------------- #
class TestServiceLifecycle:
    def test_submit_requires_running_service(self):
        graph = _line_graph()

        async def scenario():
            service = RwaService(graph, 2)
            with pytest.raises(ServiceError):
                await service.submit(0, request=Request(0, 3))
            async with service:
                assert await service.submit(0, request=Request(0, 3)) is None
            with pytest.raises(ServiceError):
                await service.submit(1, request=Request(0, 3))
            with pytest.raises(ServiceError):
                await service.start()

        asyncio.run(scenario())

    def test_stop_drains_pending_submissions(self):
        graph = _line_graph()

        async def scenario():
            service = RwaService(graph, 2)
            await service.start()
            futures = [service.submit_nowait(rid, request=Request(0, 3),
                                             time=float(rid))
                       for rid in range(3)]
            await service.stop()
            return [f.result() for f in futures]

        assert asyncio.run(scenario()) == [None, None, "no_wavelength"]

    def test_malformed_traffic_fails_only_its_future(self):
        """A duplicate arrival or a time-travelling one poisons nothing."""
        graph = _line_graph()

        async def scenario():
            async with RwaService(graph, 3) as service:
                assert await service.submit(
                    0, request=Request(0, 3), time=1.0) is None
                with pytest.raises(SimulationError, match="duplicate"):
                    await service.submit(0, request=Request(0, 3), time=2.0)
                with pytest.raises(SimulationError, match="time-ordered"):
                    await service.submit(1, request=Request(0, 3), time=0.5)
                # the service keeps serving after both failures
                assert await service.submit(
                    2, request=Request(0, 3), time=3.0) is None
                assert await service.depart(0, time=4.0) is True
                return service.blocking_stats()

        stats = asyncio.run(scenario())
        assert stats["accepted"] == 2 and stats["blocked"] == 0

    def test_reads_between_batches_are_coherent(self):
        """Reads against a backlog see post-batch state, not mid-burst."""
        graph, pool, _ = _workload()
        pairs = pool.pairs()

        async def scenario():
            observations = []
            async with RwaService(graph, 8,
                                  batch_policy="best_prefix") as service:
                for rid in range(60):
                    s, t = pairs[rid % len(pairs)]
                    service.submit_nowait(rid, request=Request(s, t),
                                          time=float(rid // 12))
                backlog = service.pending()
                while service.pending():
                    stats = service.blocking_stats()
                    util = service.utilisation()
                    # every observation balances: decisions so far equal
                    # accepted + blocked, and utilisation is a consistent
                    # snapshot of the engine between bursts
                    observations.append((stats["accepted"],
                                         stats["blocked"],
                                         util["active"]))
                    await asyncio.sleep(0)
                final = service.blocking_stats()
                shard_map = service.shard_map()
            return backlog, observations, final, shard_map

        backlog, observations, final, shard_map = asyncio.run(scenario())
        assert backlog > 0
        assert final["accepted"] + final["blocked"] == 60
        for accepted, blocked, active in observations:
            assert accepted + blocked <= 60
            assert active <= accepted
        members = [m for shard in shard_map.values() for m in shard]
        assert len(members) == len(set(members))

    def test_request_defrag_runs_in_admission_order(self):
        graph, pool, _ = _workload()
        pairs = pool.pairs()

        async def scenario():
            async with RwaService(graph, 8) as service:
                for rid in range(24):
                    s, t = pairs[rid % len(pairs)]
                    await service.submit(rid, request=Request(s, t),
                                         time=float(rid))
                report = await service.request_defrag(max_moves=4)
                return report, service.engine.defrag_passes

        report, passes = asyncio.run(scenario())
        assert passes == 1
        assert len(report.moves) <= 4

    def test_latency_stats_cover_every_decision(self):
        graph, _, trace = _workload(num_requests=30)
        served = serve_trace(graph, trace, 8)
        arrivals = sum(1 for e in trace if e.kind == ARRIVAL)
        assert served.latency["count"] == float(arrivals)

    def test_rejects_unknown_batch_policy(self):
        with pytest.raises(ValueError, match="batch policy"):
            RwaService(_line_graph(), 2, batch_policy="nonsense")

    def test_rejects_burst_without_budget(self):
        with pytest.raises(ValueError, match="work_budget"):
            RwaService(_line_graph(), 2, burst=4.0)


# --------------------------------------------------------------------------- #
# E19 gate wiring (cheap smoke; the full replay is bench-marked)
# --------------------------------------------------------------------------- #
class TestE19Smoke:
    def test_smoke_mode_validates_the_gate_wiring(self):
        """One warm-up-free replay per scenario; identity facts still gate."""
        from repro.analysis.bench_service import (
            run_service_benchmark,
            service_problems,
        )

        records = run_service_benchmark(smoke=True)
        assert {r["kind"] for r in records} == {"service", "tenant_isolation"}
        assert service_problems(records) == []
