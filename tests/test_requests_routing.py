"""Unit tests for :mod:`repro.dipaths.requests` and :mod:`repro.dipaths.routing`."""

import pytest

from repro.dipaths.requests import Request, RequestFamily
from repro.dipaths.routing import (
    route_all,
    route_min_load,
    route_shortest,
    route_unique,
)
from repro.exceptions import RoutingError
from repro.generators.gadgets import havet_dag
from repro.generators.trees import out_tree
from repro.graphs.dag import DAG


class TestRequest:
    def test_basic(self):
        r = Request("a", "b", 2)
        assert r.as_tuple() == ("a", "b", 2)

    def test_invalid(self):
        with pytest.raises(ValueError):
            Request("a", "a")
        with pytest.raises(ValueError):
            Request("a", "b", 0)

    def test_equality_hash(self):
        assert Request("a", "b") == Request("a", "b")
        assert len({Request("a", "b"), Request("a", "b")}) == 1


class TestRequestFamily:
    def test_add_tuple_forms(self):
        fam = RequestFamily([("a", "b"), ("a", "c", 3)])
        assert len(fam) == 2
        assert fam.total_demand() == 4

    def test_pairs_expand_multiplicity(self):
        fam = RequestFamily([("a", "b", 2)])
        assert fam.pairs() == [("a", "b"), ("a", "b")]
        assert fam.pairs(expand_multiplicity=False) == [("a", "b")]

    def test_demand_matrix_aggregates(self):
        fam = RequestFamily([("a", "b"), ("a", "b", 2), ("b", "c")])
        assert fam.demand_matrix() == {("a", "b"): 3, ("b", "c"): 1}

    def test_multicast_detection(self):
        fam = RequestFamily([("a", "b"), ("a", "c")])
        assert fam.is_multicast()
        fam.add(("b", "c"))
        assert not fam.is_multicast()

    def test_all_to_all_only_connected(self, simple_dag):
        fam = RequestFamily.all_to_all(simple_dag)
        pairs = set(fam.pairs())
        assert ("a", "d") in pairs
        assert ("d", "a") not in pairs       # unreachable pairs dropped
        assert ("e", "d") not in pairs

    def test_all_to_all_unrestricted(self, simple_dag):
        fam = RequestFamily.all_to_all(simple_dag, only_connected=False)
        n = simple_dag.num_vertices
        assert len(fam) == n * (n - 1)

    def test_multicast_constructor(self, simple_dag):
        fam = RequestFamily.multicast(simple_dag, "a")
        assert fam.is_multicast()
        assert set(r.target for r in fam) == {"b", "c", "d", "e"}


class TestRouting:
    def test_route_unique_on_tree(self):
        tree = out_tree(2, 3)
        requests = RequestFamily.multicast(tree, ())
        family = route_unique(tree, requests)
        assert len(family) == len(requests)
        family.validate_against(tree)

    def test_route_unique_rejects_ambiguity(self):
        dag = DAG(arcs=[("s", "x"), ("s", "y"), ("x", "t"), ("y", "t")])
        with pytest.raises(RoutingError):
            route_unique(dag, RequestFamily([("s", "t")]))

    def test_route_unique_rejects_unreachable(self, simple_dag):
        with pytest.raises(RoutingError):
            route_unique(simple_dag, RequestFamily([("d", "a")]))

    def test_route_shortest(self, simple_dag):
        family = route_shortest(simple_dag, RequestFamily([("a", "d"), ("f", "d")]))
        assert family[0].length == 3
        assert family[1].length == 2

    def test_route_shortest_multiplicity(self, simple_dag):
        family = route_shortest(simple_dag, RequestFamily([("a", "d", 3)]))
        assert len(family) == 3
        assert family.load() == 3

    def test_route_min_load_spreads(self):
        # Two parallel routes s->x->t and s->y->t; 4 requests s->t should
        # split 2/2 under min-load routing (load 2) instead of 4 on one route.
        dag = DAG(arcs=[("s", "x"), ("s", "y"), ("x", "t"), ("y", "t")])
        requests = RequestFamily([("s", "t", 4)])
        family = route_min_load(dag, requests)
        assert len(family) == 4
        assert family.load() == 2

    def test_route_min_load_unreachable(self, simple_dag):
        with pytest.raises(RoutingError):
            route_min_load(simple_dag, RequestFamily([("d", "a")]))

    def test_route_all_dispatch(self, simple_dag):
        requests = RequestFamily([("a", "d")])
        assert len(route_all(simple_dag, requests, "shortest")) == 1
        assert len(route_all(simple_dag, requests, "min-load")) == 1
        with pytest.raises(ValueError):
            route_all(simple_dag, requests, "bogus")  # type: ignore[arg-type]

    def test_route_unique_on_havet(self):
        dag = havet_dag()
        requests = RequestFamily([("a1", "d1"), ("a2p", "d2p")])
        family = route_unique(dag, requests)
        assert list(family[0].vertices) == ["a1", "b1", "c1", "d1"]
        assert list(family[1].vertices) == ["a2p", "b2", "c2", "d2p"]
