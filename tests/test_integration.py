"""Integration tests: the paper's headline claims, end to end through the public API."""

import math

import pytest

import repro
from repro import (
    DAG,
    DipathFamily,
    assign_wavelengths,
    build_conflict_graph,
    chromatic_number,
    color_dipaths_theorem1,
    color_dipaths_theorem6,
    equality_certificate,
    has_internal_cycle,
    is_upp_dag,
    load,
    min_wavelengths_equal_load,
    theorem6_bound,
    wavelength_number,
    witness_family_theorem2,
)
from repro.analysis.experiments import (
    main_theorem_experiment,
    optical_rwa_experiment,
    theorem1_experiment,
    theorem6_experiment,
    upp_properties_experiment,
)
from repro.generators import (
    figure3_instance,
    figure5_instance,
    havet_instance,
    pathological_instance,
    random_internal_cycle_free_dag,
    random_walk_family,
)


class TestPublicAPI:
    def test_version_and_exports(self):
        assert repro.__version__
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_docstring_quickstart(self):
        dag = DAG(arcs=[("a", "b"), ("b", "c"), ("b", "d")])
        family = DipathFamily([["a", "b", "c"], ["a", "b", "d"]], graph=dag)
        assert load(dag, family) == 2
        assert wavelength_number(dag, family) == 2


class TestPaperHeadlines:
    def test_figure1_claim(self):
        """Figure 1: load 2, wavelength number k — no bounded ratio on general DAGs."""
        for k in (2, 4, 6):
            dag, family = pathological_instance(k)
            assert load(dag, family) == 2
            assert wavelength_number(dag, family, method="exact") == k
            if k >= 3:
                # for k >= 3 the gap w > pi appears, so by the Main Theorem
                # the DAG must contain an internal cycle
                assert has_internal_cycle(dag)

    def test_figure3_claim(self):
        """Figure 3: one internal cycle, 5 dipaths, pi=2, w=3, conflict graph C5."""
        dag, family = figure3_instance()
        assert load(dag, family) == 2
        assert wavelength_number(dag, family, method="exact") == 3
        assert build_conflict_graph(family).is_cycle_graph()

    def test_theorem1_claim(self):
        """Theorem 1: w = pi on DAGs without internal cycle, constructively."""
        for seed in range(3):
            dag = random_internal_cycle_free_dag(35, 55, seed=seed)
            family = random_walk_family(dag, 45, seed=seed)
            coloring = color_dipaths_theorem1(dag, family)
            assert len(set(coloring.values())) == load(dag, family)

    def test_theorem2_and_main_theorem_claim(self):
        """Theorem 2 + Main Theorem: internal cycle <=> some family with w > pi."""
        dag, _ = figure5_instance(4)
        assert not min_wavelengths_equal_load(dag)
        witness = witness_family_theorem2(dag)
        assert load(dag, witness) == 2
        assert wavelength_number(dag, witness, method="exact") == 3

        cert = equality_certificate(dag)
        assert not cert.equality_holds
        assert cert.witness_wavelengths > cert.witness_load

    def test_theorem6_claim(self):
        """Theorem 6: UPP-DAG with one internal cycle => w <= ceil(4 pi / 3)."""
        dag, family = havet_instance(3)
        assert is_upp_dag(dag)
        coloring = color_dipaths_theorem6(dag, family)
        assert len(set(coloring.values())) <= theorem6_bound(load(dag, family))

    def test_theorem7_claim(self):
        """Theorem 7: the replicated Havet family reaches the bound exactly."""
        dag, family = havet_instance(2)
        pi = load(dag, family)
        w = wavelength_number(dag, family, method="exact")
        assert pi == 4
        assert w == math.ceil(4 * pi / 3) == 6

    def test_auto_assignment_picks_best_method(self):
        scenarios = [
            (figure3_instance(), "exact", 3),
            (havet_instance(1), "theorem6", 3),
        ]
        for (dag, family), expected_method, expected_w in scenarios:
            solution = assign_wavelengths(dag, family, method="auto")
            assert solution.method == expected_method
            assert solution.num_wavelengths == expected_w


class TestExperimentDriversEndToEnd:
    """Small runs of the benchmark drivers: every claim they verify must hold."""

    def test_theorem1_experiment(self):
        records = theorem1_experiment(num_instances=3, num_vertices=25,
                                      num_arcs=38, num_paths=25, seed=5)
        assert records and all(r["equal"] for r in records)

    def test_main_theorem_experiment(self):
        records = main_theorem_experiment(num_instances=4, num_vertices=20, seed=2)
        assert records and all(r["matches_theorem"] for r in records)

    def test_upp_properties_experiment(self):
        records = upp_properties_experiment(num_instances=4, seed=1)
        assert records
        assert all(r["clique_equals_load"] and r["no_k23"] for r in records)

    def test_theorem6_experiment(self):
        records = theorem6_experiment(num_random=4, havet_copies=(1, 2), seed=3)
        assert records and all(r["within_bound"] for r in records)

    def test_optical_experiment(self):
        records = optical_rwa_experiment(seed=1)
        assert records and all(r["equal"] for r in records)
