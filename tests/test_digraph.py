"""Unit tests for :mod:`repro.graphs.digraph`."""

import pytest

from repro.exceptions import (
    ArcNotFoundError,
    DuplicateArcError,
    SelfLoopError,
    VertexNotFoundError,
)
from repro.graphs.digraph import DiGraph


class TestConstruction:
    def test_empty_graph(self):
        g = DiGraph()
        assert g.num_vertices == 0
        assert g.num_arcs == 0
        assert list(g.vertices()) == []
        assert list(g.arcs()) == []

    def test_from_arcs(self):
        g = DiGraph.from_arcs([("a", "b"), ("b", "c")])
        assert g.num_vertices == 3
        assert g.num_arcs == 2
        assert g.has_arc("a", "b")
        assert not g.has_arc("b", "a")

    def test_from_adjacency(self):
        g = DiGraph.from_adjacency({"a": ["b", "c"], "b": ["c"], "d": []})
        assert g.num_vertices == 4
        assert g.num_arcs == 3
        assert g.has_vertex("d")
        assert g.out_degree("d") == 0

    def test_isolated_vertices_preserved(self):
        g = DiGraph(arcs=[("a", "b")], vertices=["z"])
        assert g.has_vertex("z")
        assert g.isolated_vertices() == ["z"]

    def test_add_dipath(self):
        g = DiGraph()
        g.add_dipath(["a", "b", "c", "d"])
        assert g.num_arcs == 3
        assert g.has_arc("c", "d")


class TestMutation:
    def test_add_duplicate_arc_is_noop(self):
        g = DiGraph(arcs=[("a", "b")])
        g.add_arc("a", "b")
        assert g.num_arcs == 1

    def test_add_duplicate_arc_strict_raises(self):
        g = DiGraph(arcs=[("a", "b")])
        with pytest.raises(DuplicateArcError):
            g.add_arc("a", "b", strict=True)

    def test_self_loop_rejected(self):
        g = DiGraph()
        with pytest.raises(SelfLoopError):
            g.add_arc("a", "a")

    def test_remove_arc(self):
        g = DiGraph(arcs=[("a", "b"), ("b", "c")])
        g.remove_arc("a", "b")
        assert not g.has_arc("a", "b")
        assert g.num_arcs == 1
        assert g.has_vertex("a")

    def test_remove_missing_arc_raises(self):
        g = DiGraph(arcs=[("a", "b")])
        with pytest.raises(ArcNotFoundError):
            g.remove_arc("b", "a")

    def test_remove_vertex_removes_incident_arcs(self):
        g = DiGraph(arcs=[("a", "b"), ("b", "c"), ("c", "d")])
        g.remove_vertex("b")
        assert not g.has_vertex("b")
        assert g.num_arcs == 1
        assert g.has_arc("c", "d")

    def test_remove_missing_vertex_raises(self):
        g = DiGraph()
        with pytest.raises(VertexNotFoundError):
            g.remove_vertex("x")


class TestQueries:
    def test_degrees(self):
        g = DiGraph(arcs=[("a", "b"), ("a", "c"), ("b", "c")])
        assert g.out_degree("a") == 2
        assert g.in_degree("c") == 2
        assert g.degree("b") == 2

    def test_degree_of_missing_vertex_raises(self):
        g = DiGraph()
        with pytest.raises(VertexNotFoundError):
            g.out_degree("missing")
        with pytest.raises(VertexNotFoundError):
            g.in_degree("missing")

    def test_successors_predecessors(self):
        g = DiGraph(arcs=[("a", "b"), ("a", "c")])
        assert g.successors("a") == {"b", "c"}
        assert g.predecessors("b") == {"a"}
        with pytest.raises(VertexNotFoundError):
            g.successors("zz")

    def test_sources_sinks_internal(self):
        g = DiGraph(arcs=[("a", "b"), ("b", "c")])
        assert g.sources() == ["a"]
        assert g.sinks() == ["c"]
        assert g.internal_vertices() == ["b"]

    def test_contains_and_len(self):
        g = DiGraph(arcs=[("a", "b")])
        assert "a" in g
        assert ("a", "b") in g
        assert ("b", "a") not in g
        assert len(g) == 2

    def test_equality(self):
        g1 = DiGraph(arcs=[("a", "b"), ("b", "c")])
        g2 = DiGraph(arcs=[("b", "c"), ("a", "b")])
        g3 = DiGraph(arcs=[("a", "b")])
        assert g1 == g2
        assert g1 != g3


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        g = DiGraph(arcs=[("a", "b")])
        h = g.copy()
        h.add_arc("b", "c")
        assert g.num_arcs == 1
        assert h.num_arcs == 2

    def test_subgraph(self):
        g = DiGraph(arcs=[("a", "b"), ("b", "c"), ("a", "c")])
        sub = g.subgraph(["a", "b"])
        assert sub.num_vertices == 2
        assert sub.has_arc("a", "b")
        assert not sub.has_vertex("c")

    def test_subgraph_missing_vertex_raises(self):
        g = DiGraph(arcs=[("a", "b")])
        with pytest.raises(VertexNotFoundError):
            g.subgraph(["a", "zz"])

    def test_reverse(self):
        g = DiGraph(arcs=[("a", "b"), ("b", "c")])
        r = g.reverse()
        assert r.has_arc("b", "a")
        assert r.has_arc("c", "b")
        assert r.num_arcs == 2

    def test_underlying_edges(self):
        g = DiGraph(arcs=[("a", "b"), ("b", "c")])
        edges = g.underlying_edges()
        assert len(edges) == 2

    def test_underlying_adjacency_symmetric(self):
        g = DiGraph(arcs=[("a", "b")])
        adj = g.underlying_adjacency()
        assert "b" in adj["a"] and "a" in adj["b"]
