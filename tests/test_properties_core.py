"""Property-based tests for the paper's core algorithms (hypothesis).

Complements ``test_properties_hypothesis.py`` with properties of the
constructive algorithms themselves:

* the rooted-tree colouring always equals the load on random trees;
* the Theorem 6 algorithm always stays within ``ceil(4*pi/3)`` and produces a
  proper colouring on random single-cycle UPP-DAG instances;
* the Theorem 2 witness always has ``w > pi`` on DAGs with an internal cycle;
* the arc-elimination order of Theorem 1 always removes arcs whose tail is a
  source of the remaining graph.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.coloring.exact import chromatic_number
from repro.coloring.verify import is_proper_coloring, num_colors
from repro.conflict.conflict_graph import build_conflict_graph
from repro.core.load import load
from repro.core.rooted_trees import color_dipaths_rooted_tree
from repro.core.theorem1 import arc_elimination_order
from repro.core.theorem2 import witness_family_theorem2
from repro.core.theorem6 import color_dipaths_theorem6, theorem6_bound
from repro.cycles.internal import find_internal_cycle
from repro.generators.families import random_walk_family
from repro.generators.gadgets import figure5_family, theorem2_gadget
from repro.generators.random_dags import random_dag, random_upp_one_cycle_dag
from repro.generators.trees import random_out_tree

SETTINGS = dict(max_examples=20, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


@settings(**SETTINGS)
@given(st.integers(min_value=0, max_value=5000),
       st.integers(min_value=5, max_value=40),
       st.integers(min_value=1, max_value=40))
def test_rooted_tree_coloring_equals_load(seed, num_vertices, num_paths):
    tree = random_out_tree(num_vertices, seed=seed)
    if tree.num_arcs == 0:
        return
    family = random_walk_family(tree, num_paths, seed=seed)
    coloring = color_dipaths_rooted_tree(tree, family)
    conflict = build_conflict_graph(family)
    assert is_proper_coloring(conflict.adjacency(), coloring)
    assert num_colors(coloring) == family.load()


@settings(**SETTINGS)
@given(st.integers(min_value=0, max_value=5000),
       st.integers(min_value=2, max_value=4),
       st.integers(min_value=5, max_value=30))
def test_theorem6_always_within_bound(seed, k, num_paths):
    dag = random_upp_one_cycle_dag(k=k, extra_depth=2, seed=seed)
    family = random_walk_family(dag, num_paths, seed=seed, min_length=2)
    coloring = color_dipaths_theorem6(dag, family)
    conflict = build_conflict_graph(family)
    assert is_proper_coloring(conflict.adjacency(), coloring)
    assert num_colors(coloring) <= theorem6_bound(family.load())


@settings(**SETTINGS)
@given(st.integers(min_value=2, max_value=6),
       st.integers(min_value=1, max_value=3))
def test_theorem6_on_replicated_gadgets(k, copies):
    dag = theorem2_gadget(k)
    family = figure5_family(k, dag).replicate(copies)
    coloring = color_dipaths_theorem6(dag, family)
    conflict = build_conflict_graph(family)
    assert is_proper_coloring(conflict.adjacency(), coloring)
    assert num_colors(coloring) <= theorem6_bound(family.load())


@settings(**SETTINGS)
@given(st.integers(min_value=0, max_value=5000),
       st.integers(min_value=8, max_value=16),
       st.floats(min_value=0.2, max_value=0.5))
def test_theorem2_witness_always_has_gap(seed, n, p):
    dag = random_dag(n, p, seed=seed)
    if find_internal_cycle(dag) is None:
        return
    try:
        family = witness_family_theorem2(dag)
    except Exception:
        # degenerate attachments (all predecessors on the incident segments)
        # are allowed to be rejected explicitly; they must not crash silently
        return
    pi = load(dag, family)
    w = chromatic_number(build_conflict_graph(family).adjacency())
    assert w > pi


@settings(**SETTINGS)
@given(st.integers(min_value=0, max_value=5000),
       st.integers(min_value=4, max_value=25),
       st.floats(min_value=0.1, max_value=0.5))
def test_arc_elimination_order_invariant(seed, n, p):
    dag = random_dag(n, p, seed=seed)
    order = arc_elimination_order(dag)
    assert len(order) == dag.num_arcs
    work = dag.copy()
    for (x, y) in order:
        assert work.in_degree(x) == 0
        work.remove_arc(x, y)
    assert work.num_arcs == 0
