"""Edge-case tests for Kempe chains (repro.coloring.kempe) and the
assigner's one-swap repair, previously exercised only indirectly through
the online assigner.

Covers: the empty chain (an isolated start vertex), a chain spanning a
whole component, chains truncated by third colours, swap involutivity,
and the repair paths of :class:`~repro.online.OnlineWavelengthAssigner` —
including the abort case, where every candidate swap would worsen the
colouring and the assigner must walk away leaving the state untouched.
"""

from __future__ import annotations

import pytest

from repro.coloring.kempe import (
    kempe_component,
    kempe_swap,
    kempe_swap_component,
)
from repro.coloring.verify import is_proper_coloring
from repro.conflict import DynamicConflictGraph
from repro.dipaths.family import DipathFamily
from repro.online import OnlineWavelengthAssigner


def path_adjacency(n):
    """Path graph 0 - 1 - ... - n-1 as an adjacency mapping."""
    return {i: [j for j in (i - 1, i + 1) if 0 <= j < n] for i in range(n)}


class TestKempeComponent:
    def test_empty_chain_is_the_start_vertex(self):
        adjacency = {0: [], 1: []}
        coloring = {0: 0, 1: 1}
        assert kempe_component(adjacency, coloring, 0, 0, 1) == {0}

    def test_start_must_carry_one_of_the_two_colors(self):
        adjacency = path_adjacency(2)
        with pytest.raises(ValueError):
            kempe_component(adjacency, {0: 2, 1: 0}, 0, 0, 1)

    def test_chain_spanning_whole_component(self):
        adjacency = path_adjacency(6)
        coloring = {i: i % 2 for i in range(6)}    # alternating 0/1
        component = kempe_component(adjacency, coloring, 0, 0, 1)
        assert component == set(range(6))

    def test_chain_truncated_by_third_color(self):
        adjacency = path_adjacency(5)
        coloring = {0: 0, 1: 1, 2: 2, 3: 1, 4: 0}  # colour 2 cuts the path
        assert kempe_component(adjacency, coloring, 0, 0, 1) == {0, 1}
        assert kempe_component(adjacency, coloring, 4, 0, 1) == {3, 4}

    def test_uncolored_vertices_stop_the_chain(self):
        adjacency = path_adjacency(3)
        coloring = {0: 0, 2: 1}                    # vertex 1 uncoloured
        assert kempe_component(adjacency, coloring, 0, 0, 1) == {0}


class TestKempeSwap:
    def test_swap_whole_component_stays_proper(self):
        adjacency = path_adjacency(6)
        coloring = {i: i % 2 for i in range(6)}
        swapped, component = kempe_swap(adjacency, coloring, 0, 0, 1)
        assert component == set(range(6))
        assert swapped == {i: (i + 1) % 2 for i in range(6)}
        assert is_proper_coloring(adjacency, swapped)

    def test_swap_is_an_involution(self):
        adjacency = path_adjacency(5)
        coloring = {0: 0, 1: 1, 2: 2, 3: 1, 4: 0}
        once, component = kempe_swap(adjacency, coloring, 0, 0, 1)
        twice = kempe_swap_component(once, component, 0, 1)
        assert twice == coloring

    def test_swap_component_ignores_other_colors(self):
        coloring = {0: 0, 1: 1, 2: 2}
        swapped = kempe_swap_component(coloring, {0, 1, 2}, 0, 1)
        assert swapped == {0: 1, 1: 0, 2: 2}
        assert coloring == {0: 0, 1: 1, 2: 2}      # input untouched

    def test_swap_does_not_mutate_input(self):
        adjacency = path_adjacency(4)
        coloring = {i: i % 2 for i in range(4)}
        kempe_swap(adjacency, coloring, 0, 0, 1)
        assert coloring == {i: i % 2 for i in range(4)}


class TestAssignerRepairEdgeCases:
    def _engine(self, paths, wavelengths=2, policy="least_used"):
        conflict = DynamicConflictGraph(DipathFamily())
        assigner = OnlineWavelengthAssigner(wavelengths, policy=policy,
                                            kempe_repair=True)
        for p in paths:
            idx = conflict.add_dipath(p)
            assert assigner.assign(conflict, idx) is not None
        return conflict, assigner

    def test_repair_that_would_worsen_aborts_untouched(self):
        # u0 = [a,b] and u1 = [b,c] are disjoint but both conflict with
        # u2's arcs... here all three share the arc (a, b): chi = 3 > W = 2
        # and every candidate swap would just trade one conflict for
        # another, so the repair must abort without changing anything.
        conflict, assigner = self._engine([["a", "b"], ["a", "b"]])
        colors_before = dict(assigner.coloring)
        usage_before = assigner.usage()
        idx = conflict.add_dipath(["a", "b"])
        assert assigner.assign(conflict, idx) is None
        assert assigner.kempe_repairs == 0
        assert dict(assigner.coloring) == colors_before
        assert assigner.usage() == usage_before
        conflict.remove_dipath(idx)

    def test_repair_aborts_when_component_holds_both_colors(self):
        # u0 = [a,b] (colour 0) and u1 = [a,b,c] (colour 1) conflict with
        # each other, so they form one Kempe component holding both
        # colours: swapping it frees nothing for v = [b,c] at W = 2 —
        # v conflicts with u1 only... make v conflict with both instead.
        conflict, assigner = self._engine([["a", "b"], ["a", "b", "c"]])
        idx = conflict.add_dipath(["a", "b", "c", "d"])
        assert assigner.assign(conflict, idx) is None
        assert assigner.kempe_repairs == 0
        conflict.remove_dipath(idx)

    def test_repair_swaps_chain_spanning_whole_component(self):
        # u0 = [a,b], u1 = [b,c]: disjoint, least_used colours them 0, 1.
        # v = [a,b,c] conflicts with both; the repair must swap the Kempe
        # component of u0 (which is just {u0}: u0 and u1 are NOT adjacent)
        # from 0 to 1 and hand colour 0 to v.
        conflict, assigner = self._engine([["a", "b"], ["b", "c"]])
        assert assigner.color_of(0) == 0 and assigner.color_of(1) == 1
        idx = conflict.add_dipath(["a", "b", "c"])
        assert assigner.assign(conflict, idx) == 0
        assert assigner.kempe_repairs == 1
        assert assigner.color_of(0) == 1           # the swapped chain
        assert assigner.color_of(1) == 1
        assert assigner.color_of(idx) == 0

    def test_failed_repair_is_invisible_to_later_events(self):
        # After an aborted repair the engine keeps working exactly as if
        # the blocked arrival had never been tried.
        conflict, assigner = self._engine([["a", "b"], ["a", "b"]])
        idx = conflict.add_dipath(["a", "b"])
        assert assigner.assign(conflict, idx) is None
        conflict.remove_dipath(idx)
        # a disjoint lightpath still gets a colour afterwards
        idx2 = conflict.add_dipath(["x", "y"])
        assert assigner.assign(conflict, idx2) is not None
