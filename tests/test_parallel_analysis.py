"""Tests for :mod:`repro.parallel` and :mod:`repro.analysis`."""

import math

import pytest

from repro.analysis.metrics import aggregate, instance_metrics, ratio, timeit_call
from repro.analysis.tables import format_records, format_table, print_records
from repro.analysis.experiments import (
    figure1_experiment,
    figure3_experiment,
    theorem2_experiment,
    theorem7_experiment,
)
from repro.generators.families import random_walk_family
from repro.generators.random_dags import random_internal_cycle_free_dag
from repro.parallel import executor as executor_module
from repro.parallel.executor import (
    chunked,
    default_workers,
    in_worker_process,
    parallel_map,
    shutdown_shared_pool,
)
from repro.parallel.sweep import Sweep, run_sweep


def square(x):
    return x * x


def add(x, y):
    return x + y


def record_fn(n, seed):
    return {"value": n * 10 + seed}


def nested_sum(n):
    """A task that itself fans out — exercises the nested-pool guard."""
    inner = parallel_map(square, list(range(n)), workers=2,
                         sequential_threshold=0)
    return (sum(inner), in_worker_process())


def _raise(x):
    raise ValueError(f"task blew up on {x}")


class TestExecutor:
    def test_chunked(self):
        assert chunked([1, 2, 3, 4, 5], 2) == [[1, 2], [3, 4], [5]]
        with pytest.raises(ValueError):
            chunked([1], 0)

    def test_default_workers_positive(self):
        assert default_workers() >= 1

    def test_parallel_map_sequential(self):
        assert parallel_map(square, [1, 2, 3], workers=1) == [1, 4, 9]

    def test_reused_pool_results_and_lifecycle(self):
        """reuse_pool=True keeps one pool across calls, same results."""
        shutdown_shared_pool()
        tasks = list(range(12))
        try:
            first = parallel_map(square, tasks, workers=2,
                                 sequential_threshold=0, reuse_pool=True)
            pool = executor_module._shared_pool
            second = parallel_map(square, tasks, workers=2,
                                  sequential_threshold=0, reuse_pool=True)
            assert first == second == [x * x for x in tasks]
            if pool is not None:        # pool path taken (not a fallback)
                assert executor_module._shared_pool is pool
            resized = parallel_map(square, tasks, workers=3,
                                   sequential_threshold=0, reuse_pool=True)
            assert resized == first
        finally:
            shutdown_shared_pool()
        assert executor_module._shared_pool is None

    def test_shutdown_shared_pool_idempotent(self):
        """Repeated shutdowns (and shutdown with no pool) are no-ops."""
        shutdown_shared_pool()
        shutdown_shared_pool()          # second call: nothing to reap
        assert executor_module._shared_pool is None
        assert executor_module._shared_pool_workers == 0

    def test_shutdown_shared_pool_survives_broken_pool(self):
        """A pool whose shutdown raises still leaves the module clean."""
        class BrokenPool:
            def shutdown(self, *a, **k):
                raise OSError("workers already reaped")

        executor_module._shared_pool = BrokenPool()
        executor_module._shared_pool_workers = 2
        shutdown_shared_pool()          # must swallow the OSError
        assert executor_module._shared_pool is None
        assert executor_module._shared_pool_workers == 0
        # and the module is ready to start a fresh pool afterwards
        tasks = list(range(12))
        try:
            assert parallel_map(square, tasks, workers=2,
                                sequential_threshold=0, reuse_pool=True) \
                == [x * x for x in tasks]
        finally:
            shutdown_shared_pool()

    def test_parallel_map_tuple_args(self):
        assert parallel_map(add, [(1, 2), (3, 4)], workers=1) == [3, 7]

    def test_parallel_map_empty(self):
        assert parallel_map(square, []) == []

    def test_parallel_map_multiprocess(self):
        tasks = list(range(30))
        expected = [square(x) for x in tasks]
        assert parallel_map(square, tasks, workers=2, sequential_threshold=0) \
            == expected

    def test_order_preserved(self):
        tasks = list(range(25))
        assert parallel_map(square, tasks, workers=3, chunk_size=4,
                            sequential_threshold=0) == [x * x for x in tasks]

    def test_not_in_worker_in_main_process(self):
        assert not in_worker_process()

    def test_nested_parallel_map_degrades_to_serial(self):
        """A parallel_map issued from inside a worker must not spawn a
        grandchild pool (spawn-only platforms deadlock); it runs the
        serial path and returns order-identical results."""
        tasks = list(range(10, 22))
        serial = [nested_sum(n) for n in tasks]
        assert all(not flag for _, flag in serial)   # main process: no guard
        nested = parallel_map(nested_sum, tasks, workers=2,
                              sequential_threshold=0)
        assert [total for total, _ in nested] == \
            [total for total, _ in serial]
        # the inner calls really ran under the guard, inside workers
        assert all(flag for _, flag in nested)

    def test_worker_exceptions_propagate(self):
        with pytest.raises(ValueError, match="task blew up"):
            parallel_map(_raise, list(range(20)), workers=2,
                         sequential_threshold=0)


class TestSweep:
    def test_points_and_tasks(self):
        sweep = Sweep({"n": [1, 2], "m": ["x"]}, repetitions=2, base_seed=10)
        assert len(sweep.points()) == 2
        assert len(sweep) == 4
        tasks = sweep.tasks()
        assert tasks[0]["seed"] == 10
        assert tasks[-1]["seed"] == 13

    def test_run_sweep_merges_records(self):
        sweep = Sweep({"n": [1, 3]}, repetitions=2, base_seed=0)
        records = run_sweep(record_fn, sweep, workers=1)
        assert len(records) == 4
        assert all("value" in r and "n" in r and "seed" in r for r in records)
        assert records[0]["value"] == 10


class TestMetrics:
    def test_ratio(self):
        assert ratio(3, 2) == 1.5
        assert math.isnan(ratio(3, 0))

    def test_timeit_call(self):
        result, elapsed = timeit_call(square, 4)
        assert result == 16
        assert elapsed >= 0

    def test_instance_metrics(self):
        dag = random_internal_cycle_free_dag(15, 20, seed=0)
        family = random_walk_family(dag, 10, seed=0)
        record = instance_metrics(dag, family, methods=("theorem1", "dsatur"),
                                  include_clique=True)
        assert record["load"] == family.load()
        assert record["w_theorem1"] == family.load()
        assert record["w_dsatur"] >= record["w_theorem1"]
        assert record["clique_number"] >= 1
        assert not record["has_internal_cycle"]

    def test_aggregate(self):
        records = [{"x": 1}, {"x": 3}, {"y": 5}]
        agg = aggregate(records, "x")
        assert agg["count"] == 2
        assert agg["mean"] == 2
        assert aggregate([], "x")["count"] == 0


class TestTables:
    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, True]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "yes" in text
        assert "2.500" in text

    def test_format_records(self):
        text = format_records([{"k": 1, "v": 2}, {"k": 3, "v": 4}])
        assert "k" in text and "3" in text
        assert format_records([]).endswith("(no records)")

    def test_print_records(self, capsys):
        print_records([{"a": 1}], title="hello")
        captured = capsys.readouterr()
        assert "hello" in captured.out


class TestExperimentDrivers:
    def test_figure1_driver(self):
        records = figure1_experiment((2, 3, 4))
        assert [r["w"] for r in records] == [2, 3, 4]
        assert all(r["load"] == 2 for r in records)
        assert all(r["conflict_complete"] for r in records)

    def test_figure3_driver(self):
        (record,) = figure3_experiment()
        assert record["load"] == 2 and record["w"] == 3
        assert record["conflict_is_C5"]

    def test_theorem2_driver(self):
        records = theorem2_experiment((2, 4))
        assert all(r["w"] == 3 and r["load"] == 2 for r in records)
        assert all(r["conflict_is_odd_cycle"] for r in records)

    def test_theorem7_driver(self):
        records = theorem7_experiment((1, 2, 4), exact_limit=2)
        assert all(r["matches_paper"] for r in records)
        assert records[-1]["w_method"] == "blow-up cover"
