"""Online admission with the event-driven RWA engine.

Lightpaths arrive as a seeded Poisson process, hold for an exponential
time and depart; each arrival must be admitted within a fixed wavelength
budget ``W`` or blocked.  This walkthrough sweeps the budget across the
offline load and compares the wavelength policies (first-fit, least-used,
most-used, random) with and without Kempe-chain repair, printing the
blocking probability and spectrum usage for each combination.

The punchline is the paper's result read operationally: on an
internal-cycle-free topology a budget equal to the offline load admits a
static replay without any blocking at all (Theorem 1: wavelengths =
load), while under churn the gap between a policy's blocking curve and
the load line is the price of online operation — and one Kempe swap per
would-block event claws part of it back.

The final section opens the routing axis: the same trace is replayed
with fixed shortest-path routing against the adaptive routers
(least-loaded, k-shortest with live-load scoring — plain and with
speculative what-if admission, widest), splitting each blocking rate by
rejection reason.  Adaptivity attacks only the ``no_wavelength``
rejections: routing around congested fibres buys headroom that no extra
heuristic cleverness at the assigner can.

Run with:  python examples/online_admission.py
"""

from repro.analysis.tables import format_records
from repro.dipaths.routing import route_all
from repro.generators.random_dags import random_internal_cycle_free_dag
from repro.online import poisson_trace, replay_trace, simulate_online
from repro.optical import hotspot_traffic, simulate_admission

SEED = 20260730


def main():
    topology = random_internal_cycle_free_dag(30, 55, seed=SEED)
    traffic = hotspot_traffic(topology, 300, num_hotspots=3, seed=SEED)
    offline_load = route_all(topology, traffic, policy="shortest").load()
    print(f"topology: 30 nodes, 55 fibres, internal-cycle-free; "
          f"offline load pi = {offline_load}")

    # 1. Static replay: with W = pi nothing blocks (Theorem 1 in action).
    static = simulate_admission(topology, traffic, offline_load,
                                routing="shortest")
    print(f"static replay at W = pi: blocked = {len(static.blocked)}, "
          f"wavelengths used = {static.wavelengths_used}")

    # 2. Churn: Poisson arrivals, exponential holding, policy sweep under a
    #    scarce budget (far below the offline pi, so blocking is real).
    trace = poisson_trace(traffic, 600, arrival_rate=8.0, mean_holding=3.0,
                          seed=SEED)
    budget = 4
    rows = []
    for policy in ("first_fit", "least_used", "most_used", "random"):
        for repair in (False, True):
            result = simulate_online(topology, trace, budget, policy=policy,
                                     kempe_repair=repair, seed=SEED)
            rows.append({
                "policy": policy,
                "kempe": "on" if repair else "off",
                "blocking": round(result.blocking_rate, 4),
                "wavelengths": result.wavelengths_used,
                "repairs": result.kempe_repairs,
                "peak_active": result.peak_active(),
            })
    print()
    print(format_records(
        rows, title=f"online churn, W = {budget}, 600 Poisson arrivals"))

    # 3. The same engine behind the static front-end: replaying the routed
    #    family through simulate_online is simulate_admission.
    family = route_all(topology, traffic, policy="shortest")
    online = simulate_online(topology, replay_trace(family), offline_load)
    assert online.blocked == static.blocked
    print("\nreplay equivalence: simulate_online(replay) == simulate_admission")

    # 4. Adaptive routing: the same churn trace, one run per router.  The
    #    adaptive policies consult the live per-arc load at every arrival
    #    (and "k_shortest + what-if" admits through speculative
    #    transactions, committing the best-scoring candidate route).
    runs = [("shortest", False), ("least_loaded", False),
            ("k_shortest", False), ("k_shortest", True), ("widest", False)]
    rows = []
    for routing, speculative in runs:
        result = simulate_online(topology, trace, budget, routing=routing,
                                 speculative=speculative)
        label = routing + (" + what-if" if speculative else "")
        rows.append({
            "routing": label,
            "blocking": round(result.blocking_rate, 4),
            "no_route": len(result.blocked_no_route),
            "no_wavelength": len(result.blocked_no_wavelength),
            "wavelengths": result.wavelengths_used,
        })
    print()
    print(format_records(
        rows, title=f"routing adaptivity, W = {budget}, first-fit, "
                    "same 600-arrival trace"))
    fixed = rows[0]["blocking"]
    best = min(row["blocking"] for row in rows[1:])
    print(f"\nadaptive routing removes "
          f"{(fixed - best) / fixed:.0%} of the fixed-routing blocking")


if __name__ == "__main__":
    main()
