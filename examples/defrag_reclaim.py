"""Defragmentation and batched admission on the online RWA engine.

Churn fragments an online system: lightpaths end up on higher wavelengths
(and longer routes) than a fresh assignment would use, so the network
blocks requests a defragmented spectrum could carry.  This walkthrough

1. fragments a warm engine with Poisson churn and shows a
   :class:`~repro.online.defrag.DefragPass` reclaiming wavelengths, pass
   by pass, down to the from-scratch recolouring bound;
2. replays the same loaded trace with and without the simulator's defrag
   triggers (a periodic pass + an on-block pass with one re-try) and
   compares the blocking probabilities;
3. admits an equal-timestamp burst of arrivals atomically under the three
   partial-commit policies of
   :func:`~repro.online.transaction.admit_batch`.

Every committed move is an atomic remove + re-admit inside a nested
what-if transaction: a lightpath is never left dark, and a move that is
not a strict improvement rolls back bit-identically.

Run with:  python examples/defrag_reclaim.py
"""

from repro.generators.random_dags import random_dag
from repro.online import (
    ARRIVAL,
    OnlineEngine,
    admit_batch,
    max_color_in_use,
    poisson_trace,
    simulate_online,
)
from repro.optical.traffic import hotspot_traffic

SEED = 42


def main():
    graph = random_dag(30, 0.25, seed=11)
    traffic = hotspot_traffic(graph, 400, num_hotspots=2, seed=11)
    trace = poisson_trace(traffic, 600, arrival_rate=25.0, mean_holding=3.0,
                          seed=SEED)

    # 1. Fragment a roomy engine, then reclaim spectrum pass by pass.
    engine = OnlineEngine(graph, 12, routing="k_shortest")
    for event in trace[:500]:
        if event.kind == ARRIVAL:
            engine.admit(event.request_id, request=event.request,
                         dipath=event.dipath)
        else:
            engine.depart(event.request_id)
    print(f"fragmented engine: {engine.active} lightpaths, "
          f"{engine.assigner.colors_in_use()} wavelengths in use "
          f"(highest = {max_color_in_use(engine.assigner)})")
    step = 0
    while True:
        report = engine.defrag(order="highest_wavelength")
        step += 1
        print(f"  pass {step}: {report.moves_committed} moves, "
              f"{report.colors_before} -> {report.colors_after} wavelengths, "
              f"max colour {report.max_color_before} -> "
              f"{report.max_color_after}")
        if not report.moves:
            break

    # 2. Blocking with vs without defrag triggers under a scarce budget.
    base = simulate_online(graph, trace, 5, routing="k_shortest",
                           record_timeline=False)
    defrag = simulate_online(graph, trace, 5, routing="k_shortest",
                             record_timeline=False, defrag_every=25,
                             defrag_on_block=True)
    print(f"\nblocking without defrag: {base.blocking_rate:.4f}")
    print(f"blocking with triggers:  {defrag.blocking_rate:.4f} "
          f"({defrag.defrag_passes} passes, {defrag.defrag_moves} moves, "
          f"{defrag.wavelengths_reclaimed} wavelengths reclaimed)")

    # 3. One burst, three partial-commit policies.  Five copies of the
    #    same request cannot all fit W=4 on their shared bottleneck.
    engine = OnlineEngine(graph, 4, routing="k_shortest")
    request = traffic[0]
    burst = [engine.router.route(request)] * 5
    print(f"\nburst of {len(burst)} identical lightpaths "
          f"{request.source} -> {request.target} under W=4:")
    for policy in ("all_or_nothing", "best_prefix", "greedy"):
        result = admit_batch(engine.conflict, engine.assigner, burst,
                             policy=policy)
        print(f"  {policy:15s} admitted={len(result.admitted)} "
              f"blocked={len(result.blocked)} committed={result.committed}")
        for _, idx, _ in result.admitted:       # reset for the next policy
            engine.assigner.release(idx)
            engine.conflict.remove_dipath(idx)


if __name__ == "__main__":
    main()
