"""Inspecting a fibre-cut restoration run through the trace layer.

The online engine's observability stack has three write-side pieces — a
deterministic metrics registry, a structured span tracer and per-span
profiling hooks (see PERFORMANCE.md §observability) — and one read-side
tool, :class:`~repro.obs.analyze.TraceAnalyzer`.  This walkthrough uses
all of them around a single dramatic event: a cut of the busiest fibre
in a loaded network, mass restoration of the stranded lightpaths, and
the eventual repair.

The script:

1. admits a few dozen pre-routed lightpaths with a tracer attached,
   advancing the event-time clock as it goes;
2. finds the hottest fibre straight from the live trace (windowed
   occupancy density) and cuts it through the
   :class:`~repro.online.faults.FaultInjector`;
3. lets restoration re-admit the stranded lightpaths, then repairs the
   fibre (rerouted survivors may revert);
4. serializes the trace to JSONL (the same framing as the
   ``DurableEngine`` decision journal), reloads it with
   :meth:`TraceAnalyzer.from_jsonl` and prints per-phase latency stats,
   the cut/restore span waterfall, the conflict density on the cut
   fibre and the ``faults.*`` counters from the shared registry.

Run with:  python examples/trace_inspection.py
"""

import tempfile
from pathlib import Path

from repro.dipaths.routing import route_all
from repro.generators.random_dags import random_internal_cycle_free_dag
from repro.obs.analyze import TraceAnalyzer
from repro.obs.trace import JsonlSink, ListSink, Tracer
from repro.online.faults import FaultInjector
from repro.online.simulator import OnlineEngine
from repro.optical.traffic import uniform_random_traffic

SEED = 20260808
WAVELENGTHS = 8


def main():
    topology = random_internal_cycle_free_dag(18, 34, seed=SEED)
    traffic = uniform_random_traffic(topology, 60, seed=SEED)
    routes = list(route_all(topology, traffic, policy="shortest"))

    # ------------------------------------------------------------------
    # 1. a loaded network, fully traced
    tracer = Tracer(sink=ListSink())
    engine = OnlineEngine(topology, wavelengths=WAVELENGTHS, tracer=tracer)
    injector = FaultInjector(engine, restoration=True, retries=2,
                             revert_on_repair=True)
    admitted = 0
    for rid, dipath in enumerate(routes[:40]):
        tracer.advance(float(rid))
        if engine.admit(rid, dipath=dipath) is None:
            admitted += 1
    print(f"warm-up: {admitted}/40 lightpaths admitted on "
          f"{WAVELENGTHS} wavelengths")

    # ------------------------------------------------------------------
    # 2. find the busiest fibre *from the trace* and cut it
    live = TraceAnalyzer(tracer.records(), arc_names=engine.arc_names())
    (hot_arc, peak), = live.hottest_fibres(window=10.0, mode="occupancy",
                                           top=1)
    label = live.arc_label(hot_arc)
    print(f"hottest fibre by windowed occupancy: {label} "
          f"(peak density {peak:.1f})")

    u, v = (int(part) for part in label.split("->"))
    tracer.advance(45.0)
    report = injector.cut((u, v))
    print(f"cut {label}: {len(report.stranded)} lightpaths stranded, "
          f"{len(report.restored)} restored on the spot, "
          f"{len(report.still_stranded)} left dark")

    # ------------------------------------------------------------------
    # 3. life goes on; then the fibre comes back
    for offset, dipath in enumerate(routes[40:46]):
        tracer.advance(46.0 + offset)
        engine.admit(40 + offset, dipath=dipath)
    tracer.advance(60.0)
    repaired = injector.repair((u, v))
    print(f"repair {label}: {len(repaired.restored)} re-admitted, "
          f"{len(repaired.reverted)} reverted to their original route")

    # ------------------------------------------------------------------
    # 4. serialize -> reload -> analyze
    path = Path(tempfile.gettempdir()) / "trace_inspection.jsonl"
    # JsonlSink buffers; the context manager closes (= flushes) it, so
    # every trailing record is on disk before the reload below
    with JsonlSink(str(path)) as sink:
        for record in tracer.records():
            sink.emit(record)
    analyzer = TraceAnalyzer.from_jsonl(str(path),
                                        arc_names=engine.arc_names())
    print(f"\ntrace written to {path} "
          f"({len(analyzer.records)} records)")

    print("\nper-phase event-time stats (count / p50 / p99):")
    for name, row in analyzer.phase_stats().items():
        print(f"  {name:<10} {row['count']:>4}   "
              f"p50={row['p50']:<8g} p99={row['p99']:g}")

    print("\nfault-path waterfall (cut / restore / repair spans):")
    print(analyzer.waterfall(names=["cut", "restore", "repair"],
                             width=40, limit=20))

    windows = analyzer.conflict_density(window=15.0).get(hot_arc, [])
    print(f"\nwindowed conflict density on {label}:")
    for w in windows:
        print(f"  t=[{w['t0']:>5g}, {w['t1']:>5g}]  "
              f"density={w['density']:.2f}")

    print("\nfaults.* counters from the shared registry:")
    counters = engine.metrics.snapshot()["counters"]
    for name in sorted(counters):
        if name.startswith("faults."):
            print(f"  {name:<24} {counters[name]}")


if __name__ == "__main__":
    main()
