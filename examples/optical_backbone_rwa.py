"""Provision a WDM optical backbone: routing, wavelength assignment, ADM count.

The scenario from the paper's introduction: a logical (virtual) topology over
which connection requests must be routed and assigned wavelengths, two
requests sharing a fibre needing different wavelengths.  On internal-cycle-free
topologies the paper's Theorem 1 guarantees that the number of wavelengths
equals the maximum fibre load, so dimensioning the network reduces to a load
computation.

Run with:  python examples/optical_backbone_rwa.py
"""

from repro import has_internal_cycle
from repro.analysis.tables import format_records
from repro.generators.random_dags import random_layered_dag
from repro.generators.trees import random_out_tree
from repro.optical import (
    OpticalNetwork,
    adm_count,
    groom_requests,
    hotspot_traffic,
    provision_solution,
    simulate_admission,
    solve_rwa,
    uniform_random_traffic,
)


def provision_backbone(name, topology, traffic, routing):
    """Route, colour and provision one scenario; return a report row."""
    solution = solve_rwa(topology, traffic, routing=routing, assignment="auto")
    network = OpticalNetwork.from_digraph(topology,
                                          capacity=solution.num_wavelengths)
    provision_solution(network, solution)
    return {
        "scenario": name,
        "requests": traffic.total_demand(),
        "internal_cycle": has_internal_cycle(topology),
        "fibre_load": solution.load,
        "wavelengths": solution.num_wavelengths,
        "equal": solution.load == solution.num_wavelengths,
        "ADMs": adm_count(solution.family, solution.assignment.coloring),
        "method": solution.assignment_method,
    }


def main() -> None:
    rows = []

    # Scenario 1: an access tree (rooted tree = UPP, no internal cycle).
    tree = random_out_tree(40, seed=1)
    rows.append(provision_backbone(
        "access tree / uniform traffic", tree,
        uniform_random_traffic(tree, 80, seed=1), routing="unique"))

    # Scenario 2: a layered metro core (internal-cycle-free by construction is
    # not guaranteed for layered graphs, so the auto solver may switch to the
    # exact method when a cycle appears).
    metro = random_layered_dag(4, 5, 0.35, seed=2)
    rows.append(provision_backbone(
        "layered metro / hotspot traffic", metro,
        hotspot_traffic(metro, 70, num_hotspots=2, seed=2), routing="min-load"))

    print(format_records(rows, title="WDM backbone provisioning"))

    # ------------------------------------------------------------------ #
    # Online admission: how many wavelengths do we need in practice?
    # ------------------------------------------------------------------ #
    traffic = uniform_random_traffic(tree, 80, seed=1)
    offline = solve_rwa(tree, traffic, routing="unique")
    print("\nOnline admission on the access tree (first-fit, static routes):")
    for budget in (max(1, offline.load - 1), offline.load, offline.load + 2):
        result = simulate_admission(tree, traffic, budget, routing="unique")
        print(f"  W = {budget:3d}: blocked {len(result.blocked):3d} / "
              f"{traffic.total_demand()} requests "
              f"(blocking rate {result.blocking_rate:.1%})")
    print(f"  offline optimum (= load, Theorem 1): {offline.num_wavelengths}")

    # ------------------------------------------------------------------ #
    # Grooming: sub-wavelength requests share wavelengths (factor C).
    # ------------------------------------------------------------------ #
    print("\nGrooming the tree traffic (wavelength capacity C sub-requests/fibre):")
    for factor in (1, 2, 4):
        groomed = groom_requests(offline.family, grooming_factor=factor)
        print(f"  C = {factor}: {groomed.num_wavelengths} wavelengths")


if __name__ == "__main__":
    main()
