"""Quickstart: load, wavelength number and the Main Theorem in a few lines.

Run with:  python examples/quickstart.py
"""

from repro import (
    DAG,
    DipathFamily,
    assign_wavelengths,
    equality_certificate,
    has_internal_cycle,
    load,
    min_wavelengths_equal_load,
    wavelength_number,
)
from repro.generators import figure3_instance


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. A small DAG and a family of dipaths
    # ------------------------------------------------------------------ #
    dag = DAG(arcs=[("a", "b"), ("b", "c"), ("c", "d"), ("b", "e"), ("f", "c")])
    family = DipathFamily([
        ["a", "b", "c", "d"],
        ["b", "c", "d"],
        ["f", "c", "d"],
        ["a", "b", "e"],
    ], graph=dag)

    print("== a DAG without internal cycle ==")
    print(f"load pi(G,P)            = {load(dag, family)}")
    print(f"wavelengths w(G,P)      = {wavelength_number(dag, family)}")
    print(f"has internal cycle?       {has_internal_cycle(dag)}")
    print(f"w = pi for EVERY family?  {min_wavelengths_equal_load(dag)}")

    solution = assign_wavelengths(dag, family)       # uses Theorem 1
    print(f"assignment ({solution.method}):")
    for idx, dipath in enumerate(family):
        print(f"  wavelength {solution.wavelength_of(idx)}  <-  {dipath}")

    # ------------------------------------------------------------------ #
    # 2. The smallest example where the equality breaks (Figure 3)
    # ------------------------------------------------------------------ #
    print("\n== Figure 3: a DAG with an internal cycle ==")
    fig3_dag, fig3_family = figure3_instance()
    print(f"load      = {load(fig3_dag, fig3_family)}")
    print(f"wavelengths = {wavelength_number(fig3_dag, fig3_family, method='exact')}")
    print(f"w = pi for every family?  {min_wavelengths_equal_load(fig3_dag)}")

    certificate = equality_certificate(fig3_dag)
    print(f"internal cycle found: {certificate.internal_cycle}")
    print(f"witness family: pi = {certificate.witness_load}, "
          f"w = {certificate.witness_wavelengths}  (Theorem 2)")


if __name__ == "__main__":
    main()
