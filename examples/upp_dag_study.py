"""A study of UPP-DAGs: Property 3, Theorem 6 and Theorem 7 in action.

UPP-DAGs (at most one dipath between any two vertices) are the class the
paper introduces in Section 4.  This example:

1. checks the UPP property and the structural consequences (clique number =
   load, no induced K_{2,3}) on the paper's gadgets and on random UPP-DAGs;
2. runs the Theorem 6 algorithm on a single-internal-cycle UPP-DAG and shows
   the ceil(4*pi/3) budget;
3. reproduces the Theorem 7 series (pi = 2h, w = ceil(8h/3)) on the Havet
   gadget.

Run with:  python examples/upp_dag_study.py
"""

import math

from repro import (
    build_conflict_graph,
    color_dipaths_theorem6,
    is_upp_dag,
    load,
    theorem6_bound,
)
from repro.analysis.tables import format_records
from repro.coloring.verify import num_colors
from repro.conflict import blowup_chromatic_number, clique_number
from repro.generators import (
    figure5_instance,
    havet_family,
    havet_instance,
    random_upp_one_cycle_dag,
    random_walk_family,
)
from repro.upp import (
    conflict_graph_has_no_k23,
    crossing_lemma_holds,
    find_upp_violation,
    helly_property_holds,
)


def structural_report():
    rows = []
    instances = [("figure5 (k=3)", *figure5_instance(3)),
                 ("havet", *havet_instance(1))]
    for seed in range(3):
        dag = random_upp_one_cycle_dag(k=3, extra_depth=2, seed=seed)
        family = random_walk_family(dag, 25, seed=seed, min_length=2)
        instances.append((f"random UPP one-cycle (seed {seed})", dag, family))

    for name, dag, family in instances:
        conflict = build_conflict_graph(family)
        rows.append({
            "instance": name,
            "upp": is_upp_dag(dag),
            "dipaths": len(family),
            "load": load(dag, family),
            "clique": clique_number(conflict),
            "helly": helly_property_holds(family, conflict),
            "no_K23": conflict_graph_has_no_k23(family, conflict),
            "crossing_lemma": crossing_lemma_holds(family),
        })
    print(format_records(rows, title="Property 3 / Lemma 4 / Corollary 5"))


def theorem6_demo():
    print("\nTheorem 6 on a random UPP-DAG with one internal cycle:")
    dag = random_upp_one_cycle_dag(k=3, extra_depth=3, seed=42)
    family = random_walk_family(dag, 40, seed=42, min_length=2)
    assert find_upp_violation(dag) is None
    coloring = color_dipaths_theorem6(dag, family)
    pi = load(dag, family)
    print(f"  dipaths = {len(family)}, load = {pi}, "
          f"colours used = {num_colors(coloring)}, "
          f"budget ceil(4*pi/3) = {theorem6_bound(pi)}")


def theorem7_series():
    rows = []
    base_conflict = build_conflict_graph(havet_family(1))
    for h in (1, 2, 3, 4, 6, 8):
        dag, family = havet_instance(h)
        pi = load(dag, family)
        w = blowup_chromatic_number(base_conflict, h)
        rows.append({
            "h": h,
            "load": pi,
            "w": w,
            "ceil(8h/3)": math.ceil(8 * h / 3),
            "ratio": round(w / pi, 3),
        })
    print()
    print(format_records(rows, title="Theorem 7 — the 4/3 bound is tight"))


def main() -> None:
    structural_report()
    theorem6_demo()
    theorem7_series()


if __name__ == "__main__":
    main()
