"""Audit a set of logical topologies: is "wavelengths = load" guaranteed?

The Main Theorem makes this a purely topological question: the equality
``w(G, P) = pi(G, P)`` holds for *every* dipath family ``P`` exactly when the
DAG ``G`` has no internal cycle.  This example audits a collection of
topologies, reports the verdict, and for the failing ones produces the
self-validating certificate (an internal cycle plus a Theorem 2 witness family
with ``w > pi``).

Run with:  python examples/internal_cycle_audit.py
"""

from repro import equality_certificate, internal_cyclomatic_number
from repro.analysis.tables import format_records
from repro.generators import (
    figure3_dag,
    havet_dag,
    pathological_dag,
    random_dag,
    random_internal_cycle_free_dag,
    random_layered_dag,
    theorem2_gadget,
)
from repro.generators.trees import caterpillar, out_tree, spider


def audit(name, dag):
    certificate = equality_certificate(dag)
    row = {
        "topology": name,
        "vertices": dag.num_vertices,
        "arcs": dag.num_arcs,
        "internal_cycles": internal_cyclomatic_number(dag),
        "w == load always": certificate.equality_holds,
    }
    if not certificate.equality_holds:
        row["witness"] = (f"pi={certificate.witness_load}, "
                          f"w={certificate.witness_wavelengths} "
                          f"on {len(certificate.witness_family)} dipaths")
    else:
        row["witness"] = "-"
    return row


def main() -> None:
    topologies = [
        ("binary out-tree (depth 4)", out_tree(2, 4)),
        ("spider (6 legs)", spider(6, 3)),
        ("caterpillar", caterpillar(6, 2)),
        ("random internal-cycle-free DAG", random_internal_cycle_free_dag(40, 60, seed=0)),
        ("random layered DAG 4x5", random_layered_dag(4, 5, 0.4, seed=0)),
        ("random DAG p=0.25", random_dag(20, 0.25, seed=0)),
        ("Figure 3 DAG", figure3_dag()),
        ("Theorem 2 gadget (k=4)", theorem2_gadget(4)),
        ("Havet DAG (Figure 9)", havet_dag()),
        ("Figure 1 DAG (k=5)", pathological_dag(5)),
    ]
    rows = [audit(name, dag) for name, dag in topologies]
    print(format_records(
        rows,
        columns=["topology", "vertices", "arcs", "internal_cycles",
                 "w == load always", "witness"],
        title="Internal-cycle audit (Main Theorem as a design rule)"))

    print("\nReading the table: topologies with zero internal cycles can be "
          "dimensioned by load alone;\nfor the others the witness column shows "
          "a concrete family needing more wavelengths than the load.")


if __name__ == "__main__":
    main()
