"""Scheduling data streams over a precedence DAG of pipelined operators.

The paper notes that its result also applies outside optical networks, e.g.
"for scheduling complex operations on pipelined operators" where the digraph
is the precedence graph of a program.  Here the vertices are pipeline stages,
arcs are producer->consumer links, and each *data stream* follows a dipath
through consecutive stages.  Two streams traversing the same link need
distinct channel slots (the "wavelengths").

Theorem 1 tells us exactly when the number of channel slots needed equals the
worst link congestion: whenever the precedence DAG has no internal cycle —
which is the case for the fork/join pipelines below.

Run with:  python examples/precedence_pipeline.py
"""

from repro import (
    DAG,
    DipathFamily,
    assign_wavelengths,
    has_internal_cycle,
    load,
)
from repro.analysis.tables import format_table
from repro.coloring.verify import color_classes


def build_pipeline() -> DAG:
    """A fork/join media pipeline: decode -> (scale | denoise) -> encode -> mux."""
    return DAG(arcs=[
        ("ingest", "decode"),
        ("decode", "scale"), ("decode", "denoise"),
        ("scale", "encode"), ("denoise", "encode"),
        ("encode", "mux"), ("mux", "publish"),
        ("ingest", "meta"), ("meta", "mux"),
    ])


def build_streams(pipeline: DAG) -> DipathFamily:
    """Each stream is routed through a subset of consecutive stages."""
    return DipathFamily([
        ["ingest", "decode", "scale", "encode", "mux", "publish"],   # main video
        ["ingest", "decode", "denoise", "encode", "mux", "publish"], # alt video
        ["ingest", "decode", "scale", "encode"],                     # preview
        ["decode", "denoise", "encode", "mux"],                      # restoration
        ["ingest", "meta", "mux", "publish"],                        # metadata
        ["encode", "mux", "publish"],                                # audio remux
    ], graph=pipeline)


def main() -> None:
    pipeline = build_pipeline()
    streams = build_streams(pipeline)

    print(f"pipeline stages: {pipeline.num_vertices}, links: {pipeline.num_arcs}")
    print(f"internal cycle in the precedence DAG? {has_internal_cycle(pipeline)}")

    congestion = load(pipeline, streams)
    solution = assign_wavelengths(pipeline, streams)   # Theorem 1
    print(f"worst link congestion (load) = {congestion}")
    print(f"channel slots needed (w)     = {solution.num_wavelengths} "
          f"(method: {solution.method})")
    assert solution.num_wavelengths == congestion

    # per-link congestion table
    rows = [(f"{u} → {v}", streams.load_of_arc((u, v)))
            for u, v in pipeline.arcs() if streams.load_of_arc((u, v)) > 0]
    rows.sort(key=lambda r: -r[1])
    print()
    print(format_table(["link", "streams"], rows, title="Per-link congestion"))

    # channel slot assignment
    print("\nChannel slot assignment (streams sharing a slot are link-disjoint):")
    for slot, members in sorted(color_classes(solution.coloring).items()):
        for idx in sorted(members):
            print(f"  slot {slot}: stream {idx}  {streams[idx]}")


if __name__ == "__main__":
    main()
