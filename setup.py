"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in fully
offline environments (legacy editable installs do not need to download build
dependencies or build a wheel).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "dagrwa: routing and wavelength assignment on DAGs — reproduction of "
        "Bermond & Cosnard, 'Minimum number of wavelengths equals load in a "
        "DAG without internal cycle' (IPDPS 2007)"
    ),
    author="repro maintainers",
    license="MIT",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.24", "networkx>=3.0"],
    extras_require={
        "test": ["pytest>=7.0", "pytest-benchmark>=4.0", "hypothesis>=6.0"],
    },
)
