"""Shared helpers for the benchmark harness.

Each benchmark file regenerates one of the paper's figures/theorem claims
(see DESIGN.md §4, experiments E1-E11): it runs the corresponding driver from
:mod:`repro.analysis.experiments`, *asserts* the paper's qualitative claim
(who wins, which bound holds, where the equality lies) and prints the rows in
a paper-style table (visible with ``pytest benchmarks/ --benchmark-only -s``).
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_records


def report(records, columns=None, title=None):
    """Print a record table (shown when pytest capture is disabled)."""
    print()
    print(format_records(records, columns=columns, title=title))


@pytest.fixture
def run_once():
    """Run a callable through pytest-benchmark exactly once (no warmup rounds).

    The randomised sweep drivers take seconds; timing them once is enough for
    the reproduction (we care about the reported numbers, not ns-level
    timing), and it keeps the whole harness fast.
    """
    def _runner(benchmark, func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)
    return _runner
