"""E17 — fault-tolerant online engine: recovery, restoration, shedding.

Three claims, all recorded in ``BENCH_recovery.json`` by
``scripts/bench_report.py --suite recovery``:

* a :class:`~repro.online.persistence.DurableEngine` journal killed at
  random byte offsets always recovers to an engine bit-identical (by
  :func:`~repro.online.persistence.engine_fingerprint`) to the live one
  at the surviving record boundary, and periodic snapshots cut the
  replay-recovery time;
* fibre-cut restoration keeps end-of-run blocking strictly below the
  restoration-off baseline at the same defrag move budget, on traces
  that cut the topology's most-loaded fibres mid-run;
* the admission guard bounds p99 per-burst admission work strictly
  below the unguarded run's, shedding the excess before any routing
  work.
"""

import pytest

from repro.analysis.recovery import (
    SNAPSHOT_RECOVERY_SPEEDUP_TARGET,
    recovery_problems,
    run_recovery_benchmark,
)
from .conftest import report

pytestmark = pytest.mark.bench

CRASH_COLUMNS = ("scenario", "snapshot_every", "journal_records",
                 "trials", "mismatches", "bit_identical",
                 "recover_full_s", "records_per_second")
RESTORATION_COLUMNS = ("scenario", "wavelengths", "fibre_cuts",
                       "stranded_restoration", "restored_restoration",
                       "blocking_baseline", "blocking_restoration",
                       "restoration_pays")
SHED_COLUMNS = ("scenario", "bursts", "burst_size", "shed",
                "p99_work_unguarded", "p99_work_guarded",
                "guard_sheds", "work_bounded")


def test_recovery_restoration_and_shedding(benchmark, run_once):
    records = run_once(benchmark, run_recovery_benchmark, 2)
    crash = [r for r in records if r["kind"] == "crash_recovery"]
    restoration = [r for r in records if r["kind"] == "restoration"]
    shed = [r for r in records if r["kind"] == "shed"]
    report(crash, columns=CRASH_COLUMNS,
           title="E17a / durable journal — random kill-point recovery")
    report(restoration, columns=RESTORATION_COLUMNS,
           title="E17b / fibre cuts — restoration vs no restoration")
    report(shed, columns=SHED_COLUMNS,
           title="E17c / overload — admission-guard shedding")
    assert len(crash) >= 2 and len(restoration) >= 2 and len(shed) >= 2
    assert recovery_problems(records) == []
    # the tentpole claims, stated directly
    assert all(r["bit_identical"] for r in crash)
    assert all(r["restoration_pays"] for r in restoration)
    assert all(r["guard_sheds"] and r["work_bounded"] for r in shed)
    # snapshots must actually buy recovery time: the snapshotted journal
    # replays faster per record than replay-from-genesis by at least the
    # within-run ratio the --check gate enforces
    by_cadence = {bool(r["snapshot_every"]): r for r in crash}
    assert (by_cadence[True]["records_per_second"]
            >= SNAPSHOT_RECOVERY_SPEEDUP_TARGET
            * by_cadence[False]["records_per_second"])
