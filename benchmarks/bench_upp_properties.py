"""E6 — Property 3 / Lemma 4 / Corollary 5 on random UPP-DAG families.

Paper claims reproduced: for UPP-DAGs, the load equals the clique number of
the conflict graph (Helly property) and the conflict graph contains no
induced ``K_{2,3}``.
"""

from repro.analysis.experiments import upp_properties_experiment
from .conftest import report


def test_upp_structural_properties(benchmark, run_once):
    records = run_once(benchmark, upp_properties_experiment, 12, 0)
    report(records,
           columns=["seed", "is_upp", "num_dipaths", "load", "clique_number",
                    "clique_equals_load", "helly", "no_k23"],
           title="E6 / Property 3 & Corollary 5 — UPP structural claims")
    assert records
    assert all(r["is_upp"] for r in records)
    assert all(r["clique_equals_load"] for r in records)
    assert all(r["helly"] for r in records)
    assert all(r["no_k23"] for r in records)
