"""E14 — adaptive online routing + transactional what-if admission.

Two claims, both recorded in ``BENCH_online_routing.json`` by
``scripts/bench_report.py --suite routing``:

* at equal offered load, load-aware online routing (``least_loaded``,
  ``k_shortest``) blocks strictly less than fixed shortest-path routing on
  every benchmark topology;
* evaluating admission candidates through
  :class:`~repro.online.transaction.WhatIfTransaction` speculation
  (admit → score → rollback in O(touched)) beats rebuild-per-candidate by
  at least 5x on 500+ concurrent dipaths, with both strategies reaching
  identical decisions.
"""

import pytest

from repro.analysis.erlang import (
    SPECULATION_SPEEDUP_TARGET,
    run_routing_benchmark,
)
from .conftest import report

pytestmark = pytest.mark.bench

BLOCKING_COLUMNS = ("scenario", "wavelengths", "offered_load",
                    "blocking_shortest", "blocking_least_loaded",
                    "blocking_k_shortest", "adaptive_beats_fixed")
SPECULATION_COLUMNS = ("scenario", "num_dipaths", "legacy_candidate_us",
                       "new_candidate_us", "speedup_total", "decisions_equal")


def test_adaptive_routing_and_speculation(benchmark, run_once):
    records = run_once(benchmark, run_routing_benchmark, 3)
    blocking = [r for r in records if r["kind"] == "blocking"]
    speculation = [r for r in records if r["kind"] == "speculation"]
    report(blocking, columns=BLOCKING_COLUMNS,
           title="E14a / adaptive vs fixed routing — Erlang blocking")
    report(speculation, columns=SPECULATION_COLUMNS,
           title="E14b / what-if speculation — rollback vs rebuild")
    assert len(blocking) >= 2
    assert all(r["adaptive_beats_fixed"] for r in blocking), \
        [(r["scenario"], r["blocking_shortest"]) for r in blocking]
    assert all(r["num_dipaths"] >= 500 for r in speculation)
    assert all(r["decisions_equal"] for r in speculation)
    # speculation leaves the engine caches intact: the one cold build only
    assert all(r["mask_rebuilds"] <= 1 for r in speculation)
    assert all(r["speedup_total"] >= SPECULATION_SPEEDUP_TARGET
               for r in speculation), \
        [(r["scenario"], r["speedup_total"]) for r in speculation]
