"""E9 — Main-Theorem certificates (Figure 4 machinery).

For random DAGs with internal cycles, :func:`equality_certificate` returns an
internal cycle plus a Theorem 2 witness family whose ``w > pi`` is verified
exactly — i.e. a self-validating certificate that ``w = pi`` fails on that
topology.  The Figure 4 situation (the recolouring of Theorem 1 reaching Case
C and producing an internal-cycle certificate) is exercised as well.
"""

import pytest

from repro.analysis.experiments import certificate_experiment
from repro.core.theorem1 import color_dipaths_theorem1
from repro.exceptions import InternalCycleError
from repro.generators.gadgets import figure3_instance
from .conftest import report


def test_certificate_sweep(benchmark, run_once):
    records = run_once(benchmark, certificate_experiment, 10, 20, 0)
    report(records,
           title="E9 / certificates — internal cycle + witness family (w > pi)")
    assert records
    assert all(r["gap_witnessed"] for r in records)


def test_case_c_certificate(benchmark):
    """Running Theorem 1 on Figure 3 must fail with an internal-cycle certificate."""
    dag, family = figure3_instance()

    def attempt():
        with pytest.raises(InternalCycleError) as excinfo:
            color_dipaths_theorem1(dag, family)
        return excinfo.value.cycle

    cycle = benchmark(attempt)
    assert cycle is not None
    assert set(cycle) <= {"b", "c", "d", "m"}
