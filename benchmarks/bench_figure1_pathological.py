"""E1 — Figure 1: the ratio w / pi is unbounded on general DAGs.

Paper claim: there are DAGs and families with load 2 needing as many
wavelengths as desired (k pairwise-conflicting dipaths, every arc shared by at
most two of them).  The bench regenerates the (k, pi, w) series.
"""

from repro.analysis.experiments import figure1_experiment
from .conftest import report

K_VALUES = (2, 3, 4, 5, 6, 8, 10, 12)


def test_figure1_unbounded_ratio(benchmark, run_once):
    records = run_once(benchmark, figure1_experiment, K_VALUES)
    report(records, columns=["k", "load", "w", "ratio", "conflict_complete"],
           title="E1 / Figure 1 — pathological family (pi = 2, w = k)")
    assert all(r["load"] == 2 for r in records)
    assert [r["w"] for r in records] == list(K_VALUES)
    assert all(r["conflict_complete"] for r in records)
    # the ratio grows without bound (monotone in k)
    ratios = [r["ratio"] for r in records]
    assert ratios == sorted(ratios)
    assert ratios[-1] == K_VALUES[-1] / 2
