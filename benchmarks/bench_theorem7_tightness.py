"""E8 — Theorem 7: the 4/3 bound is tight (replicated Havet gadget).

Paper claim: the Figure 9 family replicated ``h`` times has ``pi = 2h`` and
``w = ceil(8h/3) = ceil(4*pi/3)``.  Small ``h`` values are verified with the
generic exact solver; larger ones through the exact blow-up cover formulation
(both agree where they overlap).
"""

from repro.analysis.experiments import theorem7_experiment
from .conftest import report

H_VALUES = (1, 2, 3, 4, 6, 8)


def test_theorem7_tightness(benchmark, run_once):
    records = run_once(benchmark, theorem7_experiment, H_VALUES, 3)
    report(records,
           columns=["h", "load", "w", "expected_w", "matches_paper", "ratio",
                    "bound_43", "alpha_base", "w_method"],
           title="E8 / Theorem 7 — pi = 2h, w = ceil(8h/3) on the Havet family")
    assert all(r["matches_paper"] for r in records)
    assert all(r["w"] == r["bound_43"] for r in records)  # the bound is reached
    assert all(r["alpha_base"] == 3 for r in records)
    # the ratio tends to 4/3 from below
    assert abs(records[-1]["ratio"] - 4 / 3) < 0.09
