"""E19 — RWA service: trace-loop identity, latency, tenant isolation.

Two claims, recorded in ``BENCH_service.json`` by
``scripts/bench_report.py --suite service``:

* replaying a flash-crowd burst trace through the asyncio
  :class:`~repro.service.RwaService` makes bit-identical decisions to
  :func:`~repro.online.simulator.simulate_online` on the same ordered
  trace (same accepted/blocked sets and rejection reasons, equal
  :func:`~repro.online.persistence.engine_fingerprint`), with sustained
  admissions/sec and wall-clock p99 submit→decision latency recorded
  for information;
* per-tenant quotas keep a quiet tenant entirely unshed next to a
  flooding one, and the per-tenant shed counters partition the
  ``guard.shed`` total exactly.
"""

import pytest

from repro.analysis.bench_service import (
    run_service_benchmark,
    service_problems,
)
from .conftest import report

pytestmark = pytest.mark.bench

SERVICE_COLUMNS = ("scenario", "arrivals", "blocking", "shed",
                   "admissions_per_s", "p99_latency_s", "decisions_equal",
                   "fingerprint_identical")
TENANT_COLUMNS = ("scenario", "quiet_arrivals", "flood_arrivals",
                  "quiet_shed", "flood_shed", "shed_partition_exact")


def test_service_identity_and_isolation(benchmark, run_once):
    records = run_once(benchmark, run_service_benchmark, 3)
    identity = [r for r in records if r["kind"] == "service"]
    tenants = [r for r in records if r["kind"] == "tenant_isolation"]
    report(identity, columns=SERVICE_COLUMNS,
           title="E19 / service — flash-crowd replay vs trace loop")
    report(tenants, columns=TENANT_COLUMNS,
           title="E19 / service — flooding vs quiet tenant")
    assert all(r["decisions_equal"] for r in identity)
    assert all(r["fingerprint_identical"] for r in identity)
    assert all(r["quiet_never_shed"] for r in tenants)
    assert all(r["shed_partition_exact"] for r in tenants)
    assert service_problems(records) == []
