"""Ablation — the rooted-tree special case vs the general Theorem 1 machinery.

The paper mentions rooted trees as the originally solved special case.  The
direct tree algorithm (:mod:`repro.core.rooted_trees`) and the general
Theorem 1 algorithm must both use exactly ``pi`` colours; the ablation
compares their runtime on the same all-to-all and random instances.
"""

from repro.coloring.verify import num_colors
from repro.core.rooted_trees import color_dipaths_rooted_tree
from repro.core.theorem1 import color_dipaths_theorem1
from repro.generators.families import all_to_all_family, random_walk_family
from repro.generators.trees import out_tree, random_out_tree
from .conftest import report


def _instances():
    tree1 = out_tree(2, 5)
    tree2 = random_out_tree(80, seed=21)
    return [
        ("complete binary tree / all-to-all", tree1, all_to_all_family(tree1)),
        ("random tree (80) / random walks", tree2,
         random_walk_family(tree2, 150, seed=21)),
    ]


def test_rooted_tree_ablation(benchmark, run_once):
    def run():
        from repro.analysis.metrics import timeit_call

        rows = []
        for name, tree, family in _instances():
            tree_coloring, tree_time = timeit_call(
                color_dipaths_rooted_tree, tree, family)
            general_coloring, general_time = timeit_call(
                color_dipaths_theorem1, tree, family)
            rows.append({
                "instance": name,
                "dipaths": len(family),
                "load": family.load(),
                "colors_tree_algo": num_colors(tree_coloring),
                "colors_theorem1": num_colors(general_coloring),
                "time_tree_algo": tree_time,
                "time_theorem1": general_time,
            })
        return rows

    records = run_once(benchmark, run)
    report(records, title="Ablation — rooted-tree algorithm vs Theorem 1")
    for r in records:
        assert r["colors_tree_algo"] == r["load"]
        assert r["colors_theorem1"] == r["load"]


def test_rooted_tree_algorithm_timing(benchmark):
    tree = random_out_tree(120, seed=33)
    family = random_walk_family(tree, 250, seed=33)
    coloring = benchmark(color_dipaths_rooted_tree, tree, family)
    assert num_colors(coloring) == family.load()
