"""E12 — bitset conflict engine: old-vs-new scaling on 500+ dipath families.

Times the frozen seed engine (``repro.conflict.baseline``) against the
bitset engine on the three scaling scenarios (random-DAG walks, Theorem 7
Havet blow-up, replicated multiset) and asserts the tentpole target: at
least a 5x speedup on conflict-graph build + DSATUR, with both engines
agreeing on the edge set and the number of colours.

``scripts/bench_report.py`` runs the same scenarios from the command line
and records them in ``BENCH_conflict_engine.json``.
"""

from repro.analysis.bench_scaling import SPEEDUP_TARGET, run_scaling_benchmark
from .conftest import report

COLUMNS = ("scenario", "num_dipaths", "num_edges", "legacy_total_s",
           "new_total_s", "speedup_build", "speedup_total")


def test_bitset_engine_scaling(benchmark, run_once):
    records = run_once(benchmark, run_scaling_benchmark, 3)
    report(records, columns=COLUMNS,
           title="E12 / bitset conflict engine — build + DSATUR, old vs new")
    assert all(r["num_dipaths"] >= 500 for r in records)
    assert all(r["edges_equal"] for r in records)
    assert all(r["colors_equal"] for r in records)
    assert all(r["speedup_total"] >= SPEEDUP_TARGET for r in records), \
        [(r["scenario"], r["speedup_total"]) for r in records]
