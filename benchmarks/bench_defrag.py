"""E15 — defragmentation & batched admission on the what-if layer.

Two claims, both recorded in ``BENCH_defrag.json`` by
``scripts/bench_report.py --suite defrag``:

* switching the defrag triggers on (a periodic
  :class:`~repro.online.defrag.DefragPass` plus an on-block pass with one
  re-try) never increases — and on the benchmark scenarios strictly
  decreases — the blocking probability at equal offered load;
* on a fragmented warm engine every walk order reclaims wavelengths —
  matching or (thanks to rerouting) beating what a from-scratch DSATUR
  *recolouring* of the fragmented routes could do, never below the final
  state's own fibre load — and the post-defrag colouring stays proper
  against a from-scratch conflict-graph rebuild.
"""

import pytest

from repro.analysis.erlang import defrag_problems, run_defrag_benchmark
from .conftest import report

pytestmark = pytest.mark.bench

BLOCKING_COLUMNS = ("scenario", "wavelengths", "offered_load",
                    "blocking_no_defrag", "blocking_defrag", "defrag_moves",
                    "wavelengths_reclaimed", "defrag_not_worse")
RECLAIM_COLUMNS = ("scenario", "wavelengths", "colors_before",
                   "colors_after_best", "recolor_from_scratch",
                   "load_before", "reclaimed_best",
                   "coloring_proper_after", "within_load_bound")


def test_defrag_blocking_and_reclaim(benchmark, run_once):
    records = run_once(benchmark, run_defrag_benchmark, 1)
    blocking = [r for r in records if r["kind"] == "defrag_blocking"]
    reclaim = [r for r in records if r["kind"] == "defrag_reclaim"]
    report(blocking, columns=BLOCKING_COLUMNS,
           title="E15a / defrag triggers — Erlang blocking")
    report(reclaim, columns=RECLAIM_COLUMNS,
           title="E15b / defrag passes — wavelengths reclaimed")
    assert len(blocking) >= 2 and len(reclaim) >= 2
    assert defrag_problems(records) == []
    # the tentpole claim, stated directly: defrag never blocks more
    assert all(r["blocking_defrag"] <= r["blocking_no_defrag"]
               for r in blocking), \
        [(r["scenario"], r["blocking_defrag"]) for r in blocking]
    assert all(r["reclaimed_best"] >= 1 for r in reclaim)
    assert all(r["within_load_bound"] for r in reclaim)
