"""E2 — Figure 3: the worked example (one internal cycle, 5 dipaths, pi=2, w=3)."""

from repro.analysis.experiments import figure3_experiment
from .conftest import report


def test_figure3_worked_example(benchmark, run_once):
    records = run_once(benchmark, figure3_experiment)
    report(records,
           title="E2 / Figure 3 — 5 dipaths on a DAG with one internal cycle")
    (record,) = records
    assert record["load"] == 2
    assert record["w"] == 3
    assert record["conflict_is_C5"]
    assert record["has_internal_cycle"]
    assert not record["is_upp"]
