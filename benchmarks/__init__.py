"""Benchmark harness package.

The package marker lets pytest import ``bench_*.py`` modules (and their
``from .conftest import report`` helper) under its default prepend
import mode, so explicit runs work from the repository root:

    python -m pytest benchmarks/bench_service.py -m bench -s

The modules deliberately do NOT match pytest's ``test_*.py`` discovery
pattern: tier-1 (`python -m pytest`) must never time a benchmark.
"""
