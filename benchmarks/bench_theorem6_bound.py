"""E7 — Theorem 6: w <= ceil(4*pi/3) on UPP-DAGs with a single internal cycle.

The bench runs the constructive Theorem 6 algorithm on random one-cycle
UPP-DAGs and on the replicated Havet gadget and checks the colour budget.
"""

from repro.analysis.experiments import theorem6_experiment
from .conftest import report


def test_theorem6_bound_sweep(benchmark, run_once):
    records = run_once(benchmark, theorem6_experiment, 12, (1, 2, 3, 4), 0)
    report(records,
           columns=["instance", "load", "colors_theorem6", "bound",
                    "within_bound", "time_theorem6"],
           title="E7 / Theorem 6 — ceil(4*pi/3) colour budget")
    assert records
    assert all(r["within_bound"] for r in records)


def test_theorem6_algorithm_timing(benchmark):
    """Timing of a single Theorem 6 run on a mid-size replicated instance."""
    from repro.core.theorem6 import color_dipaths_theorem6, theorem6_bound
    from repro.generators.gadgets import havet_instance

    dag, family = havet_instance(6)
    coloring = benchmark(color_dipaths_theorem6, dag, family)
    assert len(set(coloring.values())) <= theorem6_bound(family.load())
