"""E16 — component-sharded online engine vs the unsharded path.

Two claims, both recorded in ``BENCH_sharding.json`` by
``scripts/bench_report.py --suite sharding``:

* on a multi-region topology holding 800+ concurrent lightpaths the
  sharded engine (O(arcs) structural events, per-fibre forbidden masks,
  shard-width views) pushes the same admission churn and defrag passes
  at least 3x faster than the unsharded engine, with identical blocking
  and colouring outcomes;
* full simulations — speculative routing, defrag triggers, timestamp
  batching — are decision-identical sharded vs unsharded, and the
  shard-parallel defrag/batch paths are byte-identical to their serial
  execution, on traces that force component merges and splits mid-run.
"""

import pytest

from repro.analysis.bench_sharding import (
    SHARDING_SPEEDUP_TARGET,
    run_sharding_benchmark,
    sharding_problems,
)
from .conftest import report

pytestmark = pytest.mark.bench

THROUGHPUT_COLUMNS = ("scenario", "concurrent", "wavelengths",
                      "legacy_total_s", "new_total_s", "speedup_total",
                      "outcomes_equal", "shards", "component_merges",
                      "component_splits", "shard_rebuilds")
DIFFERENTIAL_COLUMNS = ("scenario", "arrivals", "blocking", "identical",
                        "parallel_identical", "component_merges",
                        "component_splits")


def test_sharding_throughput_and_identity(benchmark, run_once):
    records = run_once(benchmark, run_sharding_benchmark, 2)
    throughput = [r for r in records if r["kind"] == "throughput"]
    differential = [r for r in records if r["kind"] == "differential"]
    report(throughput, columns=THROUGHPUT_COLUMNS,
           title="E16a / sharded engine — admission+defrag throughput")
    report(differential, columns=DIFFERENTIAL_COLUMNS,
           title="E16b / sharded engine — differential identity")
    assert len(throughput) >= 2 and len(differential) >= 2
    assert sharding_problems(records) == []
    # the tentpole claims, stated directly
    assert all(r["speedup_total"] >= SHARDING_SPEEDUP_TARGET
               for r in throughput), \
        [(r["scenario"], r["speedup_total"]) for r in throughput]
    assert all(r["concurrent"] >= 800 for r in throughput)
    assert all(r["outcomes_equal"] for r in throughput)
    assert all(r["identical"] and r["parallel_identical"]
               for r in differential)
