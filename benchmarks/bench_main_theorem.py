"""E5 — Main Theorem: w = pi for every family  <=>  no internal cycle.

Both directions are exercised on random DAG populations: on internal-cycle
-free DAGs random families always satisfy w = pi (verified exactly); on DAGs
with an internal cycle the Theorem 2 witness family always has w > pi.
"""

from repro.analysis.experiments import certificate_experiment, main_theorem_experiment
from .conftest import report


def test_main_theorem_both_directions(benchmark, run_once):
    records = run_once(benchmark, main_theorem_experiment, 10, 22, 0)
    report(records,
           columns=["population", "seed", "has_internal_cycle", "load", "w",
                    "equality", "matches_theorem"],
           title="E5 / Main Theorem — equality iff no internal cycle")
    assert records
    assert all(r["matches_theorem"] for r in records)
    populations = {r["population"] for r in records}
    assert populations == {"no-internal-cycle", "with-internal-cycle"}


def test_certificates(benchmark, run_once):
    records = run_once(benchmark, certificate_experiment, 8, 20, 0)
    report(records,
           title="E9 / certificates — self-validating Theorem 2 witnesses")
    assert records
    assert all(r["gap_witnessed"] for r in records)
    assert all(not r["equality_holds"] for r in records)
