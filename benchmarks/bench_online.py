"""E13 — online conflict engine: incremental vs rebuild-per-event churn.

Replays constant-concurrency churn traces (500+ concurrent dipaths, see
``repro.online.events.churn_trace``) through the dynamic conflict engine
twice — once rebuilding the conflict graph after every event (the
pre-online cache policy) and once patching adjacency masks incrementally —
and asserts the tentpole target: at least a 5x speedup, with both
strategies ending on the same edge set and DSATUR colour count.

``scripts/bench_report.py --suite online`` runs the same scenarios from
the command line and records them in ``BENCH_online_engine.json``.
"""

from repro.analysis.bench_online import (
    ONLINE_SPEEDUP_TARGET,
    run_online_benchmark,
)
from .conftest import report

COLUMNS = ("scenario", "num_dipaths", "num_events", "num_edges",
           "legacy_event_us", "new_event_us", "speedup_total")


def test_online_engine_churn(benchmark, run_once):
    records = run_once(benchmark, run_online_benchmark, 3)
    report(records, columns=COLUMNS,
           title="E13 / online conflict engine — churn, rebuild vs incremental")
    assert all(r["num_dipaths"] >= 500 for r in records)
    assert all(r["edges_equal"] for r in records)
    assert all(r["colors_equal"] for r in records)
    assert all(r["speedup_total"] >= ONLINE_SPEEDUP_TARGET for r in records), \
        [(r["scenario"], r["speedup_total"]) for r in records]
