"""E3 — Theorem 1: w = pi for every family on DAGs without internal cycle.

The bench sweeps random internal-cycle-free DAGs and random rooted trees with
random dipath families, colours them with the constructive algorithm and
cross-checks optimality with the independent exact solver.
"""

from repro.analysis.experiments import theorem1_experiment
from repro.analysis.metrics import aggregate
from .conftest import report


def test_theorem1_equality_sweep(benchmark, run_once):
    records = run_once(benchmark, theorem1_experiment,
                       12, 35, 55, 45, 0, ("random", "tree"))
    report(records,
           columns=["kind", "seed", "num_dipaths", "load", "w_theorem1",
                    "w_exact", "equal", "time_theorem1"],
           title="E3 / Theorem 1 — w = pi on internal-cycle-free DAGs")
    assert all(r["equal"] for r in records)
    assert all(r["w_theorem1"] == r["load"] for r in records)
    summary = aggregate(records, "time_theorem1")
    assert summary["mean"] < 1.0  # the constructive algorithm stays fast


def test_theorem1_scaling(benchmark):
    """Timing of the constructive colouring on a larger single instance."""
    from repro.core.theorem1 import color_dipaths_theorem1
    from repro.generators.families import random_walk_family
    from repro.generators.random_dags import random_internal_cycle_free_dag

    dag = random_internal_cycle_free_dag(150, 220, seed=11)
    family = random_walk_family(dag, 300, seed=11)

    coloring = benchmark(color_dipaths_theorem1, dag, family)
    assert len(set(coloring.values())) == family.load()
