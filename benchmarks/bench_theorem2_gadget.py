"""E4 — Theorem 2 / Figure 5: for every internal cycle there is a family with pi=2, w=3."""

from repro.analysis.experiments import theorem2_experiment
from .conftest import report

K_VALUES = (2, 3, 4, 5, 6, 8, 10)


def test_theorem2_gadget_series(benchmark, run_once):
    records = run_once(benchmark, theorem2_experiment, K_VALUES)
    report(records,
           title="E4 / Theorem 2, Figure 5 — odd conflict cycle C_{2k+1}, pi=2, w=3")
    assert all(r["load"] == 2 for r in records)
    assert all(r["w"] == 3 for r in records)
    assert all(r["conflict_is_odd_cycle"] for r in records)
    assert all(r["num_dipaths"] == 2 * r["k"] + 1 for r in records)
