"""E18 — observability overhead: full instrumentation must be near-free.

Two claims, recorded in ``BENCH_obs.json`` by
``scripts/bench_report.py --suite obs``:

* replaying the E13-class admission workloads through
  :func:`~repro.online.simulator.simulate_online` with a full tracer
  attached (spans on every admit/depart/defrag, ring-buffer sink) costs
  at most :data:`~repro.analysis.bench_obs.OBS_OVERHEAD_TARGET` times
  the uninstrumented run, and the instrumented run makes bit-identical
  decisions (same accepted/blocked sets, byte-identical deterministic
  metrics snapshots);
* raw span-emission throughput through the ring-buffer and JSONL sinks
  is recorded for information (absolute rates, not gated).
"""

import pytest

from repro.analysis.bench_obs import (
    OBS_OVERHEAD_TARGET,
    obs_problems,
    run_obs_benchmark,
)
from .conftest import report

pytestmark = pytest.mark.bench

OVERHEAD_COLUMNS = ("scenario", "events", "blocking", "plain_total_s",
                    "traced_total_s", "overhead_ratio", "spans_emitted",
                    "decisions_equal", "metrics_identical")
THROUGHPUT_COLUMNS = ("scenario", "spans", "ring_spans_per_s",
                      "jsonl_spans_per_s")


def test_observability_overhead(benchmark, run_once):
    records = run_once(benchmark, run_obs_benchmark, 3)
    overhead = [r for r in records if r["kind"] == "overhead"]
    throughput = [r for r in records if r["kind"] == "throughput"]
    report(overhead, columns=OVERHEAD_COLUMNS,
           title="E18 / observability — instrumented vs plain admission")
    report(throughput, columns=THROUGHPUT_COLUMNS,
           title="E18 / observability — span emission throughput")
    assert all(r["decisions_equal"] for r in overhead)
    assert all(r["metrics_identical"] for r in overhead)
    assert all(r["overhead_ratio"] <= OBS_OVERHEAD_TARGET
               for r in overhead), \
        [(r["scenario"], r["overhead_ratio"]) for r in overhead]
    assert obs_problems(records) == []
