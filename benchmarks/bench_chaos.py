"""E21 — chaos hardening: live faults, crash-restart, restoration budget.

Four claims, recorded in ``BENCH_chaos.json`` by
``scripts/bench_report.py --suite chaos``:

* driving fibre cuts and repairs through the asyncio
  :class:`~repro.service.RwaService` queue makes bit-identical decisions
  to :func:`~repro.online.simulator.simulate_online` on the same ordered
  fault trace, with equal
  :func:`~repro.online.persistence.engine_fingerprint`;
* a maintenance window scheduled via
  :meth:`~repro.service.RwaService.schedule_maintenance` is
  indistinguishable from the equivalent cut/repair pairs of
  :func:`~repro.online.events.maintenance_events` fed through the queue;
* killing the service consumer at randomised op offsets and restarting
  it under :class:`~repro.service.ServiceSupervisor` converges — every
  crashed run ends on the exact fingerprint of the uncrashed supervised
  run, with exactly one restart, and the uncrashed run matches the
  simulator oracle's decisions;
* restoration strictly beats restoration-off blocking at an equal
  ``restore_move_budget`` under multi-cut stress.
"""

import pytest

from repro.analysis.bench_chaos import (
    chaos_problems,
    run_chaos_benchmark,
)
from .conftest import report

pytestmark = pytest.mark.bench

IDENTITY_COLUMNS = ("scenario", "events", "fibre_cuts", "stranded",
                    "blocking", "decisions_equal", "fingerprint_identical")
CRASH_COLUMNS = ("scenario", "events", "trials", "converged",
                 "single_restart_each", "decisions_equal_oracle")
RESTORE_COLUMNS = ("scenario", "fibre_cuts", "move_budget",
                   "stranded_restoration", "blocking_baseline",
                   "blocking_restoration", "restoration_pays")


def test_chaos_identity_crash_and_restoration(benchmark, run_once):
    records = run_once(benchmark, run_chaos_benchmark, 3)
    identity = [r for r in records
                if r["kind"] in ("chaos_identity", "chaos_maintenance")]
    crashes = [r for r in records if r["kind"] == "chaos_crash"]
    restores = [r for r in records if r["kind"] == "chaos_restoration"]
    report(identity, columns=IDENTITY_COLUMNS,
           title="E21 / chaos — fault trace vs simulator")
    report(crashes, columns=CRASH_COLUMNS,
           title="E21 / chaos — supervised crash-restart convergence")
    report(restores, columns=RESTORE_COLUMNS,
           title="E21 / chaos — restoration vs off at equal budget")
    assert all(r["decisions_equal"] for r in identity)
    assert all(r["fingerprint_identical"] for r in identity)
    assert all(r["all_converged"] for r in crashes)
    assert all(r["single_restart_each"] for r in crashes)
    assert all(r["decisions_equal_oracle"] for r in crashes)
    assert all(r["restoration_pays"] for r in restores)
    assert chaos_problems(records) == []
