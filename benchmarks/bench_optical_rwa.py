"""E10 — end-to-end RWA on WDM topologies (the paper's motivating workflow).

On internal-cycle-free logical topologies (rooted trees, random
internal-cycle-free DAGs) the number of wavelengths needed equals the maximum
fibre load, for all-to-all and random traffic.
"""

from repro.analysis.experiments import optical_rwa_experiment
from repro.optical.rwa import provision_solution, solve_rwa
from repro.optical.network import OpticalNetwork
from repro.optical.traffic import all_to_all_traffic
from repro.generators.trees import random_out_tree
from .conftest import report


def test_optical_rwa_equality(benchmark, run_once):
    records = run_once(benchmark, optical_rwa_experiment, 0)
    report(records,
           title="E10 / optical RWA — wavelengths = load on internal-cycle-free topologies")
    assert records
    assert all(r["equal"] for r in records)
    assert not any(r["has_internal_cycle"] for r in records)


def test_optical_end_to_end_provisioning(benchmark):
    """Full pipeline timing: route + colour + provision an all-to-all instance."""
    tree = random_out_tree(30, seed=7)
    traffic = all_to_all_traffic(tree)

    def pipeline():
        solution = solve_rwa(tree, traffic, routing="unique")
        network = OpticalNetwork.from_digraph(tree,
                                              capacity=solution.num_wavelengths)
        provision_solution(network, solution)
        return solution, network

    solution, network = benchmark(pipeline)
    assert solution.num_wavelengths == solution.load
    assert network.max_utilization() == solution.load
