"""E11 — algorithm comparison (ablation): Theorem 1 vs DSATUR vs greedy vs exact.

On internal-cycle-free instances the constructive Theorem 1 colouring is
optimal by design; the comparison shows how the heuristics and the exact
solver behave in colours and runtime on the same instances.
"""

from repro.analysis.experiments import algorithm_comparison_experiment
from .conftest import report


def test_algorithm_comparison(benchmark, run_once):
    records = run_once(benchmark, algorithm_comparison_experiment,
                       (20, 40, 60), 60, 0)
    report(records,
           columns=["size", "num_dipaths", "load", "w_theorem1", "w_dsatur",
                    "w_greedy", "w_exact", "time_theorem1", "time_dsatur",
                    "time_greedy", "time_exact"],
           title="E11 / ablation — colours and runtime per algorithm")
    for r in records:
        assert r["w_theorem1"] == r["load"]
        if "w_exact" in r:
            assert r["w_exact"] == r["w_theorem1"]
        assert r["w_dsatur"] >= r["w_theorem1"]
        assert r["w_greedy"] >= r["w_theorem1"]


def test_greedy_vs_theorem1_gap_exists(benchmark, run_once):
    """Sanity: the heuristics are not secretly optimal everywhere — on the
    Figure 1 family greedy/DSATUR are optimal (complete conflict graph), but
    on internal-cycle-free instances they can exceed the load, which the
    Theorem 1 algorithm never does."""
    from repro.analysis.experiments import theorem1_experiment

    records = run_once(benchmark, theorem1_experiment, 10, 40, 60, 60, 100,
                       ("random",))
    assert all(r["w_theorem1"] == r["load"] for r in records)
