"""Clique computations on conflict graphs.

The paper uses two facts about cliques of the conflict graph:

* the ``pi`` dipaths through an arc of maximum load are pairwise in conflict,
  so ``pi <= omega`` (clique number) ``<= w``;
* for UPP-DAGs, Property 3 (Helly property) upgrades the first inequality to
  an equality: ``pi = omega``.

The exact maximum-clique solver below is a standard branch-and-bound
(Tomita-style pivoting with greedy colouring bound), perfectly adequate for
the conflict graphs of the paper's gadgets and of the randomised experiments
(tens to a few hundreds of vertices).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set

from .conflict_graph import ConflictGraph

__all__ = [
    "maximum_clique",
    "clique_number",
    "maximal_cliques",
    "is_clique",
    "greedy_clique",
]


def is_clique(graph: ConflictGraph, vertices: Set[int]) -> bool:
    """Whether ``vertices`` induces a complete subgraph."""
    verts = list(vertices)
    for i, u in enumerate(verts):
        for v in verts[i + 1:]:
            if not graph.has_edge(u, v):
                return False
    return True


def greedy_clique(graph: ConflictGraph) -> Set[int]:
    """A maximal clique obtained greedily from a highest-degree vertex.

    Used as the initial lower bound of the exact solver and as a cheap
    heuristic in its own right.
    """
    if graph.num_vertices == 0:
        return set()
    adj = graph.adjacency()
    start = max(adj, key=lambda v: len(adj[v]))
    clique = {start}
    candidates = set(adj[start])
    while candidates:
        v = max(candidates, key=lambda u: len(adj[u] & candidates))
        clique.add(v)
        candidates &= adj[v]
    return clique


def _coloring_bound(adj: Dict[int, Set[int]], candidates: List[int]) -> List[int]:
    """Order candidates by greedy colour class; used as the B&B bound.

    Returns the candidates sorted so that the i-th vertex has greedy colour
    number <= i (classic clique bound: a clique needs one colour per vertex).
    """
    color_of: Dict[int, int] = {}
    classes: List[Set[int]] = []
    for v in sorted(candidates, key=lambda u: len(adj[u] & set(candidates)),
                    reverse=True):
        for c, cls in enumerate(classes):
            if not (adj[v] & cls):
                cls.add(v)
                color_of[v] = c
                break
        else:
            classes.append({v})
            color_of[v] = len(classes) - 1
    return sorted(candidates, key=lambda v: color_of[v])


def maximum_clique(graph: ConflictGraph) -> Set[int]:
    """An exact maximum clique (branch and bound with colouring bound)."""
    adj = graph.adjacency()
    best: Set[int] = greedy_clique(graph)

    def expand(current: Set[int], candidates: Set[int]) -> None:
        nonlocal best
        if not candidates:
            if len(current) > len(best):
                best = set(current)
            return
        ordered = _coloring_bound(adj, list(candidates))
        # colour index of position i is <= i, so the bound for the suffix
        # starting at i is (number of distinct colours in the suffix).
        while ordered:
            # Upper bound: current clique + number of colours among candidates.
            colors_needed = _distinct_greedy_colors(adj, ordered)
            if len(current) + colors_needed <= len(best):
                return
            v = ordered.pop()  # vertex with the largest greedy colour
            current.add(v)
            expand(current, candidates & adj[v])
            current.discard(v)
            candidates.discard(v)
            ordered = [u for u in ordered if u in candidates]

    expand(set(), set(adj))
    return best


def _distinct_greedy_colors(adj: Dict[int, Set[int]], vertices: List[int]) -> int:
    """Number of colours used by a greedy colouring of the induced subgraph."""
    classes: List[Set[int]] = []
    vertex_set = set(vertices)
    for v in vertices:
        nbrs = adj[v] & vertex_set
        for cls in classes:
            if not (nbrs & cls):
                cls.add(v)
                break
        else:
            classes.append({v})
    return len(classes)


def clique_number(graph: ConflictGraph) -> int:
    """Size of a maximum clique (``omega``)."""
    return len(maximum_clique(graph))


def maximal_cliques(graph: ConflictGraph, limit: int | None = None
                    ) -> List[FrozenSet[int]]:
    """All maximal cliques (Bron–Kerbosch with pivoting).

    ``limit`` bounds the number of cliques returned (the count can be
    exponential in pathological graphs).
    """
    adj = graph.adjacency()
    out: List[FrozenSet[int]] = []

    def bk(r: Set[int], p: Set[int], x: Set[int]) -> bool:
        if limit is not None and len(out) >= limit:
            return False
        if not p and not x:
            out.append(frozenset(r))
            return limit is None or len(out) < limit
        pivot_pool = p | x
        pivot = max(pivot_pool, key=lambda v: len(adj[v] & p))
        for v in list(p - adj[pivot]):
            if not bk(r | {v}, p & adj[v], x & adj[v]):
                return False
            p.discard(v)
            x.add(v)
        return True

    bk(set(), set(adj), set())
    return out
