"""Clique computations on conflict graphs.

The paper uses two facts about cliques of the conflict graph:

* the ``pi`` dipaths through an arc of maximum load are pairwise in conflict,
  so ``pi <= omega`` (clique number) ``<= w``;
* for UPP-DAGs, Property 3 (Helly property) upgrades the first inequality to
  an equality: ``pi = omega``.

All algorithms below operate directly on the graph's integer bitmasks
(:meth:`~repro.conflict.ConflictGraph.adjacency_masks`): candidate sets,
clique membership and greedy colour classes are single Python ints, so the
inner loops are machine-word ``&``/``|`` operations instead of set algebra.
The exact maximum-clique solver is a Tomita-style branch and bound with a
greedy-colouring bound; maximal-clique enumeration is Bron–Kerbosch with
pivoting.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from .._bitops import grow_clique, iter_bits, mask_of
from .conflict_graph import ConflictGraph

__all__ = [
    "maximum_clique",
    "clique_number",
    "maximal_cliques",
    "is_clique",
    "greedy_clique",
]


def is_clique(graph: ConflictGraph, vertices: Set[int]) -> bool:
    """Whether ``vertices`` induces a complete subgraph.

    Vertices absent from the graph are treated as isolated (no edges), like
    ``has_edge`` does.
    """
    mask = mask_of(vertices)
    nbr = graph.adjacency_masks()
    return all((nbr.get(v, 0) & mask) == mask ^ (1 << v) for v in vertices)


def greedy_clique(graph: ConflictGraph) -> Set[int]:
    """A maximal clique obtained greedily from a highest-degree vertex.

    Used as the initial lower bound of the exact solver and as a cheap
    heuristic in its own right.
    """
    nbr = graph.adjacency_masks()
    if not nbr:
        return set()
    start = max(nbr, key=lambda v: nbr[v].bit_count())
    return set(iter_bits(grow_clique(nbr, start)))


def _color_sort(cand_mask: int, nbr: Dict[int, int]
                ) -> Tuple[List[int], List[int]]:
    """Greedy colour-class ordering of the candidate set (Tomita's bound).

    Returns the candidate vertices sorted by colour class together with each
    vertex's (1-based) class number: a clique inside ``order[:i+1]`` has at
    most ``colors[i]`` vertices, which is the branch-and-bound cutoff.
    """
    order: List[int] = []
    colors: List[int] = []
    color = 0
    rest = cand_mask
    while rest:
        color += 1
        avail = rest
        while avail:
            low = avail & -avail
            v = low.bit_length() - 1
            order.append(v)
            colors.append(color)
            avail &= ~nbr[v] & ~low
            rest ^= low
    return order, colors


def maximum_clique(graph: ConflictGraph) -> Set[int]:
    """An exact maximum clique (Tomita-style branch and bound on bitmasks)."""
    nbr = graph.adjacency_masks()
    best = greedy_clique(graph)
    best_size = len(best)
    current: List[int] = []

    def expand(cand_mask: int, r_size: int) -> None:
        nonlocal best, best_size
        order, colors = _color_sort(cand_mask, nbr)
        for i in range(len(order) - 1, -1, -1):
            if r_size + colors[i] <= best_size:
                return
            v = order[i]
            current.append(v)
            new_cand = cand_mask & nbr[v]
            if new_cand:
                expand(new_cand, r_size + 1)
            elif r_size + 1 > best_size:
                best_size = r_size + 1
                best = set(current)
            current.pop()
            cand_mask &= ~(1 << v)

    if nbr:
        expand(graph.vertex_mask, 0)
    return best


def clique_number(graph: ConflictGraph) -> int:
    """Size of a maximum clique (``omega``)."""
    return len(maximum_clique(graph))


def maximal_cliques(graph: ConflictGraph, limit: int | None = None
                    ) -> List[FrozenSet[int]]:
    """All maximal cliques (Bron–Kerbosch with pivoting, on bitmasks).

    ``limit`` bounds the number of cliques returned (the count can be
    exponential in pathological graphs).
    """
    nbr = graph.adjacency_masks()
    out: List[FrozenSet[int]] = []
    stack: List[int] = []

    def bk(p_mask: int, x_mask: int) -> bool:
        if limit is not None and len(out) >= limit:
            return False
        if not p_mask and not x_mask:
            out.append(frozenset(stack))
            return limit is None or len(out) < limit
        pivot, best_count = -1, -1
        for v in iter_bits(p_mask | x_mask):
            count = (nbr[v] & p_mask).bit_count()
            if count > best_count:
                best_count, pivot = count, v
        for v in iter_bits(p_mask & ~nbr[pivot]):
            bit = 1 << v
            stack.append(v)
            ok = bk(p_mask & nbr[v], x_mask & nbr[v])
            stack.pop()
            if not ok:
                return False
            p_mask &= ~bit
            x_mask |= bit
        return True

    bk(graph.vertex_mask, 0)
    return out
