"""Conflict graphs of dipath families, cliques and independent sets.

The engine is bitset-backed (see PERFORMANCE.md): adjacency lives in integer
bitmasks and all algorithms run on them.  The pre-bitset reference
implementation is preserved in :mod:`repro.conflict.baseline` for
equivalence tests and benchmarking.
"""

from .cliques import (
    clique_number,
    greedy_clique,
    is_clique,
    maximal_cliques,
    maximum_clique,
)
from .conflict_graph import ConflictGraph, build_conflict_graph
from .dynamic import DynamicConflictGraph, ShardedConflictGraph
from .sharding import Shard, ShardTracker, ShardView
from .covering import (
    blowup_chromatic_number,
    independent_set_cover,
    replicated_family_coloring,
    replication_structure,
)
from .independent_sets import (
    greedy_independent_set,
    independence_number,
    is_independent_set,
    maximum_independent_set,
    partition_lower_bound,
)

__all__ = [
    "ConflictGraph",
    "DynamicConflictGraph",
    "Shard",
    "ShardTracker",
    "ShardView",
    "ShardedConflictGraph",
    "blowup_chromatic_number",
    "build_conflict_graph",
    "clique_number",
    "independent_set_cover",
    "replicated_family_coloring",
    "replication_structure",
    "greedy_clique",
    "greedy_independent_set",
    "independence_number",
    "is_clique",
    "is_independent_set",
    "maximal_cliques",
    "maximum_clique",
    "maximum_independent_set",
    "partition_lower_bound",
]
