"""Incrementally maintained conflict graphs.

:class:`DynamicConflictGraph` keeps the conflict graph of a
:class:`~repro.dipaths.family.DipathFamily` coherent under lightpath
arrivals and departures.  It is a :class:`~repro.conflict.ConflictGraph`
(so every mask-based algorithm — cliques, DSATUR, exact colouring — runs on
it unchanged), but instead of being rebuilt per event its per-vertex
adjacency bitmasks are *patched*:

* :meth:`add_dipath` inserts the member into the family (which patches its
  own conflict-mask cache incrementally), reads back the new member's mask
  and ORs the new vertex bit into each neighbour — O(degree) mask updates
  on top of the family's O(shared incidences) index update;
* :meth:`remove_dipath` clears the vertex bit from each neighbour and drops
  the vertex — again O(degree).

Vertex labels are family member indices; after removals they are sparse
(freed slots are recycled by later arrivals).  The mask consumers
(colouring, cliques, independent sets) handle sparse labels natively;
family-level algorithms that need dense indexing (`theorem1`/`theorem6`)
compact sparse families at their entry points, and the per-member
iterators (`DipathFamily.items`, `active_indices`) expose the true member
indices.  At any point the graph equals ``build_conflict_graph(family)``
built from scratch — the invariant the equivalence tests assert.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .._bitops import iter_bits
from .._typing import Vertex
from ..dipaths.dipath import Dipath
from ..dipaths.family import DipathFamily
from ..graphs.digraph import DiGraph
from .conflict_graph import ConflictGraph

__all__ = ["DynamicConflictGraph"]


class DynamicConflictGraph(ConflictGraph):
    """The conflict graph of a dipath family, patched per add/remove event."""

    __slots__ = ("_family", "_tx_stack")

    def __init__(self, family: Optional[DipathFamily] = None,
                 graph: Optional[DiGraph] = None) -> None:
        if family is None:
            family = DipathFamily(graph=graph)
        self._family = family
        #: Open WhatIfTransactions over this graph, outermost first (owned
        #: by repro.online.transaction; empty outside speculation).
        self._tx_stack: list = []
        masks = family.conflict_masks()     # at most one cold build
        self._nbr = {i: masks[i] for i in family.active_indices()}
        vmask = 0
        for i in self._nbr:
            vmask |= 1 << i
        self._vmask = vmask

    @property
    def family(self) -> DipathFamily:
        """The underlying dipath family (mutate it only through this class)."""
        return self._family

    def add_dipath(self, dipath: Dipath | Sequence[Vertex]) -> int:
        """Add a dipath to the family and patch the graph; returns its index."""
        idx = self._family.add(dipath)
        mask = self._family.conflict_masks()[idx]
        bit = 1 << idx
        self._nbr[idx] = mask
        self._vmask |= bit
        nbr = self._nbr
        for j in iter_bits(mask):
            nbr[j] |= bit
        return idx

    def remove_dipath(self, idx: int) -> Dipath:
        """Remove member ``idx`` from family and graph; returns its dipath."""
        path = self._family.remove(idx)     # raises IndexError if not active
        bit = 1 << idx
        mask = self._nbr.pop(idx)
        self._vmask &= ~bit
        nbr = self._nbr
        for j in iter_bits(mask):
            nbr[j] &= ~bit
        return path
