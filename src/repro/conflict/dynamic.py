"""Incrementally maintained conflict graphs.

:class:`DynamicConflictGraph` keeps the conflict graph of a
:class:`~repro.dipaths.family.DipathFamily` coherent under lightpath
arrivals and departures.  It is a :class:`~repro.conflict.ConflictGraph`
(so every mask-based algorithm — cliques, DSATUR, exact colouring — runs on
it unchanged), but instead of being rebuilt per event its per-vertex
adjacency bitmasks are *patched*:

* :meth:`add_dipath` inserts the member into the family (which patches its
  own conflict-mask cache incrementally), reads back the new member's mask
  and ORs the new vertex bit into each neighbour — O(degree) mask updates
  on top of the family's O(shared incidences) index update;
* :meth:`remove_dipath` clears the vertex bit from each neighbour and drops
  the vertex — again O(degree).

Vertex labels are family member indices; after removals they are sparse
(freed slots are recycled by later arrivals).  The mask consumers
(colouring, cliques, independent sets) handle sparse labels natively;
family-level algorithms that need dense indexing (`theorem1`/`theorem6`)
compact sparse families at their entry points, and the per-member
iterators (`DipathFamily.items`, `active_indices`) expose the true member
indices.  At any point the graph equals ``build_conflict_graph(family)``
built from scratch — the invariant the equivalence tests assert.

Both classes additionally track the **connected components** of the live
graph through a :class:`~repro.conflict.sharding.ShardTracker` (O(arcs)
per event: arrivals merge the shards owning their arcs, departures mark
their shard for a lazy split-check), exposing :meth:`shard_map`,
:meth:`shard_view` and the ``component_merges`` / ``component_splits`` /
``shard_rebuilds`` counters — see :mod:`repro.conflict.sharding`.

:class:`ShardedConflictGraph` is the engine the sharded online path runs
on: it skips the eager O(degree) neighbour patching entirely and derives
adjacency masks **on demand** from the family's per-arc member bitmasks
(O(arcs) union per query), so mutation cost per event is O(arcs)
regardless of how conflicted the arriving lightpath is.  Every inherited
:class:`~repro.conflict.ConflictGraph` query still works — reads go
through a lazy mapping — it just pays the O(arcs) derivation per accessed
vertex instead of a stored mask.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .._bitops import iter_bits
from .._typing import Vertex
from ..dipaths.dipath import Dipath
from ..dipaths.family import DipathFamily
from ..graphs.digraph import DiGraph
from .conflict_graph import ConflictGraph
from .sharding import Shard, ShardTracker, ShardView

__all__ = ["DynamicConflictGraph", "ShardedConflictGraph"]


class DynamicConflictGraph(ConflictGraph):
    """The conflict graph of a dipath family, patched per add/remove event."""

    __slots__ = ("_family", "_tx_stack", "_shards", "_metrics")

    def __init__(self, family: Optional[DipathFamily] = None,
                 graph: Optional[DiGraph] = None,
                 metrics: Optional["MetricsRegistry"] = None) -> None:
        if family is None:
            family = DipathFamily(graph=graph)
        self._family = family
        #: Open WhatIfTransactions over this graph, outermost first (owned
        #: by repro.online.transaction; empty outside speculation).
        self._tx_stack: list = []
        self._metrics = metrics
        masks = family.conflict_masks()     # at most one cold build
        self._nbr = {i: masks[i] for i in family.active_indices()}
        vmask = 0
        for i in self._nbr:
            vmask |= 1 << i
        self._vmask = vmask
        self._shards = self._seed_tracker()

    def _seed_tracker(self) -> ShardTracker:
        """A :class:`ShardTracker` replaying the family's current members."""
        tracker = ShardTracker(self.neighbor_mask,
                               self._family.member_arc_ids,
                               metrics=self._metrics)
        for i in self._family.active_indices():
            tracker.on_add(i, self._family.member_arc_ids(i))
        return tracker

    @property
    def family(self) -> DipathFamily:
        """The underlying dipath family (mutate it only through this class)."""
        return self._family

    def add_dipath(self, dipath: Dipath | Sequence[Vertex]) -> int:
        """Add a dipath to the family and patch the graph; returns its index."""
        idx = self._family.add(dipath)
        mask = self._family.conflict_masks()[idx]
        bit = 1 << idx
        self._nbr[idx] = mask
        self._vmask |= bit
        nbr = self._nbr
        for j in iter_bits(mask):
            nbr[j] |= bit
        self._shards.on_add(idx, self._family.member_arc_ids(idx))
        return idx

    def remove_dipath(self, idx: int) -> Dipath:
        """Remove member ``idx`` from family and graph; returns its dipath."""
        arc_ids = self._family.member_arc_ids(idx)
        path = self._family.remove(idx)     # raises IndexError if not active
        bit = 1 << idx
        mask = self._nbr.pop(idx)
        self._vmask &= ~bit
        nbr = self._nbr
        for j in iter_bits(mask):
            nbr[j] &= ~bit
        arc_members = self._family._arc_members
        self._shards.on_remove(
            idx,
            dead_arcs=tuple(a for a in arc_ids if not arc_members[a]),
            can_split=mask.bit_count() >= 2)
        return path

    def _retract_add(self, idx: int,
                     state: Tuple[bool, int, Optional[int]]) -> None:
        """Family-level retract of a rolled-back add, shard-coherently.

        The transaction layer routes ``DipathFamily._retract_add`` through
        the graph so arc ids the speculation interned (and the retract now
        un-interns) also lose their shard ownership — the same ids may be
        recycled for *different* arcs later.
        """
        before = len(self._family._arcs)
        self._family._retract_add(idx, state)
        after = len(self._family._arcs)
        if after < before:
            self._shards.on_retract(after, before)

    # ------------------------------------------------------------------ #
    # components / shards
    # ------------------------------------------------------------------ #
    @property
    def component_merges(self) -> int:
        """Shards folded together by arrivals spanning several of them."""
        return self._shards.merges

    @property
    def component_splits(self) -> int:
        """Extra components discovered by lazy split-check rebuilds."""
        return self._shards.splits

    @property
    def shard_rebuilds(self) -> int:
        """Per-shard flood-fill rebuilds run by the lazy split-checks."""
        return self._shards.rebuilds

    def refresh_shards(self) -> int:
        """Run the pending lazy split-checks; return new shards found."""
        return self._shards.refresh()

    def shards(self, refresh: bool = True) -> List[Shard]:
        """The live shards in anchor order (exact components if ``refresh``)."""
        if refresh:
            self._shards.refresh()
        return self._shards.shards()

    def shard_of_member(self, idx: int, refresh: bool = False) -> Shard:
        """The shard currently holding member ``idx``.

        Without ``refresh`` the shard may conservatively overapproximate
        the member's true component (pending split-checks).
        """
        if refresh:
            self._shards.refresh()
        return self._shards.shard_of(idx)

    def shard_map(self, refresh: bool = True) -> Dict[int, List[int]]:
        """``anchor -> sorted member indices`` of every live shard."""
        if refresh:
            self._shards.refresh()
        return self._shards.shard_map()

    def shard_view(self, shard: Shard) -> ShardView:
        """Compact remapped view of ``shard`` (see :class:`ShardView`)."""
        return self._shards.view(shard)

    def audit(self) -> List[str]:
        """Check the component tracker's invariants; return the violations.

        Delegates to :meth:`repro.conflict.sharding.ShardTracker.audit`
        (the origin of the ``audit() -> list[str]`` protocol); composed,
        with the colour-level checks, by ``OnlineEngine.audit()``.
        """
        return self._shards.audit()


class _LazyAdjacency:
    """Mapping-shaped adjacency that derives each mask from arc members.

    Stands in for the ``vertex -> neighbour mask`` dict of
    :class:`~repro.conflict.ConflictGraph` so every inherited read-only
    query keeps working on :class:`ShardedConflictGraph`; each access
    pays an O(arcs) union instead of reading a stored mask.
    """

    __slots__ = ("_graph",)

    def __init__(self, graph: "ShardedConflictGraph") -> None:
        self._graph = graph

    def __getitem__(self, v: int) -> int:
        return self._graph.neighbor_mask(v)

    def __contains__(self, v: object) -> bool:
        return isinstance(v, int) and self._graph._family.is_active(v)

    def __iter__(self) -> Iterator[int]:
        return iter(self._graph._family.active_indices())

    def __len__(self) -> int:
        return len(self._graph._family)

    def get(self, v: int, default=None):
        try:
            return self[v]
        except KeyError:
            return default

    def keys(self) -> List[int]:
        return self._graph._family.active_indices()

    def values(self) -> List[int]:
        return [self[v] for v in self]

    def items(self) -> Iterator[Tuple[int, int]]:
        return ((v, self[v]) for v in self)


class ShardedConflictGraph(DynamicConflictGraph):
    """A dynamic conflict graph with O(arcs) mutations and lazy adjacency.

    The hot-path contract of the sharded online engine: arrivals and
    departures never walk their neighbourhood — the family updates its
    per-arc member bitmasks (O(arcs)), the shard tracker re-files the
    member (O(arcs)), and that is all.  Adjacency queries
    (:meth:`neighbor_mask`, :meth:`degree`, and every inherited
    :class:`~repro.conflict.ConflictGraph` algorithm) derive masks on
    demand as the union of the member's arc bitmasks, which costs O(arcs)
    big-int words per queried vertex.

    The family's conflict-mask cache is intentionally left cold: as long
    as nobody calls ``family.conflict_masks()`` the family's own add/
    remove skip their O(degree) patch loops too.  (Activating the cache
    is harmless for correctness — mutations then pay the patching again.)
    """

    __slots__ = ()

    def __init__(self, family: Optional[DipathFamily] = None,
                 graph: Optional[DiGraph] = None,
                 metrics: Optional["MetricsRegistry"] = None) -> None:
        if family is None:
            family = DipathFamily(graph=graph)
        self._family = family
        self._tx_stack = []
        self._metrics = metrics
        self._nbr = _LazyAdjacency(self)
        vmask = 0
        for i in family.active_indices():
            vmask |= 1 << i
        self._vmask = vmask
        self._shards = self._seed_tracker()

    def neighbor_mask(self, v: int) -> int:
        """Neighbours of ``v`` as a bitmask, derived on demand (O(arcs)).

        Raises ``KeyError`` for an inactive member, like the eagerly
        patched base class (the lazy mapping delegates here, so this is
        the one place the derivation lives).
        """
        family = self._family
        if not family.is_active(v):
            raise KeyError(v)
        mask = 0
        arc_members = family._arc_members
        for aid in family._path_arc_ids[v]:
            mask |= arc_members[aid]
        return mask & ~(1 << v)

    def degree(self, v: int) -> int:
        """Degree of ``v`` (pays the on-demand mask derivation)."""
        return self.neighbor_mask(v).bit_count()

    def add_dipath(self, dipath: Dipath | Sequence[Vertex]) -> int:
        """Add a dipath; O(arcs) — no neighbourhood walk."""
        idx = self._family.add(dipath)
        self._vmask |= 1 << idx
        self._shards.on_add(idx, self._family.member_arc_ids(idx))
        return idx

    def remove_dipath(self, idx: int) -> Dipath:
        """Remove member ``idx``; O(arcs) — no neighbourhood walk."""
        arc_ids = self._family.member_arc_ids(idx)
        path = self._family.remove(idx)     # raises IndexError if not active
        self._vmask &= ~(1 << idx)
        arc_members = self._family._arc_members
        self._shards.on_remove(
            idx, dead_arcs=tuple(a for a in arc_ids if not arc_members[a]))
        return path
