"""Connected-component sharding of the live conflict graph.

Lightpaths that share no fibre can never conflict, so the conflict graph
of a dipath family splits into independent *components* whose wavelength
assignments are solvable in isolation.  This module maintains that
decomposition incrementally while the online engine churns:

* every interned arc is *owned* by exactly one :class:`Shard`;
* an arrival claims the (previously unowned) arcs of its dipath and joins
  the shard owning them — touching several shards **merges** them
  (small-into-large, so total relabelling stays O(n log n) over a run);
* a departure leaves its shard in place and only marks it *dirty*: the
  shard may now overapproximate a component (departures can split one),
  which is always safe — a shard is a **superset** of the true component
  of each of its members, so shard-local reasoning never misses a
  conflict.  The exact decomposition is restored lazily by
  :meth:`ShardTracker.refresh`, a per-shard mask flood-fill rebuild that
  is counted (``rebuilds``) and reports genuine splits (``splits``).

:class:`ShardView` is the compact read-only projection consumers work on:
shard members are remapped to dense local indices ``0..size-1`` and every
adjacency mask is re-encoded at *shard width*, so mask arithmetic inside
one component costs O(component/64) words no matter how many lightpaths
the whole engine holds.  Views are snapshots: each carries the shard's
version stamp and :meth:`ShardView.is_current` tells whether a structural
event has invalidated it (merge, split, member add/remove).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

from .._bitops import bit_list, iter_bits
from ..obs.registry import Instrumented, MetricsRegistry
from .conflict_graph import ConflictGraph

__all__ = ["Shard", "ShardTracker", "ShardView"]


class Shard:
    """One live shard: a superset of a conflict-graph component.

    Attributes
    ----------
    member_mask:
        Bitmask of the *global* member indices currently in the shard.
    arc_mask:
        Bitmask of the family arc ids owned by the shard.  Ownership is
        conservative: arcs whose last user departed stay owned until the
        next :meth:`ShardTracker.refresh`.
    version:
        Bumped on every structural change; :class:`ShardView` snapshots
        carry the stamp they were built at.
    dirty:
        Whether a departure may have split the shard since the last
        refresh (the shard is then a superset of >= 1 true components).
    """

    __slots__ = ("member_mask", "arc_mask", "version", "dirty")

    def __init__(self, member_mask: int = 0, arc_mask: int = 0) -> None:
        self.member_mask = member_mask
        self.arc_mask = arc_mask
        self.version = 0
        self.dirty = False

    @property
    def size(self) -> int:
        """Number of members currently in the shard."""
        return self.member_mask.bit_count()

    def members(self) -> List[int]:
        """The global member indices of the shard, sorted."""
        return bit_list(self.member_mask)

    def anchor(self) -> int:
        """The smallest member index — the shard's deterministic label.

        Shard *objects* are created in event order, which is reproducible
        for a fixed trace but awkward to report; the anchor is the stable
        name used by :meth:`ShardTracker.shard_map` and the scheduling
        order of per-shard defragmentation.
        """
        low = self.member_mask & -self.member_mask
        return low.bit_length() - 1

    def __repr__(self) -> str:
        return (f"Shard(size={self.size}, arcs={self.arc_mask.bit_count()}, "
                f"dirty={self.dirty})")


#: ``neighbor_mask(global_index) -> global adjacency mask`` — how the
#: tracker asks the owning graph for adjacency during rebuild flood-fills
#: and view construction (the graph may compute it lazily from arc
#: membership, see ``ShardedConflictGraph``).
NeighborFunction = Callable[[int], int]

#: ``arcs_of(global_index) -> family arc ids`` — how rebuilds re-derive
#: arc ownership from the members that survived a split.
ArcsFunction = Callable[[int], Tuple[int, ...]]


class ShardTracker(Instrumented):
    """Incremental component bookkeeping over family arc ids.

    The tracker never looks at vertex adjacency on the hot path: arrivals
    and departures are classified purely by the *arcs* they use, O(arcs)
    per event.  Adjacency (through ``neighbor_of``) is consulted only by
    the lazy :meth:`refresh` rebuilds and by :meth:`view`.

    Merge/split/rebuild counters publish into the shared metrics registry
    under ``shards.*`` as *diagnostic* metrics: they depend on the
    placement history (speculative add+rollback churn bumps them on the
    unsharded serial path but not on the parallel fan-out), so they are
    excluded from the cross-path deterministic snapshot while staying
    reproducible for a fixed seed and configuration.
    """

    __slots__ = ("_neighbor_of", "_arcs_of", "_shard_of_member",
                 "_shard_of_arc", "_join_stamp", "_m_merges", "_m_splits",
                 "_m_rebuilds") + Instrumented._OBS_SLOTS

    def __init__(self, neighbor_of: NeighborFunction,
                 arcs_of: ArcsFunction,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self._obs_init("shards", metrics)
        self._neighbor_of = neighbor_of
        self._arcs_of = arcs_of
        self._shard_of_member: Dict[int, Shard] = {}
        self._shard_of_arc: Dict[int, Shard] = {}
        #: member -> (shard joined, its version right after the join,
        #: whether the join merged shards); lets a remove that exactly
        #: undoes the last join skip the dirty flag (the pre-join state
        #: was a valid component).  The shard identity is part of the
        #: stamp: rebuilds and merges relocate members without touching
        #: their stamps, and a bare version number could collide with a
        #: *different* shard's version and wrongly suppress a split
        #: check.  This is what keeps speculative admit+rollback churn
        #: from triggering rebuild storms.
        self._join_stamp: Dict[int, Tuple[Shard, int, bool]] = {}
        #: Arrivals whose arcs touched >= 2 shards (each such event counts
        #: the number of extra shards folded in).
        self._m_merges = self._obs_counter("merges", diagnostic=True)
        #: Components discovered by refresh rebuilds (a rebuild finding k
        #: components records k - 1 splits).
        self._m_splits = self._obs_counter("splits", diagnostic=True)
        #: Per-shard flood-fill rebuilds run by :meth:`refresh`.
        self._m_rebuilds = self._obs_counter("rebuilds", diagnostic=True)

    # Backward-compatible accessors over the registry-backed counters.
    @property
    def merges(self) -> int:
        return self._m_merges.value

    @property
    def splits(self) -> int:
        return self._m_splits.value

    @property
    def rebuilds(self) -> int:
        return self._m_rebuilds.value

    # ------------------------------------------------------------------ #
    # event hooks (called by the owning conflict graph)
    # ------------------------------------------------------------------ #
    def on_add(self, idx: int, arc_ids: Tuple[int, ...]) -> Shard:
        """Place arriving member ``idx`` (using ``arc_ids``); merge shards.

        Returns the shard the member ended up in.  O(arcs) plus the
        amortised small-into-large relabelling cost of merges.
        """
        shard_of_arc = self._shard_of_arc
        touched: List[Shard] = []
        for aid in arc_ids:
            shard = shard_of_arc.get(aid)
            if shard is not None and shard not in touched:
                touched.append(shard)
        if not touched:
            home = Shard()
        else:
            home = max(touched, key=lambda s: s.size)
            for other in touched:
                if other is not home:
                    self._absorb(home, other)
            self._m_merges.inc(len(touched) - 1)
        home.member_mask |= 1 << idx
        home.version += 1
        self._shard_of_member[idx] = home
        self._join_stamp[idx] = (home, home.version, len(touched) > 1)
        for aid in arc_ids:
            if shard_of_arc.get(aid) is not home:
                shard_of_arc[aid] = home
                home.arc_mask |= 1 << aid
        return home

    def on_remove(self, idx: int, dead_arcs: Tuple[int, ...] = (),
                  can_split: bool = True) -> Shard:
        """Detach departing member ``idx``; mark its shard dirty.

        The shard keeps owning the member's still-used arcs (a later
        arrival on any of them must land in the same shard while the
        split question is open) and becomes *dirty*: it may now cover
        several true components.  O(arcs); the split check is deferred
        to :meth:`refresh`.  The dirty flag is skipped when the caller
        knows the removal cannot split (``can_split=False``, e.g. the
        member had at most one conflict partner) or when the removal
        exactly undoes the member's join and that join merged nothing —
        the pre-join decomposition was already exact.

        ``dead_arcs`` are the member's arc ids that just lost their last
        user: ownership of those is dropped immediately — an arrival on
        a now-unused fibre conflicts with nobody through it, so filing
        it into this shard would weld disconnected components together
        in a way no split-check could ever undo (clean removals never
        set the dirty flag).
        """
        shard = self._shard_of_member.pop(idx)
        shard.member_mask &= ~(1 << idx)
        join_shard, join_version, join_merged = \
            self._join_stamp.pop(idx, (None, -1, True))
        undoes_join = (join_shard is shard
                       and shard.version == join_version
                       and not join_merged)
        shard.version += 1
        if not shard.member_mask:
            self._release(shard)
            return shard
        shard_of_arc = self._shard_of_arc
        for aid in dead_arcs:
            if shard_of_arc.get(aid) is shard:
                del shard_of_arc[aid]
                shard.arc_mask &= ~(1 << aid)
        if can_split and not undoes_join:
            shard.dirty = True
        return shard

    def on_retract(self, start: int, stop: int) -> None:
        """Forget ownership of the un-interned arc ids ``start..stop-1``.

        Called when a rolled-back speculation un-interns the arcs it
        created (see ``DipathFamily._retract_add``); the ids may be
        reused for *different* arcs later, so stale ownership must go.
        """
        shard_of_arc = self._shard_of_arc
        for aid in range(start, stop):
            shard = shard_of_arc.pop(aid, None)
            if shard is not None:
                shard.arc_mask &= ~(1 << aid)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def shard_of(self, idx: int) -> Shard:
        """The shard currently holding member ``idx`` (raises KeyError)."""
        return self._shard_of_member[idx]

    def owner_of_arc(self, aid: int) -> Optional[Shard]:
        """The shard owning family arc id ``aid`` (``None`` if unowned)."""
        return self._shard_of_arc.get(aid)

    def shards(self) -> List[Shard]:
        """The live shards, ordered by anchor (deterministic)."""
        seen: Dict[int, Shard] = {}
        for shard in self._shard_of_member.values():
            seen.setdefault(id(shard), shard)
        return sorted(seen.values(), key=Shard.anchor)

    def shard_map(self) -> Dict[int, List[int]]:
        """``anchor -> sorted member indices`` for every live shard.

        Call :meth:`refresh` first for the exact component decomposition;
        without it, dirty shards may still cover several components.
        """
        return {shard.anchor(): shard.members() for shard in self.shards()}

    def audit(self) -> List[str]:
        """Check the tracker's invariants; return the violations found.

        An empty list means the bookkeeping is coherent:

        * every member is filed in exactly one shard, and that shard's
          ``member_mask`` contains it;
        * shard member masks are pairwise disjoint and each shard holds
          at least one member (no zombie shards reachable from the maps);
        * every owned arc's owner is a live shard and the arc is set in
          the owner's ``arc_mask``, and conversely every bit of a shard's
          ``arc_mask`` maps back to that shard;
        * a clean (non-dirty) shard's members are connected through its
          arcs — conservatively checked via each member's filed arcs: a
          member all of whose arcs some *other* shard owns cannot belong
          here.

        The fault-injection and crash-recovery suites run this after arc
        removals and journal replays, where an incoherent tracker would
        otherwise only surface as a wrong admission much later.
        """
        problems: List[str] = []
        covered = 0
        for shard in self.shards():
            if not shard.member_mask:
                problems.append("shard with empty member_mask is reachable")
                continue
            if covered & shard.member_mask:
                problems.append(
                    f"members {bit_list(covered & shard.member_mask)} "
                    f"appear in more than one shard")
            covered |= shard.member_mask
            for aid in iter_bits(shard.arc_mask):
                if self._shard_of_arc.get(aid) is not shard:
                    problems.append(
                        f"arc {aid} is in shard {shard.anchor()}'s "
                        f"arc_mask but owned elsewhere")
        for idx, shard in self._shard_of_member.items():
            if not shard.member_mask >> idx & 1:
                problems.append(
                    f"member {idx} filed in a shard whose member_mask "
                    f"lacks it")
        for aid, shard in self._shard_of_arc.items():
            if not shard.arc_mask >> aid & 1:
                problems.append(
                    f"arc {aid} owned by shard {shard.anchor()} but "
                    f"missing from its arc_mask")
            if not shard.member_mask:
                problems.append(f"arc {aid} owned by an empty shard")
        for idx, shard in self._shard_of_member.items():
            if shard.dirty:
                continue
            arcs = self._arcs_of(idx)
            if arcs and all(self._shard_of_arc.get(a) is not None
                            and self._shard_of_arc[a] is not shard
                            for a in arcs):
                problems.append(
                    f"member {idx} shares no arc with its clean shard "
                    f"{shard.anchor()}")
        return problems

    # ------------------------------------------------------------------ #
    # lazy split repair
    # ------------------------------------------------------------------ #
    def refresh(self) -> int:
        """Rebuild every dirty shard; return the number of new shards.

        For each dirty shard one mask flood-fill per discovered component
        runs over the shard's members (O(members x arcs) through the
        adjacency callback).  The first component keeps the shard object;
        the rest move to fresh shards.  Arc ownership is recomputed from
        the surviving members, dropping arcs nobody uses any more.
        """
        new_shards = 0
        for shard in self.shards():
            if shard.dirty:
                new_shards += self._rebuild(shard)
        return new_shards

    def _rebuild(self, shard: Shard) -> int:
        neighbor_of = self._neighbor_of
        self._m_rebuilds.inc()
        remaining = shard.member_mask
        components: List[int] = []
        while remaining:
            comp = remaining & -remaining
            frontier = comp
            while frontier:
                reached = 0
                for v in iter_bits(frontier):
                    reached |= neighbor_of(v)
                frontier = reached & remaining & ~comp
                comp |= frontier
            components.append(comp)
            remaining &= ~comp
        self._m_splits.inc(len(components) - 1)
        shard_of_arc = self._shard_of_arc
        for aid in iter_bits(shard.arc_mask):
            del shard_of_arc[aid]
        shard.arc_mask = 0
        shard.dirty = False
        shard.version += 1
        homes = [shard] + [Shard() for _ in components[1:]]
        arcs_of = self._arcs_of
        for home, comp in zip(homes, components):
            home.member_mask = comp
            for v in iter_bits(comp):
                self._shard_of_member[v] = home
                for aid in arcs_of(v):
                    if shard_of_arc.get(aid) is not home:
                        shard_of_arc[aid] = home
                        home.arc_mask |= 1 << aid
        return len(components) - 1

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #
    def view(self, shard: Shard) -> "ShardView":
        """Build the compact :class:`ShardView` of ``shard`` (a snapshot)."""
        return ShardView(shard, self._neighbor_of)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _absorb(self, home: Shard, other: Shard) -> None:
        """Merge ``other`` into ``home`` (caller picked ``home`` larger)."""
        for v in iter_bits(other.member_mask):
            self._shard_of_member[v] = home
        shard_of_arc = self._shard_of_arc
        for aid in iter_bits(other.arc_mask):
            shard_of_arc[aid] = home
        home.member_mask |= other.member_mask
        home.arc_mask |= other.arc_mask
        home.dirty = home.dirty or other.dirty
        home.version += 1
        other.member_mask = other.arc_mask = 0

    def _release(self, shard: Shard) -> None:
        """Drop an emptied shard and free its arc ownership."""
        shard_of_arc = self._shard_of_arc
        for aid in iter_bits(shard.arc_mask):
            del shard_of_arc[aid]
        shard.arc_mask = 0
        shard.dirty = False


class ShardView:
    """Read-only compact projection of one shard of the conflict graph.

    Members are remapped to dense local indices ``0..size-1`` (in
    increasing global order, so local order equals global order) and the
    adjacency masks are re-encoded at shard width.  The view is a
    snapshot of the shard at construction time:

    * **compact remap** — ``to_local`` / ``to_global`` translate indices,
      ``neighbor_mask`` returns shard-width masks;
    * **read-only** — the view never writes back; mutate through the
      owning :class:`~repro.conflict.DynamicConflictGraph`;
    * **invalidated on merge/split** — any structural change to the shard
      (member add/remove, merge, split) bumps the shard version and
      :meth:`is_current` turns false; consumers rebuild the view.
    """

    __slots__ = ("_shard", "_version", "_globals", "_local_of", "_masks")

    def __init__(self, shard: Shard, neighbor_of: NeighborFunction) -> None:
        self._shard = shard
        self._version = shard.version
        self._globals: List[int] = shard.members()
        local_of = {g: i for i, g in enumerate(self._globals)}
        self._local_of = local_of
        masks: List[int] = []
        for g in self._globals:
            local = 0
            for j in iter_bits(neighbor_of(g)):
                bit_pos = local_of.get(j)
                if bit_pos is not None:
                    local |= 1 << bit_pos
            masks.append(local)
        self._masks = masks

    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of members in the view."""
        return len(self._globals)

    @property
    def shard(self) -> Shard:
        """The shard this view was built from."""
        return self._shard

    def is_current(self) -> bool:
        """Whether the underlying shard is structurally unchanged."""
        return self._shard.version == self._version

    def to_global(self, local: int) -> int:
        """Global member index of local vertex ``local``."""
        return self._globals[local]

    def to_local(self, global_idx: int) -> int:
        """Local vertex of global member ``global_idx`` (raises KeyError)."""
        return self._local_of[global_idx]

    def globals(self) -> List[int]:
        """The global member indices, in local order (ascending)."""
        return list(self._globals)

    def neighbor_mask(self, local: int) -> int:
        """Shard-width adjacency mask of local vertex ``local``."""
        return self._masks[local]

    def degree(self, local: int) -> int:
        """Degree of local vertex ``local`` within the shard."""
        return self._masks[local].bit_count()

    def vertices(self) -> List[int]:
        """The local vertices ``0..size-1``."""
        return list(range(len(self._globals)))

    def as_conflict_graph(self) -> ConflictGraph:
        """The view as a real (local-labelled) :class:`ConflictGraph`.

        Hands the compact masks to any mask-based algorithm (DSATUR,
        cliques, exact colouring) — they run at shard width.
        """
        return ConflictGraph.from_masks(list(self._masks))

    def __len__(self) -> int:
        return len(self._globals)

    def __iter__(self) -> Iterator[int]:
        return iter(range(len(self._globals)))

    def __repr__(self) -> str:
        return (f"ShardView(size={self.size}, "
                f"current={self.is_current()})")
