"""Colouring replicated families via independent-set covers of the base graph.

Theorem 7 scales the Havet gadget by replacing every dipath with ``h``
identical copies; the conflict graph becomes the *blow-up* of the base
conflict graph (copies of a vertex are pairwise adjacent and inherit the base
adjacencies).  Colouring a blow-up optimally is equivalent to covering every
base vertex with ``h`` colour classes, where each class is an independent set
of the base graph — the (integer) cover number equals the chromatic number of
the blow-up, and for vertex-transitive base graphs it approaches
``n * h / alpha`` (the fractional chromatic number times ``h``), which is
exactly the ``ceil(8h/3)`` of Theorem 7.

The exact branch-and-bound below works on the *base* graph (a handful of
vertices for the paper's gadgets), so it stays fast even when the blow-up has
hundreds of vertices where a direct exact colouring would blow up.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from ..dipaths.family import DipathFamily
from .cliques import maximal_cliques
from .conflict_graph import ConflictGraph, build_conflict_graph

__all__ = [
    "independent_set_cover",
    "blowup_chromatic_number",
    "replication_structure",
    "replicated_family_coloring",
]


def _maximal_independent_sets(graph: ConflictGraph,
                              limit: Optional[int] = 5000) -> List[FrozenSet[int]]:
    """All maximal independent sets (maximal cliques of the complement)."""
    return maximal_cliques(graph.complement(), limit=limit)


def independent_set_cover(graph: ConflictGraph, demand: int,
                          node_limit: int = 200000) -> List[FrozenSet[int]]:
    """A minimum multiset of independent sets covering every vertex ``demand`` times.

    Exact branch and bound (greedy initial solution, ``ceil(remaining/alpha)``
    lower bound, sets tried in decreasing coverage order).  Intended for base
    graphs with at most a couple of dozen vertices; ``node_limit`` caps the
    search and falls back to the greedy solution if exceeded.

    Returns the chosen sets (one entry per colour class).
    """
    if demand < 1:
        raise ValueError("demand must be >= 1")
    vertices = graph.vertices()
    if not vertices:
        return []
    sets = _maximal_independent_sets(graph)
    alpha = max(len(s) for s in sets)

    def greedy(remaining: Dict[int, int]) -> List[FrozenSet[int]]:
        chosen: List[FrozenSet[int]] = []
        remaining = dict(remaining)
        while any(v > 0 for v in remaining.values()):
            best = max(sets, key=lambda s: sum(1 for v in s if remaining[v] > 0))
            chosen.append(best)
            for v in best:
                if remaining[v] > 0:
                    remaining[v] -= 1
        return chosen

    initial_demand = {v: demand for v in vertices}
    best_solution = greedy(initial_demand)
    nodes = 0

    def lower_bound(remaining: Dict[int, int]) -> int:
        total = sum(remaining.values())
        return -(-total // alpha) if total else 0

    def search(remaining: Dict[int, int], chosen: List[FrozenSet[int]]) -> None:
        nonlocal best_solution, nodes
        nodes += 1
        if nodes > node_limit:
            return
        if all(v == 0 for v in remaining.values()):
            if len(chosen) < len(best_solution):
                best_solution = list(chosen)
            return
        if len(chosen) + lower_bound(remaining) >= len(best_solution):
            return
        # Branch on the most-demanded vertex to keep the tree narrow.
        target = max(remaining, key=lambda v: remaining[v])
        candidates = sorted(
            (s for s in sets if target in s),
            key=lambda s: sum(1 for v in s if remaining[v] > 0),
            reverse=True)
        for s in candidates:
            new_remaining = dict(remaining)
            for v in s:
                if new_remaining[v] > 0:
                    new_remaining[v] -= 1
            chosen.append(s)
            search(new_remaining, chosen)
            chosen.pop()

    search(initial_demand, [])
    return best_solution


def blowup_chromatic_number(graph: ConflictGraph, copies: int) -> int:
    """Chromatic number of the ``copies``-fold blow-up of ``graph`` (exact)."""
    return len(independent_set_cover(graph, copies))


def replication_structure(family: DipathFamily
                          ) -> Optional[Tuple[List[int], int]]:
    """Detect whether ``family`` is a uniform replication of distinct dipaths.

    Returns ``(representatives, copies)`` where ``representatives`` holds one
    family index per distinct dipath, when every distinct dipath occurs the
    same number of times (``copies >= 1``); ``None`` otherwise.
    """
    groups: Dict = {}
    for idx, path in family.items():
        groups.setdefault(path.vertices, []).append(idx)
    counts = sorted({len(idxs) for idxs in groups.values()})
    if len(counts) != 1:
        return None
    copies = counts[0]
    representatives = [idxs[0] for idxs in groups.values()]
    return representatives, copies


def replicated_family_coloring(family: DipathFamily
                               ) -> Optional[Dict[int, int]]:
    """Optimal colouring of a uniformly replicated family via the base cover.

    Returns ``None`` when the family is not a uniform replication (use the
    general algorithms then).  Otherwise returns a proper colouring of the
    whole family whose number of colours equals the blow-up chromatic number
    of the base conflict graph — e.g. ``ceil(8h/3)`` for the replicated Havet
    family of Theorem 7.
    """
    structure = replication_structure(family)
    if structure is None:
        return None
    representatives, copies = structure
    base = DipathFamily([family[i] for i in representatives], graph=family.graph)
    base_graph = build_conflict_graph(base)
    cover = independent_set_cover(base_graph, copies)

    # Map back: group the original indices per distinct dipath, then hand the
    # k-th copy of base vertex v the colour of the k-th cover set containing v.
    groups: Dict = {}
    for idx, path in family.items():
        groups.setdefault(path.vertices, []).append(idx)
    coloring: Dict[int, int] = {}
    for base_idx, rep in enumerate(representatives):
        copy_indices = groups[family[rep].vertices]
        containing = [color for color, s in enumerate(cover) if base_idx in s]
        for copy_pos, original_idx in enumerate(copy_indices):
            coloring[original_idx] = containing[copy_pos]
    return coloring
