"""Frozen *seed* conflict/colouring engine (pure dicts-of-sets).

This module preserves, verbatim in spirit, the pre-bitset implementations of
the conflict-graph pipeline: pair enumeration with an explicit ``seen`` set,
a ``Dict[int, Set[int]]`` adjacency, heap-based DSATUR over neighbour sets
and the set-based exact solvers.  It exists for two reasons:

* **equivalence testing** — ``tests/test_bitset_engine.py`` checks that the
  bitset engine produces identical edges, clique numbers and chromatic
  numbers on seeded random instances;
* **benchmarking** — ``benchmarks/bench_scaling.py`` and
  ``scripts/bench_report.py`` time this reference engine against the bitset
  engine to track the speedup (recorded in ``BENCH_conflict_engine.json``).

Nothing in the library proper should import this module; treat it as a
read-only historical reference.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Dict, Hashable, Iterator, List, Optional, Set, Tuple

from ..dipaths.family import DipathFamily

__all__ = [
    "baseline_arc_index",
    "baseline_conflicting_pairs",
    "baseline_adjacency",
    "baseline_build_adjacency",
    "baseline_dsatur_coloring",
    "baseline_greedy_clique",
    "baseline_maximum_clique",
    "baseline_clique_number",
    "baseline_is_k_colorable",
    "baseline_chromatic_number",
]

Adjacency = Dict[int, Set[int]]


def baseline_arc_index(family: DipathFamily) -> Dict[Tuple, List[int]]:
    """The seed's per-arc index (arc -> member indices), rebuilt from scratch."""
    index: Dict[Tuple, List[int]] = {}
    for idx, path in enumerate(family):
        for arc in path.arcs():
            index.setdefault(arc, []).append(idx)
    return index


def baseline_conflicting_pairs(arc_index: Dict[Tuple, List[int]]
                               ) -> Iterator[Tuple[int, int]]:
    """Seed pair enumeration: per-arc double loop deduplicated via a set."""
    seen: set = set()
    for members in arc_index.values():
        if len(members) < 2:
            continue
        for a in range(len(members)):
            for b in range(a + 1, len(members)):
                i, j = members[a], members[b]
                if i > j:
                    i, j = j, i
                if (i, j) not in seen:
                    seen.add((i, j))
                    yield (i, j)


def baseline_adjacency(num_vertices: int,
                       pairs: Iterator[Tuple[int, int]]) -> Adjacency:
    """Seed conflict-graph construction: dict-of-sets adjacency."""
    adj: Adjacency = {i: set() for i in range(num_vertices)}
    for i, j in pairs:
        adj[i].add(j)
        adj[j].add(i)
    return adj


def baseline_build_adjacency(family: DipathFamily) -> Adjacency:
    """The full seed build pipeline: arc index -> pairs -> dict-of-sets."""
    index = baseline_arc_index(family)
    return baseline_adjacency(len(family), baseline_conflicting_pairs(index))


def baseline_dsatur_coloring(adjacency: Adjacency) -> Dict[Hashable, int]:
    """The seed DSATUR: lazy max-heap over saturation *sets*."""
    if not adjacency:
        return {}
    saturation: Dict[Hashable, Set[int]] = {v: set() for v in adjacency}
    degree: Dict[Hashable, int] = {v: len(nbrs) for v, nbrs in adjacency.items()}
    coloring: Dict[Hashable, int] = {}

    tiebreak = count()
    heap: List[Tuple[int, int, int, Hashable]] = [
        (0, -degree[v], next(tiebreak), v) for v in adjacency]
    heapq.heapify(heap)

    while len(coloring) < len(adjacency):
        while True:
            neg_sat, neg_deg, _, v = heapq.heappop(heap)
            if v in coloring:
                continue
            if -neg_sat == len(saturation[v]):
                break
            heapq.heappush(heap, (-len(saturation[v]), neg_deg,
                                  next(tiebreak), v))
        used = {coloring[w] for w in adjacency[v] if w in coloring}
        c = 0
        while c in used:
            c += 1
        coloring[v] = c
        for w in adjacency[v]:
            if w not in coloring and c not in saturation[w]:
                saturation[w].add(c)
                heapq.heappush(heap, (-len(saturation[w]), -degree[w],
                                      next(tiebreak), w))
    return coloring


def baseline_greedy_clique(adjacency: Adjacency) -> Set[int]:
    """The seed greedy clique (highest-degree start, max-overlap growth)."""
    if not adjacency:
        return set()
    start = max(adjacency, key=lambda v: len(adjacency[v]))
    clique = {start}
    candidates = set(adjacency[start])
    while candidates:
        v = max(candidates, key=lambda u: len(adjacency[u] & candidates))
        clique.add(v)
        candidates &= adjacency[v]
    return clique


def _baseline_coloring_bound(adj: Adjacency, candidates: List[int]) -> List[int]:
    color_of: Dict[int, int] = {}
    classes: List[Set[int]] = []
    for v in sorted(candidates, key=lambda u: len(adj[u] & set(candidates)),
                    reverse=True):
        for c, cls in enumerate(classes):
            if not (adj[v] & cls):
                cls.add(v)
                color_of[v] = c
                break
        else:
            classes.append({v})
            color_of[v] = len(classes) - 1
    return sorted(candidates, key=lambda v: color_of[v])


def _baseline_distinct_greedy_colors(adj: Adjacency, vertices: List[int]) -> int:
    classes: List[Set[int]] = []
    vertex_set = set(vertices)
    for v in vertices:
        nbrs = adj[v] & vertex_set
        for cls in classes:
            if not (nbrs & cls):
                cls.add(v)
                break
        else:
            classes.append({v})
    return len(classes)


def baseline_maximum_clique(adjacency: Adjacency) -> Set[int]:
    """The seed exact maximum clique (branch and bound, set algebra)."""
    adj = adjacency
    best: Set[int] = baseline_greedy_clique(adj)

    def expand(current: Set[int], candidates: Set[int]) -> None:
        nonlocal best
        if not candidates:
            if len(current) > len(best):
                best = set(current)
            return
        ordered = _baseline_coloring_bound(adj, list(candidates))
        while ordered:
            colors_needed = _baseline_distinct_greedy_colors(adj, ordered)
            if len(current) + colors_needed <= len(best):
                return
            v = ordered.pop()
            current.add(v)
            expand(current, candidates & adj[v])
            current.discard(v)
            candidates.discard(v)
            ordered = [u for u in ordered if u in candidates]

    expand(set(), set(adj))
    return best


def baseline_clique_number(adjacency: Adjacency) -> int:
    """Seed ``omega``."""
    return len(baseline_maximum_clique(adjacency))


def baseline_is_k_colorable(adjacency: Adjacency, k: int
                            ) -> Optional[Dict[Hashable, int]]:
    """The seed backtracking ``k``-colourability solver (set-based)."""
    if k < 0:
        raise ValueError("k must be non-negative")
    vertices = list(adjacency)
    index = {v: i for i, v in enumerate(vertices)}
    int_adj: List[Set[int]] = [set() for _ in vertices]
    for v, nbrs in adjacency.items():
        vi = index[v]
        for w in nbrs:
            if w in index:
                int_adj[vi].add(index[w])
    n = len(vertices)
    if n == 0:
        return {}
    if k == 0:
        return None
    colors: List[int] = [-1] * n
    neighbour_colors: List[Set[int]] = [set() for _ in range(n)]

    def choose_vertex() -> int:
        best_v, best_key = -1, (-1, -1)
        for v in range(n):
            if colors[v] != -1:
                continue
            key = (len(neighbour_colors[v]), len(int_adj[v]))
            if key > best_key:
                best_key, best_v = key, v
        return best_v

    def backtrack(num_colored: int, max_used: int) -> bool:
        if num_colored == n:
            return True
        v = choose_vertex()
        if len(neighbour_colors[v]) >= k:
            return False
        allowed = [c for c in range(min(max_used + 2, k))
                   if c not in neighbour_colors[v]]
        for c in allowed:
            colors[v] = c
            touched: List[int] = []
            for w in int_adj[v]:
                if colors[w] == -1 and c not in neighbour_colors[w]:
                    neighbour_colors[w].add(c)
                    touched.append(w)
            if backtrack(num_colored + 1, max(max_used, c)):
                return True
            colors[v] = -1
            for w in touched:
                neighbour_colors[w].discard(c)
        return False

    if not backtrack(0, -1):
        return None
    return {vertices[i]: colors[i] for i in range(n)}


def baseline_chromatic_number(adjacency: Adjacency) -> int:
    """Seed exact chromatic number (DSATUR upper bound, then downward search)."""
    if not adjacency:
        return 0
    upper_coloring = baseline_dsatur_coloring(adjacency)
    best_count = len(set(upper_coloring.values()))
    k = best_count - 1
    lower = len(baseline_greedy_clique(adjacency))
    while k >= lower:
        attempt = baseline_is_k_colorable(adjacency, k)
        if attempt is None:
            break
        best_count = len(set(attempt.values()))
        k = best_count - 1
    return best_count
