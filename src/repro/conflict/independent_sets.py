"""Independent sets of conflict graphs.

An independent set of the conflict graph is a set of pairwise arc-disjoint
dipaths — exactly the dipaths that may share one wavelength.  The
independence number gives the simple lower bound ``w >= |P| / alpha`` used in
Theorem 7 (the Havet gadget's conflict graph has ``alpha = 3``, hence
``w >= 8h/3``).
"""

from __future__ import annotations

from typing import List, Set

from .cliques import maximum_clique
from .conflict_graph import ConflictGraph

__all__ = [
    "is_independent_set",
    "maximum_independent_set",
    "independence_number",
    "greedy_independent_set",
    "partition_lower_bound",
]


def is_independent_set(graph: ConflictGraph, vertices: Set[int]) -> bool:
    """Whether no two vertices of ``vertices`` are adjacent."""
    verts = list(vertices)
    for i, u in enumerate(verts):
        for v in verts[i + 1:]:
            if graph.has_edge(u, v):
                return False
    return True


def greedy_independent_set(graph: ConflictGraph) -> Set[int]:
    """A maximal independent set built greedily by increasing degree."""
    adj = graph.adjacency()
    chosen: Set[int] = set()
    blocked: Set[int] = set()
    for v in sorted(adj, key=lambda u: len(adj[u])):
        if v not in blocked:
            chosen.add(v)
            blocked.add(v)
            blocked |= adj[v]
    return chosen


def maximum_independent_set(graph: ConflictGraph) -> Set[int]:
    """An exact maximum independent set (max clique of the complement)."""
    return maximum_clique(graph.complement())


def independence_number(graph: ConflictGraph) -> int:
    """The independence number ``alpha``."""
    return len(maximum_independent_set(graph))


def partition_lower_bound(graph: ConflictGraph) -> int:
    """The bound ``ceil(n / alpha) <= chromatic number``.

    Every colour class is an independent set, so at least ``n / alpha``
    classes are needed.  This is the argument the paper uses to show that the
    replicated Havet family needs ``ceil(8h / 3)`` wavelengths.
    """
    n = graph.num_vertices
    if n == 0:
        return 0
    alpha = independence_number(graph)
    return -(-n // alpha)  # ceil division
