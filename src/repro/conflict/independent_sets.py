"""Independent sets of conflict graphs.

An independent set of the conflict graph is a set of pairwise arc-disjoint
dipaths — exactly the dipaths that may share one wavelength.  The
independence number gives the simple lower bound ``w >= |P| / alpha`` used in
Theorem 7 (the Havet gadget's conflict graph has ``alpha = 3``, hence
``w >= 8h/3``).

Like :mod:`repro.conflict.cliques`, everything here runs on the graph's
integer bitmasks.
"""

from __future__ import annotations

from typing import Set

from .._bitops import mask_of
from .cliques import maximum_clique
from .conflict_graph import ConflictGraph

__all__ = [
    "is_independent_set",
    "maximum_independent_set",
    "independence_number",
    "greedy_independent_set",
    "partition_lower_bound",
]


def is_independent_set(graph: ConflictGraph, vertices: Set[int]) -> bool:
    """Whether no two vertices of ``vertices`` are adjacent.

    Vertices absent from the graph are treated as isolated (no edges), like
    ``has_edge`` does.
    """
    mask = mask_of(vertices)
    nbr = graph.adjacency_masks()
    return all(not (nbr.get(v, 0) & mask) for v in vertices)


def greedy_independent_set(graph: ConflictGraph) -> Set[int]:
    """A maximal independent set built greedily by increasing degree."""
    nbr = graph.adjacency_masks()
    chosen: Set[int] = set()
    blocked = 0
    for v in sorted(nbr, key=lambda u: nbr[u].bit_count()):
        bit = 1 << v
        if not (blocked & bit):
            chosen.add(v)
            blocked |= bit | nbr[v]
    return chosen


def maximum_independent_set(graph: ConflictGraph) -> Set[int]:
    """An exact maximum independent set (max clique of the complement)."""
    return maximum_clique(graph.complement())


def independence_number(graph: ConflictGraph) -> int:
    """The independence number ``alpha``."""
    return len(maximum_independent_set(graph))


def partition_lower_bound(graph: ConflictGraph) -> int:
    """The bound ``ceil(n / alpha) <= chromatic number``.

    Every colour class is an independent set, so at least ``n / alpha``
    classes are needed.  This is the argument the paper uses to show that the
    replicated Havet family needs ``ceil(8h / 3)`` wavelengths.
    """
    n = graph.num_vertices
    if n == 0:
        return 0
    alpha = independence_number(graph)
    return -(-n // alpha)  # ceil division
