"""The conflict graph of a family of dipaths.

The conflict graph (paper, Section 2) has one vertex per member of the dipath
family; two vertices are adjacent when the corresponding dipaths share an arc.
The wavelength number ``w(G, P)`` is exactly the chromatic number of this
graph, and the load ``pi(G, P)`` is a lower bound on its clique number (with
equality for UPP-DAGs, Property 3).

Vertices of the conflict graph are the *indices* of the family (0-based), so
that identical dipaths appearing several times are distinct vertices — they
are pairwise adjacent since they share all their arcs.

Representation
--------------
Adjacency is stored as one Python-int *bitmask per vertex*: bit ``w`` of
``neighbor_mask(v)`` is set iff ``{v, w}`` is an edge.  All derived-graph
operations (:meth:`subgraph`, :meth:`complement`,
:meth:`connected_components`, :meth:`contains_k23`, ...) are O(machine words)
mask arithmetic instead of nested set loops; the clique and colouring
algorithms in :mod:`repro.conflict.cliques` and :mod:`repro.coloring` consume
the masks directly.  Vertex labels must therefore be non-negative integers
(they are dipath indices; induced subgraphs preserve the original labels).
The legacy set-returning accessors (:meth:`neighbors`, :meth:`adjacency`) are
kept as thin decoded views for compatibility — hot loops should use
:meth:`neighbor_mask` / :meth:`adjacency_masks` instead.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .._bitops import iter_bits, mask_of
from ..dipaths.family import DipathFamily

__all__ = ["ConflictGraph", "build_conflict_graph"]


class ConflictGraph:
    """A simple undirected graph over non-negative integer vertices.

    The class is also used as a general small undirected-graph container by
    the colouring and clique algorithms (they rely on :meth:`adjacency_masks`,
    :meth:`vertices` and :meth:`neighbor_mask`).
    """

    __slots__ = ("_nbr", "_vmask")

    def __init__(self, num_vertices: int = 0,
                 edges: Optional[Iterable[Tuple[int, int]]] = None) -> None:
        self._nbr: Dict[int, int] = {i: 0 for i in range(num_vertices)}
        self._vmask: int = (1 << num_vertices) - 1
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_masks(cls, masks: Dict[int, int] | List[int]) -> "ConflictGraph":
        """Build a graph directly from neighbour bitmasks.

        ``masks`` maps each vertex to its neighbour mask (a list is read as
        vertices ``0..n-1``).  The masks must be symmetric and free of
        self-bits; this is not re-verified (the caller is trusted), which is
        what makes :func:`build_conflict_graph` allocation-free.
        """
        items = enumerate(masks) if isinstance(masks, list) else masks.items()
        g = cls.__new__(cls)
        g._nbr = dict(items)
        g._vmask = mask_of(g._nbr)
        return g

    def add_vertex(self, v: int) -> None:
        """Add an isolated vertex (a non-negative integer)."""
        if v not in self._nbr:
            if not isinstance(v, int) or v < 0:
                raise ValueError(
                    f"conflict-graph vertices are non-negative ints, got {v!r}")
            self._nbr[v] = 0
            self._vmask |= 1 << v

    def add_edge(self, u: int, v: int) -> None:
        """Add an undirected edge (endpoints are created if needed)."""
        if u == v:
            raise ValueError("conflict graphs have no self-loops")
        self.add_vertex(u)
        self.add_vertex(v)
        self._nbr[u] |= 1 << v
        self._nbr[v] |= 1 << u

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def vertices(self) -> List[int]:
        """The vertices, sorted."""
        return sorted(self._nbr)

    @property
    def vertex_mask(self) -> int:
        """Bitmask with one bit set per vertex."""
        return self._vmask

    def neighbor_mask(self, v: int) -> int:
        """Neighbours of ``v`` as a bitmask (O(1), no copy)."""
        return self._nbr[v]

    def adjacency_masks(self) -> Dict[int, int]:
        """The internal ``vertex -> neighbour mask`` mapping (read-only)."""
        return self._nbr

    def neighbors(self, v: int) -> Set[int]:
        """Neighbours of ``v``, decoded into a fresh set.

        Compatibility accessor — hot loops should use :meth:`neighbor_mask`.
        """
        return set(iter_bits(self._nbr[v]))

    def degree(self, v: int) -> int:
        """Degree of ``v``."""
        return self._nbr[v].bit_count()

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge."""
        return u in self._nbr and (self._nbr[u] >> v) & 1 == 1

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self._nbr)

    @property
    def num_edges(self) -> int:
        """Number of edges."""
        return sum(m.bit_count() for m in self._nbr.values()) // 2

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over edges as sorted pairs."""
        for u, mask in self._nbr.items():
            for j in iter_bits(mask >> (u + 1)):
                yield (u, u + 1 + j)

    def adjacency(self) -> Dict[int, Set[int]]:
        """A decoded copy of the adjacency mapping (vertex -> neighbour set)."""
        return {v: set(iter_bits(m)) for v, m in self._nbr.items()}

    def __len__(self) -> int:
        return self.num_vertices

    def __repr__(self) -> str:
        return f"ConflictGraph(n={self.num_vertices}, m={self.num_edges})"

    # ------------------------------------------------------------------ #
    # derived graphs
    # ------------------------------------------------------------------ #
    def subgraph(self, vertices: Iterable[int]) -> "ConflictGraph":
        """Induced subgraph on ``vertices`` (vertex labels are preserved)."""
        keep = sorted(set(vertices))
        keep_mask = mask_of(keep)
        g = ConflictGraph.__new__(ConflictGraph)
        g._nbr = {v: self._nbr[v] & keep_mask for v in keep}
        g._vmask = keep_mask
        return g

    def complement(self) -> "ConflictGraph":
        """The complement graph (same vertex set)."""
        vmask = self._vmask
        g = ConflictGraph.__new__(ConflictGraph)
        g._nbr = {v: vmask & ~m & ~(1 << v) for v, m in self._nbr.items()}
        g._vmask = vmask
        return g

    def _component_mask(self, seed_bit: int) -> int:
        """Mask flood-fill: the connected component containing ``seed_bit``."""
        comp = seed_bit
        frontier = seed_bit
        while frontier:
            reached = 0
            for v in iter_bits(frontier):
                reached |= self._nbr[v]
            frontier = reached & ~comp
            comp |= frontier
        return comp

    def connected_components(self) -> List[Set[int]]:
        """Connected components of the conflict graph."""
        comps: List[Set[int]] = []
        remaining = self._vmask
        while remaining:
            comp = self._component_mask(remaining & -remaining)
            comps.append(set(iter_bits(comp)))
            remaining &= ~comp
        return comps

    # ------------------------------------------------------------------ #
    # structural predicates used by the reproduction
    # ------------------------------------------------------------------ #
    def is_complete(self) -> bool:
        """Whether every two vertices are adjacent (Figure 1: complete K_k)."""
        vmask = self._vmask
        return all(m == vmask ^ (1 << v) for v, m in self._nbr.items())

    def is_cycle_graph(self) -> bool:
        """Whether the graph is a single cycle C_n (n >= 3).

        Used to verify the structure claims for Figure 3 (C_5) and the
        Theorem 2 gadget (C_{2k+1}).  One degree sweep plus one mask
        flood-fill — no materialised component list.
        """
        if self.num_vertices < 3:
            return False
        if any(m.bit_count() != 2 for m in self._nbr.values()):
            return False
        return self._component_mask(self._vmask & -self._vmask) == self._vmask

    def contains_k23(self) -> bool:
        """Whether the graph contains an **induced** ``K_{2,3}``.

        Corollary 5 of the paper states that conflict graphs of UPP-DAG
        families never contain a ``K_{2,3}``: its proof takes two *disjoint*
        dipaths ``Q1, Q2`` and three *pairwise disjoint* dipaths ``P1, P2, P3``
        with every ``Qi`` conflicting with every ``Pj`` — i.e. an induced
        ``K_{2,3}`` of the conflict graph (within-side adjacencies are
        excluded).  The check therefore looks for two non-adjacent vertices
        with three pairwise non-adjacent common neighbours.
        """
        verts = self.vertices()
        nbr = self._nbr
        for i, u in enumerate(verts):
            nu = nbr[u]
            for v in verts[i + 1:]:
                if (nu >> v) & 1:
                    continue
                common = nu & nbr[v]
                if common.bit_count() < 3:
                    continue
                # look for an independent triple among the common neighbours
                for a in iter_bits(common):
                    # candidates after a, non-adjacent to a
                    bs = common & ~nbr[a] & ~((1 << (a + 1)) - 1)
                    for b in iter_bits(bs):
                        if bs & ~nbr[b] & ~((1 << (b + 1)) - 1):
                            return True
        return False

    def degree_sequence(self) -> List[int]:
        """Sorted (non-increasing) degree sequence."""
        return sorted((m.bit_count() for m in self._nbr.values()), reverse=True)

    def to_networkx(self):  # pragma: no cover - convenience passthrough
        """Convert to a ``networkx.Graph``."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(self.vertices())
        g.add_edges_from(self.edges())
        return g

    # ------------------------------------------------------------------ #
    # numbers (delegation)
    # ------------------------------------------------------------------ #
    def clique_number(self) -> int:
        """Size of a maximum clique (exact)."""
        from .cliques import clique_number

        return clique_number(self)

    def chromatic_number(self) -> int:
        """Chromatic number (exact)."""
        from ..coloring.exact import chromatic_number

        return chromatic_number(self)


def build_conflict_graph(family: DipathFamily) -> ConflictGraph:
    """Build the conflict graph of a dipath family.

    Two family members are adjacent iff their dipaths share at least one arc.
    The adjacency masks come straight from the family's cached per-member
    conflict bitmasks, so construction is O(arc-dipath incidences).  For a
    family with removed members the vertex set is the *active* indices only
    (freed slots are not vertices).
    """
    masks = family.conflict_masks()
    active = family.active_indices()
    if len(active) == len(masks):
        return ConflictGraph.from_masks(list(masks))
    return ConflictGraph.from_masks({i: masks[i] for i in active})
