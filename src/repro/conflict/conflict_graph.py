"""The conflict graph of a family of dipaths.

The conflict graph (paper, Section 2) has one vertex per member of the dipath
family; two vertices are adjacent when the corresponding dipaths share an arc.
The wavelength number ``w(G, P)`` is exactly the chromatic number of this
graph, and the load ``pi(G, P)`` is a lower bound on its clique number (with
equality for UPP-DAGs, Property 3).

Vertices of the conflict graph are the *indices* of the family (0-based), so
that identical dipaths appearing several times are distinct vertices — they
are pairwise adjacent since they share all their arcs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from ..dipaths.family import DipathFamily

__all__ = ["ConflictGraph", "build_conflict_graph"]


class ConflictGraph:
    """A simple undirected graph over ``range(n)`` (dipath indices).

    The class is also used as a general small undirected-graph container by
    the colouring and clique algorithms (they only rely on
    :meth:`adjacency`, :meth:`vertices` and :meth:`neighbors`).
    """

    __slots__ = ("_adj",)

    def __init__(self, num_vertices: int = 0,
                 edges: Optional[Iterable[Tuple[int, int]]] = None) -> None:
        self._adj: Dict[int, Set[int]] = {i: set() for i in range(num_vertices)}
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_vertex(self, v: int) -> None:
        """Add an isolated vertex."""
        self._adj.setdefault(v, set())

    def add_edge(self, u: int, v: int) -> None:
        """Add an undirected edge (endpoints are created if needed)."""
        if u == v:
            raise ValueError("conflict graphs have no self-loops")
        self._adj.setdefault(u, set()).add(v)
        self._adj.setdefault(v, set()).add(u)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def vertices(self) -> List[int]:
        """The vertices, sorted."""
        return sorted(self._adj)

    def neighbors(self, v: int) -> Set[int]:
        """Neighbours of ``v``."""
        return set(self._adj[v])

    def degree(self, v: int) -> int:
        """Degree of ``v``."""
        return len(self._adj[v])

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge."""
        return u in self._adj and v in self._adj[u]

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of edges."""
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over edges as sorted pairs."""
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if u < v:
                    yield (u, v)

    def adjacency(self) -> Dict[int, Set[int]]:
        """A copy of the adjacency mapping (vertex -> neighbour set)."""
        return {v: set(nbrs) for v, nbrs in self._adj.items()}

    def __len__(self) -> int:
        return self.num_vertices

    def __repr__(self) -> str:
        return f"ConflictGraph(n={self.num_vertices}, m={self.num_edges})"

    # ------------------------------------------------------------------ #
    # derived graphs
    # ------------------------------------------------------------------ #
    def subgraph(self, vertices: Iterable[int]) -> "ConflictGraph":
        """Induced subgraph on ``vertices`` (vertex labels are preserved)."""
        keep = set(vertices)
        g = ConflictGraph()
        for v in keep:
            g.add_vertex(v)
        for u in keep:
            for v in self._adj[u]:
                if v in keep and u < v:
                    g.add_edge(u, v)
        return g

    def complement(self) -> "ConflictGraph":
        """The complement graph (same vertex set)."""
        verts = self.vertices()
        g = ConflictGraph()
        for v in verts:
            g.add_vertex(v)
        for i, u in enumerate(verts):
            for v in verts[i + 1:]:
                if v not in self._adj[u]:
                    g.add_edge(u, v)
        return g

    def connected_components(self) -> List[Set[int]]:
        """Connected components of the conflict graph."""
        seen: Set[int] = set()
        comps: List[Set[int]] = []
        for root in self._adj:
            if root in seen:
                continue
            comp = {root}
            stack = [root]
            seen.add(root)
            while stack:
                v = stack.pop()
                for w in self._adj[v]:
                    if w not in seen:
                        seen.add(w)
                        comp.add(w)
                        stack.append(w)
            comps.append(comp)
        return comps

    # ------------------------------------------------------------------ #
    # structural predicates used by the reproduction
    # ------------------------------------------------------------------ #
    def is_complete(self) -> bool:
        """Whether every two vertices are adjacent (Figure 1: complete K_k)."""
        n = self.num_vertices
        return self.num_edges == n * (n - 1) // 2

    def is_cycle_graph(self) -> bool:
        """Whether the graph is a single cycle C_n (n >= 3).

        Used to verify the structure claims for Figure 3 (C_5) and the
        Theorem 2 gadget (C_{2k+1}).
        """
        n = self.num_vertices
        if n < 3 or self.num_edges != n:
            return False
        if any(self.degree(v) != 2 for v in self._adj):
            return False
        return len(self.connected_components()) == 1

    def contains_k23(self) -> bool:
        """Whether the graph contains an **induced** ``K_{2,3}``.

        Corollary 5 of the paper states that conflict graphs of UPP-DAG
        families never contain a ``K_{2,3}``: its proof takes two *disjoint*
        dipaths ``Q1, Q2`` and three *pairwise disjoint* dipaths ``P1, P2, P3``
        with every ``Qi`` conflicting with every ``Pj`` — i.e. an induced
        ``K_{2,3}`` of the conflict graph (within-side adjacencies are
        excluded).  The check therefore looks for two non-adjacent vertices
        with three pairwise non-adjacent common neighbours.
        """
        verts = self.vertices()
        for i, u in enumerate(verts):
            for v in verts[i + 1:]:
                if self.has_edge(u, v):
                    continue
                common = sorted((self._adj[u] & self._adj[v]) - {u, v})
                if len(common) < 3:
                    continue
                # look for an independent triple among the common neighbours
                for a_idx, a in enumerate(common):
                    for b_idx in range(a_idx + 1, len(common)):
                        b = common[b_idx]
                        if self.has_edge(a, b):
                            continue
                        for c in common[b_idx + 1:]:
                            if not self.has_edge(a, c) and not self.has_edge(b, c):
                                return True
        return False

    def degree_sequence(self) -> List[int]:
        """Sorted (non-increasing) degree sequence."""
        return sorted((len(nbrs) for nbrs in self._adj.values()), reverse=True)

    def to_networkx(self):  # pragma: no cover - convenience passthrough
        """Convert to a ``networkx.Graph``."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(self.vertices())
        g.add_edges_from(self.edges())
        return g

    # ------------------------------------------------------------------ #
    # numbers (delegation)
    # ------------------------------------------------------------------ #
    def clique_number(self) -> int:
        """Size of a maximum clique (exact)."""
        from .cliques import clique_number

        return clique_number(self)

    def chromatic_number(self) -> int:
        """Chromatic number (exact)."""
        from ..coloring.exact import chromatic_number

        return chromatic_number(self.adjacency())


def build_conflict_graph(family: DipathFamily) -> ConflictGraph:
    """Build the conflict graph of a dipath family.

    Two family members are adjacent iff their dipaths share at least one arc.
    """
    g = ConflictGraph(num_vertices=len(family))
    for i, j in family.conflicting_pairs():
        g.add_edge(i, j)
    return g
