"""Oriented cycles of a DAG.

An *oriented cycle* of a DAG (paper, Section 2, Figure 2a) is a cycle of the
underlying undirected graph.  Because the digraph has no directed cycle, such
a cycle decomposes into an even number ``2k`` of maximal directed segments
alternating in direction; the vertices where the orientation switches have
either in-degree 2 / out-degree 0 (local sinks of the cycle) or in-degree 0 /
out-degree 2 (local sources of the cycle).

This module provides validation, canonical forms, the alternating-segment
decomposition used by Theorems 2 and 6, and enumeration machinery (cycle
basis via spanning forest + fundamental edges, and bounded exhaustive simple
cycle enumeration for small graphs).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..exceptions import GraphError
from .._typing import Vertex
from ..graphs.digraph import DiGraph

__all__ = [
    "is_oriented_cycle",
    "cycle_orientation_profile",
    "cycle_switch_vertices",
    "decompose_cycle_into_dipaths",
    "canonical_cycle",
    "fundamental_cycles",
    "enumerate_simple_cycles",
]


def _cycle_vertices(cycle: Sequence[Vertex]) -> List[Vertex]:
    """Normalise a cycle given either open (``v0..vk-1``) or closed form."""
    verts = list(cycle)
    if len(verts) >= 2 and verts[0] == verts[-1]:
        verts = verts[:-1]
    return verts


def is_oriented_cycle(graph: DiGraph, cycle: Sequence[Vertex]) -> bool:
    """Whether ``cycle`` is a simple cycle of the underlying undirected graph.

    ``cycle`` may be given in open form ``[v0, ..., v_{k-1}]`` or closed form
    ``[v0, ..., v_{k-1}, v0]``.  Consecutive vertices (cyclically) must be
    joined by an arc in one direction or the other, and all vertices must be
    distinct.  In a simple DAG a cycle has at least 3 vertices.
    """
    verts = _cycle_vertices(cycle)
    if len(verts) < 3 or len(set(verts)) != len(verts):
        return False
    for i, u in enumerate(verts):
        v = verts[(i + 1) % len(verts)]
        if not (graph.has_arc(u, v) or graph.has_arc(v, u)):
            return False
    return True


def cycle_orientation_profile(graph: DiGraph, cycle: Sequence[Vertex]
                              ) -> List[int]:
    """Direction of each cycle edge when walking the cycle.

    Returns a list ``d`` with ``d[i] = +1`` if ``(v_i, v_{i+1})`` is an arc of
    the digraph and ``-1`` if ``(v_{i+1}, v_i)`` is (indices cyclic).

    Raises
    ------
    GraphError
        If ``cycle`` is not an oriented cycle of ``graph``.
    """
    verts = _cycle_vertices(cycle)
    if not is_oriented_cycle(graph, verts):
        raise GraphError(f"{cycle!r} is not an oriented cycle of the digraph")
    profile: List[int] = []
    for i, u in enumerate(verts):
        v = verts[(i + 1) % len(verts)]
        profile.append(1 if graph.has_arc(u, v) else -1)
    return profile


def cycle_switch_vertices(graph: DiGraph, cycle: Sequence[Vertex]
                          ) -> Tuple[List[Vertex], List[Vertex]]:
    """Local sources and local sinks of an oriented cycle.

    Returns ``(local_sources, local_sinks)`` where a *local source* has both
    incident cycle edges oriented away from it (in-degree 0 in the cycle —
    the ``b_i`` vertices of the paper's Theorem 2) and a *local sink* has both
    oriented towards it (out-degree 0 in the cycle — the ``c_i`` vertices).
    The two lists have equal length ``k >= 1`` and alternate along the cycle.
    """
    verts = _cycle_vertices(cycle)
    profile = cycle_orientation_profile(graph, verts)
    n = len(verts)
    local_sources: List[Vertex] = []
    local_sinks: List[Vertex] = []
    for i, v in enumerate(verts):
        d_out = profile[i]              # edge v -> next
        d_in = profile[(i - 1) % n]     # edge prev -> v
        if d_out == 1 and d_in == -1:
            local_sources.append(v)
        elif d_out == -1 and d_in == 1:
            local_sinks.append(v)
    return local_sources, local_sinks


def decompose_cycle_into_dipaths(graph: DiGraph, cycle: Sequence[Vertex]
                                 ) -> List[List[Vertex]]:
    """Split an oriented cycle into its maximal directed segments.

    Each returned segment is a dipath of the digraph, listed in arc order
    (from its local-source end to its local-sink end); consecutive segments
    alternate direction around the cycle.  The number of segments is even
    (``2k``), as stated in the paper.
    """
    verts = _cycle_vertices(cycle)
    profile = cycle_orientation_profile(graph, verts)
    n = len(verts)
    if len(set(profile)) == 1:
        raise GraphError("cycle is directed, impossible in a DAG")
    # Start at an orientation switch so segments are maximal.
    start = next(i for i in range(n) if profile[i] != profile[i - 1])
    segments: List[List[Vertex]] = []
    current = [verts[start]]
    for off in range(n):
        i = (start + off) % n
        nxt = verts[(i + 1) % n]
        current.append(nxt)
        if profile[(i + 1) % n] != profile[i]:
            # orientation switches after nxt: close the segment
            if profile[i] == -1:
                current.reverse()
            segments.append(current)
            current = [nxt]
    return segments


def canonical_cycle(cycle: Sequence[Vertex]) -> Tuple[Vertex, ...]:
    """Canonical representative of a cycle up to rotation and reflection.

    Used to deduplicate cycles during enumeration.
    """
    verts = _cycle_vertices(cycle)
    n = len(verts)
    best: Optional[Tuple[Vertex, ...]] = None
    reprs = [repr(v) for v in verts]
    for direction in (1, -1):
        seq = verts if direction == 1 else list(reversed(verts))
        rep = reprs if direction == 1 else list(reversed(reprs))
        for shift in range(n):
            rotated = tuple(seq[(shift + i) % n] for i in range(n))
            key = tuple(rep[(shift + i) % n] for i in range(n))
            if best is None or key < best_key:  # noqa: F821 - set below
                best, best_key = rotated, key
    return best  # type: ignore[return-value]


def fundamental_cycles(graph: DiGraph,
                       restrict_to: Optional[Iterable[Vertex]] = None
                       ) -> List[List[Vertex]]:
    """A cycle basis of the underlying undirected graph.

    Builds a BFS spanning forest; every non-forest edge closes exactly one
    fundamental cycle, returned as an open vertex list.  When ``restrict_to``
    is given, only the induced subgraph on those vertices is considered.

    The number of returned cycles equals the cyclomatic number of the
    (restricted) underlying graph.
    """
    if restrict_to is not None:
        vertices: Set[Vertex] = set(restrict_to)
    else:
        vertices = set(graph.vertices())
    adj: Dict[Vertex, Set[Vertex]] = {v: set() for v in vertices}
    for u, v in graph.arcs():
        if u in vertices and v in vertices:
            adj[u].add(v)
            adj[v].add(u)

    parent: Dict[Vertex, Optional[Vertex]] = {}
    depth: Dict[Vertex, int] = {}
    tree_edges: Set[frozenset] = set()
    cycles: List[List[Vertex]] = []

    for root in vertices:
        if root in parent:
            continue
        parent[root] = None
        depth[root] = 0
        queue = deque([root])
        while queue:
            v = queue.popleft()
            for w in adj[v]:
                if w not in parent:
                    parent[w] = v
                    depth[w] = depth[v] + 1
                    tree_edges.add(frozenset((v, w)))
                    queue.append(w)

    seen_edges: Set[frozenset] = set()
    for u in vertices:
        for v in adj[u]:
            edge = frozenset((u, v))
            if edge in tree_edges or edge in seen_edges:
                continue
            seen_edges.add(edge)
            # walk u and v up to their lowest common ancestor
            pu, pv = u, v
            left: List[Vertex] = [pu]
            right: List[Vertex] = [pv]
            while depth.get(pu, 0) > depth.get(pv, 0):
                pu = parent[pu]  # type: ignore[assignment]
                left.append(pu)
            while depth.get(pv, 0) > depth.get(pu, 0):
                pv = parent[pv]  # type: ignore[assignment]
                right.append(pv)
            while pu != pv:
                pu = parent[pu]  # type: ignore[assignment]
                pv = parent[pv]  # type: ignore[assignment]
                left.append(pu)
                right.append(pv)
            # left ends at LCA, right ends at LCA: combine
            cycle = left + list(reversed(right[:-1]))
            cycles.append(cycle)
    return cycles


def enumerate_simple_cycles(graph: DiGraph,
                            restrict_to: Optional[Iterable[Vertex]] = None,
                            limit: Optional[int] = None
                            ) -> List[List[Vertex]]:
    """Enumerate the simple cycles of the underlying undirected graph.

    Intended for small instances (gadgets, examples, tests); the number of
    simple cycles can be exponential, so a ``limit`` can bound the output.

    Cycles are returned as open vertex lists, deduplicated up to rotation and
    reflection.
    """
    if restrict_to is not None:
        vertices: Set[Vertex] = set(restrict_to)
    else:
        vertices = set(graph.vertices())
    adj: Dict[Vertex, Set[Vertex]] = {v: set() for v in vertices}
    for u, v in graph.arcs():
        if u in vertices and v in vertices:
            adj[u].add(v)
            adj[v].add(u)

    order = {v: i for i, v in enumerate(sorted(vertices, key=repr))}
    found: Dict[Tuple[Vertex, ...], List[Vertex]] = {}

    def _search(start: Vertex, path: List[Vertex], on_path: Set[Vertex]) -> bool:
        """DFS from ``start`` keeping only vertices >= start in ``order``."""
        if limit is not None and len(found) >= limit:
            return False
        v = path[-1]
        for w in adj[v]:
            if order[w] < order[start]:
                continue
            if w == start and len(path) >= 3:
                key = canonical_cycle(path)
                found.setdefault(key, list(path))
                if limit is not None and len(found) >= limit:
                    return False
            elif w not in on_path:
                path.append(w)
                on_path.add(w)
                keep_going = _search(start, path, on_path)
                on_path.discard(w)
                path.pop()
                if not keep_going:
                    return False
        return True

    for start in sorted(vertices, key=lambda v: order[v]):
        if not _search(start, [start], {start}):
            break
    return list(found.values())
