"""Internal cycles of a DAG (the paper's central structural notion).

An **internal cycle** (paper, Section 2, Figure 2b) is an oriented cycle all
of whose vertices have in-degree > 0 *and* out-degree > 0 in the whole DAG
``G`` — equivalently, no vertex of the cycle is a source or a sink of ``G``.

Key observation used for detection (see DESIGN.md §5.1): a cycle with all its
vertices internal is exactly a cycle of the underlying undirected graph of the
subgraph induced by the internal vertices.  Hence:

* ``G`` has an internal cycle  ⇔  ``underlying(G[I])`` is not a forest, where
  ``I`` is the set of internal vertices — checked in ``O(V + E)`` with a
  union-find;
* the number of *independent* internal cycles is the cyclomatic number of
  ``underlying(G[I])``;
* a certificate cycle is obtained from any fundamental cycle of that graph.

The paper's Main Theorem says ``w(G, P) = pi(G, P)`` for every dipath family
``P`` **iff** ``G`` has no internal cycle, which makes these functions the
decision procedure of the characterisation (see
:mod:`repro.core.characterization`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from .._typing import Vertex
from ..graphs.digraph import DiGraph
from .oriented import (
    enumerate_simple_cycles,
    fundamental_cycles,
    is_oriented_cycle,
)

__all__ = [
    "internal_vertex_set",
    "has_internal_cycle",
    "find_internal_cycle",
    "internal_cyclomatic_number",
    "enumerate_internal_cycles",
    "is_internal_cycle",
    "has_unique_internal_cycle",
]


def internal_vertex_set(graph: DiGraph) -> Set[Vertex]:
    """The set ``I`` of internal vertices (in-degree > 0 and out-degree > 0)."""
    return set(graph.internal_vertices())


class _UnionFind:
    """Minimal union-find with path compression (used for forest detection)."""

    __slots__ = ("_parent",)

    def __init__(self) -> None:
        self._parent: Dict[Vertex, Vertex] = {}

    def find(self, x: Vertex) -> Vertex:
        parent = self._parent
        parent.setdefault(x, x)
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, x: Vertex, y: Vertex) -> bool:
        """Merge the classes of ``x`` and ``y``; return False if already merged."""
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return False
        self._parent[rx] = ry
        return True


def has_internal_cycle(graph: DiGraph) -> bool:
    """Whether the DAG contains an internal cycle.

    Linear-time: the underlying undirected graph restricted to internal
    vertices contains a cycle iff some restricted edge joins two vertices
    already connected in the union-find.
    """
    internal = internal_vertex_set(graph)
    if len(internal) < 3:
        return False
    uf = _UnionFind()
    for u, v in graph.arcs():
        if u in internal and v in internal:
            if not uf.union(u, v):
                return True
    return False


def internal_cyclomatic_number(graph: DiGraph) -> int:
    """Number of independent internal cycles (cyclomatic number of ``G[I]``).

    Zero exactly when the DAG has no internal cycle; one when it has a unique
    internal cycle (the hypothesis of Theorem 6); larger values indicate
    several (possibly overlapping) internal cycles.
    """
    internal = internal_vertex_set(graph)
    uf = _UnionFind()
    extra = 0
    for u, v in graph.arcs():
        if u in internal and v in internal:
            if not uf.union(u, v):
                extra += 1
    return extra


def has_unique_internal_cycle(graph: DiGraph) -> bool:
    """Whether the DAG has exactly one internal cycle.

    This is the hypothesis of Theorem 6.  With cyclomatic number 1 the
    internal subgraph contains exactly one simple cycle.
    """
    return internal_cyclomatic_number(graph) == 1


def find_internal_cycle(graph: DiGraph) -> Optional[List[Vertex]]:
    """Return one internal cycle (open vertex list) or ``None``.

    The returned cycle is a fundamental cycle of the underlying undirected
    graph induced on internal vertices, hence simple; all of its vertices are
    internal in ``graph`` by construction.
    """
    internal = internal_vertex_set(graph)
    if len(internal) < 3:
        return None
    cycles = fundamental_cycles(graph, restrict_to=internal)
    if not cycles:
        return None
    # Return a smallest certificate for readability / determinism.
    return min(cycles, key=len)


def enumerate_internal_cycles(graph: DiGraph, limit: Optional[int] = None
                              ) -> List[List[Vertex]]:
    """Enumerate the simple internal cycles of the DAG.

    Exhaustive (exponential in the worst case); intended for gadgets, tests
    and small experimental instances.  ``limit`` bounds the number of cycles
    returned.
    """
    internal = internal_vertex_set(graph)
    if len(internal) < 3:
        return []
    return enumerate_simple_cycles(graph, restrict_to=internal, limit=limit)


def is_internal_cycle(graph: DiGraph, cycle: Sequence[Vertex]) -> bool:
    """Whether ``cycle`` is an oriented cycle all of whose vertices are internal."""
    if not is_oriented_cycle(graph, cycle):
        return False
    internal = internal_vertex_set(graph)
    verts = list(cycle)
    if len(verts) >= 2 and verts[0] == verts[-1]:
        verts = verts[:-1]
    return all(v in internal for v in verts)
