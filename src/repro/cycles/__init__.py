"""Oriented and internal cycle machinery for DAGs."""

from .internal import (
    enumerate_internal_cycles,
    find_internal_cycle,
    has_internal_cycle,
    has_unique_internal_cycle,
    internal_cyclomatic_number,
    internal_vertex_set,
    is_internal_cycle,
)
from .oriented import (
    canonical_cycle,
    cycle_orientation_profile,
    cycle_switch_vertices,
    decompose_cycle_into_dipaths,
    enumerate_simple_cycles,
    fundamental_cycles,
    is_oriented_cycle,
)

__all__ = [
    "canonical_cycle",
    "cycle_orientation_profile",
    "cycle_switch_vertices",
    "decompose_cycle_into_dipaths",
    "enumerate_internal_cycles",
    "enumerate_simple_cycles",
    "find_internal_cycle",
    "fundamental_cycles",
    "has_internal_cycle",
    "has_unique_internal_cycle",
    "internal_cyclomatic_number",
    "internal_vertex_set",
    "is_internal_cycle",
    "is_oriented_cycle",
]
