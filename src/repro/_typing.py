"""Shared type aliases used across :mod:`repro`.

The library is deliberately generic over the vertex type: any hashable object
may be used as a vertex (integers, strings, tuples...).  The aliases below
exist to keep signatures readable and consistent; they carry no runtime
behaviour.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Sequence, Tuple, TypeVar

__all__ = ["Vertex", "Arc", "VertexSequence", "Coloring", "ArcIterable", "T"]

#: Any hashable object may serve as a vertex.
Vertex = Hashable

#: An arc is an ordered pair of vertices ``(tail, head)``.
Arc = Tuple[Vertex, Vertex]

#: A dipath described extensionally as its vertex sequence.
VertexSequence = Sequence[Vertex]

#: A colouring maps an item (dipath index, vertex, ...) to a colour index.
Coloring = Mapping[int, int]

#: Iterable of arcs, accepted by most constructors.
ArcIterable = Iterable[Arc]

#: Generic type variable for container helpers.
T = TypeVar("T")
