"""Admission simulation under a fixed wavelength budget.

A simple dynamic scenario on top of the combinatorial core: requests arrive
one at a time, each must be provisioned as a lightpath (route + wavelength)
using at most ``W`` wavelengths per fibre and without disturbing the already
provisioned lightpaths (no reconfiguration); requests that cannot be
provisioned are blocked.  The blocking rate as a function of ``W`` is the
operational meaning of the paper's result: on internal-cycle-free topologies,
``W`` equal to the (offline) load suffices to serve the whole family, whereas
on topologies with internal cycles the gap between load and wavelengths shows
up as avoidable blocking.

Since the online engine landed, this module is a thin static-order front-end
over :mod:`repro.online`: requests are routed in batch (static routing on the
bare topology, exactly as before), replayed as a pure-arrival trace and
admitted by the incremental engine.  Selecting a wavelength that is free on
every fibre of the route is the same thing as selecting a colour unused by
every conflicting lightpath, so the blocking decisions are identical to the
historical per-fibre loop — the equivalence tests in ``tests/test_online.py``
assert this against a network-level reference.  For arrival/departure
dynamics (Poisson traffic, holding times, churn) use
:func:`repro.online.simulate_online` directly.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import List, Optional

from ..dipaths.requests import RequestFamily
from ..dipaths.routing import RoutingPolicy, route_all
from ..graphs.digraph import DiGraph
from ..online.events import replay_trace
from ..online.simulator import simulate_online

__all__ = ["AdmissionResult", "simulate_admission"]


@dataclass
class AdmissionResult:
    """Outcome of an online admission simulation.

    Attributes
    ----------
    accepted, blocked:
        Indices of accepted / blocked unit requests (in arrival order).
    wavelengths_available:
        The per-fibre wavelength budget ``W`` used for the run.
    wavelengths_used:
        Number of distinct wavelengths actually used.
    """

    accepted: List[int] = field(default_factory=list)
    blocked: List[int] = field(default_factory=list)
    wavelengths_available: int = 0
    wavelengths_used: int = 0

    @property
    def blocking_rate(self) -> float:
        """Fraction of unit requests that could not be provisioned."""
        total = len(self.accepted) + len(self.blocked)
        return len(self.blocked) / total if total else 0.0


def simulate_admission(graph: DiGraph, requests: RequestFamily,
                       wavelengths: int,
                       routing: RoutingPolicy = "shortest",
                       policy: Optional[str] = None,
                       first_fit: Optional[bool] = None) -> AdmissionResult:
    """Provision requests online with ``wavelengths`` channels per fibre.

    Each unit request is routed with the given policy, then assigned a
    wavelength that is free on every fibre of its route; if none exists the
    request is blocked.  The routing is computed on the bare topology
    (routes do not adapt to the current allocation), which matches the
    static-routing assumption of the paper.

    ``policy`` selects the wavelength policy by name — any of
    :data:`repro.online.assigner.POLICIES` (``first_fit``, ``least_used``,
    ``most_used``, ``random``); the default is ``"first_fit"``, the
    classical lowest-free-wavelength heuristic.

    .. deprecated:: PR 4
        The boolean ``first_fit`` parameter is deprecated.  It never
        toggled first-fit off/on cleanly: ``first_fit=False`` silently
        routed to the **least-used** policy (a PR 2 artefact).  The shim
        keeps that exact behaviour — ``True`` maps to
        ``policy="first_fit"``, ``False`` to ``policy="least_used"`` —
        and raises :class:`DeprecationWarning`; pass ``policy=`` instead.
    """
    if wavelengths < 1:
        raise ValueError("wavelengths must be >= 1")
    if first_fit is not None:
        if policy is not None:
            raise TypeError(
                "pass either policy= or the deprecated first_fit=, not both")
        warnings.warn(
            "simulate_admission(first_fit=...) is deprecated; use "
            "policy='first_fit' or policy='least_used' (first_fit=False "
            "always meant the least-used policy)",
            DeprecationWarning, stacklevel=2)
        policy = "first_fit" if first_fit else "least_used"
    elif policy is None:
        policy = "first_fit"
    family = route_all(graph, requests, policy=routing)
    online = simulate_online(
        graph, replay_trace(family), wavelengths, policy=policy,
        record_timeline=False)
    return AdmissionResult(accepted=online.accepted, blocked=online.blocked,
                           wavelengths_available=wavelengths,
                           wavelengths_used=online.wavelengths_used)
