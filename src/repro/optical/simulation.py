"""Admission simulation under a fixed wavelength budget.

A simple dynamic scenario on top of the combinatorial core: requests arrive
one at a time, each must be provisioned as a lightpath (route + wavelength)
using at most ``W`` wavelengths per fibre and without disturbing the already
provisioned lightpaths (no reconfiguration); requests that cannot be
provisioned are blocked.  The blocking rate as a function of ``W`` is the
operational meaning of the paper's result: on internal-cycle-free topologies,
``W`` equal to the (offline) load suffices to serve the whole family, whereas
on topologies with internal cycles the gap between load and wavelengths shows
up as avoidable blocking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..exceptions import RoutingError
from ..dipaths.dipath import Dipath
from ..dipaths.family import DipathFamily
from ..dipaths.requests import RequestFamily
from ..dipaths.routing import RoutingPolicy, route_all
from ..graphs.digraph import DiGraph
from .network import OpticalNetwork

__all__ = ["AdmissionResult", "simulate_admission"]


@dataclass
class AdmissionResult:
    """Outcome of an online admission simulation.

    Attributes
    ----------
    accepted, blocked:
        Indices of accepted / blocked unit requests (in arrival order).
    wavelengths_available:
        The per-fibre wavelength budget ``W`` used for the run.
    wavelengths_used:
        Number of distinct wavelengths actually used.
    """

    accepted: List[int] = field(default_factory=list)
    blocked: List[int] = field(default_factory=list)
    wavelengths_available: int = 0
    wavelengths_used: int = 0

    @property
    def blocking_rate(self) -> float:
        """Fraction of unit requests that could not be provisioned."""
        total = len(self.accepted) + len(self.blocked)
        return len(self.blocked) / total if total else 0.0


def simulate_admission(graph: DiGraph, requests: RequestFamily,
                       wavelengths: int,
                       routing: RoutingPolicy = "shortest",
                       first_fit: bool = True) -> AdmissionResult:
    """Provision requests online with ``wavelengths`` channels per fibre.

    Each unit request is routed with the given policy, then assigned the
    first wavelength (first-fit) that is free on every fibre of its route; if
    none exists the request is blocked.  The routing is computed on the bare
    topology (routes do not adapt to the current allocation), which matches
    the static-routing assumption of the paper.
    """
    if wavelengths < 1:
        raise ValueError("wavelengths must be >= 1")
    family = route_all(graph, requests, policy=routing)
    network = OpticalNetwork.from_digraph(graph, capacity=wavelengths)
    result = AdmissionResult(wavelengths_available=wavelengths)

    for idx, dipath in enumerate(family):
        chosen: Optional[int] = None
        for wavelength in range(wavelengths):
            if all(network.is_wavelength_free(arc, wavelength)
                   for arc in dipath.arcs()):
                chosen = wavelength
                break
            if not first_fit:
                continue
        if chosen is None:
            result.blocked.append(idx)
        else:
            network.provision(dipath, chosen, request_id=idx)
            result.accepted.append(idx)
    result.wavelengths_used = network.wavelengths_used()
    return result
