"""Admission simulation under a fixed wavelength budget.

A simple dynamic scenario on top of the combinatorial core: requests arrive
one at a time, each must be provisioned as a lightpath (route + wavelength)
using at most ``W`` wavelengths per fibre and without disturbing the already
provisioned lightpaths (no reconfiguration); requests that cannot be
provisioned are blocked.  The blocking rate as a function of ``W`` is the
operational meaning of the paper's result: on internal-cycle-free topologies,
``W`` equal to the (offline) load suffices to serve the whole family, whereas
on topologies with internal cycles the gap between load and wavelengths shows
up as avoidable blocking.

Since the online engine landed, this module is a thin static-order front-end
over :mod:`repro.online`: requests are routed in batch (static routing on the
bare topology, exactly as before), replayed as a pure-arrival trace and
admitted by the incremental engine.  Selecting a wavelength that is free on
every fibre of the route is the same thing as selecting a colour unused by
every conflicting lightpath, so the blocking decisions are identical to the
historical per-fibre loop — the equivalence tests in ``tests/test_online.py``
assert this against a network-level reference.  For arrival/departure
dynamics (Poisson traffic, holding times, churn) use
:func:`repro.online.simulate_online` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..dipaths.requests import RequestFamily
from ..dipaths.routing import RoutingPolicy, route_all
from ..graphs.digraph import DiGraph
from ..online.events import replay_trace
from ..online.simulator import simulate_online

__all__ = ["AdmissionResult", "simulate_admission"]


@dataclass
class AdmissionResult:
    """Outcome of an online admission simulation.

    Attributes
    ----------
    accepted, blocked:
        Indices of accepted / blocked unit requests (in arrival order).
    wavelengths_available:
        The per-fibre wavelength budget ``W`` used for the run.
    wavelengths_used:
        Number of distinct wavelengths actually used.
    """

    accepted: List[int] = field(default_factory=list)
    blocked: List[int] = field(default_factory=list)
    wavelengths_available: int = 0
    wavelengths_used: int = 0

    @property
    def blocking_rate(self) -> float:
        """Fraction of unit requests that could not be provisioned."""
        total = len(self.accepted) + len(self.blocked)
        return len(self.blocked) / total if total else 0.0


def simulate_admission(graph: DiGraph, requests: RequestFamily,
                       wavelengths: int,
                       routing: RoutingPolicy = "shortest",
                       first_fit: bool = True) -> AdmissionResult:
    """Provision requests online with ``wavelengths`` channels per fibre.

    Each unit request is routed with the given policy, then assigned a
    wavelength that is free on every fibre of its route; if none exists the
    request is blocked.  The routing is computed on the bare topology
    (routes do not adapt to the current allocation), which matches the
    static-routing assumption of the paper.

    ``first_fit=True`` assigns the lowest free wavelength (the classical
    heuristic); ``first_fit=False`` selects the **least-used** free
    wavelength instead, spreading lightpaths across the spectrum — see
    :mod:`repro.online.assigner` for the policy semantics (and for the
    ``most_used`` / ``random`` policies of the full engine).
    """
    if wavelengths < 1:
        raise ValueError("wavelengths must be >= 1")
    family = route_all(graph, requests, policy=routing)
    online = simulate_online(
        graph, replay_trace(family), wavelengths,
        policy="first_fit" if first_fit else "least_used",
        record_timeline=False)
    return AdmissionResult(accepted=online.accepted, blocked=online.blocked,
                           wavelengths_available=wavelengths,
                           wavelengths_used=online.wavelengths_used)
