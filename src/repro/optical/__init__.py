"""WDM optical-network substrate: network model, traffic, RWA pipeline."""

from .grooming import (
    GroomingResult,
    adm_count,
    groom_requests,
    max_requests_within_wavelengths,
)
from .network import FibreLink, Lightpath, OpticalNetwork
from .rwa import RWASolution, provision_solution, solve_rwa
from .simulation import AdmissionResult, simulate_admission
from .traffic import (
    all_to_all_traffic,
    hotspot_traffic,
    multicast_traffic,
    traffic_rng,
    uniform_random_traffic,
)

__all__ = [
    "AdmissionResult",
    "FibreLink",
    "GroomingResult",
    "Lightpath",
    "OpticalNetwork",
    "RWASolution",
    "adm_count",
    "all_to_all_traffic",
    "groom_requests",
    "hotspot_traffic",
    "max_requests_within_wavelengths",
    "multicast_traffic",
    "provision_solution",
    "simulate_admission",
    "solve_rwa",
    "traffic_rng",
    "uniform_random_traffic",
]
