"""End-to-end RWA (Routing and Wavelength Assignment) pipeline.

This glues the substrates together the way the paper's introduction describes
the engineering workflow:

1. route each request on the logical (virtual) topology — forced routing on
   UPP-DAGs, shortest-path or load-aware routing otherwise;
2. assign wavelengths to the resulting dipath family with the strongest
   applicable algorithm (Theorem 1 when the topology has no internal cycle,
   Theorem 6 for single-cycle UPP-DAGs, exact/DSATUR otherwise);
3. optionally provision the lightpaths on an :class:`OpticalNetwork`,
   respecting per-fibre capacities.

The headline consequence of the paper at this level: **on internal-cycle-free
logical topologies the number of wavelengths needed is exactly the maximum
fibre load**, so capacity planning reduces to load computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.load import load as _load
from ..core.wavelengths import (
    AssignmentMethod,
    WavelengthSolution,
    assign_wavelengths,
)
from ..dipaths.family import DipathFamily
from ..dipaths.requests import RequestFamily
from ..dipaths.routing import RoutingPolicy, route_all
from ..graphs.digraph import DiGraph
from .network import Lightpath, OpticalNetwork

__all__ = ["RWASolution", "solve_rwa", "provision_solution"]


@dataclass
class RWASolution:
    """The result of the full RWA pipeline.

    Attributes
    ----------
    family:
        The routed dipath family (one dipath per unit request, in request
        order).
    assignment:
        The wavelength assignment produced for the family.
    load:
        The routing load ``pi`` (max number of dipaths per fibre).
    num_wavelengths:
        Number of distinct wavelengths used (``== load`` whenever the logical
        topology has no internal cycle, by the Main Theorem).
    routing_policy, assignment_method:
        The strategies used for each stage.
    """

    family: DipathFamily
    assignment: WavelengthSolution
    load: int
    num_wavelengths: int
    routing_policy: str
    assignment_method: str

    @property
    def wavelength_of(self) -> Dict[int, int]:
        """Mapping ``request index -> wavelength``."""
        return dict(self.assignment.coloring)


def solve_rwa(graph: DiGraph, requests: RequestFamily,
              routing: RoutingPolicy = "shortest",
              assignment: AssignmentMethod = "auto") -> RWASolution:
    """Route ``requests`` on ``graph`` and assign wavelengths.

    Parameters
    ----------
    graph:
        The logical topology (a DAG for the paper's algorithms; any digraph
        for the heuristic paths).
    requests:
        The traffic matrix.
    routing:
        ``"unique"`` (UPP routing), ``"shortest"`` or ``"min-load"``.
    assignment:
        See :func:`repro.core.wavelengths.assign_wavelengths`.
    """
    family = route_all(graph, requests, policy=routing)
    solution = assign_wavelengths(graph, family, method=assignment)
    return RWASolution(
        family=family,
        assignment=solution,
        load=_load(graph, family),
        num_wavelengths=solution.num_wavelengths,
        routing_policy=routing,
        assignment_method=solution.method,
    )


def provision_solution(network: OpticalNetwork, solution: RWASolution
                       ) -> List[Lightpath]:
    """Provision every routed request of ``solution`` on ``network``.

    Raises
    ------
    CapacityError
        If some fibre does not have enough wavelength channels for the
        assignment (i.e. its capacity is smaller than the number of
        wavelengths the assignment uses on it).
    """
    lightpaths: List[Lightpath] = []
    for idx, dipath in enumerate(solution.family):
        wavelength = solution.assignment.coloring[idx]
        lightpaths.append(network.provision(dipath, wavelength, request_id=idx))
    return lightpaths
