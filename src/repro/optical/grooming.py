"""Traffic grooming accounting (ADM counting).

The paper grew out of grooming work on paths and rings (references [3, 4, 7]):
low-rate requests are *groomed* (multiplexed) onto wavelengths of capacity
``C`` (the grooming factor), and the figure of merit is the number of ADMs
(Add-Drop Multiplexers) — one per wavelength per node where that wavelength
is added or dropped.

The paper itself does not evaluate grooming; this module only provides the
standard accounting so the optical examples can report ADM counts and so the
"maximum number of requests satisfiable with ``w`` wavelengths" question from
the concluding remarks can be explored numerically.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Mapping, Set, Tuple

from .._typing import Vertex
from ..dipaths.family import DipathFamily

__all__ = [
    "adm_count",
    "groom_requests",
    "GroomingResult",
    "max_requests_within_wavelengths",
]


def adm_count(family: DipathFamily, coloring: Mapping[int, int]) -> int:
    """Number of ADMs used by a wavelength assignment.

    One ADM is needed at each endpoint of each (wavelength, node) pair where
    some dipath of that wavelength starts or ends; dipaths of the same
    wavelength sharing an endpoint share the ADM (the standard grooming
    saving).
    """
    adm_sites: Set[Tuple[int, Vertex]] = set()
    for idx, path in family.items():
        wavelength = coloring[idx]
        adm_sites.add((wavelength, path.source))
        adm_sites.add((wavelength, path.target))
    return len(adm_sites)


class GroomingResult:
    """Result of grooming unit requests onto wavelengths of capacity ``C``."""

    def __init__(self, grooming_factor: int) -> None:
        self.grooming_factor = grooming_factor
        #: wavelength -> list of family indices groomed onto it
        self.assignment: Dict[int, List[int]] = defaultdict(list)

    @property
    def num_wavelengths(self) -> int:
        return len(self.assignment)

    def wavelength_of(self, index: int) -> int:
        for wavelength, members in self.assignment.items():
            if index in members:
                return wavelength
        raise KeyError(index)


def groom_requests(family: DipathFamily, grooming_factor: int) -> GroomingResult:
    """Greedy grooming: pack dipaths onto wavelengths respecting capacity ``C``.

    A wavelength can carry up to ``grooming_factor`` dipaths through each arc
    (sub-wavelength multiplexing); dipaths are assigned first-fit.  With
    ``grooming_factor = 1`` this reduces to first-fit wavelength assignment.
    """
    if grooming_factor < 1:
        raise ValueError("grooming_factor must be >= 1")
    result = GroomingResult(grooming_factor)
    # per-wavelength per-arc used sub-capacity
    usage: Dict[int, Dict[Tuple[Vertex, Vertex], int]] = defaultdict(
        lambda: defaultdict(int))
    for idx, path in family.items():
        placed = False
        for wavelength in sorted(result.assignment):
            if all(usage[wavelength][arc] < grooming_factor for arc in path.arcs()):
                result.assignment[wavelength].append(idx)
                for arc in path.arcs():
                    usage[wavelength][arc] += 1
                placed = True
                break
        if not placed:
            wavelength = len(result.assignment)
            result.assignment[wavelength].append(idx)
            for arc in path.arcs():
                usage[wavelength][arc] += 1
    return result


def max_requests_within_wavelengths(family: DipathFamily, wavelengths: int
                                    ) -> List[int]:
    """Greedily select a maximum-size subfamily colourable with ``wavelengths``.

    This is the problem the paper's concluding remarks mention (choose, for a
    given ``w``, the maximum number of requests that can be satisfied).  By
    the Main Theorem, on internal-cycle-free DAGs a subfamily is feasible iff
    its load is at most ``wavelengths``; the greedy below adds dipaths
    (shortest first) while the load constraint holds, which is optimal on a
    single path (reference [4]) and a simple baseline elsewhere.

    Returns the list of selected family indices.
    """
    if wavelengths < 0:
        raise ValueError("wavelengths must be >= 0")
    order = sorted(family.active_indices(), key=lambda i: family[i].length)
    selected: List[int] = []
    load: Dict[Tuple[Vertex, Vertex], int] = defaultdict(int)
    for idx in order:
        path = family[idx]
        if all(load[arc] + 1 <= wavelengths for arc in path.arcs()):
            selected.append(idx)
            for arc in path.arcs():
                load[arc] += 1
    return sorted(selected)
