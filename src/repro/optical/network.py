"""WDM optical network model.

The paper's motivation (Section 1) is wavelength assignment in WDM optical
networks: requests are satisfied by lightpaths (a route plus a wavelength),
two lightpaths sharing a fibre (arc) must use different wavelengths, and the
scarce resource is the number of wavelengths per fibre.

:class:`OpticalNetwork` is a thin domain wrapper around the graph substrate:
a digraph of unidirectional fibres, each with a wavelength capacity, plus the
book-keeping of which wavelength of which fibre is allocated to which
lightpath.  The RWA pipeline in :mod:`repro.optical.rwa` produces
:class:`Lightpath` objects from requests using the paper's algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..exceptions import CapacityError, RoutingError
from .._typing import Arc, Vertex
from ..dipaths.dipath import Dipath
from ..graphs.dag import DAG
from ..graphs.digraph import DiGraph

__all__ = ["FibreLink", "Lightpath", "OpticalNetwork"]


@dataclass(frozen=True)
class FibreLink:
    """A unidirectional fibre between two nodes.

    Attributes
    ----------
    tail, head:
        Endpoints of the fibre (direction tail -> head).
    capacity:
        Number of wavelength channels available on the fibre (``None`` means
        unbounded, the purely combinatorial setting of the paper).
    length_km:
        Optional physical length, used only for reporting.
    """

    tail: Vertex
    head: Vertex
    capacity: Optional[int] = None
    length_km: float = 1.0

    @property
    def arc(self) -> Arc:
        """The fibre as an arc ``(tail, head)``."""
        return (self.tail, self.head)


@dataclass
class Lightpath:
    """A provisioned lightpath: a dipath plus an assigned wavelength."""

    dipath: Dipath
    wavelength: int
    request_id: Optional[int] = None

    @property
    def source(self) -> Vertex:
        return self.dipath.source

    @property
    def target(self) -> Vertex:
        return self.dipath.target

    def arcs(self):
        """The fibres traversed by the lightpath."""
        return self.dipath.arcs()


class OpticalNetwork:
    """A WDM network: a digraph of fibres with per-fibre wavelength capacity.

    Parameters
    ----------
    links:
        Iterable of :class:`FibreLink` or ``(tail, head)`` pairs (optionally
        ``(tail, head, capacity)``).
    default_capacity:
        Capacity used for links given as bare pairs (``None`` = unbounded).

    Examples
    --------
    >>> net = OpticalNetwork([("a", "b"), ("b", "c")], default_capacity=4)
    >>> net.graph.num_arcs
    2
    """

    def __init__(self, links: Iterable[FibreLink | Tuple] = (),
                 default_capacity: Optional[int] = None) -> None:
        self._links: Dict[Arc, FibreLink] = {}
        self._graph = DiGraph()
        self._allocations: Dict[Arc, Dict[int, int]] = {}
        self._lightpaths: List[Lightpath] = []
        self.default_capacity = default_capacity
        for link in links:
            self.add_link(link)

    # ------------------------------------------------------------------ #
    # topology
    # ------------------------------------------------------------------ #
    def add_link(self, link: FibreLink | Tuple) -> None:
        """Add a fibre to the network."""
        if not isinstance(link, FibreLink):
            if len(link) == 2:
                link = FibreLink(link[0], link[1], self.default_capacity)
            else:
                link = FibreLink(*link)
        self._links[link.arc] = link
        self._graph.add_arc(link.tail, link.head)
        self._allocations.setdefault(link.arc, {})

    @property
    def graph(self) -> DiGraph:
        """The underlying digraph of fibres."""
        return self._graph

    def as_dag(self) -> DAG:
        """The network as a validated DAG (raises if a directed cycle exists)."""
        return DAG.from_digraph(self._graph)

    def link(self, arc: Arc) -> FibreLink:
        """The fibre for a given arc."""
        return self._links[arc]

    def links(self) -> List[FibreLink]:
        """All fibres."""
        return list(self._links.values())

    @property
    def num_nodes(self) -> int:
        return self._graph.num_vertices

    @property
    def num_links(self) -> int:
        return self._graph.num_arcs

    # ------------------------------------------------------------------ #
    # wavelength allocation
    # ------------------------------------------------------------------ #
    def capacity_of(self, arc: Arc) -> Optional[int]:
        """Wavelength capacity of a fibre (``None`` = unbounded)."""
        return self._links[arc].capacity

    def wavelengths_in_use(self, arc: Arc) -> Set[int]:
        """Wavelengths currently allocated on a fibre."""
        return set(self._allocations.get(arc, {}))

    def is_wavelength_free(self, arc: Arc, wavelength: int) -> bool:
        """Whether a wavelength channel of a fibre is unallocated."""
        return wavelength not in self._allocations.get(arc, {})

    def provision(self, dipath: Dipath, wavelength: int,
                  request_id: Optional[int] = None) -> Lightpath:
        """Allocate ``wavelength`` on every fibre of ``dipath``.

        Raises
        ------
        RoutingError
            If the dipath uses an arc that is not a fibre of the network.
        CapacityError
            If the wavelength is already in use on some fibre of the dipath,
            or exceeds the fibre capacity.
        """
        for arc in dipath.arcs():
            if arc not in self._links:
                raise RoutingError(f"{arc!r} is not a fibre of the network")
            capacity = self._links[arc].capacity
            if capacity is not None and wavelength >= capacity:
                raise CapacityError(
                    f"wavelength {wavelength} exceeds capacity {capacity} of "
                    f"fibre {arc!r}")
            if not self.is_wavelength_free(arc, wavelength):
                raise CapacityError(
                    f"wavelength {wavelength} already in use on fibre {arc!r}")
        lightpath = Lightpath(dipath=dipath, wavelength=wavelength,
                              request_id=request_id)
        lp_index = len(self._lightpaths)
        self._lightpaths.append(lightpath)
        for arc in dipath.arcs():
            self._allocations[arc][wavelength] = lp_index
        return lightpath

    def release(self, lightpath: Lightpath) -> None:
        """Free the wavelength channels held by a lightpath."""
        try:
            lp_index = self._lightpaths.index(lightpath)
        except ValueError:
            raise RoutingError("lightpath is not provisioned on this network")
        for arc in lightpath.arcs():
            allocations = self._allocations.get(arc, {})
            if allocations.get(lightpath.wavelength) == lp_index:
                del allocations[lightpath.wavelength]
        self._lightpaths[lp_index] = None  # type: ignore[call-overload]

    def lightpaths(self) -> List[Lightpath]:
        """Currently provisioned lightpaths."""
        return [lp for lp in self._lightpaths if lp is not None]

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def utilization(self) -> Dict[Arc, int]:
        """Number of wavelengths in use per fibre (the realised load)."""
        return {arc: len(allocs) for arc, allocs in self._allocations.items()}

    def max_utilization(self) -> int:
        """Maximum number of wavelengths in use on any fibre."""
        utilization = self.utilization()
        return max(utilization.values()) if utilization else 0

    def wavelengths_used(self) -> int:
        """Number of distinct wavelengths used across the network."""
        used: Set[int] = set()
        for allocs in self._allocations.values():
            used.update(allocs)
        return len(used)

    def adm_count(self) -> int:
        """Number of Add-Drop Multiplexers: one per lightpath endpoint per wavelength.

        The standard SONET/WDM accounting (two ADMs per lightpath — one at
        each end); grooming (sharing ADMs between lightpaths of the same
        wavelength ending at the same node) is handled by
        :mod:`repro.optical.grooming`.
        """
        return 2 * len(self.lightpaths())

    def summary(self) -> Dict[str, float]:
        """A compact report of the network state."""
        return {
            "nodes": self.num_nodes,
            "fibres": self.num_links,
            "lightpaths": len(self.lightpaths()),
            "wavelengths_used": self.wavelengths_used(),
            "max_fibre_utilization": self.max_utilization(),
            "adm_count": self.adm_count(),
        }

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_digraph(cls, graph: DiGraph,
                     capacity: Optional[int] = None) -> "OpticalNetwork":
        """Build a network with one fibre per arc of ``graph``."""
        return cls(links=[(u, v) for u, v in graph.arcs()],
                   default_capacity=capacity)
