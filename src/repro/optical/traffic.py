"""Traffic generators for the optical substrate.

These produce :class:`~repro.dipaths.requests.RequestFamily` objects for the
standard traffic patterns the RWA literature (and the paper's introduction)
considers: all-to-all, multicast (single origin), uniform random, and
hotspot (a few nodes concentrate most of the demand).
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import random

from .._typing import Vertex
from ..dipaths.requests import Request, RequestFamily
from ..graphs.digraph import DiGraph
from ..graphs.traversal import transitive_closure_sets

__all__ = [
    "all_to_all_traffic",
    "multicast_traffic",
    "uniform_random_traffic",
    "hotspot_traffic",
    "traffic_rng",
]


def traffic_rng(seed: Union[int, random.Random, None]) -> random.Random:
    """The shared seeded RNG behind every randomised traffic generator.

    ``seed`` may be an int (or ``None``) as usual, or an existing
    ``random.Random``, which is passed through unchanged — that lets the
    online simulator thread one RNG through traffic generation and event
    sampling so a whole scenario replays from a single seed.  Equal integer
    seeds give identical request streams across runs and platforms
    (``random.Random`` is version-stable for the methods used here), which
    the reproducibility tests assert.
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def _connected_pairs(graph: DiGraph) -> List[Tuple[Vertex, Vertex]]:
    reach = transitive_closure_sets(graph)
    return [(x, y) for x, targets in reach.items()
            for y in sorted(targets, key=repr)]


def all_to_all_traffic(graph: DiGraph) -> RequestFamily:
    """One unit request per ordered pair of connected nodes."""
    return RequestFamily.all_to_all(graph, only_connected=True)


def multicast_traffic(graph: DiGraph, origin: Optional[Vertex] = None
                      ) -> RequestFamily:
    """All requests from a single origin (the paper's multicast instance)."""
    if origin is None:
        sources = graph.sources() or list(graph.vertices())
        origin = sources[0]
    return RequestFamily.multicast(graph, origin)


def uniform_random_traffic(graph: DiGraph, num_requests: int,
                           seed: Union[int, random.Random, None] = None,
                           max_multiplicity: int = 1) -> RequestFamily:
    """Uniformly random satisfiable requests.

    Each request picks a connected pair uniformly at random, with a uniform
    multiplicity in ``1..max_multiplicity``.  ``seed`` follows the
    :func:`traffic_rng` convention (int, ``None`` or a shared RNG).
    """
    rng = traffic_rng(seed)
    pairs = _connected_pairs(graph)
    if not pairs:
        raise ValueError("the network has no connected node pair")
    requests = RequestFamily()
    for _ in range(num_requests):
        x, y = rng.choice(pairs)
        mult = rng.randint(1, max_multiplicity) if max_multiplicity > 1 else 1
        requests.add(Request(x, y, mult))
    return requests


def hotspot_traffic(graph: DiGraph, num_requests: int,
                    num_hotspots: int = 1,
                    hotspot_fraction: float = 0.7,
                    seed: Union[int, random.Random, None] = None
                    ) -> RequestFamily:
    """Skewed traffic: a fraction of requests target a few hotspot nodes.

    ``hotspot_fraction`` of the requests have their destination drawn from
    ``num_hotspots`` randomly chosen nodes (weighted towards nodes with many
    ancestors so the requests are satisfiable); the rest are uniform.
    ``seed`` follows the :func:`traffic_rng` convention (int, ``None`` or a
    shared RNG).
    """
    rng = traffic_rng(seed)
    pairs = _connected_pairs(graph)
    if not pairs:
        raise ValueError("the network has no connected node pair")
    by_target: dict = {}
    for x, y in pairs:
        by_target.setdefault(y, []).append((x, y))
    # Prefer hotspots with many possible sources.
    candidates = sorted(by_target, key=lambda y: len(by_target[y]), reverse=True)
    hotspots = candidates[:max(1, num_hotspots)]
    requests = RequestFamily()
    for _ in range(num_requests):
        if rng.random() < hotspot_fraction:
            target = rng.choice(hotspots)
            requests.add(Request(*rng.choice(by_target[target])))
        else:
            requests.add(Request(*rng.choice(pairs)))
    return requests
