"""repro (dagrwa): routing and wavelength assignment on DAGs.

Reproduction of Bermond & Cosnard, *"Minimum number of wavelengths equals
load in a DAG without internal cycle"* (IPDPS 2007).

The public API re-exports the most commonly used objects; the full surface
lives in the subpackages:

* :mod:`repro.graphs`     — digraphs, DAGs, traversal;
* :mod:`repro.cycles`     — oriented and internal cycles;
* :mod:`repro.dipaths`    — dipaths, families, requests, routing;
* :mod:`repro.conflict`   — conflict graphs, cliques, independent sets;
* :mod:`repro.coloring`   — greedy / DSATUR / exact colouring, Kempe chains;
* :mod:`repro.upp`        — the Unique diPath Property and its consequences;
* :mod:`repro.core`       — the paper's results (load, Theorems 1, 2, 6,
  the Main Theorem characterisation, wavelength assignment front-end);
* :mod:`repro.generators` — paper gadgets and random instance generators;
* :mod:`repro.optical`    — the WDM optical-network motivation substrate;
* :mod:`repro.online`     — event-driven online RWA: dynamic families,
  incremental conflict maintenance, wavelength policies, Kempe repair;
* :mod:`repro.parallel`   — parallel experiment execution;
* :mod:`repro.analysis`   — experiment drivers, metrics and tables.

The conflict/colouring pipeline is bitset-backed: arcs are interned to
dense ids, conflict-graph adjacency lives in integer bitmasks, and the
clique/colouring algorithms run directly on them; under churn the masks
are patched per event instead of rebuilt (``repro.online``).  See
``PERFORMANCE.md`` at the repository root for the representation, its
read-only-view contracts, and the ``BENCH_conflict_engine.json`` /
``BENCH_online_engine.json`` scaling benchmarks.

Quickstart
----------
>>> from repro import DAG, DipathFamily, load, wavelength_number
>>> dag = DAG(arcs=[("a", "b"), ("b", "c"), ("b", "d")])
>>> family = DipathFamily([["a", "b", "c"], ["a", "b", "d"]], graph=dag)
>>> load(dag, family), wavelength_number(dag, family)
(2, 2)
"""

from __future__ import annotations

from .exceptions import (
    BoundViolationError,
    ColoringError,
    GraphError,
    InternalCycleError,
    InvalidColoringError,
    InvalidDipathError,
    NoInternalCycleError,
    NotADAGError,
    NotUPPError,
    ReproError,
    RoutingError,
)
from .graphs import DAG, DiGraph, as_dag, topological_order
from .cycles import (
    enumerate_internal_cycles,
    find_internal_cycle,
    has_internal_cycle,
    has_unique_internal_cycle,
    internal_cyclomatic_number,
)
from .dipaths import (
    Dipath,
    DipathFamily,
    Request,
    RequestFamily,
    route_all,
    route_min_load,
    route_shortest,
    route_unique,
)
from .conflict import (
    ConflictGraph,
    DynamicConflictGraph,
    build_conflict_graph,
    clique_number,
)
from .coloring import chromatic_number, dsatur_coloring, greedy_coloring
from .upp import is_upp_dag
from .core import (
    WavelengthSolution,
    assign_wavelengths,
    color_dipaths_theorem1,
    color_dipaths_theorem6,
    equality_certificate,
    load,
    min_wavelengths_equal_load,
    theorem6_bound,
    wavelength_number,
    witness_family_theorem2,
)

__version__ = "1.0.0"

__all__ = [
    # exceptions
    "BoundViolationError",
    "ColoringError",
    "GraphError",
    "InternalCycleError",
    "InvalidColoringError",
    "InvalidDipathError",
    "NoInternalCycleError",
    "NotADAGError",
    "NotUPPError",
    "ReproError",
    "RoutingError",
    # graphs & cycles
    "DAG",
    "DiGraph",
    "as_dag",
    "topological_order",
    "enumerate_internal_cycles",
    "find_internal_cycle",
    "has_internal_cycle",
    "has_unique_internal_cycle",
    "internal_cyclomatic_number",
    # dipaths & requests
    "Dipath",
    "DipathFamily",
    "Request",
    "RequestFamily",
    "route_all",
    "route_min_load",
    "route_shortest",
    "route_unique",
    # conflict & colouring
    "ConflictGraph",
    "DynamicConflictGraph",
    "build_conflict_graph",
    "clique_number",
    "chromatic_number",
    "dsatur_coloring",
    "greedy_coloring",
    # UPP
    "is_upp_dag",
    # core results
    "WavelengthSolution",
    "assign_wavelengths",
    "color_dipaths_theorem1",
    "color_dipaths_theorem6",
    "equality_certificate",
    "load",
    "min_wavelengths_equal_load",
    "theorem6_bound",
    "wavelength_number",
    "witness_family_theorem2",
    "__version__",
]
