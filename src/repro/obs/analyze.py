"""Offline analysis over structured trace records.

``TraceAnalyzer`` consumes the span/event records produced by
:class:`repro.obs.trace.Tracer` (from a sink, a record list or a JSONL
file) and computes:

* per-phase latency stats — nearest-rank p50/p99 over span durations
  (wall-clock when the trace recorded it, event-time width otherwise);
* time-windowed per-fibre occupancy and pairwise conflict density,
  reconstructed from the admit/depart records (the event stream is a
  link stream: each admitted lightpath occupies its arcs from admission
  to departure, and two lightpaths sharing an arc conflict);
* span waterfalls — an indented text rendering of the span tree over
  event time.

Lightpath routes are carried on admit records as the ``arcs`` tag: a
list of family arc ids (cheap to emit on the hot path).  Pass
``arc_names`` (``{arc_id: "u->v"}``) to label fibres in reports; the
engine exposes the mapping via ``OnlineEngine.arc_names()``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .trace import read_jsonl

__all__ = ["TraceAnalyzer", "percentile"]


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) over pre-sorted values."""
    if not sorted_values:
        raise ValueError("percentile of empty sequence")
    rank = -(-q * len(sorted_values) // 100)  # ceil(q/100 * N)
    rank = min(max(int(rank), 1), len(sorted_values))
    return sorted_values[rank - 1]


def _coerce_records(source) -> List[Dict[str, object]]:
    if hasattr(source, "records"):
        return list(source.records())
    return list(source)


class TraceAnalyzer:
    """Compute phase stats, fibre densities and waterfalls from a trace."""

    def __init__(self, source,
                 arc_names: Optional[Dict[int, str]] = None) -> None:
        self.records = _coerce_records(source)
        self.arc_names = dict(arc_names) if arc_names else {}
        self.spans = [r for r in self.records if r.get("kind") == "span"]
        self.events = [r for r in self.records if r.get("kind") == "event"]

    @classmethod
    def from_jsonl(cls, path: str,
                   arc_names: Optional[Dict[int, str]] = None
                   ) -> "TraceAnalyzer":
        with open(path, "r", encoding="utf-8") as fh:
            return cls(read_jsonl(fh), arc_names=arc_names)

    # ------------------------------------------------------------------
    # phase latency stats

    def phase_stats(self) -> Dict[str, Dict[str, float]]:
        """Per span-name count/total/mean/p50/p99 over span durations."""
        durations: Dict[str, List[float]] = defaultdict(list)
        for span in self.spans:
            if "wall" in span:
                durations[span["name"]].append(span["wall"])
            else:
                durations[span["name"]].append(span["t1"] - span["t0"])
        stats: Dict[str, Dict[str, float]] = {}
        for name in sorted(durations):
            values = sorted(durations[name])
            total = sum(values)
            stats[name] = {
                "count": len(values),
                "total": total,
                "mean": total / len(values),
                "p50": percentile(values, 50),
                "p99": percentile(values, 99),
                "max": values[-1],
            }
        return stats

    # ------------------------------------------------------------------
    # link-stream reconstruction

    def lightpath_intervals(self) -> List[Tuple[float, float, int, Tuple[int, ...]]]:
        """(start, end, rid, arcs) for every admitted lightpath.

        Admissions come from ``admit`` spans/events tagged
        ``outcome == "admitted"`` (single admits, batch members and
        restoration re-admits all emit one); departures from ``depart``
        records.  Paths still active at the end of the trace close at
        the trace horizon.
        """
        horizon = 0.0
        open_paths: Dict[int, Tuple[float, Tuple[int, ...]]] = {}
        intervals: List[Tuple[float, float, int, Tuple[int, ...]]] = []
        for rec in self.records:
            kind = rec.get("kind")
            if kind == "span":
                t = rec["t0"]
                horizon = max(horizon, rec["t1"])
            elif kind == "event":
                t = rec["t"]
                horizon = max(horizon, t)
            else:
                continue
            name = rec.get("name")
            tags = rec.get("tags", {})
            if name == "admit" and tags.get("outcome") == "admitted":
                open_paths[tags["rid"]] = (t, tuple(tags.get("arcs", ())))
            elif name == "depart" and tags.get("rid") in open_paths:
                start, arcs = open_paths.pop(tags["rid"])
                intervals.append((start, t, tags["rid"], arcs))
        for rid, (start, arcs) in sorted(open_paths.items()):
            intervals.append((start, horizon, rid, arcs))
        intervals.sort()
        return intervals

    def _arc_deltas(self) -> Tuple[Dict[int, List[Tuple[float, int]]], float]:
        deltas: Dict[int, List[Tuple[float, int]]] = defaultdict(list)
        horizon = 0.0
        for start, end, _rid, arcs in self.lightpath_intervals():
            horizon = max(horizon, end)
            for arc in arcs:
                deltas[arc].append((start, 1))
                deltas[arc].append((end, -1))
        for events in deltas.values():
            events.sort()
        return deltas, horizon

    def fibre_density(self, window: float, *,
                      mode: str = "occupancy") -> Dict[int, List[Dict[str, float]]]:
        """Time-windowed per-fibre density.

        ``mode="occupancy"`` integrates the number of concurrent
        lightpaths on each arc; ``mode="conflict"`` integrates the
        number of conflicting *pairs* (n choose 2) — the windowed
        pairwise conflict density of the link stream.  Returns, per arc,
        a list of ``{"t0", "t1", "density"}`` windows (time-weighted
        means; empty windows included so trends are visible).
        """
        if window <= 0:
            raise ValueError("window must be positive")
        if mode not in ("occupancy", "conflict"):
            raise ValueError(f"unknown mode {mode!r}")
        weight = ((lambda n: n) if mode == "occupancy"
                  else (lambda n: n * (n - 1) // 2))
        deltas, horizon = self._arc_deltas()
        out: Dict[int, List[Dict[str, float]]] = {}
        num_windows = max(1, int(horizon // window)
                          + (1 if horizon % window else 0))
        for arc in sorted(deltas):
            events = deltas[arc]
            windows = [0.0] * num_windows
            level = 0
            prev_t = 0.0
            for t, delta in events:
                # spread `weight(level)` over [prev_t, t) across windows
                self._accumulate(windows, window, prev_t, t, weight(level))
                level += delta
                prev_t = t
            if prev_t < horizon:
                self._accumulate(windows, window, prev_t, horizon, weight(level))
            out[arc] = [
                {"t0": k * window,
                 "t1": min((k + 1) * window, horizon) if horizon else (k + 1) * window,
                 "density": acc / window}
                for k, acc in enumerate(windows)
            ]
        return out

    @staticmethod
    def _accumulate(windows: List[float], window: float,
                    t0: float, t1: float, value: float) -> None:
        if value == 0 or t1 <= t0:
            return
        k = int(t0 // window)
        while t0 < t1 and k < len(windows):
            edge = (k + 1) * window
            span = min(t1, edge) - t0
            windows[k] += value * span
            t0 = min(t1, edge)
            k += 1

    def fibre_occupancy(self, window: float) -> Dict[int, List[Dict[str, float]]]:
        return self.fibre_density(window, mode="occupancy")

    def conflict_density(self, window: float) -> Dict[int, List[Dict[str, float]]]:
        return self.fibre_density(window, mode="conflict")

    def hottest_fibres(self, window: float, *, mode: str = "conflict",
                       top: int = 5) -> List[Tuple[int, float]]:
        """Arcs ranked by their peak windowed density."""
        ranked = []
        for arc, windows in self.fibre_density(window, mode=mode).items():
            peak = max((w["density"] for w in windows), default=0.0)
            ranked.append((arc, peak))
        ranked.sort(key=lambda item: (-item[1], item[0]))
        return ranked[:top]

    def arc_label(self, arc: int) -> str:
        return self.arc_names.get(arc, f"arc{arc}")

    # ------------------------------------------------------------------
    # waterfalls

    def waterfall(self, *, width: int = 48, names: Optional[Iterable[str]] = None,
                  limit: int = 80) -> str:
        """Text waterfall of the span tree over event time.

        Each line shows the span (indented by tree depth), its event-time
        interval and a bar positioned over the trace horizon.  ``names``
        restricts to specific span names (children of kept spans are
        kept); ``limit`` caps the number of rendered lines.
        """
        spans = self.spans
        if not spans:
            return "(no spans)"
        keep = set(names) if names is not None else None
        t_min = min(s["t0"] for s in spans)
        t_max = max(s["t1"] for s in spans)
        extent = (t_max - t_min) or 1.0
        by_id = {s["id"]: s for s in spans}
        depth_cache: Dict[int, int] = {}

        def depth(span) -> int:
            sid = span["id"]
            if sid in depth_cache:
                return depth_cache[sid]
            parent = span.get("parent")
            d = 0 if parent is None or parent not in by_id \
                else depth(by_id[parent]) + 1
            depth_cache[sid] = d
            return d

        def kept(span) -> bool:
            if keep is None:
                return True
            while span is not None:
                if span["name"] in keep:
                    return True
                parent = span.get("parent")
                span = by_id.get(parent) if parent is not None else None
            return False

        lines = [f"span waterfall  t=[{t_min:g}, {t_max:g}]"]
        count = 0
        for span in sorted(spans, key=lambda s: (s["t0"], s["id"])):
            if not kept(span):
                continue
            if count >= limit:
                lines.append(f"... ({len(spans) - count} more spans)")
                break
            count += 1
            lo = int((span["t0"] - t_min) / extent * (width - 1))
            hi = max(lo + 1, int((span["t1"] - t_min) / extent * (width - 1)) + 1)
            bar = " " * lo + "#" * (hi - lo) + " " * (width - hi)
            tags = span.get("tags", {})
            brief = ",".join(f"{k}={tags[k]}" for k in sorted(tags)
                             if k in ("rid", "outcome", "arc", "shard",
                                      "policy", "moves", "restored"))
            label = "  " * depth(span) + span["name"]
            lines.append(f"{label:<24.24} |{bar}| t=[{span['t0']:g},"
                         f"{span['t1']:g}] {brief}")
        return "\n".join(lines)
