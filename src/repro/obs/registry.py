"""Deterministic metrics registry for the online engine.

The registry holds three metric kinds — counters, gauges and fixed-bucket
histograms — keyed by dotted names (``engine.admitted``,
``shards.merges`` ...).  Two properties make it safe to wire into the
bit-identity contract of the online engine:

* **No wall-clock values.**  Every recorded value is derived from the
  event stream (event times, counts, sizes).  Wall-clock durations live
  only in trace records (see :mod:`repro.obs.trace`) and never enter the
  registry, so two runs of the same trace produce the same registry.

* **Deterministic serialization.**  :meth:`MetricsRegistry.snapshot`
  returns plain dicts and :meth:`MetricsRegistry.to_json` serializes them
  with sorted keys and compact separators, so identical runs produce
  byte-identical snapshots — this is asserted by the determinism tests.

Metrics split into two sections.  The *deterministic* section must be
identical for any two runs that made the same decisions, regardless of
code path (sharded vs unsharded, serial vs parallel batch fan-out).
Metrics registered with ``diagnostic=True`` land in a separate
``diagnostics`` section instead: they are still deterministic for a fixed
code path (same seed + same configuration ⇒ same values) but are allowed
to differ between equivalent code paths — e.g. `ShardTracker` merge
counts differ between the sharded and unsharded engines even when every
decision is identical.  Differential tests compare the deterministic
section across paths and the full snapshot within a path.

Hot-path cost: metric objects are plain ``__slots__`` holders handed out
once; incrementing is a cached-attribute ``.inc()`` with no dict lookup,
no locking and no string formatting.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Instrumented",
]


class Counter:
    """Monotone integer counter (resettable only through its setter)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def set(self, value: int) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """Last-write-wins numeric gauge."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def inc(self, n=1) -> None:
        self.value += n

    def dec(self, n=1) -> None:
        self.value -= n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Fixed-bucket-edge histogram over event-time quantities.

    ``edges`` are the *upper* bounds of the first ``len(edges)`` buckets;
    one overflow bucket catches everything above the last edge.  Edges
    are fixed at creation so two runs bucket identically.
    """

    __slots__ = ("name", "edges", "counts", "count", "total", "low", "high")

    def __init__(self, name: str, edges: Sequence[float]) -> None:
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ValueError(f"histogram edges must be strictly increasing: {edges!r}")
        self.name = name
        self.edges: Tuple[float, ...] = tuple(edges)
        self.counts: List[int] = [0] * (len(self.edges) + 1)
        self.count = 0
        self.total = 0.0
        self.low: Optional[float] = None
        self.high: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self.edges, value)] += 1
        self.count += 1
        self.total += value
        if self.low is None or value < self.low:
            self.low = value
        if self.high is None or value > self.high:
            self.high = value

    def as_dict(self) -> Dict[str, object]:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.low,
            "max": self.high,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, n={self.count})"


class MetricsRegistry:
    """Namespace of counters/gauges/histograms with deterministic snapshots."""

    __slots__ = ("_counters", "_gauges", "_histograms", "_diagnostic")

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._diagnostic: set = set()

    # -- registration (get-or-create; the returned object is cached by
    # callers so the dict lookup happens once per metric, not per event).

    def counter(self, name: str, *, diagnostic: bool = False) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        if diagnostic:
            self._diagnostic.add(name)
        return metric

    def gauge(self, name: str, *, diagnostic: bool = False) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        if diagnostic:
            self._diagnostic.add(name)
        return metric

    def histogram(self, name: str, edges: Sequence[float], *,
                  diagnostic: bool = False) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name, edges)
        elif tuple(edges) != metric.edges:
            raise ValueError(
                f"histogram {name!r} already registered with edges "
                f"{metric.edges!r}, requested {tuple(edges)!r}")
        if diagnostic:
            self._diagnostic.add(name)
        return metric

    # -- read side

    def names(self) -> List[str]:
        return sorted(set(self._counters) | set(self._gauges)
                      | set(self._histograms))

    def value(self, name: str):
        if name in self._counters:
            return self._counters[name].value
        if name in self._gauges:
            return self._gauges[name].value
        if name in self._histograms:
            return self._histograms[name].as_dict()
        raise KeyError(name)

    def snapshot(self, *, diagnostics: bool = True) -> Dict[str, object]:
        """Plain-dict snapshot, split into deterministic and diagnostic parts.

        The top-level ``counters``/``gauges``/``histograms`` sections hold
        only deterministic metrics; path-dependent metrics live under
        ``diagnostics`` and can be popped before cross-path comparisons.
        """
        deterministic: Dict[str, Dict[str, object]] = {
            "counters": {}, "gauges": {}, "histograms": {}}
        diag: Dict[str, Dict[str, object]] = {
            "counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(self._counters):
            target = diag if name in self._diagnostic else deterministic
            target["counters"][name] = self._counters[name].value
        for name in sorted(self._gauges):
            target = diag if name in self._diagnostic else deterministic
            target["gauges"][name] = self._gauges[name].value
        for name in sorted(self._histograms):
            target = diag if name in self._diagnostic else deterministic
            target["histograms"][name] = self._histograms[name].as_dict()
        out: Dict[str, object] = dict(deterministic)
        if diagnostics:
            out["diagnostics"] = diag
        return out

    def to_json(self, *, diagnostics: bool = True) -> str:
        """Byte-stable serialization (sorted keys, compact separators)."""
        return json.dumps(self.snapshot(diagnostics=diagnostics),
                          sort_keys=True, separators=(",", ":"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MetricsRegistry(counters={len(self._counters)}, "
                f"gauges={len(self._gauges)}, "
                f"histograms={len(self._histograms)})")


class Instrumented:
    """Mixin giving a component a shared (or private) metrics registry.

    Subclasses call ``self._obs_init("prefix", registry)`` during their
    ``__init__``; ``registry=None`` creates a private registry so every
    component stays usable standalone.  The mixin declares empty
    ``__slots__`` so slotted subclasses (``ShardTracker``,
    ``ArcColorIndex``) only need to add the two storage slots below.
    """

    __slots__ = ()

    _OBS_SLOTS = ("_obs_registry", "_obs_prefix")

    def _obs_init(self, prefix: str,
                  registry: Optional[MetricsRegistry] = None) -> None:
        self._obs_registry = registry if registry is not None else MetricsRegistry()
        self._obs_prefix = prefix

    @property
    def metrics(self) -> MetricsRegistry:
        return self._obs_registry

    def _obs_counter(self, name: str, *, diagnostic: bool = False) -> Counter:
        return self._obs_registry.counter(
            f"{self._obs_prefix}.{name}", diagnostic=diagnostic)

    def _obs_gauge(self, name: str, *, diagnostic: bool = False) -> Gauge:
        return self._obs_registry.gauge(
            f"{self._obs_prefix}.{name}", diagnostic=diagnostic)

    def _obs_histogram(self, name: str, edges: Iterable[float], *,
                       diagnostic: bool = False) -> Histogram:
        return self._obs_registry.histogram(
            f"{self._obs_prefix}.{name}", tuple(edges), diagnostic=diagnostic)
