"""Unified observability layer: metrics, tracing and profiling.

Three cooperating pieces, all deterministic with respect to the engine's
decision stream:

* :mod:`repro.obs.registry` — ``MetricsRegistry`` + the ``Instrumented``
  mixin: counters, gauges and fixed-bucket event-time histograms that
  every online component publishes into, with byte-stable snapshots.
* :mod:`repro.obs.trace` — ``Tracer`` with nested spans over the
  event-time clock, opt-in wall-clock durations, and ring-buffer /
  JSONL / list sinks emitting decision-journal-compatible JSONL.
* :mod:`repro.obs.analyze` — ``TraceAnalyzer``: per-phase p50/p99,
  time-windowed per-fibre occupancy/conflict density, span waterfalls.
* :mod:`repro.obs.profiling` — ``SpanProfiler``: cProfile or timing
  per span category, surfaced by ``bench_report.py --profile``.

The hard contract (enforced by ``tests/test_obs_determinism.py`` and the
differential sweeps): enabling any of this changes no engine decision
and no ``engine_fingerprint`` bit.
"""

from .registry import Counter, Gauge, Histogram, Instrumented, MetricsRegistry
from .trace import (
    JsonlSink,
    ListSink,
    NullSink,
    RingBufferSink,
    Span,
    Tracer,
    dumps_record,
    read_jsonl,
)
from .analyze import TraceAnalyzer, percentile
from .profiling import (
    SpanProfiler,
    clear_default_profile,
    get_default_profile,
    set_default_profile,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Instrumented",
    "MetricsRegistry",
    "JsonlSink",
    "ListSink",
    "NullSink",
    "RingBufferSink",
    "Span",
    "Tracer",
    "dumps_record",
    "read_jsonl",
    "TraceAnalyzer",
    "percentile",
    "SpanProfiler",
    "clear_default_profile",
    "get_default_profile",
    "set_default_profile",
]
