"""Per-span-category profiling hooks.

``SpanProfiler`` receives enter/exit callbacks from a
:class:`repro.obs.trace.Tracer` and attributes cost to span *categories*
(span names: ``admit``, ``defrag``, ``restore`` ...) rather than to a
whole benchmark suite.  Two engines:

* ``engine="timer"`` — a ``perf_counter_ns`` accumulator per category:
  near-zero overhead, reports inclusive wall time and call counts;
* ``engine="cprofile"`` — one ``cProfile.Profile`` per category.
  cProfile cannot nest, so on every span transition the profiler of the
  outer category is disabled and the inner one enabled; each category's
  profile therefore covers its *exclusive* time (self time without
  nested spans).

``bench_report.py --profile`` installs a module-level default profiler
(:func:`set_default_profile`); engines built while it is set pick it up
automatically, so suites get per-span attribution without plumbing a
profiler through every constructor.  The profiler only ever *observes*
the span stream — it writes nothing into the metrics registry, keeping
the bit-identity contract intact.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time as _time
from typing import Dict, List, Optional

__all__ = [
    "SpanProfiler",
    "set_default_profile",
    "get_default_profile",
    "clear_default_profile",
]


class _TimerState:
    __slots__ = ("calls", "total_ns", "_started")

    def __init__(self) -> None:
        self.calls = 0
        self.total_ns = 0
        self._started = 0


class SpanProfiler:
    """Attribute profile cost to span categories via tracer callbacks."""

    def __init__(self, engine: str = "timer") -> None:
        if engine not in ("timer", "cprofile"):
            raise ValueError(f"unknown profiler engine {engine!r}")
        self.engine = engine
        self._stack: List[str] = []
        self._timers: Dict[str, _TimerState] = {}
        self._profiles: Dict[str, cProfile.Profile] = {}

    # -- tracer callbacks ------------------------------------------------

    def enter(self, category: str) -> None:
        if self.engine == "cprofile" and self._stack:
            self._profiles[self._stack[-1]].disable()
        self._stack.append(category)
        if self.engine == "timer":
            state = self._timers.get(category)
            if state is None:
                state = self._timers[category] = _TimerState()
            state.calls += 1
            state._started = _time.perf_counter_ns()
        else:
            profile = self._profiles.get(category)
            if profile is None:
                profile = self._profiles[category] = cProfile.Profile()
            state = self._timers.get(category)
            if state is None:
                state = self._timers[category] = _TimerState()
            state.calls += 1
            state._started = _time.perf_counter_ns()
            profile.enable()

    def exit(self, category: str) -> None:
        if not self._stack or self._stack[-1] != category:
            # unbalanced exit (span error path) — resynchronise
            if category in self._stack:
                while self._stack and self._stack[-1] != category:
                    self._leave_top()
            else:
                return
        self._leave_top()
        if self.engine == "cprofile" and self._stack:
            self._profiles[self._stack[-1]].enable()

    def _leave_top(self) -> None:
        category = self._stack.pop()
        state = self._timers[category]
        state.total_ns += _time.perf_counter_ns() - state._started
        if self.engine == "cprofile":
            self._profiles[category].disable()

    # -- reporting -------------------------------------------------------

    def categories(self) -> List[str]:
        return sorted(self._timers)

    def stats(self) -> Dict[str, Dict[str, float]]:
        """Per-category call counts and inclusive wall seconds."""
        return {
            name: {"calls": state.calls,
                   "total_s": state.total_ns / 1e9,
                   "mean_us": (state.total_ns / state.calls / 1e3)
                   if state.calls else 0.0}
            for name, state in sorted(self._timers.items())
        }

    def report(self, *, top: int = 10) -> str:
        """Human-readable per-category report.

        For the cProfile engine, appends each category's top functions
        by cumulative time (exclusive of nested spans).
        """
        lines = [f"{'span':<16} {'calls':>8} {'total s':>10} {'mean us':>10}"]
        for name, row in self.stats().items():
            lines.append(f"{name:<16} {row['calls']:>8} "
                         f"{row['total_s']:>10.4f} {row['mean_us']:>10.1f}")
        if self.engine == "cprofile":
            for name in self.categories():
                profile = self._profiles.get(name)
                if profile is None:
                    continue
                buffer = io.StringIO()
                stats = pstats.Stats(profile, stream=buffer)
                stats.sort_stats("cumulative").print_stats(top)
                lines.append("")
                lines.append(f"--- span '{name}' top {top} by cumulative ---")
                lines.append(buffer.getvalue().rstrip())
        return "\n".join(lines)


_DEFAULT_PROFILE: Optional[SpanProfiler] = None


def set_default_profile(profiler: Optional[SpanProfiler]) -> None:
    """Install a process-wide default profiler picked up by new engines."""
    global _DEFAULT_PROFILE
    _DEFAULT_PROFILE = profiler


def get_default_profile() -> Optional[SpanProfiler]:
    return _DEFAULT_PROFILE


def clear_default_profile() -> None:
    set_default_profile(None)
