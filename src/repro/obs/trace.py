"""Structured span tracer for the online engine.

Spans are nested intervals over the *event-time* clock driven by the
simulator (``Tracer.advance``), with an opt-in wall-clock duration for
profiling runs.  Each record is a plain dict:

``{"kind": "span", "id": 7, "parent": 3, "name": "admit",
   "t0": 12.5, "t1": 12.5, "tags": {"rid": 41, "outcome": "admitted",
   "color": 2, "arcs": [0, 4], "shard": 0}}``

plus ``"wall": <seconds>`` when the tracer was built with
``wall_clock=True``.  Point events use ``kind="event"`` with a single
``"t"``.  Serialized as JSONL with sorted keys and compact separators,
trace records interleave cleanly with the ``DurableEngine`` decision
journal (same one-object-per-line framing, disjoint ``kind`` values from
the journal's ``type`` field).

Determinism contract: constructing spans must never read engine state
beyond what the caller tags explicitly, and nothing recorded here feeds
back into admission decisions — the tracer is write-only from the
engine's point of view.  Wall-clock readings go only into trace output,
never into the metrics registry.
"""

from __future__ import annotations

import json
import time as _time
from collections import deque
from typing import Dict, Iterable, List, Optional, Union

__all__ = [
    "Span",
    "Tracer",
    "ListSink",
    "RingBufferSink",
    "JsonlSink",
    "NullSink",
    "dumps_record",
]


def dumps_record(record: Dict[str, object]) -> str:
    """Journal-compatible serialization: compact, sorted, one line."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class NullSink:
    """Discards records; used when only profiling hooks are wanted."""

    __slots__ = ()

    def emit(self, record: Dict[str, object]) -> None:
        pass

    def records(self) -> List[Dict[str, object]]:
        return []


class ListSink:
    """Unbounded in-memory sink (tests, short traces)."""

    __slots__ = ("_records",)

    def __init__(self) -> None:
        self._records: List[Dict[str, object]] = []

    def emit(self, record: Dict[str, object]) -> None:
        self._records.append(record)

    def records(self) -> List[Dict[str, object]]:
        return list(self._records)


class RingBufferSink:
    """Bounded always-on sink: keeps the newest ``capacity`` records.

    ``dropped`` counts evictions so consumers can tell a truncated trace
    from a complete one.
    """

    __slots__ = ("_ring", "dropped")

    def __init__(self, capacity: int = 8192) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._ring: deque = deque(maxlen=capacity)
        self.dropped = 0

    def emit(self, record: Dict[str, object]) -> None:
        ring = self._ring
        if len(ring) == ring.maxlen:
            self.dropped += 1
        ring.append(record)

    def records(self) -> List[Dict[str, object]]:
        return list(self._ring)


class JsonlSink:
    """Streams records to a JSONL file (or any text handle).

    Writes are buffered by the underlying handle, so a short run that
    never fills the buffer loses its trailing records unless the sink is
    closed: call :meth:`close` (or use the sink — or its owning
    :class:`Tracer` — as a context manager) when the trace is done.
    ``closed`` tells consumers whether the records are durable yet.
    """

    __slots__ = ("_fh", "_owns", "emitted", "closed")

    def __init__(self, target: Union[str, "IO[str]"]) -> None:
        if isinstance(target, (str, bytes)):
            self._fh = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self._fh = target
            self._owns = False
        self.emitted = 0
        self.closed = False

    def emit(self, record: Dict[str, object]) -> None:
        self._fh.write(dumps_record(record))
        self._fh.write("\n")
        self.emitted += 1

    def flush(self) -> None:
        """Push buffered records to the handle (and through it, the OS)."""
        if not self.closed:
            self._fh.flush()

    def close(self) -> None:
        """Flush, then close an owned handle.  Idempotent.

        A borrowed handle (the caller passed an open file object) is
        flushed but left open — its lifetime belongs to the caller.
        """
        if self.closed:
            return
        self._fh.flush()
        if self._owns:
            self._fh.close()
        self.closed = True

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class Span:
    """Context-manager handle for one traced interval.

    ``tags`` may be mutated while the span is open (the engine fills in
    the outcome after the decision is made); the record is emitted on
    exit.
    """

    __slots__ = ("_tracer", "name", "tags", "id", "parent", "t0", "_wall0")

    def __init__(self, tracer: "Tracer", name: str,
                 tags: Dict[str, object]) -> None:
        self._tracer = tracer
        self.name = name
        self.tags = tags
        self.id = -1
        self.parent: Optional[int] = None
        self.t0 = 0.0
        self._wall0 = 0

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self.id = tracer._next_id
        tracer._next_id += 1
        stack = tracer._stack
        self.parent = stack[-1].id if stack else None
        self.t0 = tracer.now
        stack.append(self)
        profiler = tracer.profiler
        if profiler is not None:
            profiler.enter(self.name)
        if tracer.wall_clock:
            self._wall0 = _time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        tracer = self._tracer
        record: Dict[str, object] = {
            "kind": "span",
            "id": self.id,
            "parent": self.parent,
            "name": self.name,
            "t0": self.t0,
            "t1": tracer.now,
            "tags": self.tags,
        }
        if tracer.wall_clock:
            record["wall"] = (_time.perf_counter_ns() - self._wall0) / 1e9
        if exc_type is not None:
            self.tags["error"] = exc_type.__name__
        profiler = tracer.profiler
        if profiler is not None:
            profiler.exit(self.name)
        tracer._stack.pop()
        tracer.sink.emit(record)


class Tracer:
    """Nested span tracer over an externally-advanced event-time clock.

    The simulator calls :meth:`advance` as it consumes trace events; the
    engine opens spans around admit/admit_batch/depart/defrag and the
    fault/recovery paths.  ``wall_clock=True`` additionally stamps each
    span with its wall duration (for profiling; never fed back into the
    metrics registry).  A :class:`repro.obs.profiling.SpanProfiler` can
    be attached to receive enter/exit callbacks per span category.
    """

    __slots__ = ("sink", "wall_clock", "now", "profiler", "_stack",
                 "_next_id")

    def __init__(self, sink=None, *, wall_clock: bool = False,
                 profiler=None) -> None:
        self.sink = sink if sink is not None else RingBufferSink()
        self.wall_clock = wall_clock
        self.now = 0.0
        self.profiler = profiler
        self._stack: List[Span] = []
        self._next_id = 0

    def advance(self, t: float) -> None:
        self.now = t

    def span(self, name: str, **tags) -> Span:
        return Span(self, name, tags)

    def emit_span(self, name: str, t0: float,
                  tags: Dict[str, object]) -> None:
        """Emit an already-closed flat span record (hot-path helper).

        Identical record shape to an immediately-exited :meth:`span`
        with no children, minus the context-manager machinery.  The
        engine's per-request paths use it when no profiler and no wall
        clock are attached; anything emitted *during* the spanned work
        is parented under the enclosing open span, not this one.
        """
        nid = self._next_id
        self._next_id = nid + 1
        stack = self._stack
        self.sink.emit({
            "kind": "span",
            "id": nid,
            "parent": stack[-1].id if stack else None,
            "name": name,
            "t0": t0,
            "t1": self.now,
            "tags": tags,
        })

    def event(self, name: str, **tags) -> None:
        """Emit a point event at the current event time."""
        stack = self._stack
        record: Dict[str, object] = {
            "kind": "event",
            "id": self._next_id,
            "parent": stack[-1].id if stack else None,
            "name": name,
            "t": self.now,
            "tags": tags,
        }
        self._next_id += 1
        self.sink.emit(record)

    def records(self) -> List[Dict[str, object]]:
        return self.sink.records()

    def attach_profiler(self, profiler) -> None:
        self.profiler = profiler

    def close(self) -> None:
        """Flush and close the sink, if it supports closing.

        File-backed sinks (:class:`JsonlSink`) buffer their writes, so a
        tracer abandoned without closing can lose the trailing span
        records of a short run.  In-memory sinks have no ``close`` and
        are unaffected.  Idempotent; the tracer itself stays usable only
        for in-memory sinks afterwards.
        """
        close = getattr(self.sink, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_jsonl(lines: Iterable[str]) -> List[Dict[str, object]]:
    """Parse JSONL trace lines, skipping journal records (no ``kind``)."""
    records = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        obj = json.loads(line)
        if isinstance(obj, dict) and obj.get("kind") in ("span", "event"):
            records.append(obj)
    return records
