"""Instance generators: paper gadgets, random DAGs, trees and dipath families."""

from .families import (
    all_to_all_family,
    family_with_target_load,
    multicast_family,
    random_request_family,
    random_walk_family,
)
from .gadgets import (
    figure3_dag,
    figure3_family,
    figure3_instance,
    figure5_family,
    figure5_instance,
    havet_dag,
    havet_family,
    havet_instance,
    theorem2_gadget,
)
from .pathological import (
    pathological_dag,
    pathological_family,
    pathological_instance,
)
from .regions import (
    multi_region_topology,
    multi_region_traffic,
    region_of_vertex,
)
from .random_dags import (
    random_dag,
    random_dag_with_internal_cycle,
    random_internal_cycle_free_dag,
    random_layered_dag,
    random_upp_one_cycle_dag,
)
from .trees import (
    caterpillar,
    in_tree,
    out_path,
    out_tree,
    random_out_tree,
    spider,
)

__all__ = [
    "all_to_all_family",
    "caterpillar",
    "family_with_target_load",
    "figure3_dag",
    "figure3_family",
    "figure3_instance",
    "figure5_family",
    "figure5_instance",
    "havet_dag",
    "havet_family",
    "havet_instance",
    "in_tree",
    "multi_region_topology",
    "multi_region_traffic",
    "multicast_family",
    "out_path",
    "out_tree",
    "pathological_dag",
    "pathological_family",
    "pathological_instance",
    "random_dag",
    "random_dag_with_internal_cycle",
    "random_internal_cycle_free_dag",
    "random_layered_dag",
    "random_out_tree",
    "random_request_family",
    "random_upp_one_cycle_dag",
    "random_walk_family",
    "region_of_vertex",
    "spider",
    "theorem2_gadget",
]
