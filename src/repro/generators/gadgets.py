"""The paper's worked examples and gadget constructions.

* :func:`figure3_instance` — the smallest motivating example (Section 2,
  Figure 3): a DAG with one internal cycle and 5 dipaths with ``pi = 2`` and
  ``w = 3`` (conflict graph ``C_5``);
* :func:`theorem2_gadget` / :func:`figure5_family` — the Theorem 2 / Figure 5
  construction parameterised by ``k``: an internal cycle with ``2k`` switch
  vertices and a family of ``2k + 1`` dipaths whose conflict graph is the odd
  cycle ``C_{2k+1}`` (``pi = 2``, ``w = 3``);
* :func:`havet_instance` — the Theorem 7 / Figure 9 example due to F. Havet:
  a UPP-DAG with one internal cycle and 8 dipaths whose conflict graph is the
  Wagner graph (``C_8`` plus antipodal chords), reaching the
  ``ceil(4*pi/3)`` bound once replicated.
"""

from __future__ import annotations

from typing import Tuple

from ..dipaths.dipath import Dipath
from ..dipaths.family import DipathFamily
from ..graphs.dag import DAG

__all__ = [
    "figure3_dag",
    "figure3_family",
    "figure3_instance",
    "theorem2_gadget",
    "figure5_family",
    "figure5_instance",
    "havet_dag",
    "havet_family",
    "havet_instance",
]


# --------------------------------------------------------------------------- #
# Figure 3
# --------------------------------------------------------------------------- #
def figure3_dag() -> DAG:
    """The Figure 3 DAG: a 5-vertex chain with a second route from ``b`` to ``d``.

    Vertices ``a, b, c, d, e`` form the chain ``a->b->c->d->e``; a second
    dipath ``b->m->d`` (the figure's "second dipath from b1 to d1", realised
    with an intermediate vertex ``m`` to keep the digraph simple) closes the
    internal cycle ``b, c, d, m``.
    """
    return DAG(arcs=[
        ("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"),
        ("b", "m"), ("m", "d"),
    ])


def figure3_family(dag: DAG | None = None) -> DipathFamily:
    """The five dipaths of Figure 3 (conflict graph ``C_5``, ``pi=2``, ``w=3``)."""
    dag = dag or figure3_dag()
    return DipathFamily([
        ["a", "b", "c"],
        ["b", "c", "d"],
        ["c", "d", "e"],
        ["b", "m", "d", "e"],
        ["a", "b", "m", "d"],
    ], graph=dag)


def figure3_instance() -> Tuple[DAG, DipathFamily]:
    """The Figure 3 DAG together with its 5-dipath family."""
    dag = figure3_dag()
    return dag, figure3_family(dag)


# --------------------------------------------------------------------------- #
# Theorem 2 / Figure 5
# --------------------------------------------------------------------------- #
def theorem2_gadget(k: int) -> DAG:
    """The Figure 5 DAG: an internal cycle with ``k`` local sources/sinks.

    Vertices ``a_i, b_i, c_i, d_i`` for ``i = 0..k-1`` with arcs
    ``a_i -> b_i``, ``b_i -> c_i``, ``b_{i+1} -> c_i`` (indices mod ``k``) and
    ``c_i -> d_i``.  The ``b_i``/``c_i`` form the unique internal cycle; the
    graph is a UPP-DAG (so it also serves as a Theorem 6 test bed).

    Requires ``k >= 2`` (with ``k = 1`` the two parallel ``b -> c`` segments
    would collapse onto the same arc in a simple digraph).
    """
    if k < 2:
        raise ValueError("k must be >= 2")
    dag = DAG(validate=False)
    for i in range(k):
        a, b, c, d = ("a", i), ("b", i), ("c", i), ("d", i)
        dag.add_arc(a, b)
        dag.add_arc(b, c)
        dag.add_arc(c, d)
    for i in range(k):
        nxt = (i + 1) % k
        dag.add_arc(("b", nxt), ("c", i))
    dag.validate()
    return dag


def figure5_family(k: int, dag: DAG | None = None) -> DipathFamily:
    """The ``2k + 1`` dipaths of the Theorem 2 proof on :func:`theorem2_gadget`.

    The conflict graph is the odd cycle ``C_{2k+1}``; the load is 2 and the
    wavelength number 3.
    """
    dag = dag or theorem2_gadget(k)
    fam = DipathFamily(graph=dag)
    # Split first right segment: a_0 b_0 c_0   and   b_0 c_0 d_0.
    fam.add(Dipath([("a", 0), ("b", 0), ("c", 0)]))
    fam.add(Dipath([("b", 0), ("c", 0), ("d", 0)]))
    # Left-going dipaths a_{i+1} b_{i+1} c_i d_i for every i.
    for i in range(k):
        nxt = (i + 1) % k
        fam.add(Dipath([("a", nxt), ("b", nxt), ("c", i), ("d", i)]))
    # Remaining right-going dipaths a_i b_i c_i d_i for i >= 1.
    for i in range(1, k):
        fam.add(Dipath([("a", i), ("b", i), ("c", i), ("d", i)]))
    return fam


def figure5_instance(k: int) -> Tuple[DAG, DipathFamily]:
    """The Theorem 2 gadget together with its ``2k+1``-dipath family."""
    dag = theorem2_gadget(k)
    return dag, figure5_family(k, dag)


# --------------------------------------------------------------------------- #
# Theorem 7 / Figure 9 (Havet's example)
# --------------------------------------------------------------------------- #
def havet_dag() -> DAG:
    """The Figure 9 UPP-DAG (one internal cycle on ``b1, c1, b2, c2``)."""
    arcs = [
        ("a1", "b1"), ("a1p", "b1"), ("a2", "b2"), ("a2p", "b2"),
        ("b1", "c1"), ("b1", "c2"), ("b2", "c1"), ("b2", "c2"),
        ("c1", "d1"), ("c1", "d1p"), ("c2", "d2"), ("c2", "d2p"),
    ]
    return DAG(arcs=arcs)


def havet_family(copies: int = 1, dag: DAG | None = None) -> DipathFamily:
    """The 8 dipaths of Figure 9, optionally replicated ``copies`` times.

    The conflict graph of the base family is the Wagner graph (``C_8`` plus
    antipodal chords): ``pi = 2``, ``w = 3`` and the independence number is 3.
    Replicating every dipath ``h`` times gives ``pi = 2h`` and
    ``w = ceil(8h/3)``, reaching the Theorem 6 bound (Theorem 7).
    """
    dag = dag or havet_dag()
    base = DipathFamily([
        ["a1", "b1", "c1", "d1"],
        ["a1p", "b1", "c1", "d1p"],
        ["a1", "b1", "c2", "d2"],
        ["a1p", "b1", "c2", "d2p"],
        ["a2", "b2", "c2", "d2"],
        ["a2p", "b2", "c2", "d2p"],
        ["a2", "b2", "c1", "d1p"],
        ["a2p", "b2", "c1", "d1"],
    ], graph=dag)
    if copies == 1:
        return base
    return base.replicate(copies)


def havet_instance(copies: int = 1) -> Tuple[DAG, DipathFamily]:
    """The Figure 9 DAG together with its (possibly replicated) family."""
    dag = havet_dag()
    return dag, havet_family(copies, dag)
