"""Random dipath-family generators.

Given a host DAG, these produce the traffic side of an instance: random
routed requests, random-walk dipaths, all-to-all instances on UPP-DAGs /
rooted trees, and families engineered to hit a target load.
"""

from __future__ import annotations

from typing import List, Optional

import random

from ..dipaths.dipath import Dipath
from ..dipaths.family import DipathFamily
from ..dipaths.requests import RequestFamily
from ..dipaths.routing import route_unique
from ..graphs.digraph import DiGraph

__all__ = [
    "random_walk_family",
    "random_request_family",
    "all_to_all_family",
    "multicast_family",
    "family_with_target_load",
]


def random_walk_family(graph: DiGraph, num_paths: int,
                       seed: Optional[int] = None,
                       min_length: int = 1,
                       max_length: Optional[int] = None) -> DipathFamily:
    """Random dipaths obtained by forward random walks in the DAG.

    Each dipath starts at a random vertex with positive out-degree and follows
    uniformly random outgoing arcs until it reaches a sink or ``max_length``
    arcs.  Walks shorter than ``min_length`` arcs are retried (a bounded
    number of times) and finally accepted as-is to guarantee termination.
    """
    rng = random.Random(seed)
    starts = [v for v in graph.vertices() if graph.out_degree(v) > 0]
    if not starts:
        raise ValueError("the digraph has no arcs")
    family = DipathFamily(graph=graph)
    for _ in range(num_paths):
        best: List = []
        for _attempt in range(20):
            v = rng.choice(starts)
            walk = [v]
            while graph.out_degree(walk[-1]) > 0:
                if max_length is not None and len(walk) - 1 >= max_length:
                    break
                walk.append(rng.choice(sorted(graph.successors(walk[-1]), key=repr)))
            if len(walk) - 1 >= min_length:
                best = walk
                break
            if len(walk) > len(best):
                best = walk
        if len(best) >= 2:
            family.add(Dipath(best))
    return family


def random_request_family(graph: DiGraph, num_requests: int,
                          seed: Optional[int] = None) -> RequestFamily:
    """Random satisfiable requests (pairs connected by at least one dipath)."""
    from ..graphs.traversal import transitive_closure_sets

    rng = random.Random(seed)
    reach = transitive_closure_sets(graph)
    pool = [(x, y) for x, targets in reach.items() for y in sorted(targets, key=repr)]
    if not pool:
        raise ValueError("the digraph has no connected pair of vertices")
    requests = RequestFamily()
    for _ in range(num_requests):
        requests.add(rng.choice(pool))
    return requests


def all_to_all_family(graph: DiGraph) -> DipathFamily:
    """The all-to-all instance routed along unique dipaths (UPP-DAGs only).

    One dipath per ordered pair of distinct vertices joined by a dipath.  On a
    rooted tree this is the instance the paper's concluding remarks discuss.
    """
    requests = RequestFamily.all_to_all(graph, only_connected=True)
    return route_unique(graph, requests)


def multicast_family(graph: DiGraph, origin=None) -> DipathFamily:
    """A multicast instance (all requests from one origin), routed uniquely.

    When ``origin`` is omitted, a source with maximum reach is used.
    """
    from ..graphs.traversal import reachable_from

    if origin is None:
        candidates = graph.sources() or list(graph.vertices())
        origin = max(candidates, key=lambda v: len(reachable_from(graph, v)))
    requests = RequestFamily.multicast(graph, origin)
    return route_unique(graph, requests)


def family_with_target_load(graph: DiGraph, target_load: int,
                            seed: Optional[int] = None,
                            max_paths: Optional[int] = None) -> DipathFamily:
    """A random family whose load is (close to) ``target_load``.

    Random-walk dipaths are added while the load is below the target and
    skipped when they would push some arc beyond it; generation stops when
    the target is reached or no progress is possible.
    """
    rng = random.Random(seed)
    family = DipathFamily(graph=graph)
    starts = [v for v in graph.vertices() if graph.out_degree(v) > 0]
    if not starts:
        raise ValueError("the digraph has no arcs")
    stall = 0
    limit = max_paths if max_paths is not None else 50 * target_load
    while family.load() < target_load and len(family) < limit and stall < 200:
        v = rng.choice(starts)
        walk = [v]
        while graph.out_degree(walk[-1]) > 0 and rng.random() < 0.85:
            walk.append(rng.choice(sorted(graph.successors(walk[-1]), key=repr)))
        if len(walk) < 2:
            stall += 1
            continue
        candidate = Dipath(walk)
        would_exceed = any(family.load_of_arc(arc) + 1 > target_load
                           for arc in candidate.arcs())
        if would_exceed:
            stall += 1
            continue
        family.add(candidate)
        stall = 0
    return family
