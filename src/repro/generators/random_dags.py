"""Random DAG generators, with and without internal cycles.

These populate the randomised sweeps of benchmarks E3/E5/E6/E7: Theorem 1 is
verified on random internal-cycle-free DAGs, the Main Theorem on mixed
populations, and Theorem 6 on random UPP-DAGs with exactly one internal
cycle.
"""

from __future__ import annotations

from typing import Optional

import random

from ..cycles.internal import has_internal_cycle, internal_cyclomatic_number
from ..graphs.dag import DAG
from .gadgets import theorem2_gadget

__all__ = [
    "random_dag",
    "random_layered_dag",
    "random_internal_cycle_free_dag",
    "random_dag_with_internal_cycle",
    "random_upp_one_cycle_dag",
]


def random_dag(num_vertices: int, arc_probability: float,
               seed: Optional[int] = None) -> DAG:
    """A uniform random DAG: arc ``i -> j`` present with given probability for ``i < j``.

    Vertices are ``0..n-1`` and the natural order is a topological order.
    """
    if not 0 <= arc_probability <= 1:
        raise ValueError("arc_probability must be in [0, 1]")
    rng = random.Random(seed)
    dag = DAG(vertices=range(num_vertices), validate=False)
    for i in range(num_vertices):
        for j in range(i + 1, num_vertices):
            if rng.random() < arc_probability:
                dag.add_arc(i, j)
    return dag


def random_layered_dag(num_layers: int, width: int, arc_probability: float,
                       seed: Optional[int] = None) -> DAG:
    """A layered DAG: arcs only go from one layer to the next.

    Vertices are ``(layer, position)``; each potential arc between consecutive
    layers is present with the given probability (plus a guaranteed arc per
    vertex so no layer is disconnected).
    """
    if num_layers < 2 or width < 1:
        raise ValueError("need at least 2 layers and width >= 1")
    rng = random.Random(seed)
    dag = DAG(validate=False)
    for layer in range(num_layers):
        for pos in range(width):
            dag.add_vertex((layer, pos))
    for layer in range(num_layers - 1):
        for pos in range(width):
            targets = [t for t in range(width)
                       if rng.random() < arc_probability]
            if not targets:
                targets = [rng.randrange(width)]
            for t in targets:
                dag.add_arc((layer, pos), (layer + 1, t))
    return dag


def random_internal_cycle_free_dag(num_vertices: int, num_arcs: int,
                                   seed: Optional[int] = None,
                                   max_attempts_factor: int = 50) -> DAG:
    """A random DAG guaranteed to contain **no internal cycle**.

    Arcs ``i -> j`` (``i < j``) are sampled uniformly and added only when the
    graph remains free of internal cycles — a linear-time check per candidate
    (DESIGN.md §5.1), so generation is ``O(num_arcs * (V + E))``.  If the
    requested arc count cannot be reached (dense graphs eventually force an
    internal cycle), the generator returns the best effort after
    ``max_attempts_factor * num_arcs`` trials.
    """
    if num_vertices < 2:
        raise ValueError("num_vertices must be >= 2")
    rng = random.Random(seed)
    dag = DAG(vertices=range(num_vertices), validate=False)
    attempts = 0
    max_attempts = max_attempts_factor * max(num_arcs, 1)
    while dag.num_arcs < num_arcs and attempts < max_attempts:
        attempts += 1
        i, j = rng.sample(range(num_vertices), 2)
        if i > j:
            i, j = j, i
        if dag.has_arc(i, j):
            continue
        dag.add_arc(i, j)
        if has_internal_cycle(dag):
            dag.remove_arc(i, j)
    return dag


def random_dag_with_internal_cycle(num_vertices: int, arc_probability: float,
                                   seed: Optional[int] = None,
                                   max_tries: int = 200) -> DAG:
    """A random DAG guaranteed to contain at least one internal cycle.

    Samples :func:`random_dag` until one has an internal cycle; if that takes
    too long (sparse settings), a Figure 5 gadget is planted on fresh vertices
    to force one.
    """
    rng = random.Random(seed)
    for _ in range(max_tries):
        dag = random_dag(num_vertices, arc_probability, seed=rng.randrange(2 ** 30))
        if has_internal_cycle(dag):
            return dag
    # Plant a gadget: relabel its vertices to stay disjoint from 0..n-1.
    dag = random_dag(num_vertices, arc_probability, seed=rng.randrange(2 ** 30))
    gadget = theorem2_gadget(2)
    for u, v in gadget.arcs():
        dag.add_arc(("planted", u), ("planted", v))
    return dag


def random_upp_one_cycle_dag(k: int = 2, extra_depth: int = 2,
                             seed: Optional[int] = None,
                             attach_probability: float = 0.7) -> DAG:
    """A random UPP-DAG with exactly one internal cycle.

    Starts from the Figure 5 gadget (a UPP-DAG whose ``b_i``/``c_i`` vertices
    form its unique internal cycle) and grows random *in-trees* above the
    ``a_i`` sources and random *out-trees* below the ``d_i`` sinks.  Tree
    attachments preserve both the UPP property (no alternative routes are
    created) and the internal cyclomatic number (each new vertex adds exactly
    one underlying edge).
    """
    rng = random.Random(seed)
    dag = theorem2_gadget(k)
    counter = 0
    # out-trees below the d_i sinks
    for i in range(k):
        frontier = [("d", i)]
        for _ in range(extra_depth):
            new_frontier = []
            for node in frontier:
                children = rng.randint(0, 2) if rng.random() < attach_probability else 0
                for _ in range(children):
                    child = ("x", counter)
                    counter += 1
                    dag.add_arc(node, child)
                    new_frontier.append(child)
            frontier = new_frontier
    # in-trees above the a_i sources
    for i in range(k):
        frontier = [("a", i)]
        for _ in range(extra_depth):
            new_frontier = []
            for node in frontier:
                parents = rng.randint(0, 2) if rng.random() < attach_probability else 0
                for _ in range(parents):
                    parent = ("y", counter)
                    counter += 1
                    dag.add_arc(parent, node)
                    new_frontier.append(parent)
            frontier = new_frontier
    assert internal_cyclomatic_number(dag) == 1
    return dag
