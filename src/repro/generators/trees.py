"""Rooted-tree DAG generators.

Rooted (out-)trees are the special case the paper mentions having solved
first: a directed tree with a unique dipath from the root to every vertex.
They are UPP-DAGs without internal cycles, so Theorem 1 applies and the
wavelength number always equals the load — the all-to-all instance on rooted
trees is exercised by the optical benchmark E10.
"""

from __future__ import annotations

from typing import Optional

import random

from ..graphs.dag import DAG

__all__ = [
    "out_tree",
    "in_tree",
    "random_out_tree",
    "out_path",
    "spider",
    "caterpillar",
]


def out_tree(branching: int, depth: int) -> DAG:
    """A complete out-tree (arborescence) with given branching factor and depth.

    Vertices are tuples encoding their path from the root; the root is ``()``.
    """
    if branching < 1 or depth < 0:
        raise ValueError("branching must be >= 1 and depth >= 0")
    dag = DAG(validate=False)
    dag.add_vertex(())
    frontier = [()]
    for _ in range(depth):
        new_frontier = []
        for node in frontier:
            for i in range(branching):
                child = node + (i,)
                dag.add_arc(node, child)
                new_frontier.append(child)
        frontier = new_frontier
    return dag


def in_tree(branching: int, depth: int) -> DAG:
    """A complete in-tree (all arcs reversed out-tree)."""
    return out_tree(branching, depth).reverse()


def random_out_tree(num_vertices: int, seed: Optional[int] = None,
                    max_children: int = 4) -> DAG:
    """A random out-tree on ``num_vertices`` vertices (labelled ``0..n-1``).

    Each new vertex attaches to a uniformly random existing vertex that still
    has fewer than ``max_children`` children.
    """
    if num_vertices < 1:
        raise ValueError("num_vertices must be >= 1")
    rng = random.Random(seed)
    dag = DAG(validate=False)
    dag.add_vertex(0)
    children = {0: 0}
    for v in range(1, num_vertices):
        candidates = [u for u, c in children.items() if c < max_children]
        parent = rng.choice(candidates)
        dag.add_arc(parent, v)
        children[parent] += 1
        children[v] = 0
    return dag


def out_path(length: int) -> DAG:
    """The directed path ``0 -> 1 -> ... -> length`` (a degenerate out-tree)."""
    if length < 1:
        raise ValueError("length must be >= 1")
    return DAG(arcs=[(i, i + 1) for i in range(length)])


def spider(num_legs: int, leg_length: int) -> DAG:
    """A spider: ``num_legs`` directed paths of ``leg_length`` arcs sharing the root."""
    if num_legs < 1 or leg_length < 1:
        raise ValueError("num_legs and leg_length must be >= 1")
    dag = DAG(validate=False)
    root = ("root",)
    for leg in range(num_legs):
        prev = root
        for i in range(leg_length):
            node = ("leg", leg, i)
            dag.add_arc(prev, node)
            prev = node
    return dag


def caterpillar(spine_length: int, legs_per_vertex: int = 1) -> DAG:
    """A caterpillar out-tree: a directed spine with pendant leaves."""
    if spine_length < 1:
        raise ValueError("spine_length must be >= 1")
    dag = DAG(arcs=[(("s", i), ("s", i + 1)) for i in range(spine_length)],
              validate=False)
    for i in range(spine_length + 1):
        for leg in range(legs_per_vertex):
            dag.add_arc(("s", i), ("leaf", i, leg))
    return dag
