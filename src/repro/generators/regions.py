"""Multi-region topologies: k weakly-coupled regions of fibre.

The scenario axis behind the sharding benchmark (E16): a wide-area
network is usually a federation of dense regional meshes joined by a few
long-haul fibres.  Lightpaths overwhelmingly stay inside their region, so
the live conflict graph decomposes into per-region components that only
occasionally merge through inter-region traffic — exactly the structure
the component-sharded engine exploits.

:func:`multi_region_topology` builds the substrate: ``regions`` disjoint
random DAGs over vertices ``(region, i)`` plus ``coupling`` forward
bridge arcs between each consecutive region pair (bridges respect the
per-region topological order, so the union stays a DAG).

:func:`multi_region_traffic` builds the matching demand: each request is
intra-region with probability ``1 - inter_fraction`` and inter-region
otherwise, sampled uniformly from the connected pairs of its class.  The
``inter_fraction`` knob tunes how often the sharded engine's components
merge: ``0.0`` keeps the regions permanently independent, larger values
exercise the merge/split machinery.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple, Union

from .._typing import Vertex
from ..dipaths.requests import RequestFamily
from ..graphs.digraph import DiGraph
from ..graphs.traversal import transitive_closure_sets
from .random_dags import random_dag

__all__ = ["multi_region_topology", "multi_region_traffic",
           "region_of_vertex"]


def region_of_vertex(vertex: Vertex) -> int:
    """The region tag of a multi-region vertex ``(region, i)``."""
    return vertex[0]


def multi_region_topology(regions: int = 4, region_size: int = 40,
                          arc_probability: float = 0.12,
                          coupling: int = 2,
                          seed: Optional[int] = None) -> DiGraph:
    """``regions`` random-DAG regions joined by a few bridge fibres.

    Parameters
    ----------
    regions:
        Number of regions (>= 1).
    region_size, arc_probability:
        Size and density of each region's :func:`~repro.generators.
        random_dags.random_dag` (vertices ``(r, 0) .. (r, size-1)``).
    coupling:
        Bridge arcs added from each region ``r`` to region ``r + 1``
        (``0`` keeps the regions fully disjoint).  A bridge runs from a
        vertex of ``r`` to a vertex of ``r + 1``, so the union remains a
        DAG and bridges are usable by inter-region dipaths.
    seed:
        Seeds both the per-region DAGs and the bridge endpoints.
    """
    if regions < 1:
        raise ValueError("regions must be >= 1")
    if coupling < 0:
        raise ValueError("coupling must be >= 0")
    rng = random.Random(seed)
    graph = DiGraph()
    for region in range(regions):
        sub = random_dag(region_size, arc_probability,
                         seed=rng.randrange(2 ** 30))
        for i in range(region_size):
            graph.add_vertex((region, i))
        for u, v in sub.arcs():
            graph.add_arc((region, u), (region, v))
    for region in range(regions - 1):
        added = 0
        attempts = 0
        while added < coupling and attempts < 50 * max(coupling, 1):
            attempts += 1
            tail = (region, rng.randrange(region_size))
            head = (region + 1, rng.randrange(region_size))
            if not graph.has_arc(tail, head):
                graph.add_arc(tail, head)
                added += 1
    return graph


def multi_region_traffic(graph: DiGraph, num_requests: int,
                         inter_fraction: float = 0.1,
                         seed: Union[int, random.Random, None] = None
                         ) -> RequestFamily:
    """Requests over a multi-region topology, mostly intra-region.

    Each of the ``num_requests`` unit requests is drawn intra-region with
    probability ``1 - inter_fraction`` and inter-region otherwise, from
    the uniform distribution over the connected pairs of its class.  When
    the topology offers no inter-region pair at all (``coupling=0``),
    every request falls back to intra-region.
    """
    if not 0.0 <= inter_fraction <= 1.0:
        raise ValueError("inter_fraction must be in [0, 1]")
    if num_requests < 0:
        raise ValueError("num_requests must be >= 0")
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    reach = transitive_closure_sets(graph)
    intra: List[Tuple[Vertex, Vertex]] = []
    inter: List[Tuple[Vertex, Vertex]] = []
    for source, targets in reach.items():
        for target in sorted(targets, key=repr):
            pair = (source, target)
            if region_of_vertex(source) == region_of_vertex(target):
                intra.append(pair)
            else:
                inter.append(pair)
    if not intra and not inter:
        raise ValueError("the topology has no connected pair of vertices")
    requests = RequestFamily()
    for _ in range(num_requests):
        use_inter = inter and (not intra or rng.random() < inter_fraction)
        requests.add(rng.choice(inter if use_inter else intra))
    return requests
