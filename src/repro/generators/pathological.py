"""Figure 1: a DAG family with ``pi = 2`` and ``w = k`` (unbounded ratio).

The paper's Figure 1 shows ``k`` dipaths ``s_i -> t_i`` routed through a
staircase grid so that *any two of them share an arc* while *every arc is
used by at most two of them*: the conflict graph is the complete graph
``K_k``, so ``w = k`` although ``pi = 2``.

The generator below realises exactly that claim with a clean pairwise-gadget
layout (one dedicated shared arc per pair of dipaths, traversed in a globally
consistent order): the numbers the paper reports — load 2, wavelength number
``k``, complete conflict graph — are reproduced verbatim, which is what
benchmark E1 re-derives.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Tuple

from ..dipaths.dipath import Dipath
from ..dipaths.family import DipathFamily
from ..graphs.dag import DAG

__all__ = ["pathological_instance", "pathological_dag", "pathological_family"]


def _pair_order(k: int) -> List[Tuple[int, int]]:
    """All unordered pairs ``{i, j}`` of ``range(k)`` in lexicographic order."""
    return sorted(combinations(range(k), 2))


def pathological_instance(k: int) -> Tuple[DAG, DipathFamily]:
    """Build the Figure 1 instance with ``k`` pairwise-conflicting dipaths.

    Returns ``(dag, family)`` with ``family.load() == 2`` (for ``k >= 2``) and
    conflict graph ``K_k`` (hence ``w = k``).

    Construction: for every pair ``{i, j}`` a dedicated arc
    ``share(i,j) = (u_{ij}, v_{ij})`` is created; dipath ``i`` traverses the
    shared arcs of all pairs containing ``i`` in the global lexicographic
    order of the pairs (so that all dipaths are consistent with one
    topological order), linked by private connector arcs, and is framed by a
    private source ``s_i`` and sink ``t_i``.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    dag = DAG(validate=False)
    pairs = _pair_order(k)

    def u(pair: Tuple[int, int]):
        return ("u", pair[0], pair[1])

    def v(pair: Tuple[int, int]):
        return ("v", pair[0], pair[1])

    for pair in pairs:
        dag.add_arc(u(pair), v(pair))

    family = DipathFamily(graph=None)
    for i in range(k):
        my_pairs = [p for p in pairs if i in p]
        vertices: List = [("s", i)]
        for p in my_pairs:
            vertices.append(u(p))
            vertices.append(v(p))
        vertices.append(("t", i))
        dag.add_dipath(vertices)
        family.add(Dipath(vertices))
    dag.validate()
    return dag, family


def pathological_dag(k: int) -> DAG:
    """The DAG of :func:`pathological_instance`."""
    return pathological_instance(k)[0]


def pathological_family(k: int) -> DipathFamily:
    """The dipath family of :func:`pathological_instance`."""
    return pathological_instance(k)[1]
