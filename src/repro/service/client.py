"""Client-side resilience: bounded retries with deterministic backoff.

:class:`RetryingClient` wraps a :class:`~repro.service.RwaService` (or a
:class:`~repro.service.supervisor.ServiceSupervisor`) and retries
submissions whose wall-clock wait times out.  Two contracts make the
retry loop safe:

* **Replay safety.**  Every attempt carries the *original*
  ``request_id``, and every attempt after the first sets ``retry=True``.
  A :class:`~repro.exceptions.TimedOut` never cancels the op — the
  engine decides it exactly once — so a retry that arrives after the
  decision landed is answered from the service's decision log, never
  decided a second time.  N racing attempts cost one engine decision.
* **Deterministic backoff.**  Delays follow capped exponential backoff
  with jitter drawn from a client-owned seeded ``random.Random``: the
  k-th retry sleeps ``min(max_delay, base_delay * 2**k) * u`` with
  ``u ∈ [0.5, 1.0)``.  The delay sequence is a pure function of the
  seed, so chaos tests replay the same schedule run after run.  (The
  sleeps are wall-clock by nature; they never touch the engine or its
  metrics registry — attempt counters live on the client as plain
  attributes.)

:class:`~repro.exceptions.Expired` is never retried: an event-time
deadline does not move, so a retry would expire identically.
"""

from __future__ import annotations

import asyncio
import random
from typing import Optional

from ..exceptions import TimedOut

__all__ = ["RetryingClient"]


class RetryingClient:
    """Retry timed-out submissions with capped exponential backoff.

    Parameters
    ----------
    service:
        Anything with the :meth:`RwaService.submit` signature — a
        service or a supervisor proxy.
    timeout:
        Wall-clock cap per attempt, in seconds (passed as ``submit``'s
        ``timeout=``).
    max_attempts:
        Total attempts (the first submission included); the last
        :class:`TimedOut` is re-raised once they are spent.
    base_delay, max_delay:
        The exponential backoff envelope, in seconds.
    seed:
        Seed for the jitter RNG — the full delay schedule is
        deterministic given the seed.
    """

    def __init__(self, service, *, timeout: float = 0.5,
                 max_attempts: int = 4, base_delay: float = 0.01,
                 max_delay: float = 0.25, seed: int = 0) -> None:
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if base_delay <= 0 or max_delay < base_delay:
            raise ValueError("need 0 < base_delay <= max_delay")
        self._service = service
        self._timeout = timeout
        self._max_attempts = max_attempts
        self._base_delay = base_delay
        self._max_delay = max_delay
        self._rng = random.Random(seed)
        # wall-clock-driven tallies: plain attributes, never metrics
        self.attempts = 0
        self.retries = 0
        self.timeouts = 0

    def backoff_delay(self, retry_index: int) -> float:
        """The ``retry_index``-th retry's sleep (consumes one jitter draw).

        Capped exponential with jitter in ``[0.5, 1.0)`` of the cap —
        exposed for tests pinning the deterministic schedule.
        """
        cap = min(self._max_delay, self._base_delay * (2 ** retry_index))
        return cap * (0.5 + 0.5 * self._rng.random())

    async def submit(self, request_id: int, request=None, dipath=None, *,
                     time: Optional[float] = None,
                     tenant: Optional[str] = None,
                     deadline: Optional[float] = None) -> Optional[str]:
        """Submit with retries; returns the engine's one decision.

        Raises the last :class:`TimedOut` when every attempt timed out,
        or :class:`~repro.exceptions.Expired` immediately (deadlines are
        not retryable).
        """
        last: Optional[TimedOut] = None
        for attempt in range(self._max_attempts):
            if attempt:
                self.retries += 1
                await asyncio.sleep(self.backoff_delay(attempt - 1))
            self.attempts += 1
            try:
                return await self._service.submit(
                    request_id, request=request, dipath=dipath, time=time,
                    tenant=tenant, deadline=deadline,
                    timeout=self._timeout, retry=attempt > 0)
            except TimedOut as exc:
                self.timeouts += 1
                last = exc
        raise last
