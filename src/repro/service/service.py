"""RWA-as-a-service: an asyncio front-end over the online engine.

:class:`RwaService` owns one :class:`~repro.online.simulator.OnlineEngine`
(or, with a journal path, a
:class:`~repro.online.persistence.DurableEngine`) and funnels every state
transition through a single FIFO admission queue drained by one consumer
task.  That single-writer discipline is what makes the service safe to
share between coroutines without locks, and it is also what makes it
*auditable*: the decisions the service makes are exactly the decisions
:func:`~repro.online.simulator.simulate_online` makes on the same ordered
trace — :func:`serve_trace` replays a trace through a service and the E19
gate asserts the engine fingerprints match bit for bit.

Three design points carry the identity contract:

* **Ordering.**  The queue is FIFO and the event loop is single-threaded,
  so requests are decided in submission order — the submission order *is*
  the trace order.
* **Coalescing.**  The drain task grabs everything queued at a scheduling
  point and, under a ``batch_policy``, admits consecutive equal-deadline
  arrivals as one atomic burst through ``admit_batch`` — the same static
  grouping rule ``simulate_online`` applies to a pre-sorted trace.  A
  trace enqueued in one go (as :func:`serve_trace` does) therefore
  coalesces into the identical bursts.
* **Coherent reads.**  Processing a drained batch never awaits, so every
  read API (:meth:`RwaService.utilisation`, :meth:`RwaService.shard_map`,
  :meth:`RwaService.blocking_stats`, :meth:`RwaService.metrics_snapshot`)
  observes the engine *between* batches — a consistent snapshot — without
  ever stalling admission behind a lock.

Load shedding is per-tenant: the service passes each submission's tenant
to an :class:`~repro.online.simulator.AdmissionGuard` built with
``tenants`` weights, so a flooding tenant exhausts only its own
weighted-fair share of the work budget while a quiet tenant's bucket
stays full (the starvation test pins this down).

Wall-clock submit→decision latency is sampled per arrival into a plain
list (never into the metrics registry — the registry stays deterministic)
and summarised by :meth:`RwaService.latency_stats`.

Scope: arrivals, departures and defrag passes.  Fibre faults mutate the
topology and carry restoration bookkeeping that belongs to the trace
loop; drive them through :meth:`DurableEngine.cut`/``repair`` on a
stopped service, or through :func:`simulate_online`.
"""

from __future__ import annotations

import asyncio
import time as _time
from typing import Any, Callable, Dict, List, Optional

from ..dipaths import Dipath, Request
from ..exceptions import ServiceError, SimulationError
from ..graphs import DiGraph
from ..obs import MetricsRegistry, Tracer
from ..online.events import ARRIVAL, DEPARTURE, Event
from ..online.simulator import (AdmissionGuard, FIBRE_CUT, NO_ROUTE,
                                NO_WAVELENGTH, OnlineResult, SHED)
from ..online.persistence import DurableEngine, engine_fingerprint
from ..online.simulator import OnlineEngine
from ..online.transaction import BATCH_POLICIES

__all__ = ["RwaService", "serve_trace", "aserve_trace"]

# queue-op kinds (internal)
_ARRIVAL = "arrival"
_DEPART = "depart"
_DEFRAG = "defrag"
_STOP = "stop"


class _Op:
    """One queued operation plus its completion future."""

    __slots__ = ("kind", "time", "request_id", "request", "dipath",
                 "tenant", "order", "max_moves", "future", "submitted")

    def __init__(self, kind: str, time: float, future,
                 request_id: Optional[int] = None,
                 request: Optional[Request] = None,
                 dipath: Optional[Dipath] = None,
                 tenant: Optional[str] = None,
                 order: str = "highest_wavelength",
                 max_moves: Optional[int] = None) -> None:
        self.kind = kind
        self.time = time
        self.request_id = request_id
        self.request = request
        self.dipath = dipath
        self.tenant = tenant
        self.order = order
        self.max_moves = max_moves
        self.future = future
        self.submitted = _time.perf_counter()


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0 on empty input)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(q * len(sorted_values) + 0.5) - 1))
    return sorted_values[rank]


class RwaService:
    """Async admission service around one online RWA engine.

    Parameters mirror :func:`~repro.online.simulator.simulate_online`'s
    engine/guard knobs, plus the service-specific ones:

    batch_policy:
        When set (one of
        :data:`~repro.online.transaction.BATCH_POLICIES`), consecutive
        queued arrivals sharing a deadline (``time``) are admitted as one
        atomic burst through ``admit_batch``.  ``None`` admits one by one.
    work_budget, burst, queue_depth, tenants:
        :class:`~repro.online.simulator.AdmissionGuard` configuration
        (any of the first three set turns the guard on); ``tenants``
        (``name -> weight``) gives every declared tenant its own
        weighted-fair-share token bucket, and the ``tenant=`` argument of
        :meth:`submit` selects the bucket per request.
    journal_path:
        When set, the service runs on a
        :class:`~repro.online.persistence.DurableEngine` journalling to
        this path (``snapshot_every`` / ``fsync`` pass through), so a
        crashed service recovers to the exact pre-crash engine via
        :func:`repro.online.persistence.recover`.  Shed arrivals never
        reach the engine and are deliberately *not* journalled — quota
        refusal is a front-door policy, not engine state.
    max_pending:
        Bound on the admission queue; when full, :meth:`submit` applies
        backpressure (awaits a slot) and :meth:`submit_nowait` raises
        ``asyncio.QueueFull``.  ``None`` = unbounded.
    metrics, tracer, profile:
        Shared observability hooks, handed to the engine (see
        :mod:`repro.obs`).  Decision-neutral as always.
    """

    def __init__(self, graph: DiGraph, wavelengths: int,
                 routing: str = "shortest", policy: str = "first_fit",
                 kempe_repair: bool = False, seed: Optional[int] = None,
                 k_candidates: int = 4, speculative: bool = False,
                 sharded: bool = False,
                 batch_policy: Optional[str] = None,
                 work_budget: Optional[float] = None,
                 burst: Optional[float] = None,
                 queue_depth: Optional[int] = None,
                 tenants: Optional[Dict[str, float]] = None,
                 journal_path: Optional[str] = None,
                 snapshot_every: Optional[int] = None,
                 fsync: bool = False,
                 max_pending: Optional[int] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 profile=None) -> None:
        if batch_policy is not None and batch_policy not in BATCH_POLICIES:
            raise ValueError(f"unknown batch policy {batch_policy!r}; "
                             f"expected one of {BATCH_POLICIES}")
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self._durable: Optional[DurableEngine] = None
        if journal_path is not None:
            if profile is not None:
                raise ValueError("profile is not supported on a durable "
                                 "service; attach it via tracer instead")
            self._durable = DurableEngine(
                graph, journal_path, wavelengths, routing=routing,
                policy=policy, kempe_repair=kempe_repair, seed=seed,
                k_candidates=k_candidates, speculative=speculative,
                sharded=sharded, snapshot_every=snapshot_every,
                fsync=fsync, metrics=metrics, tracer=tracer)
            self._engine = self._durable.engine
        else:
            self._engine = OnlineEngine(
                graph, wavelengths, routing=routing, policy=policy,
                kempe_repair=kempe_repair, seed=seed,
                k_candidates=k_candidates, speculative=speculative,
                sharded=sharded, metrics=metrics, tracer=tracer,
                profile=profile)
        registry = self._engine.metrics
        self._registry = registry
        self._tracer = self._engine.tracer
        self._wavelengths = wavelengths
        self._routing = routing
        self._policy = policy
        self._batch_policy = batch_policy
        self._speculative = speculative
        self._arrival_cost = float(k_candidates) if speculative else 1.0
        self._guard: Optional[AdmissionGuard] = None
        if work_budget is not None or queue_depth is not None or tenants:
            self._guard = AdmissionGuard(
                work_budget=work_budget, burst=burst,
                queue_depth=queue_depth, tenants=tenants, metrics=registry)
        elif burst is not None:
            raise ValueError("burst needs a work_budget")
        self._max_pending = max_pending
        self._queue: Optional[asyncio.Queue] = None
        self._drain_task: Optional[asyncio.Task] = None
        self._stopped = False
        self._last_time = float("-inf")
        self._admitted_at: Dict[int, float] = {}
        self._latencies: List[float] = []
        # decision bookkeeping, same shape simulate_online keeps
        self._accepted: List[int] = []
        self._blocked: List[int] = []
        self._rejections: Dict[int, str] = {}
        self._holding = registry.histogram(
            "result.holding_time", (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0))
        self._m_accepted = registry.counter("result.accepted")
        self._m_blocked = registry.counter("result.blocked")
        self._m_reason = {
            reason: registry.counter(f"result.blocked.{reason}")
            for reason in (NO_ROUTE, NO_WAVELENGTH, SHED, FIBRE_CUT)}

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> "RwaService":
        """Create the admission queue and the drain task."""
        if self._drain_task is not None or self._stopped:
            raise ServiceError("service already started")
        self._queue = asyncio.Queue(self._max_pending or 0)
        self._drain_task = asyncio.get_running_loop().create_task(
            self._drain())
        return self

    async def stop(self) -> None:
        """Drain every queued request, then stop the consumer.

        Idempotent.  Requests enqueued before ``stop`` are decided;
        later submissions raise :class:`~repro.exceptions.ServiceError`.
        A durable service's journal is closed (the engine stays usable
        in memory, e.g. for fingerprinting).
        """
        if self._stopped:
            return
        if self._drain_task is None:
            self._stopped = True
            return
        self._stopped = True
        loop = asyncio.get_running_loop()
        sentinel = _Op(_STOP, self._last_time, loop.create_future())
        await self._queue.put(sentinel)
        await self._drain_task
        self._drain_task = None
        if self._durable is not None:
            self._durable.close()

    async def __aenter__(self) -> "RwaService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    @property
    def running(self) -> bool:
        return self._drain_task is not None and not self._stopped

    @property
    def engine(self) -> OnlineEngine:
        """The live engine (fingerprint it via ``engine_fingerprint``)."""
        return self._engine

    @property
    def durable(self) -> Optional[DurableEngine]:
        """The journalling wrapper, when built with ``journal_path``."""
        return self._durable

    def fingerprint(self) -> Dict[str, Any]:
        """:func:`~repro.online.persistence.engine_fingerprint` of the
        live engine."""
        return engine_fingerprint(self._engine)

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def _enqueue_nowait(self, op: _Op) -> "asyncio.Future":
        if self._queue is None or self._stopped:
            raise ServiceError("service is not running (start() it, or "
                               "use 'async with RwaService(...)')")
        self._queue.put_nowait(op)
        return op.future

    def submit_nowait(self, request_id: int,
                      request: Optional[Request] = None,
                      dipath: Optional[Dipath] = None, *,
                      time: Optional[float] = None,
                      tenant: Optional[str] = None) -> "asyncio.Future":
        """Enqueue one arrival without awaiting; returns its future.

        The future resolves to the rejection reason (``None`` =
        admitted), exactly :meth:`OnlineEngine.admit`'s contract.
        ``time`` is the arrival's event-time deadline (defaults to the
        newest deadline seen) — equal-deadline arrivals coalesce into
        one burst under a ``batch_policy``, and the admission guard's
        token buckets refill along this clock.  Raises
        ``asyncio.QueueFull`` when ``max_pending`` is hit.
        """
        loop = asyncio.get_running_loop()
        when = time if time is not None else max(self._last_time, 0.0)
        return self._enqueue_nowait(_Op(
            _ARRIVAL, when, loop.create_future(), request_id=request_id,
            request=request, dipath=dipath, tenant=tenant))

    async def submit(self, request_id: int,
                     request: Optional[Request] = None,
                     dipath: Optional[Dipath] = None, *,
                     time: Optional[float] = None,
                     tenant: Optional[str] = None) -> Optional[str]:
        """Submit one arrival and await its decision.

        Returns ``None`` (admitted) or the rejection reason
        (:data:`~repro.online.simulator.NO_ROUTE` /
        :data:`~repro.online.simulator.NO_WAVELENGTH` /
        :data:`~repro.online.simulator.SHED`).  With ``max_pending``
        set, a full queue applies backpressure here instead of raising.
        """
        if self._queue is None or self._stopped:
            raise ServiceError("service is not running (start() it, or "
                               "use 'async with RwaService(...)')")
        loop = asyncio.get_running_loop()
        when = time if time is not None else max(self._last_time, 0.0)
        op = _Op(_ARRIVAL, when, loop.create_future(),
                 request_id=request_id, request=request, dipath=dipath,
                 tenant=tenant)
        await self._queue.put(op)
        return await op.future

    def depart_nowait(self, request_id: int, *,
                      time: Optional[float] = None) -> "asyncio.Future":
        """Enqueue one departure; future resolves to ``held`` (bool)."""
        loop = asyncio.get_running_loop()
        when = time if time is not None else max(self._last_time, 0.0)
        return self._enqueue_nowait(_Op(
            _DEPART, when, loop.create_future(), request_id=request_id))

    async def depart(self, request_id: int, *,
                     time: Optional[float] = None) -> bool:
        """Release one lightpath and await the engine's acknowledgement."""
        future = self.depart_nowait(request_id, time=time)
        return await future

    async def request_defrag(self, order: str = "highest_wavelength",
                             max_moves: Optional[int] = None):
        """Queue a defragmentation pass; returns its ``DefragReport``.

        The pass runs in admission order like any other op, so it never
        interleaves with a burst.
        """
        loop = asyncio.get_running_loop()
        future = self._enqueue_nowait(_Op(
            _DEFRAG, self._last_time, loop.create_future(),
            order=order, max_moves=max_moves))
        return await future

    def pending(self) -> int:
        """Operations queued but not yet decided."""
        return 0 if self._queue is None else self._queue.qsize()

    # ------------------------------------------------------------------ #
    # the drain task
    # ------------------------------------------------------------------ #
    async def _drain(self) -> None:
        queue = self._queue
        while True:
            op = await queue.get()
            ops = [op]
            while True:
                try:
                    ops.append(queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            stop_at = next((i for i, o in enumerate(ops)
                            if o.kind == _STOP), None)
            work = ops if stop_at is None else ops[:stop_at]
            if work:
                self._process(work)
            if stop_at is not None:
                # ops raced in behind the sentinel lose: their futures
                # fail the same way a post-stop submit does
                for straggler in ops[stop_at + 1:]:
                    straggler.future.set_exception(
                        ServiceError("service stopped"))
                ops[stop_at].future.set_result(None)
                for _ in ops:
                    queue.task_done()
                return
            for _ in ops:
                queue.task_done()

    def _process(self, ops: List[_Op]) -> None:
        """Decide a drained batch.  Synchronous on purpose: no await
        happens between the first and last decision, so reads issued
        from other coroutines always observe the engine between
        batches."""
        index = 0
        while index < len(ops):
            op = ops[index]
            group = [op]
            if self._batch_policy is not None and op.kind == _ARRIVAL:
                j = index + 1
                while j < len(ops) and ops[j].kind == _ARRIVAL and \
                        ops[j].time == op.time:
                    group.append(ops[j])
                    j += 1
            index += len(group)
            if op.time < self._last_time:
                for member in group:
                    member.future.set_exception(SimulationError(
                        f"submissions are not time-ordered at request "
                        f"{member.request_id}"))
                continue
            self._last_time = op.time
            if self._tracer is not None:
                self._tracer.advance(op.time)
            try:
                if len(group) > 1:
                    self._process_burst(group)
                else:
                    self._process_one(op)
            except Exception as exc:       # noqa: BLE001 - failure is per-op
                for member in group:
                    if not member.future.done():
                        member.future.set_exception(exc)

    def _decide(self, op: _Op, reason: Optional[str]) -> None:
        """Record one arrival's final decision and resolve its future."""
        if reason is None:
            self._accepted.append(op.request_id)
            self._admitted_at[op.request_id] = op.time
            self._m_accepted.inc()
        else:
            self._blocked.append(op.request_id)
            self._rejections[op.request_id] = reason
            self._m_blocked.inc()
            self._m_reason[reason].inc()
        self._latencies.append(_time.perf_counter() - op.submitted)
        op.future.set_result(reason)

    def _shed(self, op: _Op) -> bool:
        guard = self._guard
        if guard is None or guard.admits(op.time, self._arrival_cost,
                                         tenant=op.tenant):
            return False
        if self._tracer is not None:
            self._tracer.event("shed", rid=op.request_id)
        self._decide(op, SHED)
        return True

    def _process_one(self, op: _Op) -> None:
        if op.kind == _ARRIVAL:
            if self._shed(op):
                return
            backend = self._durable or self._engine
            self._decide(op, backend.admit(op.request_id,
                                           request=op.request,
                                           dipath=op.dipath))
        elif op.kind == _DEPART:
            backend = self._durable or self._engine
            held = backend.depart(op.request_id)
            t0 = self._admitted_at.pop(op.request_id, None)
            if held and t0 is not None:
                self._holding.observe(op.time - t0)
            op.future.set_result(held)
        elif op.kind == _DEFRAG:
            backend = self._durable or self._engine
            op.future.set_result(backend.defrag(order=op.order,
                                                max_moves=op.max_moves))
        else:                              # pragma: no cover - internal
            raise ServiceError(f"unknown op kind {op.kind!r}")

    def _process_burst(self, group: List[_Op]) -> None:
        kept = [op for op in group if not self._shed(op)]
        if not kept:
            return
        events = [Event(time=op.time, kind=ARRIVAL,
                        request_id=op.request_id, request=op.request,
                        dipath=op.dipath) for op in kept]
        backend = self._durable or self._engine
        reasons = backend.admit_batch(events, policy=self._batch_policy)
        for op in kept:
            self._decide(op, reasons[op.request_id])

    # ------------------------------------------------------------------ #
    # reads (coherent snapshots, never queued)
    # ------------------------------------------------------------------ #
    def utilisation(self) -> Dict[str, float]:
        """Live capacity usage between batches."""
        engine = self._engine
        in_use = engine.assigner.colors_in_use()
        return {
            "active": float(engine.active),
            "wavelengths_in_use": float(in_use),
            "wavelengths_available": float(self._wavelengths),
            "utilisation": in_use / self._wavelengths,
            "max_fibre_load": float(engine.family.load()),
        }

    def shard_map(self) -> Dict[int, List[int]]:
        """Live conflict components (see :meth:`OnlineEngine.shard_map`)."""
        return self._engine.shard_map()

    def blocking_stats(self) -> Dict[str, Any]:
        """Decision totals so far, split by reason and by shed tenant."""
        accepted, blocked = len(self._accepted), len(self._blocked)
        total = accepted + blocked
        by_reason: Dict[str, int] = {}
        for reason in self._rejections.values():
            by_reason[reason] = by_reason.get(reason, 0) + 1
        return {
            "accepted": accepted,
            "blocked": blocked,
            "blocking_rate": blocked / total if total else 0.0,
            "by_reason": by_reason,
            "shed_by_tenant": (self._guard.tenant_shed_counts()
                               if self._guard is not None else {}),
        }

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Snapshot of the shared metrics registry."""
        return self._registry.snapshot()

    def trace_records(self) -> List[Dict[str, Any]]:
        """Records collected by the attached tracer (empty without one)."""
        return [] if self._tracer is None else self._tracer.records()

    def latency_stats(self) -> Dict[str, float]:
        """Wall-clock submit→decision latency over all decided arrivals.

        Wall-clock numbers live here and only here — they never enter
        the metrics registry, whose deterministic section must be a pure
        function of the trace.
        """
        ordered = sorted(self._latencies)
        count = len(ordered)
        return {
            "count": float(count),
            "mean_s": sum(ordered) / count if count else 0.0,
            "p50_s": _percentile(ordered, 0.50),
            "p99_s": _percentile(ordered, 0.99),
            "max_s": ordered[-1] if ordered else 0.0,
        }

    def result(self) -> OnlineResult:
        """The run so far as an :class:`OnlineResult`.

        Field-for-field comparable with a ``simulate_online`` run over
        the same trace (timeline excluded — the service records none).
        Settles the conflict shards first, exactly as the trace loop
        does before reading its component counters.
        """
        engine = self._engine
        result = OnlineResult(
            accepted=list(self._accepted), blocked=list(self._blocked),
            rejections=dict(self._rejections),
            wavelengths_available=self._wavelengths,
            routing=self._routing, policy=self._policy,
            speculative=self._speculative,
            batch_policy=self._batch_policy, sharded=engine.sharded)
        result.wavelengths_used = engine.assigner.colors_ever_used()
        result.kempe_repairs = engine.assigner.kempe_repairs
        result.defrag_passes = engine.defrag_passes
        result.defrag_moves = engine.defrag_moves
        result.wavelengths_reclaimed = engine.wavelengths_reclaimed
        engine.conflict.refresh_shards()
        result.component_merges = engine.conflict.component_merges
        result.component_splits = engine.conflict.component_splits
        result.shard_rebuilds = engine.conflict.shard_rebuilds
        registry = self._registry
        registry.counter("result.kempe_repairs").set(result.kempe_repairs)
        registry.gauge("result.wavelengths_used").set(
            result.wavelengths_used)
        registry.gauge("result.active_at_end").set(engine.active)
        result.metrics = registry.snapshot()
        result.engine = engine
        return result


async def aserve_trace(graph: DiGraph, events: List[Event],
                       wavelengths: int,
                       tenant_of: Optional[Callable[[Event],
                                                    Optional[str]]] = None,
                       **service_kwargs) -> OnlineResult:
    """Replay an ordered trace through a fresh :class:`RwaService`.

    The whole trace is enqueued before the drain task runs a single op,
    so the service sees exactly the grouping ``simulate_online`` sees —
    this is the decision-identity harness the E19 gate runs.  Arrivals
    and departures only; fault events raise
    :class:`~repro.exceptions.SimulationError`.  ``tenant_of`` maps an
    event to the tenant name submitted with it (``None`` = default).
    """
    service = RwaService(graph, wavelengths, **service_kwargs)
    async with service:
        futures = []
        for event in events:
            if event.kind == ARRIVAL:
                tenant = tenant_of(event) if tenant_of is not None else None
                futures.append(service.submit_nowait(
                    event.request_id, request=event.request,
                    dipath=event.dipath, time=event.time, tenant=tenant))
            elif event.kind == DEPARTURE:
                futures.append(service.depart_nowait(event.request_id,
                                                     time=event.time))
            else:
                raise SimulationError(
                    f"serve_trace handles arrivals and departures only, "
                    f"not {event.kind!r}; drive fibre faults through "
                    f"simulate_online or DurableEngine.cut/repair")
        # resolve every decision before tearing the service down; any
        # malformed-traffic exception surfaces here
        for future in futures:
            await future
        result = service.result()
    result.latency = service.latency_stats()
    return result


def serve_trace(graph: DiGraph, events: List[Event], wavelengths: int,
                **kwargs) -> OnlineResult:
    """Synchronous wrapper around :func:`aserve_trace` (private loop).

    Returns the service's :meth:`RwaService.result`, with the live
    engine attached as ``result.engine`` and the wall-clock latency
    summary as ``result.latency`` — compare decisions against
    :func:`simulate_online` and fingerprints via
    :func:`~repro.online.persistence.engine_fingerprint`.
    """
    return asyncio.run(aserve_trace(graph, events, wavelengths, **kwargs))
