"""RWA-as-a-service: an asyncio front-end over the online engine.

:class:`RwaService` owns one :class:`~repro.online.simulator.OnlineEngine`
(or, with a journal path, a
:class:`~repro.online.persistence.DurableEngine`) and funnels every state
transition through a single FIFO admission queue drained by one consumer
task.  That single-writer discipline is what makes the service safe to
share between coroutines without locks, and it is also what makes it
*auditable*: the decisions the service makes are exactly the decisions
:func:`~repro.online.simulator.simulate_online` makes on the same ordered
trace — :func:`serve_trace` replays a trace through a service and the E19
gate asserts the engine fingerprints match bit for bit.

Three design points carry the identity contract:

* **Ordering.**  The queue is FIFO and the event loop is single-threaded,
  so requests are decided in submission order — the submission order *is*
  the trace order.
* **Coalescing.**  The drain task grabs everything queued at a scheduling
  point and, under a ``batch_policy``, admits consecutive equal-deadline
  arrivals as one atomic burst through ``admit_batch`` — the same static
  grouping rule ``simulate_online`` applies to a pre-sorted trace.  A
  trace enqueued in one go (as :func:`serve_trace` does) therefore
  coalesces into the identical bursts.
* **Coherent reads.**  Processing a drained batch never awaits, so every
  read API (:meth:`RwaService.utilisation`, :meth:`RwaService.shard_map`,
  :meth:`RwaService.blocking_stats`, :meth:`RwaService.metrics_snapshot`)
  observes the engine *between* batches — a consistent snapshot — without
  ever stalling admission behind a lock.

Load shedding is per-tenant: the service passes each submission's tenant
to an :class:`~repro.online.simulator.AdmissionGuard` built with
``tenants`` weights, so a flooding tenant exhausts only its own
weighted-fair share of the work budget while a quiet tenant's bucket
stays full (the starvation test pins this down).

Wall-clock submit→decision latency is sampled per arrival into a plain
list (never into the metrics registry — the registry stays deterministic)
and summarised by :meth:`RwaService.latency_stats`.

Fibre faults are first-class queued operations: :meth:`RwaService.cut`
and :meth:`RwaService.repair` enqueue ``cut``/``repair`` ops that run
through the same :class:`~repro.online.faults.FaultWiring` helper the
trace loop uses, so `FaultInjector` restoration, ``FIBRE_CUT``
accounting and metrics output stay decision- and fingerprint-identical
between :func:`serve_trace` and :func:`simulate_online` on fault-bearing
traces (the E21 gate).  Within a drained batch, ops sharing a timestamp
are stably reordered by the events.py tie-break (departure < repair <
cut < arrival) — a no-op for ``sort_events``-ordered traces, and the
deterministic convention for live submissions racing a coalesced burst.
:meth:`RwaService.schedule_maintenance` plans a cut+repair pair per arc:
the cut pre-emptively drains the fibre (tear-down + mass re-route by the
restoration plane empties it at window start) and the repair closes the
window.

Client-side resilience: :meth:`RwaService.submit` takes ``timeout=``
(wall-clock cap on the caller's wait — :class:`~repro.exceptions.
TimedOut`, the op is still decided exactly once) and ``deadline=``
(event-time expiry — :class:`~repro.exceptions.Expired`, the arrival is
dropped before any routing work and partitioned under
``result.blocked.expired``).  ``retry=True`` resubmissions of an
already-decided ``request_id`` are answered from the service's decision
log — the idempotency contract :class:`~repro.service.client.
RetryingClient` builds on.
"""

from __future__ import annotations

import asyncio
import bisect
import time as _time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .._typing import Arc
from ..dipaths import Dipath, Request
from ..exceptions import Expired, ServiceError, SimulationError, TimedOut
from ..graphs import DiGraph
from ..obs import MetricsRegistry, Tracer
from ..online.events import ARRIVAL, CUT, DEPARTURE, REPAIR, Event
from ..online.faults import FaultReport, FaultWiring, fault_surface
from ..online.simulator import (AdmissionGuard, FIBRE_CUT, NO_ROUTE,
                                NO_WAVELENGTH, OnlineResult, SHED)
from ..online.persistence import DurableEngine, engine_fingerprint
from ..online.simulator import OnlineEngine
from ..online.transaction import BATCH_POLICIES

__all__ = ["EXPIRED", "RwaService", "serve_trace", "aserve_trace"]

#: Rejection reason for arrivals whose event-time deadline had passed
#: before processing — dropped pre-routing, partitioned like the other
#: reasons under ``result.blocked.expired``.
EXPIRED = "expired"

# queue-op kinds (internal)
_ARRIVAL = "arrival"
_DEPART = "depart"
_DEFRAG = "defrag"
_CUT = "cut"
_REPAIR = "repair"
_STOP = "stop"

#: Processing rank of ops sharing a timestamp — the service-side mirror
#: of ``repro.online.events._KIND_RANK``: capacity-freeing ops first
#: (departures, then repairs), cuts next, arrivals and defrag last, so
#: capacity freed or restored at ``t`` serves arrivals at ``t`` and an
#: arrival never routes over a fibre cut at the same instant.
_OP_RANK = {_DEPART: 0, _REPAIR: 1, _CUT: 2}


def _op_rank(op: "_Op") -> int:
    return _OP_RANK.get(op.kind, 3)


def _retrieve_quietly(future: "asyncio.Future") -> None:
    """Mark an abandoned future's outcome as retrieved.

    After a :class:`~repro.exceptions.TimedOut` the submitter stops
    awaiting, but the op is still decided; retrieving a late exception
    (e.g. ``Expired``) here keeps asyncio from logging it as never
    consumed.
    """
    if not future.cancelled():
        future.exception()


class _Op:
    """One queued operation plus its completion future."""

    __slots__ = ("kind", "time", "request_id", "request", "dipath",
                 "tenant", "order", "max_moves", "arc", "deadline",
                 "retry", "future", "submitted", "scheduled")

    def __init__(self, kind: str, time: float, future,
                 request_id: Optional[int] = None,
                 request: Optional[Request] = None,
                 dipath: Optional[Dipath] = None,
                 tenant: Optional[str] = None,
                 order: str = "highest_wavelength",
                 max_moves: Optional[int] = None,
                 arc: Optional[Arc] = None,
                 deadline: Optional[float] = None,
                 retry: bool = False) -> None:
        self.kind = kind
        self.time = time
        self.request_id = request_id
        self.request = request
        self.dipath = dipath
        self.tenant = tenant
        self.order = order
        self.max_moves = max_moves
        self.arc = arc
        self.deadline = deadline
        self.retry = retry
        self.future = future
        self.submitted = _time.perf_counter()
        # True for planned maintenance ops living in RwaService._scheduled
        # rather than the FIFO queue — the supervisor re-plans (rather
        # than re-queues) these across a crash-restart
        self.scheduled = False


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list.

    Pinned edge cases: an empty list yields ``0.0`` for every ``q``; a
    single sample is every percentile of itself; ``q=0.0`` is the
    minimum and ``q=1.0`` the maximum (the rank clamps keep any ``q`` in
    ``[0, 1]`` inside the list).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(q * len(sorted_values) + 0.5) - 1))
    return sorted_values[rank]


class RwaService:
    """Async admission service around one online RWA engine.

    Parameters mirror :func:`~repro.online.simulator.simulate_online`'s
    engine/guard knobs, plus the service-specific ones:

    batch_policy:
        When set (one of
        :data:`~repro.online.transaction.BATCH_POLICIES`), consecutive
        queued arrivals sharing a deadline (``time``) are admitted as one
        atomic burst through ``admit_batch``.  ``None`` admits one by one.
    work_budget, burst, queue_depth, tenants:
        :class:`~repro.online.simulator.AdmissionGuard` configuration
        (any of the first three set turns the guard on); ``tenants``
        (``name -> weight``) gives every declared tenant its own
        weighted-fair-share token bucket, and the ``tenant=`` argument of
        :meth:`submit` selects the bucket per request.
    journal_path:
        When set, the service runs on a
        :class:`~repro.online.persistence.DurableEngine` journalling to
        this path (``snapshot_every`` / ``fsync`` pass through), so a
        crashed service recovers to the exact pre-crash engine via
        :func:`repro.online.persistence.recover`.  Shed arrivals never
        reach the engine and are deliberately *not* journalled — quota
        refusal is a front-door policy, not engine state.
    max_pending:
        Bound on the admission queue; when full, :meth:`submit` applies
        backpressure (awaits a slot) and :meth:`submit_nowait` raises
        ``asyncio.QueueFull``.  ``None`` = unbounded.
    restoration, restore_retries, restore_move_budget, revert_on_repair,
    restore_order:
        Fault-restoration knobs, exactly
        :func:`~repro.online.simulator.simulate_online`'s: they
        configure the lazily-built
        :class:`~repro.online.faults.FaultInjector` behind
        :meth:`cut`/:meth:`repair` (or pass through to the
        :class:`DurableEngine` when journalling).
    crash_after_n_ops:
        Test-only chaos hook: the consumer task raises a
        :class:`ServiceError` *between* ops once this many have been
        applied, killing itself with the remaining futures unresolved —
        the failure mode :class:`~repro.service.supervisor.
        ServiceSupervisor` recovers from.  ``None`` (the default) never
        crashes.
    metrics, tracer, profile:
        Shared observability hooks, handed to the engine (see
        :mod:`repro.obs`).  Decision-neutral as always.
    """

    def __init__(self, graph: DiGraph, wavelengths: int,
                 routing: str = "shortest", policy: str = "first_fit",
                 kempe_repair: bool = False, seed: Optional[int] = None,
                 k_candidates: int = 4, speculative: bool = False,
                 sharded: bool = False,
                 batch_policy: Optional[str] = None,
                 work_budget: Optional[float] = None,
                 burst: Optional[float] = None,
                 queue_depth: Optional[int] = None,
                 tenants: Optional[Dict[str, float]] = None,
                 journal_path: Optional[str] = None,
                 snapshot_every: Optional[int] = None,
                 fsync: bool = False,
                 max_pending: Optional[int] = None,
                 restoration: bool = True,
                 restore_retries: int = 2,
                 restore_move_budget: Optional[int] = None,
                 revert_on_repair: bool = False,
                 restore_order: str = "highest_wavelength",
                 crash_after_n_ops: Optional[int] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 profile=None,
                 _durable: Optional[DurableEngine] = None) -> None:
        if batch_policy is not None and batch_policy not in BATCH_POLICIES:
            raise ValueError(f"unknown batch policy {batch_policy!r}; "
                             f"expected one of {BATCH_POLICIES}")
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if restore_retries < 0:
            raise ValueError("restore_retries must be >= 0")
        if crash_after_n_ops is not None and crash_after_n_ops < 0:
            raise ValueError("crash_after_n_ops must be >= 0")
        self._durable: Optional[DurableEngine] = None
        if _durable is not None:
            # adopt an existing (typically recovered) durable engine —
            # the from_durable() path; engine-level kwargs were read back
            # from its genesis record by the caller
            if journal_path is not None:
                raise ValueError("pass either journal_path or _durable, "
                                 "not both")
            self._durable = _durable
            self._engine = _durable.engine
        elif journal_path is not None:
            if profile is not None:
                raise ValueError("profile is not supported on a durable "
                                 "service; attach it via tracer instead")
            self._durable = DurableEngine(
                graph, journal_path, wavelengths, routing=routing,
                policy=policy, kempe_repair=kempe_repair, seed=seed,
                k_candidates=k_candidates, speculative=speculative,
                sharded=sharded, snapshot_every=snapshot_every,
                restoration=restoration, restore_retries=restore_retries,
                restore_move_budget=restore_move_budget,
                revert_on_repair=revert_on_repair,
                restore_order=restore_order,
                fsync=fsync, metrics=metrics, tracer=tracer)
            self._engine = self._durable.engine
        else:
            self._engine = OnlineEngine(
                graph, wavelengths, routing=routing, policy=policy,
                kempe_repair=kempe_repair, seed=seed,
                k_candidates=k_candidates, speculative=speculative,
                sharded=sharded, metrics=metrics, tracer=tracer,
                profile=profile)
        registry = self._engine.metrics
        self._registry = registry
        self._tracer = self._engine.tracer
        self._wavelengths = wavelengths
        self._routing = routing
        self._policy = policy
        self._batch_policy = batch_policy
        self._speculative = speculative
        self._arrival_cost = float(k_candidates) if speculative else 1.0
        self._guard: Optional[AdmissionGuard] = None
        if work_budget is not None or queue_depth is not None or tenants:
            self._guard = AdmissionGuard(
                work_budget=work_budget, burst=burst,
                queue_depth=queue_depth, tenants=tenants, metrics=registry)
        elif burst is not None:
            raise ValueError("burst needs a work_budget")
        self._max_pending = max_pending
        self._queue: Optional[asyncio.Queue] = None
        self._drain_task: Optional[asyncio.Task] = None
        self._stopped = False
        self._last_time = float("-inf")
        self._admitted_at: Dict[int, float] = {}
        self._latencies: List[float] = []
        # decision bookkeeping, same shape simulate_online keeps
        self._accepted: List[int] = []
        self._blocked: List[int] = []
        self._rejections: Dict[int, str] = {}
        # every arrival's final outcome (None = admitted), kept forever:
        # the decision log that answers retry=True resubmissions without
        # a second engine decision
        self._decision: Dict[int, Optional[str]] = {}
        # A recovered engine carries its active lightpaths across a
        # crash even though the service-level bookkeeping above starts a
        # fresh epoch.  Seed the containers from the engine's admission
        # log (vertex_of iterates still-active requests in admission
        # order; empty for a fresh engine) so retry answers and fault
        # reconciliation see pre-crash admissions.
        for rid in self._engine.vertex_of:
            self._accepted.append(rid)
            self._decision[rid] = None
        # planned (future-time) maintenance ops, kept sorted by
        # (time, rank) and released into the stream by _process
        self._scheduled: List[_Op] = []
        self._current_batch: Optional[List[_Op]] = None
        self._crash_after = crash_after_n_ops
        self._ops_done = 0
        self._faults = FaultWiring(
            self._engine, self._accepted, self._blocked, self._rejections,
            restoration=restoration, retries=restore_retries,
            move_budget=restore_move_budget,
            revert_on_repair=revert_on_repair, order=restore_order,
            durable=self._durable)
        self._holding = registry.histogram(
            "result.holding_time", (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0))
        self._m_accepted = registry.counter("result.accepted")
        self._m_blocked = registry.counter("result.blocked")
        self._m_reason = {
            reason: registry.counter(f"result.blocked.{reason}")
            for reason in (NO_ROUTE, NO_WAVELENGTH, SHED, FIBRE_CUT)}

    @classmethod
    def from_durable(cls, durable: DurableEngine,
                     **service_kwargs) -> "RwaService":
        """Wrap an existing (typically freshly recovered) durable engine.

        Every engine-level knob (wavelengths, routing, policy, seed,
        speculation, sharding, restoration configuration) is read back
        from the journal's genesis record, so the wrapped service is
        configured exactly as the engine was journalled —
        ``service_kwargs`` carries only the service-level knobs
        (``batch_policy``, guard configuration, ``max_pending``,
        ``crash_after_n_ops``).  Observability hooks already live on the
        recovered engine, so ``metrics``/``tracer``/``profile`` (and the
        journal knobs, owned by ``durable``) are ignored here — as is
        any engine knob, because the genesis record is authoritative:
        callers (the supervisor in particular) may hold one kwargs dict
        that configured the first incarnation and pass it here verbatim.
        """
        genesis = durable.genesis
        for owned in ("metrics", "tracer", "profile", "journal_path",
                      "snapshot_every", "fsync",
                      # genesis-owned engine knobs (set explicitly below)
                      "graph", "wavelengths", "routing", "policy",
                      "kempe_repair", "seed", "k_candidates",
                      "speculative", "sharded", "restoration",
                      "restore_retries", "restore_move_budget",
                      "revert_on_repair", "restore_order"):
            service_kwargs.pop(owned, None)
        return cls(
            durable.engine.graph, genesis["wavelengths"],
            routing=genesis["routing"], policy=genesis["policy"],
            kempe_repair=genesis["kempe_repair"], seed=genesis["seed"],
            k_candidates=genesis["k_candidates"],
            speculative=genesis["speculative"], sharded=genesis["sharded"],
            restoration=genesis["restoration"],
            restore_retries=genesis["restore_retries"],
            restore_move_budget=genesis["restore_move_budget"],
            revert_on_repair=genesis["revert_on_repair"],
            restore_order=genesis["restore_order"],
            _durable=durable, **service_kwargs)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> "RwaService":
        """Create the admission queue and the drain task."""
        if self._drain_task is not None or self._stopped:
            raise ServiceError("service already started")
        self._queue = asyncio.Queue(self._max_pending or 0)
        self._drain_task = asyncio.get_running_loop().create_task(
            self._drain())
        return self

    async def stop(self) -> None:
        """Drain every queued request, then stop the consumer.

        Idempotent.  Requests enqueued before ``stop`` are decided;
        later submissions raise :class:`~repro.exceptions.ServiceError`.
        A durable service's journal is closed (the engine stays usable
        in memory, e.g. for fingerprinting).

        Stopping a *crashed* service (the consumer task died) raises
        :class:`ServiceError` immediately: there is no consumer left to
        drain the queue, so enqueueing the stop sentinel could block
        forever on a bounded queue — recover via :meth:`take_unfinished`
        or a :class:`~repro.service.supervisor.ServiceSupervisor`
        instead.
        """
        if self._stopped:
            return
        if self._drain_task is None:
            self._stopped = True
            return
        self._stopped = True
        task = self._drain_task
        if task.done() and (task.cancelled() or
                            task.exception() is not None):
            self._drain_task = None
            if self._durable is not None:
                self._durable.close()
            raise ServiceError(
                "cannot stop a crashed service: the consumer task died "
                "with queued ops undecided — collect them via "
                "take_unfinished() (or run under a ServiceSupervisor)"
            ) from (None if task.cancelled() else task.exception())
        loop = asyncio.get_running_loop()
        sentinel = _Op(_STOP, self._last_time, loop.create_future())
        await self._queue.put(sentinel)
        await self._drain_task
        self._drain_task = None
        if self._durable is not None:
            self._durable.close()

    async def __aenter__(self) -> "RwaService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    @property
    def running(self) -> bool:
        return self._drain_task is not None and not self._stopped

    @property
    def engine(self) -> OnlineEngine:
        """The live engine (fingerprint it via ``engine_fingerprint``)."""
        return self._engine

    @property
    def durable(self) -> Optional[DurableEngine]:
        """The journalling wrapper, when built with ``journal_path``."""
        return self._durable

    def fingerprint(self) -> Dict[str, Any]:
        """:func:`~repro.online.persistence.engine_fingerprint` of the
        live engine."""
        return engine_fingerprint(self._engine)

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def _enqueue_nowait(self, op: _Op) -> "asyncio.Future":
        if self._queue is None or self._stopped:
            raise ServiceError("service is not running (start() it, or "
                               "use 'async with RwaService(...)')")
        self._queue.put_nowait(op)
        return op.future

    def submit_nowait(self, request_id: int,
                      request: Optional[Request] = None,
                      dipath: Optional[Dipath] = None, *,
                      time: Optional[float] = None,
                      tenant: Optional[str] = None,
                      deadline: Optional[float] = None,
                      retry: bool = False) -> "asyncio.Future":
        """Enqueue one arrival without awaiting; returns its future.

        The future resolves to the rejection reason (``None`` =
        admitted), exactly :meth:`OnlineEngine.admit`'s contract.
        ``time`` is the arrival's event-time deadline (defaults to the
        newest deadline seen) — equal-deadline arrivals coalesce into
        one burst under a ``batch_policy``, and the admission guard's
        token buckets refill along this clock.  ``deadline`` is the
        event-time expiry (see :meth:`submit`); ``retry=True`` marks a
        resubmission of an already-submitted ``request_id``, answered
        from the decision log if the engine has decided it.  Raises
        ``asyncio.QueueFull`` when ``max_pending`` is hit.
        """
        loop = asyncio.get_running_loop()
        when = time if time is not None else max(self._last_time, 0.0)
        return self._enqueue_nowait(_Op(
            _ARRIVAL, when, loop.create_future(), request_id=request_id,
            request=request, dipath=dipath, tenant=tenant,
            deadline=deadline, retry=retry))

    async def submit(self, request_id: int,
                     request: Optional[Request] = None,
                     dipath: Optional[Dipath] = None, *,
                     time: Optional[float] = None,
                     tenant: Optional[str] = None,
                     deadline: Optional[float] = None,
                     timeout: Optional[float] = None,
                     retry: bool = False) -> Optional[str]:
        """Submit one arrival and await its decision.

        Returns ``None`` (admitted) or the rejection reason
        (:data:`~repro.online.simulator.NO_ROUTE` /
        :data:`~repro.online.simulator.NO_WAVELENGTH` /
        :data:`~repro.online.simulator.SHED`).  With ``max_pending``
        set, a full queue applies backpressure here instead of raising.

        ``deadline`` is an *event-time* expiry: if the service clock has
        passed it by the time the arrival is examined, the arrival is
        dropped before any routing or guard work and the future raises
        :class:`~repro.exceptions.Expired` (rejection reason
        ``"expired"`` in the result/metrics partition).

        ``timeout`` is a *wall-clock* cap on this caller's wait: when it
        elapses first, :class:`~repro.exceptions.TimedOut` is raised but
        the submission stays queued and is still decided exactly once —
        resubmit with ``retry=True`` to be answered from the decision
        log (see :class:`~repro.service.client.RetryingClient`).
        """
        if self._queue is None or self._stopped:
            raise ServiceError("service is not running (start() it, or "
                               "use 'async with RwaService(...)')")
        loop = asyncio.get_running_loop()
        when = time if time is not None else max(self._last_time, 0.0)
        op = _Op(_ARRIVAL, when, loop.create_future(),
                 request_id=request_id, request=request, dipath=dipath,
                 tenant=tenant, deadline=deadline, retry=retry)
        await self._queue.put(op)
        if timeout is None:
            return await op.future
        try:
            # shield: a timed-out wait must not cancel the op — the
            # engine still decides it exactly once
            return await asyncio.wait_for(asyncio.shield(op.future),
                                          timeout)
        except asyncio.TimeoutError:
            op.future.add_done_callback(_retrieve_quietly)
            raise TimedOut(request_id, timeout) from None

    def depart_nowait(self, request_id: int, *,
                      time: Optional[float] = None) -> "asyncio.Future":
        """Enqueue one departure; future resolves to ``held`` (bool)."""
        loop = asyncio.get_running_loop()
        when = time if time is not None else max(self._last_time, 0.0)
        return self._enqueue_nowait(_Op(
            _DEPART, when, loop.create_future(), request_id=request_id))

    async def depart(self, request_id: int, *,
                     time: Optional[float] = None) -> bool:
        """Release one lightpath and await the engine's acknowledgement."""
        future = self.depart_nowait(request_id, time=time)
        return await future

    async def request_defrag(self, order: str = "highest_wavelength",
                             max_moves: Optional[int] = None):
        """Queue a defragmentation pass; returns its ``DefragReport``.

        The pass runs in admission order like any other op, so it never
        interleaves with a burst.
        """
        loop = asyncio.get_running_loop()
        future = self._enqueue_nowait(_Op(
            _DEFRAG, self._last_time, loop.create_future(),
            order=order, max_moves=max_moves))
        return await future

    def cut_nowait(self, arc: Arc, *,
                   time: Optional[float] = None) -> "asyncio.Future":
        """Enqueue one fibre cut; its future resolves to the
        :class:`~repro.online.faults.FaultReport`.

        Runs in admission order like any other op: lightpaths on the
        fibre are torn down and (with ``restoration``) mass re-rerouted,
        and the accepted/blocked bookkeeping is reconciled exactly as
        :func:`simulate_online` does on a :data:`~repro.online.events.
        CUT` event.  At an equal timestamp the cut is ordered *before*
        coalesced arrivals (and after departures/repairs), per the
        events.py tie-break.
        """
        loop = asyncio.get_running_loop()
        when = time if time is not None else max(self._last_time, 0.0)
        return self._enqueue_nowait(_Op(_CUT, when, loop.create_future(),
                                        arc=arc))

    async def cut(self, arc: Arc, *,
                  time: Optional[float] = None) -> FaultReport:
        """Cut one fibre and await its :class:`FaultReport`."""
        return await self.cut_nowait(arc, time=time)

    def repair_nowait(self, arc: Arc, *,
                      time: Optional[float] = None) -> "asyncio.Future":
        """Enqueue one fibre repair; future resolves to its
        :class:`~repro.online.faults.FaultReport` (see
        :meth:`cut_nowait`)."""
        loop = asyncio.get_running_loop()
        when = time if time is not None else max(self._last_time, 0.0)
        return self._enqueue_nowait(_Op(_REPAIR, when, loop.create_future(),
                                        arc=arc))

    async def repair(self, arc: Arc, *,
                     time: Optional[float] = None) -> FaultReport:
        """Repair one cut fibre and await its :class:`FaultReport`."""
        return await self.repair_nowait(arc, time=time)

    def schedule_maintenance(
            self, arcs: Sequence[Arc], start: float, duration: float,
    ) -> Tuple[List["asyncio.Future"], List["asyncio.Future"]]:
        """Plan a maintenance window: cut every fibre in ``arcs`` at
        ``start``, repair it at ``start + duration``.

        The ops are *scheduled*, not queued: they sit outside the FIFO
        queue and are released into the stream when the service clock
        reaches them (each runs just before the first queued op whose
        ``(time, rank)`` is past it, or at :meth:`stop` if the stream
        ends first).  The cut edge of the window pre-emptively drains
        the fibre — every lightpath on it is torn down and the
        restoration plane immediately mass re-routes them elsewhere —
        so the fibre is empty for the whole window.  Decision-identical
        to replaying :func:`~repro.online.events.maintenance_events`
        through :func:`simulate_online` (the E21 maintenance gate).

        Returns ``(cut_futures, repair_futures)``, one per arc, each
        resolving to the op's :class:`FaultReport`.
        """
        if self._queue is None or self._stopped:
            raise ServiceError("service is not running (start() it, or "
                               "use 'async with RwaService(...)')")
        if duration <= 0:
            raise ValueError("duration must be positive")
        if not arcs:
            raise ValueError("arcs must be non-empty")
        loop = asyncio.get_running_loop()
        cut_futures: List[asyncio.Future] = []
        repair_futures: List[asyncio.Future] = []
        for arc in arcs:
            op = _Op(_CUT, float(start), loop.create_future(), arc=arc)
            self._schedule(op)
            cut_futures.append(op.future)
        for arc in arcs:
            op = _Op(_REPAIR, float(start) + float(duration),
                     loop.create_future(), arc=arc)
            self._schedule(op)
            repair_futures.append(op.future)
        return cut_futures, repair_futures

    def _schedule(self, op: _Op) -> None:
        # bisect.insort is stable for equal keys (inserts to the right),
        # so same-(time, rank) ops keep scheduling order
        op.scheduled = True
        bisect.insort(self._scheduled, op,
                      key=lambda o: (o.time, _op_rank(o)))

    def pending(self) -> int:
        """Operations queued but not yet decided."""
        return 0 if self._queue is None else self._queue.qsize()

    def take_unfinished(self) -> List[_Op]:
        """Collect every unresolved op after a consumer-task death.

        Only meaningful once the drain task has died (it raises
        :class:`ServiceError` while the consumer is alive): returns the
        batch the consumer was holding, everything still queued and any
        un-released scheduled maintenance ops (recognisable by their
        ``scheduled`` flag, so the supervisor re-plans instead of
        re-queueing them) — in original order, with already-decided ops
        (their futures resolved) filtered out.  The service is marked
        stopped; :class:`~repro.service.supervisor.ServiceSupervisor`
        resubmits these to the next incarnation.
        """
        if self._drain_task is not None and not self._drain_task.done():
            raise ServiceError("the consumer task is still alive; "
                               "take_unfinished() is a post-crash API")
        self._stopped = True
        ops = list(self._current_batch or [])
        self._current_batch = None
        if self._queue is not None:
            while True:
                try:
                    ops.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
        ops.extend(self._scheduled)
        self._scheduled = []
        return [op for op in ops
                if op.kind != _STOP and not op.future.done()]

    # ------------------------------------------------------------------ #
    # the drain task
    # ------------------------------------------------------------------ #
    async def _drain(self) -> None:
        queue = self._queue
        while True:
            op = await queue.get()
            ops = [op]
            while True:
                try:
                    ops.append(queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            stop_at = next((i for i, o in enumerate(ops)
                            if o.kind == _STOP), None)
            work = ops if stop_at is None else ops[:stop_at]
            if work:
                # held visibly while processing: if _process raises (the
                # chaos crash hook), take_unfinished() finds the batch's
                # undecided remainder here
                self._current_batch = work
                self._process(work)
                self._current_batch = None
            if stop_at is not None:
                # the stream is over: release any maintenance ops still
                # scheduled past the last submission, in planned order
                self._flush_scheduled()
                # ops raced in behind the sentinel lose: their futures
                # fail the same way a post-stop submit does
                for straggler in ops[stop_at + 1:]:
                    straggler.future.set_exception(
                        ServiceError("service stopped"))
                ops[stop_at].future.set_result(None)
                for _ in ops:
                    queue.task_done()
                return
            for _ in ops:
                queue.task_done()

    @staticmethod
    def _rank_runs(ops: List[_Op]) -> List[_Op]:
        """Stably reorder each run of equal-time ops by kind rank.

        The events.py tie-break (departure < repair < cut < arrival)
        applied to a drained batch: a no-op on a ``sort_events``-ordered
        trace, and the deterministic convention for live submissions
        whose same-timestamp ops raced into the queue in any order.
        Ops never move across distinct timestamps, so time-regression
        detection is untouched.
        """
        out: List[_Op] = []
        i = 0
        while i < len(ops):
            j = i + 1
            while j < len(ops) and ops[j].time == ops[i].time:
                j += 1
            run = ops[i:j]
            if len(run) > 1:
                run.sort(key=_op_rank)          # stable: FIFO within rank
            out.extend(run)
            i = j
        return out

    def _release_scheduled(self, up_to: _Op) -> None:
        """Run scheduled maintenance ops due before the next queued op."""
        key = (up_to.time, _op_rank(up_to))
        while self._scheduled and \
                (self._scheduled[0].time,
                 _op_rank(self._scheduled[0])) <= key:
            self._run_scheduled(self._scheduled.pop(0))

    def _flush_scheduled(self) -> None:
        while self._scheduled:
            self._run_scheduled(self._scheduled.pop(0))

    def _run_scheduled(self, op: _Op) -> None:
        # scheduled ops are released in (time, rank) order and never
        # ahead of the stream, so the clock only moves forward here
        self._last_time = max(self._last_time, op.time)
        if self._tracer is not None:
            self._tracer.advance(self._last_time)
        try:
            self._process_one(op)
        except Exception as exc:           # noqa: BLE001 - failure is per-op
            if not op.future.done():
                op.future.set_exception(exc)

    def _process(self, ops: List[_Op]) -> None:
        """Decide a drained batch.  Synchronous on purpose: no await
        happens between the first and last decision, so reads issued
        from other coroutines always observe the engine between
        batches."""
        ops = self._rank_runs(ops)
        index = 0
        while index < len(ops):
            op = ops[index]
            group = [op]
            if self._batch_policy is not None and op.kind == _ARRIVAL:
                j = index + 1
                while j < len(ops) and ops[j].kind == _ARRIVAL and \
                        ops[j].time == op.time:
                    group.append(ops[j])
                    j += 1
            index += len(group)
            if self._crash_after is not None and \
                    self._ops_done >= self._crash_after:
                # chaos hook: die between ops, exactly at a journal
                # record boundary — the unapplied remainder of the batch
                # is what take_unfinished() hands the supervisor
                raise ServiceError(
                    f"injected crash after {self._ops_done} ops")
            if op.time < self._last_time:
                # a retry=True resubmission legitimately carries its
                # *original* time, which later traffic may have passed
                # while the first attempt's decision was in flight —
                # the idempotency contract answers it from the decision
                # log before the time-regression check can reject it
                for member in group:
                    if self._answer_retry(member):
                        continue
                    member.future.set_exception(SimulationError(
                        f"submissions are not time-ordered at request "
                        f"{member.request_id}"))
                continue
            self._release_scheduled(op)
            self._last_time = op.time
            if self._tracer is not None:
                self._tracer.advance(op.time)
            try:
                if len(group) > 1:
                    self._process_burst(group)
                else:
                    self._process_one(op)
            except Exception as exc:       # noqa: BLE001 - failure is per-op
                for member in group:
                    if not member.future.done():
                        member.future.set_exception(exc)
            self._ops_done += len(group)

    def _reason_counter(self, reason: str):
        counter = self._m_reason.get(reason)
        if counter is None:
            # created lazily (EXPIRED): a deadline-free run's metrics
            # snapshot must stay byte-identical to simulate_online's,
            # which knows only the four standard reasons
            counter = self._registry.counter(f"result.blocked.{reason}")
            self._m_reason[reason] = counter
        return counter

    def _decide(self, op: _Op, reason: Optional[str]) -> None:
        """Record one arrival's final decision and resolve its future."""
        self._decision[op.request_id] = reason
        if reason is None:
            self._accepted.append(op.request_id)
            self._admitted_at[op.request_id] = op.time
            self._m_accepted.inc()
        else:
            self._blocked.append(op.request_id)
            self._rejections[op.request_id] = reason
            self._m_blocked.inc()
            self._reason_counter(reason).inc()
        self._latencies.append(_time.perf_counter() - op.submitted)
        op.future.set_result(reason)

    def _answer_retry(self, op: _Op) -> bool:
        """Answer a ``retry=True`` resubmission from the decision log.

        The idempotency half of the retry contract: an already-decided
        ``request_id`` is never decided again — no engine work, no guard
        tokens, no metric increments, just the recorded outcome (or the
        :class:`Expired` it raised the first time).
        """
        if not op.retry or op.request_id not in self._decision:
            return False
        reason = self._decision[op.request_id]
        if reason == EXPIRED:
            op.future.set_exception(
                Expired(op.request_id, op.deadline, time=op.time))
        else:
            op.future.set_result(reason)
        return True

    def _expire(self, op: _Op) -> bool:
        """Drop an arrival whose event-time deadline has passed.

        Checked before the admission guard: an expired arrival consumes
        no guard tokens and triggers no routing work.  It is recorded as
        blocked with the :data:`EXPIRED` reason (its own metrics
        partition) and its future raises :class:`Expired`.
        """
        if op.deadline is None or op.time <= op.deadline:
            return False
        if self._tracer is not None:
            self._tracer.event("expired", rid=op.request_id)
        self._decision[op.request_id] = EXPIRED
        self._blocked.append(op.request_id)
        self._rejections[op.request_id] = EXPIRED
        self._m_blocked.inc()
        self._reason_counter(EXPIRED).inc()
        self._latencies.append(_time.perf_counter() - op.submitted)
        op.future.set_exception(
            Expired(op.request_id, op.deadline, time=op.time))
        return True

    def _shed(self, op: _Op) -> bool:
        guard = self._guard
        if guard is None or guard.admits(op.time, self._arrival_cost,
                                         tenant=op.tenant):
            return False
        if self._tracer is not None:
            self._tracer.event("shed", rid=op.request_id)
        self._decide(op, SHED)
        return True

    def _process_one(self, op: _Op) -> None:
        if op.kind == _ARRIVAL:
            if self._answer_retry(op) or self._expire(op) or \
                    self._shed(op):
                return
            backend = self._durable or self._engine
            self._decide(op, backend.admit(op.request_id,
                                           request=op.request,
                                           dipath=op.dipath))
        elif op.kind == _DEPART:
            backend = self._durable or self._engine
            held = backend.depart(op.request_id)
            # a departed request must never be resurrected by a later
            # repair (the durable path already forgets inside depart;
            # FaultInjector.forget is idempotent)
            self._faults.forget(op.request_id)
            t0 = self._admitted_at.pop(op.request_id, None)
            if held and t0 is not None:
                self._holding.observe(op.time - t0)
            op.future.set_result(held)
        elif op.kind == _CUT or op.kind == _REPAIR:
            if op.arc is None:
                raise SimulationError(
                    f"fault op at time {op.time} carries no arc")
            report = (self._faults.cut(op.arc) if op.kind == _CUT
                      else self._faults.repair(op.arc))
            op.future.set_result(report)
        elif op.kind == _DEFRAG:
            backend = self._durable or self._engine
            op.future.set_result(backend.defrag(order=op.order,
                                                max_moves=op.max_moves))
        else:                              # pragma: no cover - internal
            raise ServiceError(f"unknown op kind {op.kind!r}")

    def _process_burst(self, group: List[_Op]) -> None:
        kept = [op for op in group
                if not (self._answer_retry(op) or self._expire(op)
                        or self._shed(op))]
        if not kept:
            return
        events = [Event(time=op.time, kind=ARRIVAL,
                        request_id=op.request_id, request=op.request,
                        dipath=op.dipath) for op in kept]
        backend = self._durable or self._engine
        reasons = backend.admit_batch(events, policy=self._batch_policy)
        for op in kept:
            self._decide(op, reasons[op.request_id])

    # ------------------------------------------------------------------ #
    # reads (coherent snapshots, never queued)
    # ------------------------------------------------------------------ #
    def utilisation(self) -> Dict[str, float]:
        """Live capacity usage between batches."""
        engine = self._engine
        in_use = engine.assigner.colors_in_use()
        return {
            "active": float(engine.active),
            "wavelengths_in_use": float(in_use),
            "wavelengths_available": float(self._wavelengths),
            "utilisation": in_use / self._wavelengths,
            "max_fibre_load": float(engine.family.load()),
        }

    def shard_map(self) -> Dict[int, List[int]]:
        """Live conflict components (see :meth:`OnlineEngine.shard_map`)."""
        return self._engine.shard_map()

    def blocking_stats(self) -> Dict[str, Any]:
        """Decision totals so far, split by reason and by shed tenant."""
        accepted, blocked = len(self._accepted), len(self._blocked)
        total = accepted + blocked
        by_reason: Dict[str, int] = {}
        for reason in self._rejections.values():
            by_reason[reason] = by_reason.get(reason, 0) + 1
        return {
            "accepted": accepted,
            "blocked": blocked,
            "blocking_rate": blocked / total if total else 0.0,
            "by_reason": by_reason,
            "shed_by_tenant": (self._guard.tenant_shed_counts()
                               if self._guard is not None else {}),
        }

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Snapshot of the shared metrics registry."""
        return self._registry.snapshot()

    def trace_records(self) -> List[Dict[str, Any]]:
        """Records collected by the attached tracer (empty without one)."""
        return [] if self._tracer is None else self._tracer.records()

    def latency_stats(self) -> Dict[str, float]:
        """Wall-clock submit→decision latency over all decided arrivals.

        Wall-clock numbers live here and only here — they never enter
        the metrics registry, whose deterministic section must be a pure
        function of the trace.
        """
        ordered = sorted(self._latencies)
        count = len(ordered)
        return {
            "count": float(count),
            "mean_s": sum(ordered) / count if count else 0.0,
            "p50_s": _percentile(ordered, 0.50),
            "p99_s": _percentile(ordered, 0.99),
            "max_s": ordered[-1] if ordered else 0.0,
        }

    def result(self) -> OnlineResult:
        """The run so far as an :class:`OnlineResult`.

        Field-for-field comparable with a ``simulate_online`` run over
        the same trace (timeline excluded — the service records none).
        Settles the conflict shards first, exactly as the trace loop
        does before reading its component counters.
        """
        engine = self._engine
        result = OnlineResult(
            accepted=list(self._accepted), blocked=list(self._blocked),
            rejections=dict(self._rejections),
            wavelengths_available=self._wavelengths,
            routing=self._routing, policy=self._policy,
            speculative=self._speculative,
            batch_policy=self._batch_policy, sharded=engine.sharded)
        result.fibre_cuts = self._faults.cuts
        result.fibre_repairs = self._faults.repairs
        result.lightpaths_stranded = self._faults.stranded
        result.lightpaths_restored = self._faults.restored
        result.wavelengths_used = engine.assigner.colors_ever_used()
        result.kempe_repairs = engine.assigner.kempe_repairs
        result.defrag_passes = engine.defrag_passes
        result.defrag_moves = engine.defrag_moves
        result.wavelengths_reclaimed = engine.wavelengths_reclaimed
        engine.conflict.refresh_shards()
        result.component_merges = engine.conflict.component_merges
        result.component_splits = engine.conflict.component_splits
        result.shard_rebuilds = engine.conflict.shard_rebuilds
        registry = self._registry
        # settle the final-outcome counters exactly as the trace loop
        # does: fault reconciliation moves requests between the lists
        # retroactively, so the live increments can overcount
        registry.counter("result.accepted").set(len(self._accepted))
        registry.counter("result.blocked").set(len(self._blocked))
        for reason in self._m_reason:
            registry.counter(f"result.blocked.{reason}").set(
                sum(1 for r in self._rejections.values() if r == reason))
        registry.counter("result.kempe_repairs").set(result.kempe_repairs)
        registry.gauge("result.wavelengths_used").set(
            result.wavelengths_used)
        registry.gauge("result.active_at_end").set(engine.active)
        result.metrics = registry.snapshot()
        result.engine = engine
        return result


async def aserve_trace(graph: DiGraph, events: List[Event],
                       wavelengths: int,
                       tenant_of: Optional[Callable[[Event],
                                                    Optional[str]]] = None,
                       **service_kwargs) -> OnlineResult:
    """Replay an ordered trace through a fresh :class:`RwaService`.

    The whole trace is enqueued before the drain task runs a single op,
    so the service sees exactly the grouping ``simulate_online`` sees —
    this is the decision-identity harness the E19 and E21 gates run.
    Fault events are enqueued as first-class cut/repair ops (on a
    private graph copy, exactly as ``simulate_online`` runs them).
    ``tenant_of`` maps an event to the tenant name submitted with it
    (``None`` = default).
    """
    graph = fault_surface(graph, events)
    service = RwaService(graph, wavelengths, **service_kwargs)
    async with service:
        futures = []
        for event in events:
            if event.kind == ARRIVAL:
                tenant = tenant_of(event) if tenant_of is not None else None
                futures.append(service.submit_nowait(
                    event.request_id, request=event.request,
                    dipath=event.dipath, time=event.time, tenant=tenant))
            elif event.kind == DEPARTURE:
                futures.append(service.depart_nowait(event.request_id,
                                                     time=event.time))
            elif event.kind in (CUT, REPAIR):
                if event.arc is None:
                    raise SimulationError(
                        f"fault event at time {event.time} carries no arc")
                enqueue = (service.cut_nowait if event.kind == CUT
                           else service.repair_nowait)
                futures.append(enqueue(event.arc, time=event.time))
            else:
                raise SimulationError(
                    f"unknown event kind {event.kind!r}")
        # resolve every decision before tearing the service down; any
        # malformed-traffic exception surfaces here
        for future in futures:
            await future
        result = service.result()
    result.latency = service.latency_stats()
    return result


def serve_trace(graph: DiGraph, events: List[Event], wavelengths: int,
                **kwargs) -> OnlineResult:
    """Synchronous wrapper around :func:`aserve_trace` (private loop).

    Returns the service's :meth:`RwaService.result`, with the live
    engine attached as ``result.engine`` and the wall-clock latency
    summary as ``result.latency`` — compare decisions against
    :func:`simulate_online` and fingerprints via
    :func:`~repro.online.persistence.engine_fingerprint`.
    """
    return asyncio.run(aserve_trace(graph, events, wavelengths, **kwargs))
