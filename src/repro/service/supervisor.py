"""Supervised crash-restart for the durable RWA service.

:class:`ServiceSupervisor` runs a journal-backed :class:`~repro.service.
RwaService` and watches its consumer task.  A healthy service never
needs it; the value is in the failure path:

1. **Detection.**  The supervisor awaits the drain task.  A clean return
   (:meth:`RwaService.stop`) ends supervision; an exception — in tests
   injected deterministically via the ``crash_after_n_ops`` hook, which
   dies *between* ops, i.e. at a journal record boundary — triggers the
   restart protocol.
2. **Restart.**  The crashed incarnation's unresolved ops are collected
   (:meth:`RwaService.take_unfinished`: the batch the consumer held,
   everything still queued, un-released maintenance ops), its journal
   file handle is closed, and a fresh incarnation is built by
   :func:`~repro.online.persistence.recover` +
   :meth:`RwaService.from_durable` — the recovered engine is
   bit-identical to the pre-crash engine, because every applied op was
   journalled before its successor ran.
3. **Re-resolution.**  The unresolved ops are resubmitted to the new
   incarnation in original order with ``retry=True``, and each original
   future is chained to its replacement — a caller that was awaiting
   across the crash transparently receives the decision the restarted
   engine makes (or its typed :class:`~repro.exceptions.Expired`).
   Because the crash falls between ops, no op is half-applied: the
   journal replays exactly the applied prefix and the resubmitted suffix
   continues it, so the final :func:`~repro.online.persistence.
   engine_fingerprint` **converges to the uncrashed run's** — the E21
   chaos gate fuzzes this over random crash offsets.
4. **Give-up.**  When ``max_restarts`` is exhausted, every unresolved
   future fails with a typed :class:`~repro.exceptions.ServiceError`
   instead of hanging forever.

What does *not* survive a crash: admission-guard token-bucket levels
(the guard is front-door policy, deliberately not journalled — a
restarted guard starts with full buckets) and wall-clock latency
samples.  Fingerprint convergence is therefore stated for guardless
services; with a guard, decisions after a restart may legitimately
differ from an uncrashed run's exactly as they would between two
services started at different times.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from ..exceptions import ServiceError, TimedOut
from ..graphs import DiGraph
from ..online.persistence import recover
from .service import (RwaService, _ARRIVAL, _CUT, _DEFRAG, _DEPART,
                      _REPAIR, _Op, _retrieve_quietly)

__all__ = ["ServiceSupervisor"]


def _chain(source: "asyncio.Future", target: "asyncio.Future") -> None:
    """Forward one future's outcome to another (a pre-crash future a
    caller may still be awaiting)."""
    def _copy(done: "asyncio.Future") -> None:
        if target.done():
            return
        if done.cancelled():
            target.cancel()
        elif done.exception() is not None:
            target.set_exception(done.exception())
        else:
            target.set_result(done.result())
    source.add_done_callback(_copy)


class ServiceSupervisor:
    """Run a durable :class:`RwaService`, restarting it on consumer death.

    Parameters
    ----------
    graph, wavelengths:
        Passed to the first incarnation (later incarnations rebuild the
        topology from the journal's genesis record).
    journal_path:
        The journal every incarnation appends to — the durable thread of
        identity across crashes.
    max_restarts:
        Restart budget; once exhausted, unresolved futures fail with a
        typed :class:`ServiceError` instead of restarting again.
    crash_after_n_ops:
        Test-only chaos hook, applied to the **first** incarnation only
        (so one injected crash exercises exactly one restart).
    service_kwargs:
        Remaining :class:`RwaService` keywords — engine knobs for the
        first incarnation plus service-level knobs (``batch_policy``,
        guard configuration, ...) applied to every incarnation.
        Restarted incarnations read the engine knobs back from the
        journal's genesis record (:meth:`RwaService.from_durable`
        ignores the copies held here), so one kwargs dict safely
        configures every incarnation.
    """

    def __init__(self, graph: DiGraph, wavelengths: int, *,
                 journal_path: str, max_restarts: int = 3,
                 crash_after_n_ops: Optional[int] = None,
                 **service_kwargs) -> None:
        if max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        self._graph = graph
        self._wavelengths = wavelengths
        self._journal_path = journal_path
        self._max_restarts = max_restarts
        self._crash_after = crash_after_n_ops
        self._kwargs = dict(service_kwargs)
        self._service: Optional[RwaService] = None
        self._watcher: Optional[asyncio.Task] = None
        self._restarts = 0
        self._failed = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> "ServiceSupervisor":
        if self._service is not None:
            raise ServiceError("supervisor already started")
        service = RwaService(self._graph, self._wavelengths,
                             journal_path=self._journal_path,
                             crash_after_n_ops=self._crash_after,
                             **self._kwargs)
        await service.start()
        self._service = service
        self._watcher = asyncio.get_running_loop().create_task(
            self._watch())
        return self

    async def stop(self) -> None:
        """Stop supervision, then drain and stop the live incarnation."""
        if self._watcher is not None:
            self._watcher.cancel()
            try:
                await self._watcher
            except asyncio.CancelledError:
                pass
            self._watcher = None
        service = self._service
        if service is None:
            return
        task = service._drain_task
        if task is not None and task.done() and \
                task.exception() is not None:
            # crashed and past the restart budget: the journal is
            # already closed and every future already failed
            return
        await service.stop()

    async def __aenter__(self) -> "ServiceSupervisor":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    @property
    def service(self) -> Optional[RwaService]:
        """The live incarnation (changes identity across restarts)."""
        return self._service

    @property
    def restarts(self) -> int:
        """Restarts performed so far."""
        return self._restarts

    @property
    def failed(self) -> bool:
        """Whether the restart budget was exhausted."""
        return self._failed

    # ------------------------------------------------------------------ #
    # submission proxies (route to the live incarnation)
    # ------------------------------------------------------------------ #
    def submit_nowait(self, request_id, request=None, dipath=None, *,
                      time=None, tenant=None, deadline=None,
                      retry=False) -> "asyncio.Future":
        """:meth:`RwaService.submit_nowait` on the live incarnation.

        The returned future survives a crash-restart: if this op was
        unresolved when the consumer died, the supervisor resubmits it
        and chains the replacement's outcome back into this future.
        """
        return self._service.submit_nowait(
            request_id, request=request, dipath=dipath, time=time,
            tenant=tenant, deadline=deadline, retry=retry)

    async def submit(self, request_id, request=None, dipath=None, *,
                     time=None, tenant=None, deadline=None,
                     timeout=None, retry=False):
        """:meth:`RwaService.submit` across crash-restarts."""
        future = self.submit_nowait(request_id, request=request,
                                    dipath=dipath, time=time,
                                    tenant=tenant, deadline=deadline,
                                    retry=retry)
        if timeout is None:
            return await future
        try:
            return await asyncio.wait_for(asyncio.shield(future), timeout)
        except asyncio.TimeoutError:
            future.add_done_callback(_retrieve_quietly)
            raise TimedOut(request_id, timeout) from None

    def depart_nowait(self, request_id, *, time=None) -> "asyncio.Future":
        return self._service.depart_nowait(request_id, time=time)

    async def depart(self, request_id, *, time=None) -> bool:
        return await self.depart_nowait(request_id, time=time)

    def cut_nowait(self, arc, *, time=None) -> "asyncio.Future":
        return self._service.cut_nowait(arc, time=time)

    def repair_nowait(self, arc, *, time=None) -> "asyncio.Future":
        return self._service.repair_nowait(arc, time=time)

    def schedule_maintenance(self, arcs, start, duration):
        return self._service.schedule_maintenance(arcs, start, duration)

    # ------------------------------------------------------------------ #
    # the watcher
    # ------------------------------------------------------------------ #
    async def _watch(self) -> None:
        while True:
            task = self._service._drain_task
            if task is None:                 # pragma: no cover - defensive
                return
            try:
                await asyncio.shield(task)
                return                       # clean stop
            except asyncio.CancelledError:
                if task.done() and task.exception() is not None:
                    pass                     # crash raced our cancellation
                else:
                    raise
            except Exception:                # noqa: BLE001 - any crash
                pass
            await self._restart()
            if self._failed:
                return

    async def _restart(self) -> None:
        crashed = self._service
        pending: list = []
        try:
            pending = crashed.take_unfinished()
            if crashed.durable is not None:
                crashed.durable.close()
            if self._restarts >= self._max_restarts:
                self._failed = True
                for op in pending:
                    op.future.set_exception(ServiceError(
                        f"service crashed and the restart budget "
                        f"({self._max_restarts}) is exhausted; "
                        f"op {op.kind!r} (request {op.request_id}) was "
                        f"not applied"))
                return
            self._restarts += 1
            durable = recover(self._journal_path,
                              metrics=self._kwargs.get("metrics"),
                              tracer=self._kwargs.get("tracer"))
            service = RwaService.from_durable(durable, **self._kwargs)
            await service.start()
            self._service = service
            # Resubmit in original order.  The crash falls between ops,
            # so nothing here was applied (applied ops resolve their
            # futures synchronously after journalling and are filtered
            # out); retry=True still matters when the same request_id
            # appears twice among the unresolved ops (an original plus
            # a client retry) — the new incarnation decides it once.
            for op in pending:
                self._resubmit(service, op)
        except Exception as exc:        # noqa: BLE001 - a failed restart
            # (unreadable journal, re-queue overflow, ...) must fail the
            # waiters typed instead of killing _watch with them hanging
            self._failed = True
            for op in pending:
                if not op.future.done():
                    op.future.set_exception(ServiceError(
                        f"restart failed ({exc!r}); op {op.kind!r} "
                        f"(request {op.request_id}) was not applied"))

    def _resubmit(self, service: RwaService, op: _Op) -> None:
        if op.scheduled and op.kind in (_CUT, _REPAIR):
            # an un-released maintenance op: re-plan it on the new
            # incarnation instead of queueing it — queueing would run
            # it immediately, dragging the service clock forward to the
            # window time and failing every earlier queued submission
            # on the time-regression check
            loop = asyncio.get_running_loop()
            replacement = _Op(op.kind, op.time, loop.create_future(),
                              arc=op.arc)
            service._schedule(replacement)
            _chain(replacement.future, op.future)
            return
        if op.kind == _ARRIVAL:
            fut = service.submit_nowait(
                op.request_id, request=op.request, dipath=op.dipath,
                time=op.time, tenant=op.tenant, deadline=op.deadline,
                retry=True)
        elif op.kind == _DEPART:
            fut = service.depart_nowait(op.request_id, time=op.time)
        elif op.kind == _CUT:
            fut = service.cut_nowait(op.arc, time=op.time)
        elif op.kind == _REPAIR:
            fut = service.repair_nowait(op.arc, time=op.time)
        elif op.kind == _DEFRAG:
            loop = asyncio.get_running_loop()
            replacement = _Op(_DEFRAG, op.time, loop.create_future(),
                              order=op.order, max_moves=op.max_moves)
            fut = service._enqueue_nowait(replacement)
        else:                              # pragma: no cover - internal
            op.future.set_exception(ServiceError(
                f"cannot resubmit op kind {op.kind!r}"))
            return
        _chain(fut, op.future)
