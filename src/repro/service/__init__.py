"""RWA-as-a-service: the asyncio admission front-end.

See :mod:`repro.service.service` for the design notes; the headline
contract is that :class:`RwaService` makes bit-identical decisions to
:func:`repro.online.simulator.simulate_online` on the same ordered trace
(:func:`serve_trace` is the replay harness the E19 and E21 gates run) —
fibre cut/repair ops and scheduled maintenance windows included — while
serving concurrent read queries from coherent between-batch snapshots
and shedding overload per tenant.

The chaos-hardening layer (PR 10): :class:`ServiceSupervisor` restarts a
crashed durable service from its journal and re-resolves in-flight
futures (fingerprint-convergent with an uncrashed run);
:class:`RetryingClient` retries :class:`~repro.exceptions.TimedOut`
submissions with capped, seeded exponential backoff under the
retry-idempotency contract (the engine decides each request once);
deadline-expired arrivals fail typed with :class:`~repro.exceptions.
Expired` under the :data:`EXPIRED` rejection reason.
"""

from ..exceptions import Expired, TimedOut
from .client import RetryingClient
from .service import EXPIRED, RwaService, aserve_trace, serve_trace
from .supervisor import ServiceSupervisor

__all__ = ["EXPIRED", "Expired", "RetryingClient", "RwaService",
           "ServiceSupervisor", "TimedOut", "aserve_trace", "serve_trace"]
