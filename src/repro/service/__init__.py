"""RWA-as-a-service: the asyncio admission front-end.

See :mod:`repro.service.service` for the design notes; the headline
contract is that :class:`RwaService` makes bit-identical decisions to
:func:`repro.online.simulator.simulate_online` on the same ordered trace
(:func:`serve_trace` is the replay harness the E19 gate runs), while
serving concurrent read queries from coherent between-batch snapshots
and shedding overload per tenant.
"""

from .service import RwaService, aserve_trace, serve_trace

__all__ = ["RwaService", "aserve_trace", "serve_trace"]
