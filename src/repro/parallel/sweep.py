"""Parameter sweeps for experiments.

A :class:`Sweep` describes a grid of parameter combinations plus a number of
seeded repetitions per point; :func:`run_sweep` evaluates a callable on every
(parameters, seed) pair, optionally in parallel, and returns flat result
records ready for tabulation by :mod:`repro.analysis.tables`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from .executor import parallel_map

__all__ = ["Sweep", "run_sweep"]


@dataclass
class Sweep:
    """A cartesian parameter grid with seeded repetitions.

    Attributes
    ----------
    parameters:
        Mapping ``name -> list of values``; the sweep enumerates the cartesian
        product.
    repetitions:
        Number of seeded repetitions per grid point.
    base_seed:
        Seeds are ``base_seed + i`` for the ``i``-th (point, repetition) pair,
        so runs are reproducible and independent of parallelism.
    """

    parameters: Mapping[str, Sequence[Any]]
    repetitions: int = 1
    base_seed: int = 0

    def points(self) -> List[Dict[str, Any]]:
        """All parameter combinations (without seeds)."""
        names = list(self.parameters)
        combos = itertools.product(*(self.parameters[n] for n in names))
        return [dict(zip(names, values)) for values in combos]

    def tasks(self) -> List[Dict[str, Any]]:
        """All (parameters + seed) dictionaries, in deterministic order."""
        out: List[Dict[str, Any]] = []
        counter = 0
        for point in self.points():
            for _ in range(self.repetitions):
                task = dict(point)
                task["seed"] = self.base_seed + counter
                counter += 1
                out.append(task)
        return out

    def __len__(self) -> int:
        return len(self.points()) * self.repetitions


def run_sweep(func: Callable[..., Dict[str, Any]], sweep: Sweep,
              workers: Optional[int] = None) -> List[Dict[str, Any]]:
    """Evaluate ``func(**task)`` for every task of the sweep.

    ``func`` must accept the sweep's parameter names plus ``seed`` as keyword
    arguments and return a dict of result fields; the returned records merge
    the input parameters with the results.
    """
    tasks = sweep.tasks()
    results = parallel_map(_call_with_kwargs, [(func, t) for t in tasks],
                           workers=workers)
    records: List[Dict[str, Any]] = []
    for task, result in zip(tasks, results):
        record = dict(task)
        record.update(result)
        records.append(record)
    return records


def _call_with_kwargs(func: Callable[..., Dict[str, Any]],
                      kwargs: Dict[str, Any]) -> Dict[str, Any]:
    return func(**kwargs)
