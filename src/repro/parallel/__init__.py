"""Parallel experiment execution (process-pool map and parameter sweeps)."""

from .executor import (
    chunked,
    default_workers,
    in_worker_process,
    parallel_map,
    shutdown_shared_pool,
)
from .sweep import Sweep, run_sweep

__all__ = ["Sweep", "chunked", "default_workers", "in_worker_process",
           "parallel_map", "run_sweep", "shutdown_shared_pool"]
