"""Parallel experiment execution (process-pool map and parameter sweeps)."""

from .executor import chunked, default_workers, parallel_map
from .sweep import Sweep, run_sweep

__all__ = ["Sweep", "chunked", "default_workers", "parallel_map", "run_sweep"]
