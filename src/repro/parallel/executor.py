"""Parallel execution of experiment workloads.

The randomised sweeps (Theorem 1 / Main Theorem verification over hundreds of
random instances, scaling studies) are embarrassingly parallel: every
instance is independent.  This module provides a small, dependency-free
process-pool map with

* deterministic per-task seeding (the caller passes a base seed; each task
  receives ``base_seed + index`` so results are reproducible regardless of
  the degree of parallelism),
* chunking (to amortise inter-process communication, per the HPC guidance of
  profiling first and keeping per-task work around the 10s-100ms sweet spot),
* a sequential fallback (``workers=1`` or ``workers=None`` on platforms where
  process pools are unavailable), used automatically for tiny workloads,
* a nested-pool guard: a :func:`parallel_map` call made *from inside a
  worker process* (e.g. a parallel sweep whose task function itself calls
  ``parallel_map``) silently degrades to the serial path instead of
  spawning grandchild processes — on spawn-only platforms a nested pool
  can deadlock waiting for workers the child is not allowed to start.

Results are identical to the serial ``map`` in content and order no matter
which path executes — the fallback never changes semantics, only where the
work runs.  Only picklable callables and arguments may be used with
``workers > 1`` (standard :mod:`multiprocessing` constraint).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["parallel_map", "default_workers", "chunked",
           "in_worker_process", "shutdown_shared_pool"]


def in_worker_process() -> bool:
    """Whether this process is a multiprocessing worker (nested-pool guard)."""
    return multiprocessing.parent_process() is not None


# Shared pool for repeated fan-outs (see parallel_map(reuse_pool=True)):
# the sharded online engine schedules a per-shard task batch every few
# hundred events, and paying a fresh process spawn per defragmentation
# pass would eat the parallel win whole.  One pool per worker count is
# kept; shutdown happens at interpreter exit or explicitly.
_shared_pool: Optional[ProcessPoolExecutor] = None
_shared_pool_workers: int = 0


def shutdown_shared_pool() -> None:
    """Shut down the pool kept by ``parallel_map(reuse_pool=True)``.

    Idempotent, and safe on a pool whose workers already died (a broken
    pool's ``shutdown`` may raise while reaping its processes): the
    module-level reference is dropped *before* the shutdown call, so the
    pool is never shut down twice and a failed shutdown still leaves the
    module ready to start a fresh pool.  Registered with :mod:`atexit`
    at import time so long-lived callers (services, REPLs) do not leak
    worker processes past interpreter exit.
    """
    global _shared_pool, _shared_pool_workers
    pool, _shared_pool, _shared_pool_workers = _shared_pool, None, 0
    if pool is not None:
        try:
            pool.shutdown()
        except Exception:       # pragma: no cover - depends on kill timing
            pass                # broken pool: workers are already gone


# One registration, unconditionally at import: the previous scheme
# registered inside _get_shared_pool on first creation, which leaked the
# pool created *after* an explicit shutdown_shared_pool() + re-fan-out
# cycle re-registered the hook a second time.
atexit.register(shutdown_shared_pool)


def _get_shared_pool(workers: int) -> ProcessPoolExecutor:
    global _shared_pool, _shared_pool_workers
    if _shared_pool is None or _shared_pool_workers != workers:
        shutdown_shared_pool()
        _shared_pool = ProcessPoolExecutor(max_workers=workers)
        _shared_pool_workers = workers
    return _shared_pool


def default_workers() -> int:
    """A sensible default worker count: ``cpu_count - 1`` (at least 1)."""
    return max(1, (os.cpu_count() or 2) - 1)


def chunked(items: Sequence[T], chunk_size: int) -> List[List[T]]:
    """Split ``items`` into consecutive chunks of at most ``chunk_size``."""
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    return [list(items[i:i + chunk_size]) for i in range(0, len(items), chunk_size)]


def _run_chunk(func: Callable[..., R], chunk: List) -> List[R]:
    return [func(*args) if isinstance(args, tuple) else func(args)
            for args in chunk]


def parallel_map(func: Callable[..., R], tasks: Iterable,
                 workers: Optional[int] = None,
                 chunk_size: Optional[int] = None,
                 sequential_threshold: int = 8,
                 reuse_pool: bool = False) -> List[R]:
    """Apply ``func`` to every task, optionally across processes.

    Parameters
    ----------
    func:
        A picklable callable.  Each task is either a single argument or a
        tuple of positional arguments.
    tasks:
        Iterable of tasks.  Order of results matches the order of tasks.
    workers:
        Number of worker processes.  ``None`` uses :func:`default_workers`;
        ``1`` forces sequential execution (also used automatically when there
        are at most ``sequential_threshold`` tasks, where process start-up
        would dominate, when called from inside a worker process, and when
        the platform cannot start a process pool at all).
    chunk_size:
        Number of tasks per inter-process work unit; defaults to an even
        split across workers.
    reuse_pool:
        Keep the process pool alive between calls (one shared pool per
        worker count, shut down at interpreter exit or via
        :func:`shutdown_shared_pool`).  For callers that fan out
        repeatedly — the sharded engine runs a per-shard task batch per
        defragmentation pass — this amortises the pool start-up across
        calls instead of paying it every time.  Results are identical
        either way; only picklable *pure* tasks should use it (workers
        are long-lived, so task functions must not rely on process-local
        state).

    Returns
    -------
    list
        The results, in task order.
    """
    task_list = list(tasks)
    if not task_list:
        return []
    if workers is None:
        workers = default_workers()
    if workers <= 1 or len(task_list) <= sequential_threshold \
            or in_worker_process():
        return _run_chunk(func, task_list)

    if chunk_size is None:
        chunk_size = max(1, (len(task_list) + workers - 1) // workers)
    chunks = chunked(task_list, chunk_size)

    results: List[R] = []
    try:
        if reuse_pool:
            pool = _get_shared_pool(workers)
            for piece in pool.map(_run_chunk_star,
                                  [(func, c) for c in chunks]):
                results.extend(piece)
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                for piece in pool.map(_run_chunk_star,
                                      [(func, c) for c in chunks]):
                    results.extend(piece)
    except (OSError, PermissionError, NotImplementedError,
            BrokenProcessPool):         # pragma: no cover - platform-dependent
        # Pool unavailable (sandbox, missing /dev/shm, spawn failure) or it
        # broke mid-run: recompute everything serially.  Exceptions raised
        # by ``func`` itself are NOT caught here — the serial re-run would
        # re-raise them anyway, and they must surface either way.  A broken
        # shared pool is discarded so the next reuse starts clean.
        if reuse_pool:
            shutdown_shared_pool()
        return _run_chunk(func, task_list)
    return results


def _run_chunk_star(args) -> List:
    func, chunk = args
    return _run_chunk(func, chunk)
