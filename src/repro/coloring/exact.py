"""Exact chromatic number via branch and bound.

The wavelength number ``w(G, P)`` is the chromatic number of the conflict
graph; computing it is NP-hard in general (the paper recalls this), but the
instances arising from the paper's gadgets and from the randomised
experiments are small enough for an exact branch-and-bound solver:

* lower bound: a greedily-grown clique (optionally improved during search);
* upper bound: DSATUR;
* search: ``k``-colourability backtracking for increasing ``k``, choosing the
  most saturated uncoloured vertex first and breaking colour symmetry by
  allowing at most one "fresh" colour per step.

The solver is deliberately independent of the Theorem 1 machinery so that
``w = pi`` can be *verified* rather than assumed in tests and benchmarks.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from .dsatur import dsatur_coloring
from .verify import Adjacency, num_colors

__all__ = [
    "chromatic_number",
    "optimal_coloring",
    "is_k_colorable",
    "greedy_clique_lower_bound",
]


def greedy_clique_lower_bound(adjacency: Adjacency) -> int:
    """Size of a greedily grown clique (a lower bound on the chromatic number)."""
    if not adjacency:
        return 0
    best = 1
    # Try a few starting vertices (highest degrees) to strengthen the bound.
    starts = sorted(adjacency, key=lambda v: len(adjacency[v]), reverse=True)[:8]
    for start in starts:
        clique = {start}
        candidates = set(adjacency[start])
        while candidates:
            v = max(candidates, key=lambda u: len(adjacency[u] & candidates))
            clique.add(v)
            candidates &= adjacency[v]
        best = max(best, len(clique))
    return best


def _prepare(adjacency: Adjacency) -> Tuple[List[Hashable], List[Set[int]]]:
    """Relabel vertices as ``0..n-1`` and build integer adjacency."""
    vertices = list(adjacency)
    index = {v: i for i, v in enumerate(vertices)}
    int_adj: List[Set[int]] = [set() for _ in vertices]
    for v, nbrs in adjacency.items():
        vi = index[v]
        for w in nbrs:
            if w in index:
                int_adj[vi].add(index[w])
    return vertices, int_adj


def is_k_colorable(adjacency: Adjacency, k: int
                   ) -> Optional[Dict[Hashable, int]]:
    """Return a proper colouring with at most ``k`` colours, or ``None``.

    Backtracking search with most-saturated-first vertex selection and colour
    symmetry breaking (a vertex may only open colour ``c`` if colours
    ``0..c-1`` are already in use somewhere).
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    vertices, int_adj = _prepare(adjacency)
    n = len(vertices)
    if n == 0:
        return {}
    if k == 0:
        return None
    colors: List[int] = [-1] * n
    neighbour_colors: List[Set[int]] = [set() for _ in range(n)]

    def choose_vertex() -> int:
        best_v, best_key = -1, (-1, -1)
        for v in range(n):
            if colors[v] != -1:
                continue
            key = (len(neighbour_colors[v]), len(int_adj[v]))
            if key > best_key:
                best_key, best_v = key, v
        return best_v

    def backtrack(num_colored: int, max_used: int) -> bool:
        if num_colored == n:
            return True
        v = choose_vertex()
        if len(neighbour_colors[v]) >= k:
            return False
        # allow existing colours plus at most one fresh colour
        allowed = [c for c in range(min(max_used + 2, k))
                   if c not in neighbour_colors[v]]
        for c in allowed:
            colors[v] = c
            touched: List[int] = []
            for w in int_adj[v]:
                if colors[w] == -1 and c not in neighbour_colors[w]:
                    neighbour_colors[w].add(c)
                    touched.append(w)
            if backtrack(num_colored + 1, max(max_used, c)):
                return True
            colors[v] = -1
            for w in touched:
                neighbour_colors[w].discard(c)
        return False

    if not backtrack(0, -1):
        return None
    return {vertices[i]: colors[i] for i in range(n)}


def optimal_coloring(adjacency: Adjacency) -> Dict[Hashable, int]:
    """An optimal (minimum-colour) proper colouring.

    Starts from the DSATUR upper bound and the greedy-clique lower bound and
    closes the gap by solving ``k``-colourability downward from the upper
    bound.
    """
    if not adjacency:
        return {}
    upper_coloring = dsatur_coloring(adjacency)
    upper = num_colors(upper_coloring)
    lower = greedy_clique_lower_bound(adjacency)
    best = upper_coloring
    k = upper - 1
    while k >= lower:
        attempt = is_k_colorable(adjacency, k)
        if attempt is None:
            break
        best = attempt
        k = num_colors(attempt) - 1
    return best


def chromatic_number(adjacency: Adjacency) -> int:
    """The chromatic number of the graph given by ``adjacency``."""
    return num_colors(optimal_coloring(adjacency))
