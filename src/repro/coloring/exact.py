"""Exact chromatic number via branch and bound.

The wavelength number ``w(G, P)`` is the chromatic number of the conflict
graph; computing it is NP-hard in general (the paper recalls this), but the
instances arising from the paper's gadgets and from the randomised
experiments are small enough for an exact branch-and-bound solver:

* lower bound: a greedily-grown clique (optionally improved during search);
* upper bound: DSATUR;
* search: ``k``-colourability backtracking for increasing ``k``, choosing the
  most saturated uncoloured vertex first and breaking colour symmetry by
  allowing at most one "fresh" colour per step.

The search state lives in bitmasks (one neighbour mask per vertex, one
*neighbour-colour* mask per vertex), so branching, propagation and undo are
integer operations.  The solver is deliberately independent of the Theorem 1
machinery so that ``w = pi`` can be *verified* rather than assumed in tests
and benchmarks.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence

from .._bitops import grow_clique, iter_bits
from .dsatur import dsatur_coloring_masks
from .masks import GraphLike, as_dense_masks
from .verify import num_colors

__all__ = [
    "chromatic_number",
    "optimal_coloring",
    "is_k_colorable",
    "is_k_colorable_masks",
    "greedy_clique_lower_bound",
]


def _greedy_clique_masks(masks: Sequence[int]) -> int:
    """Size of a greedily grown clique over dense masks."""
    n = len(masks)
    if n == 0:
        return 0
    # Try a few starting vertices (highest degrees) to strengthen the bound.
    starts = sorted(range(n), key=lambda v: masks[v].bit_count(),
                    reverse=True)[:8]
    return max(grow_clique(masks, start).bit_count() for start in starts)


def greedy_clique_lower_bound(adjacency: GraphLike) -> int:
    """Size of a greedily grown clique (a lower bound on the chromatic number)."""
    _, masks = as_dense_masks(adjacency)
    return _greedy_clique_masks(masks)


def is_k_colorable_masks(masks: Sequence[int], k: int) -> Optional[List[int]]:
    """A proper colouring of dense masks with at most ``k`` colours, or ``None``."""
    n = len(masks)
    if n == 0:
        return []
    if k == 0:
        return None
    colors = [-1] * n
    degrees = [m.bit_count() for m in masks]
    neighbour_colors = [0] * n                 # colour masks

    def choose_vertex() -> int:
        best_v, best_key = -1, (-1, -1)
        for v in range(n):
            if colors[v] != -1:
                continue
            key = (neighbour_colors[v].bit_count(), degrees[v])
            if key > best_key:
                best_key, best_v = key, v
        return best_v

    def backtrack(num_colored: int, max_used: int) -> bool:
        if num_colored == n:
            return True
        v = choose_vertex()
        forbidden = neighbour_colors[v]
        if forbidden.bit_count() >= k:
            return False
        # allow existing colours plus at most one fresh colour
        allowed = ~forbidden & ((1 << min(max_used + 2, k)) - 1)
        while allowed:
            low = allowed & -allowed
            allowed ^= low
            c = low.bit_length() - 1
            colors[v] = c
            touched = 0
            for w in iter_bits(masks[v]):
                if colors[w] == -1 and not (neighbour_colors[w] & low):
                    neighbour_colors[w] |= low
                    touched |= 1 << w
            if backtrack(num_colored + 1, max(max_used, c)):
                return True
            colors[v] = -1
            for w in iter_bits(touched):
                neighbour_colors[w] &= ~low
        return False

    if not backtrack(0, -1):
        return None
    return colors


def is_k_colorable(adjacency: GraphLike, k: int
                   ) -> Optional[Dict[Hashable, int]]:
    """Return a proper colouring with at most ``k`` colours, or ``None``.

    Backtracking search with most-saturated-first vertex selection and colour
    symmetry breaking (a vertex may only open colour ``c`` if colours
    ``0..c-1`` are already in use somewhere).
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    labels, masks = as_dense_masks(adjacency)
    colors = is_k_colorable_masks(masks, k)
    if colors is None:
        return None
    return {labels[i]: colors[i] for i in range(len(labels))}


def optimal_coloring(adjacency: GraphLike) -> Dict[Hashable, int]:
    """An optimal (minimum-colour) proper colouring.

    Starts from the DSATUR upper bound and the greedy-clique lower bound and
    closes the gap by solving ``k``-colourability downward from the upper
    bound.
    """
    labels, masks = as_dense_masks(adjacency)
    if not labels:
        return {}
    upper_colors, order = dsatur_coloring_masks(masks)
    best = {labels[i]: upper_colors[i] for i in order}
    upper = len(set(upper_colors))
    lower = _greedy_clique_masks(masks)
    k = upper - 1
    while k >= lower:
        attempt = is_k_colorable_masks(masks, k)
        if attempt is None:
            break
        best = {labels[i]: attempt[i] for i in range(len(labels))}
        k = len(set(attempt)) - 1
    return best


def chromatic_number(adjacency: GraphLike) -> int:
    """The chromatic number of the graph given by ``adjacency``."""
    return num_colors(optimal_coloring(adjacency))
