"""Verification helpers for colourings.

All colouring functions in this package operate on an *adjacency mapping*
``Dict[vertex, Set[vertex]]`` (as returned by
:meth:`repro.conflict.ConflictGraph.adjacency`) and return a colouring as a
``Dict[vertex, int]`` with colours ``0, 1, ...``.  This module provides the
shared validation and normalisation utilities.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Set

from ..exceptions import InvalidColoringError

__all__ = [
    "is_proper_coloring",
    "assert_proper_coloring",
    "num_colors",
    "normalize_coloring",
    "color_classes",
]

Adjacency = Mapping[Hashable, Set[Hashable]]


def is_proper_coloring(adjacency: Adjacency, coloring: Mapping[Hashable, int]
                       ) -> bool:
    """Whether ``coloring`` assigns different colours to every adjacent pair.

    Every vertex of ``adjacency`` must be coloured.
    """
    for v, nbrs in adjacency.items():
        if v not in coloring:
            return False
        for w in nbrs:
            if w in coloring and coloring[v] == coloring[w]:
                return False
    return True


def assert_proper_coloring(adjacency: Adjacency,
                           coloring: Mapping[Hashable, int]) -> None:
    """Raise :class:`InvalidColoringError` when the colouring is not proper."""
    for v, nbrs in adjacency.items():
        if v not in coloring:
            raise InvalidColoringError(f"vertex {v!r} is not coloured",
                                       conflict=None)
        for w in nbrs:
            if w in coloring and coloring[v] == coloring[w]:
                raise InvalidColoringError(
                    f"vertices {v!r} and {w!r} are adjacent but share colour "
                    f"{coloring[v]}", conflict=(v, w))


def num_colors(coloring: Mapping[Hashable, int]) -> int:
    """Number of distinct colours used by the colouring."""
    return len(set(coloring.values())) if coloring else 0


def normalize_coloring(coloring: Mapping[Hashable, int]) -> Dict[Hashable, int]:
    """Relabel colours as ``0..k-1`` in order of first appearance."""
    mapping: Dict[int, int] = {}
    out: Dict[Hashable, int] = {}
    for v in coloring:
        c = coloring[v]
        if c not in mapping:
            mapping[c] = len(mapping)
        out[v] = mapping[c]
    return out


def color_classes(coloring: Mapping[Hashable, int]) -> Dict[int, Set[Hashable]]:
    """Group vertices by colour."""
    classes: Dict[int, Set[Hashable]] = {}
    for v, c in coloring.items():
        classes.setdefault(c, set()).add(v)
    return classes
