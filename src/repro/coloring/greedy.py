"""Greedy colouring heuristics.

Greedy colouring with various vertex orders provides the baseline wavelength
assignment against which the paper's optimal (Theorem 1) and 4/3-approximate
(Theorem 6) algorithms are compared in the benchmark harness.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List, Literal, Mapping, Optional, Sequence, Set

from .verify import Adjacency

__all__ = ["greedy_coloring", "GreedyOrder"]

GreedyOrder = Literal["given", "largest-first", "smallest-last", "random"]


def _order_vertices(adjacency: Adjacency, strategy: GreedyOrder,
                    rng: Optional[random.Random]) -> List[Hashable]:
    vertices = list(adjacency)
    if strategy == "given":
        return vertices
    if strategy == "largest-first":
        return sorted(vertices, key=lambda v: len(adjacency[v]), reverse=True)
    if strategy == "random":
        rng = rng or random.Random()
        shuffled = list(vertices)
        rng.shuffle(shuffled)
        return shuffled
    if strategy == "smallest-last":
        # Repeatedly remove a vertex of minimum degree in the remaining graph;
        # colour in the reverse removal order (a.k.a. degeneracy ordering).
        remaining: Dict[Hashable, Set[Hashable]] = {
            v: set(nbrs) for v, nbrs in adjacency.items()}
        removal: List[Hashable] = []
        while remaining:
            v = min(remaining, key=lambda u: len(remaining[u]))
            removal.append(v)
            for w in remaining[v]:
                remaining[w].discard(v)
            del remaining[v]
        removal.reverse()
        return removal
    raise ValueError(f"unknown greedy order {strategy!r}")


def greedy_coloring(adjacency: Adjacency,
                    order: Optional[Sequence[Hashable]] = None,
                    strategy: GreedyOrder = "largest-first",
                    seed: Optional[int] = None) -> Dict[Hashable, int]:
    """Colour vertices greedily with the smallest available colour.

    Parameters
    ----------
    adjacency:
        Mapping ``vertex -> set of neighbours``.
    order:
        Explicit vertex order; overrides ``strategy`` when given.
    strategy:
        ``"given"`` (dict order), ``"largest-first"``, ``"smallest-last"``
        (degeneracy order, optimal on forests and cycles) or ``"random"``.
    seed:
        Seed for the ``"random"`` strategy.

    Returns
    -------
    dict
        Mapping ``vertex -> colour`` with colours ``0..k-1``.
    """
    if order is None:
        rng = random.Random(seed) if seed is not None else None
        order = _order_vertices(adjacency, strategy, rng)
    else:
        order = list(order)
        missing = set(adjacency) - set(order)
        if missing:
            raise ValueError(f"order is missing vertices: {sorted(map(repr, missing))}")

    coloring: Dict[Hashable, int] = {}
    for v in order:
        used = {coloring[w] for w in adjacency[v] if w in coloring}
        c = 0
        while c in used:
            c += 1
        coloring[v] = c
    return coloring
