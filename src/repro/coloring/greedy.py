"""Greedy colouring heuristics.

Greedy colouring with various vertex orders provides the baseline wavelength
assignment against which the paper's optimal (Theorem 1) and 4/3-approximate
(Theorem 6) algorithms are compared in the benchmark harness.

The core runs on dense bitmasks (see :mod:`repro.coloring.masks`): each
vertex keeps a *forbidden-colour* mask updated as its neighbours are
coloured, so picking the smallest available colour is one bit-trick instead
of a set comprehension over the neighbourhood.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List, Literal, Optional, Sequence

from .._bitops import iter_bits, lowest_missing_bit
from .masks import GraphLike, as_dense_masks

__all__ = ["greedy_coloring", "greedy_coloring_masks", "GreedyOrder"]

GreedyOrder = Literal["given", "largest-first", "smallest-last", "random"]


def _order_indices(masks: List[int], strategy: GreedyOrder,
                   rng: Optional[random.Random]) -> List[int]:
    n = len(masks)
    indices = list(range(n))
    if strategy == "given":
        return indices
    if strategy == "largest-first":
        return sorted(indices, key=lambda v: masks[v].bit_count(), reverse=True)
    if strategy == "random":
        rng = rng or random.Random()
        rng.shuffle(indices)
        return indices
    if strategy == "smallest-last":
        # Repeatedly remove a vertex of minimum degree in the remaining graph;
        # colour in the reverse removal order (a.k.a. degeneracy ordering).
        degrees = [m.bit_count() for m in masks]
        alive = (1 << n) - 1
        removal: List[int] = []
        for _ in range(n):
            best_v, best_d = -1, n + 1
            rest = alive
            while rest:
                low = rest & -rest
                v = low.bit_length() - 1
                if degrees[v] < best_d:
                    best_d, best_v = degrees[v], v
                rest ^= low
            removal.append(best_v)
            alive &= ~(1 << best_v)
            for w in iter_bits(masks[best_v] & alive):
                degrees[w] -= 1
        removal.reverse()
        return removal
    raise ValueError(f"unknown greedy order {strategy!r}")


def greedy_coloring_masks(masks: Sequence[int],
                          order: Optional[Sequence[int]] = None) -> List[int]:
    """Colour dense masks greedily; returns a colour per vertex index."""
    n = len(masks)
    order = range(n) if order is None else order
    forbidden = [0] * n
    colors = [-1] * n
    for v in order:
        c = lowest_missing_bit(forbidden[v])
        colors[v] = c
        bit = 1 << c
        for w in iter_bits(masks[v]):
            forbidden[w] |= bit
    return colors


def greedy_coloring(adjacency: GraphLike,
                    order: Optional[Sequence[Hashable]] = None,
                    strategy: GreedyOrder = "largest-first",
                    seed: Optional[int] = None) -> Dict[Hashable, int]:
    """Colour vertices greedily with the smallest available colour.

    Parameters
    ----------
    adjacency:
        Mapping ``vertex -> set of neighbours`` or a
        :class:`~repro.conflict.ConflictGraph`.
    order:
        Explicit vertex order; overrides ``strategy`` when given.
    strategy:
        ``"given"`` (dict order), ``"largest-first"``, ``"smallest-last"``
        (degeneracy order, optimal on forests and cycles) or ``"random"``.
    seed:
        Seed for the ``"random"`` strategy.

    Returns
    -------
    dict
        Mapping ``vertex -> colour`` with colours ``0..k-1``.
    """
    labels, masks = as_dense_masks(adjacency)
    if order is None:
        rng = random.Random(seed) if seed is not None else None
        index_order = _order_indices(masks, strategy, rng)
    else:
        order = list(order)
        position = {v: i for i, v in enumerate(labels)}
        missing = set(labels) - set(order)
        if missing:
            raise ValueError(f"order is missing vertices: {sorted(map(repr, missing))}")
        index_order = [position[v] for v in order]

    colors = greedy_coloring_masks(masks, index_order)
    return {labels[i]: colors[i] for i in index_order}
