"""DSATUR colouring (Brélaz 1979).

DSATUR colours the vertex of highest *saturation* (number of distinct colours
already present in its neighbourhood) first, breaking ties by degree.  It is
exact on many structured graphs (bipartite graphs, cycles, cliques) and is
the standard strong heuristic for wavelength assignment; the exact solver in
:mod:`repro.coloring.exact` uses it both as an upper bound and as its
branching order.

Two cores implement the *identical* selection rule — max saturation, ties
by degree, remaining ties by lowest vertex index — and therefore produce
identical colourings (asserted by ``tests/test_bitset_engine.py``):

* small graphs use a lazy-invalidation max-heap where the saturation of a
  vertex is a single *colour bitmask*, so saturation updates and the
  smallest-free-colour scan are O(1) bit tricks rather than set operations;
* from :data:`_VECTOR_THRESHOLD` vertices on, a vectorised core keeps one
  boolean "adjacent-to-colour-c" row per colour and a packed
  ``saturation*(n+1)+degree`` score vector, so every DSATUR step is a
  handful of O(n) numpy kernels instead of O(degree) Python-level heap
  traffic — this is what makes DSATUR keep up with the bitset graph build
  on 500+ dipath families (see PERFORMANCE.md).
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, List, Sequence, Tuple

from .._bitops import iter_bits, lowest_missing_bit
from .masks import GraphLike, as_dense_masks

try:  # numpy is a hard dependency of the package, but degrade gracefully
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is baked into the image
    _np = None

__all__ = ["dsatur_coloring", "dsatur_coloring_masks", "dsatur_order"]

#: Below this many vertices the pure-bitmask heap core wins (numpy kernel
#: launch overhead dominates tiny instances).
_VECTOR_THRESHOLD = 64


def _dsatur_vectorized(masks: Sequence[int]) -> Tuple[List[int], List[int]]:
    """Vectorised DSATUR core (same selection rule as the heap core)."""
    n = len(masks)
    nbytes = (n + 7) // 8
    buf = b"".join(m.to_bytes(nbytes, "little") for m in masks)
    adj = _np.unpackbits(
        _np.frombuffer(buf, _np.uint8).reshape(n, nbytes),
        axis=1, bitorder="little")[:, :n].astype(bool)
    degrees = adj.sum(1).astype(_np.int64)
    num_rows = int(degrees.max()) + 2 if n else 1   # DSATUR needs <= maxdeg+1
    # seen[c, w] <=> some neighbour of w is coloured c
    seen = _np.zeros((num_rows, n), dtype=bool)
    step = n + 1                                    # score = sat*(n+1) + deg
    score = degrees.copy()
    # Once coloured, a vertex's score is parked so low that the remaining
    # saturation bumps (at most num_rows * step) can never lift it back
    # above an uncoloured vertex's score.
    parked = -_np.int64(4) * (n + 2) * (n + 2)
    colors = [-1] * n
    order: List[int] = []
    for _ in range(n):
        v = int(score.argmax())
        c = int(seen[:, v].argmin())                # first colour not seen
        colors[v] = c
        order.append(v)
        score[v] = parked
        row = adj[v]
        newly = row & ~seen[c]
        seen[c] |= row
        score[newly] += step
    return colors, order


def _dsatur_heap(masks: Sequence[int]) -> Tuple[List[int], List[int]]:
    """Heap-based DSATUR core (same selection rule as the vectorised core)."""
    n = len(masks)
    colors = [-1] * n
    if n == 0:
        return colors, []
    saturation = [0] * n                      # colour mask of coloured nbrs
    degrees = [m.bit_count() for m in masks]
    order: List[int] = []
    uncolored_mask = (1 << n) - 1

    # Max-heap keyed by (saturation, degree, -index) with lazy invalidation;
    # the index as the final key pins the tie-break to "lowest vertex first",
    # matching the vectorised core's argmax exactly.
    heap: List[Tuple[int, int, int]] = [
        (0, -degrees[v], v) for v in range(n)]
    heapq.heapify(heap)

    for _ in range(n):
        while True:
            neg_sat, neg_deg, v = heapq.heappop(heap)
            if colors[v] != -1:
                continue
            if -neg_sat == saturation[v].bit_count():
                break
            # stale entry: reinsert with current saturation
            heapq.heappush(heap, (-saturation[v].bit_count(), neg_deg, v))
        c = lowest_missing_bit(saturation[v])
        colors[v] = c
        order.append(v)
        uncolored_mask &= ~(1 << v)
        bit = 1 << c
        for w in iter_bits(masks[v] & uncolored_mask):
            if not (saturation[w] & bit):
                saturation[w] |= bit
                heapq.heappush(heap, (-saturation[w].bit_count(),
                                      -degrees[w], w))
    return colors, order


def dsatur_coloring_masks(masks: Sequence[int]
                          ) -> Tuple[List[int], List[int]]:
    """DSATUR over dense masks; returns ``(colors, processing_order)``."""
    if _np is not None and len(masks) >= _VECTOR_THRESHOLD:
        return _dsatur_vectorized(masks)
    return _dsatur_heap(masks)


def dsatur_coloring(adjacency: GraphLike) -> Dict[Hashable, int]:
    """Colour ``adjacency`` with the DSATUR heuristic.

    ``adjacency`` is a mapping ``vertex -> set of neighbours`` or a
    :class:`~repro.conflict.ConflictGraph`.  Returns a proper colouring
    mapping ``vertex -> colour`` (insertion order = processing order); the
    number of colours used is an upper bound on the chromatic number.
    """
    labels, masks = as_dense_masks(adjacency)
    colors, order = dsatur_coloring_masks(masks)
    return {labels[i]: colors[i] for i in order}


def dsatur_order(adjacency: GraphLike) -> List[Hashable]:
    """The vertex order in which DSATUR colours the graph."""
    coloring = dsatur_coloring(adjacency)
    # dsatur_coloring assigns colours in processing order; re-running would be
    # wasteful, so read the order off the dict (which preserves insertion).
    return list(coloring)
