"""DSATUR colouring (Brélaz 1979).

DSATUR colours the vertex of highest *saturation* (number of distinct colours
already present in its neighbourhood) first, breaking ties by degree.  It is
exact on many structured graphs (bipartite graphs, cycles, cliques) and is
the standard strong heuristic for wavelength assignment; the exact solver in
:mod:`repro.coloring.exact` uses it both as an upper bound and as its
branching order.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Dict, Hashable, List, Set, Tuple

from .verify import Adjacency

__all__ = ["dsatur_coloring", "dsatur_order"]


def dsatur_coloring(adjacency: Adjacency) -> Dict[Hashable, int]:
    """Colour ``adjacency`` with the DSATUR heuristic.

    Returns a proper colouring mapping ``vertex -> colour``; the number of
    colours used is an upper bound on the chromatic number.
    """
    if not adjacency:
        return {}
    saturation: Dict[Hashable, Set[int]] = {v: set() for v in adjacency}
    degree: Dict[Hashable, int] = {v: len(nbrs) for v, nbrs in adjacency.items()}
    coloring: Dict[Hashable, int] = {}

    # Max-heap keyed by (saturation, degree) with lazy invalidation.
    tiebreak = count()
    heap: List[Tuple[int, int, int, Hashable]] = [
        (0, -degree[v], next(tiebreak), v) for v in adjacency]
    heapq.heapify(heap)

    while len(coloring) < len(adjacency):
        while True:
            neg_sat, neg_deg, _, v = heapq.heappop(heap)
            if v in coloring:
                continue
            if -neg_sat == len(saturation[v]):
                break
            # stale entry: reinsert with current saturation
            heapq.heappush(heap, (-len(saturation[v]), neg_deg, next(tiebreak), v))
        used = {coloring[w] for w in adjacency[v] if w in coloring}
        c = 0
        while c in used:
            c += 1
        coloring[v] = c
        for w in adjacency[v]:
            if w not in coloring and c not in saturation[w]:
                saturation[w].add(c)
                heapq.heappush(heap, (-len(saturation[w]), -degree[w],
                                      next(tiebreak), w))
    return coloring


def dsatur_order(adjacency: Adjacency) -> List[Hashable]:
    """The vertex order in which DSATUR colours the graph."""
    coloring = dsatur_coloring(adjacency)
    # dsatur_coloring assigns colours in processing order; reconstruct that
    # order by re-running is wasteful, so track via insertion order of dict
    # (Python dicts preserve insertion order).
    return list(coloring)
