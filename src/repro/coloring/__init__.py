"""Graph colouring toolbox (greedy, DSATUR, exact, Kempe chains).

Every front-end accepts either a generic adjacency mapping
(``Dict[vertex, Set[vertex]]``) or a :class:`~repro.conflict.ConflictGraph`
directly — the latter skips the set decoding and feeds the graph's bitmasks
straight into the mask cores (``*_masks`` variants).
"""

from .dsatur import dsatur_coloring, dsatur_coloring_masks, dsatur_order
from .exact import (
    chromatic_number,
    greedy_clique_lower_bound,
    is_k_colorable,
    is_k_colorable_masks,
    optimal_coloring,
)
from .greedy import greedy_coloring, greedy_coloring_masks
from .masks import as_dense_masks
from .kempe import kempe_component, kempe_swap, kempe_swap_component
from .verify import (
    assert_proper_coloring,
    color_classes,
    is_proper_coloring,
    normalize_coloring,
    num_colors,
)

__all__ = [
    "as_dense_masks",
    "assert_proper_coloring",
    "chromatic_number",
    "color_classes",
    "dsatur_coloring",
    "dsatur_coloring_masks",
    "dsatur_order",
    "greedy_clique_lower_bound",
    "greedy_coloring",
    "greedy_coloring_masks",
    "is_k_colorable",
    "is_k_colorable_masks",
    "is_proper_coloring",
    "kempe_component",
    "kempe_swap",
    "kempe_swap_component",
    "normalize_coloring",
    "num_colors",
    "optimal_coloring",
]
