"""Graph colouring toolbox (greedy, DSATUR, exact, Kempe chains)."""

from .dsatur import dsatur_coloring, dsatur_order
from .exact import (
    chromatic_number,
    greedy_clique_lower_bound,
    is_k_colorable,
    optimal_coloring,
)
from .greedy import greedy_coloring
from .kempe import kempe_component, kempe_swap, kempe_swap_component
from .verify import (
    assert_proper_coloring,
    color_classes,
    is_proper_coloring,
    normalize_coloring,
    num_colors,
)

__all__ = [
    "assert_proper_coloring",
    "chromatic_number",
    "color_classes",
    "dsatur_coloring",
    "dsatur_order",
    "greedy_clique_lower_bound",
    "greedy_coloring",
    "is_k_colorable",
    "is_proper_coloring",
    "kempe_component",
    "kempe_swap",
    "kempe_swap_component",
    "normalize_coloring",
    "num_colors",
    "optimal_coloring",
]
