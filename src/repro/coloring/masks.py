"""Dense-bitmask adapter for the colouring algorithms.

The colouring front-ends accept either a generic adjacency mapping
(``Dict[vertex, Set[vertex]]``, any hashable vertices) or a
:class:`~repro.conflict.ConflictGraph` (whose adjacency is already stored as
integer bitmasks).  This module converts both to the *dense* representation
the mask cores run on: vertices relabelled ``0..n-1`` and one neighbour
bitmask per vertex.

For a conflict graph whose labels are already ``0..n-1`` (the common case —
graphs built by :func:`~repro.conflict.build_conflict_graph`) the conversion
is a list copy of the existing masks; only induced subgraphs with sparse
labels pay a re-indexing pass.
"""

from __future__ import annotations

from typing import Hashable, List, Mapping, Protocol, Tuple, Union

from .._bitops import iter_bits
from .verify import Adjacency

__all__ = ["GraphLike", "SupportsAdjacencyMasks", "as_dense_masks"]


class SupportsAdjacencyMasks(Protocol):
    """Anything storing adjacency as vertex -> neighbour-bitmask
    (``repro.conflict.ConflictGraph``)."""

    def adjacency_masks(self) -> Mapping[int, int]: ...


#: What the colouring front-ends accept: a generic adjacency mapping or any
#: object exposing ``adjacency_masks()``.
GraphLike = Union[Adjacency, SupportsAdjacencyMasks]


def as_dense_masks(graph: GraphLike) -> Tuple[List[Hashable], List[int]]:
    """Convert ``graph`` to ``(labels, masks)`` with vertices ``0..n-1``.

    ``labels[i]`` is the original vertex of dense index ``i``; ``masks[i]``
    has bit ``j`` set iff ``labels[i]`` and ``labels[j]`` are adjacent.
    Neighbours outside the mapping are dropped (matching the historical
    behaviour of the exact solver's ``_prepare``).
    """
    masks_getter = getattr(graph, "adjacency_masks", None)
    if masks_getter is not None:
        label_masks: Mapping[int, int] = masks_getter()
        labels = sorted(label_masks)
        n = len(labels)
        if n == 0:
            return [], []
        if labels[-1] == n - 1:          # labels are exactly 0..n-1
            return labels, [label_masks[v] for v in labels]
        position = {v: i for i, v in enumerate(labels)}
        dense: List[int] = []
        for v in labels:
            m = 0
            for w in iter_bits(label_masks[v]):
                m |= 1 << position[w]
            dense.append(m)
        return labels, dense

    labels = list(graph)
    position = {v: i for i, v in enumerate(labels)}
    masks = [0] * len(labels)
    for v, nbrs in graph.items():
        m = 0
        for w in nbrs:
            j = position.get(w)
            if j is not None:
                m |= 1 << j
        masks[position[v]] = m
    return labels, masks
