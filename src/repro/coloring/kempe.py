"""Kempe chains and swaps.

The recolouring step of Theorem 1's proof is exactly an alternating-chain
argument: starting from a dipath ``P1`` whose colour must change from ``α``
to ``β``, recolour the dipaths of colour ``β`` conflicting with it to ``α``,
then the dipaths of colour ``α`` conflicting with those to ``β``, and so on.
On the conflict graph this is the classical *Kempe component swap*: exchange
the two colours inside the connected component of ``P1`` in the subgraph
induced by the vertices coloured ``α`` or ``β``.

The proof's Case B (a dipath recoloured twice) corresponds to the fact that a
Kempe swap never revisits a vertex; Case C (the anchored dipath ``P0`` would
be reached) corresponds to ``P0`` lying in the same Kempe component as
``P1`` — which Theorem 1 shows is impossible when the DAG has no internal
cycle.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Mapping, Set, Tuple

from .verify import Adjacency

__all__ = ["kempe_component", "kempe_swap", "kempe_swap_component"]


def kempe_component(adjacency: Adjacency, coloring: Mapping[Hashable, int],
                    start: Hashable, color_a: int, color_b: int
                    ) -> Set[Hashable]:
    """Connected component of ``start`` among vertices coloured ``a`` or ``b``.

    ``start`` must itself carry one of the two colours.
    """
    if coloring[start] not in (color_a, color_b):
        raise ValueError(
            f"start vertex has colour {coloring[start]}, expected "
            f"{color_a} or {color_b}")
    component: Set[Hashable] = {start}
    queue = deque([start])
    targets = {color_a, color_b}
    while queue:
        v = queue.popleft()
        for w in adjacency[v]:
            if w in component or w not in coloring:
                continue
            if coloring[w] in targets:
                component.add(w)
                queue.append(w)
    return component


def kempe_swap_component(coloring: Mapping[Hashable, int],
                         component: Set[Hashable],
                         color_a: int, color_b: int) -> Dict[Hashable, int]:
    """Return a copy of ``coloring`` with ``a`` and ``b`` exchanged on ``component``."""
    new_coloring = dict(coloring)
    for v in component:
        if new_coloring[v] == color_a:
            new_coloring[v] = color_b
        elif new_coloring[v] == color_b:
            new_coloring[v] = color_a
    return new_coloring


def kempe_swap(adjacency: Adjacency, coloring: Mapping[Hashable, int],
               start: Hashable, color_a: int, color_b: int
               ) -> Tuple[Dict[Hashable, int], Set[Hashable]]:
    """Swap colours ``a``/``b`` on the Kempe component of ``start``.

    Returns the new colouring and the swapped component.  A Kempe swap always
    preserves properness of the colouring.
    """
    component = kempe_component(adjacency, coloring, start, color_a, color_b)
    return kempe_swap_component(coloring, component, color_a, color_b), component
