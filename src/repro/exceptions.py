"""Exception hierarchy for :mod:`repro`.

All library-specific errors derive from :class:`ReproError` so that callers can
catch any failure originating from this package with a single ``except``
clause.  Errors that correspond to a *mathematical* situation described in the
paper (e.g. the presence of an internal cycle breaking Theorem 1's hypothesis)
carry the combinatorial certificate that triggered them, so that callers can
inspect or report it.
"""

from __future__ import annotations

from typing import Any, Sequence


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class GraphError(ReproError):
    """Base class for errors raised by the graph substrate."""


class VertexNotFoundError(GraphError, KeyError):
    """A vertex referenced by an operation is not present in the graph."""

    def __init__(self, vertex: Any) -> None:
        super().__init__(f"vertex {vertex!r} is not in the graph")
        self.vertex = vertex


class ArcNotFoundError(GraphError, KeyError):
    """An arc referenced by an operation is not present in the graph."""

    def __init__(self, arc: tuple[Any, Any]) -> None:
        super().__init__(f"arc {arc!r} is not in the graph")
        self.arc = arc


class DuplicateArcError(GraphError, ValueError):
    """An arc was added twice to a simple digraph."""

    def __init__(self, arc: tuple[Any, Any]) -> None:
        super().__init__(f"arc {arc!r} is already in the graph")
        self.arc = arc


class SelfLoopError(GraphError, ValueError):
    """A self-loop ``(v, v)`` was added; DAGs never contain self-loops."""

    def __init__(self, vertex: Any) -> None:
        super().__init__(f"self-loop on vertex {vertex!r} is not allowed")
        self.vertex = vertex


class NotADAGError(GraphError, ValueError):
    """The digraph contains a directed cycle, so it is not a DAG.

    Attributes
    ----------
    cycle:
        A directed cycle witnessing the violation, as a sequence of vertices
        ``v0, v1, ..., vk`` with ``vk == v0`` (when available).
    """

    def __init__(self, message: str = "digraph contains a directed cycle",
                 cycle: Sequence[Any] | None = None) -> None:
        super().__init__(message)
        self.cycle = list(cycle) if cycle is not None else None


class InvalidDipathError(ReproError, ValueError):
    """A vertex sequence does not describe a dipath of the given digraph."""


class RoutingError(ReproError):
    """A request could not be routed (no dipath between its endpoints)."""


class NotUPPError(ReproError, ValueError):
    """The digraph violates the Unique diPath Property (UPP).

    Attributes
    ----------
    pair:
        A pair ``(x, y)`` of vertices joined by at least two distinct dipaths.
    """

    def __init__(self, pair: tuple[Any, Any] | None = None) -> None:
        message = "digraph is not a UPP-DAG"
        if pair is not None:
            message += f": at least two dipaths from {pair[0]!r} to {pair[1]!r}"
        super().__init__(message)
        self.pair = pair


class InternalCycleError(ReproError, ValueError):
    """An internal cycle was found where the algorithm requires none.

    Raised by the Theorem 1 machinery when the recolouring process reaches the
    proof's Case C — which, by the theorem, can only happen when the input DAG
    contains an internal cycle.  The reconstructed cycle (a closed walk of the
    underlying undirected graph, all of whose vertices are internal in ``G``)
    is attached when available, mirroring Figure 4 of the paper.
    """

    def __init__(self, message: str = "the DAG contains an internal cycle",
                 cycle: Sequence[Any] | None = None) -> None:
        super().__init__(message)
        self.cycle = list(cycle) if cycle is not None else None


class NoInternalCycleError(ReproError, ValueError):
    """An operation that needs an internal cycle was given a DAG without one.

    Raised e.g. by the Theorem 2 gadget builder or the Theorem 6 algorithm when
    the input DAG has no internal cycle (in which case Theorem 1 applies and
    the caller should use it instead).
    """


class ColoringError(ReproError):
    """A wavelength assignment / colouring could not be produced or verified."""


class InvalidColoringError(ColoringError, ValueError):
    """A colouring violates a conflict constraint.

    Attributes
    ----------
    conflict:
        A pair of dipath (or vertex) identifiers that received the same colour
        while being in conflict.
    """

    def __init__(self, message: str = "colouring is not proper",
                 conflict: tuple[Any, Any] | None = None) -> None:
        super().__init__(message)
        self.conflict = conflict


class BoundViolationError(ColoringError, AssertionError):
    """An algorithm exceeded the colour budget guaranteed by the paper.

    This should never happen on inputs satisfying the relevant hypotheses; it
    indicates either an input violating the hypotheses or an implementation
    bug, and carries both the budget and the number of colours actually used.
    """

    def __init__(self, used: int, budget: int, message: str | None = None) -> None:
        if message is None:
            message = (f"colouring uses {used} colours, exceeding the "
                       f"guaranteed budget of {budget}")
        super().__init__(message)
        self.used = used
        self.budget = budget


class CapacityError(ReproError):
    """A WDM network operation exceeded the per-fibre wavelength capacity."""


class SimulationError(ReproError):
    """An optical-network admission simulation reached an inconsistent state."""


class EngineStateError(SimulationError, RuntimeError, ValueError):
    """An internal bookkeeping invariant of the online engine broke.

    Raised when the engine's redundant structures disagree — a colour
    count going negative in the :class:`~repro.online.sharding.ArcColorIndex`,
    a defragmentation journal out of step with its recorded moves, an
    engine asked to run a shard-scoped pass under a policy whose
    decisions it could not reproduce.  These are *state* failures, not
    argument mistakes: they mean a bug (or corruption) upstream of the
    raise.  Historically surfaced as bare ``RuntimeError``/``ValueError``;
    deriving from both keeps existing ``except`` clauses working (the
    same compatibility pattern as :class:`TransactionError`).
    """


class ShardNotFoundError(EngineStateError):
    """A shard lookup by anchor member found no such shard.

    Raised by shard-scoped operations (``defrag_sharded``) when the
    anchor member does not identify a live shard — either the caller
    raced a departure or the shard tracker lost it.  Subclasses
    :class:`EngineStateError` (hence ``ValueError``, which these
    lookups historically raised).

    Attributes
    ----------
    shard:
        The anchor member that failed to resolve.
    """

    def __init__(self, shard: int) -> None:
        super().__init__(f"no shard anchored at member {shard}")
        self.shard = shard


class AuditError(SimulationError):
    """A runtime audit (``audit_every=`` in ``simulate_online``) failed.

    Carries every violation string the engine's :meth:`audit` reported,
    so the failure message shows the first broken invariant and the
    ``problems`` attribute preserves the full list.

    Attributes
    ----------
    problems:
        The violation strings, as returned by ``OnlineEngine.audit()``.
    """

    def __init__(self, message: str,
                 problems: Sequence[str] | None = None) -> None:
        self.problems = list(problems) if problems is not None else []
        if self.problems:
            message = f"{message}: {self.problems[0]}" + (
                f" (+{len(self.problems) - 1} more)"
                if len(self.problems) > 1 else "")
        super().__init__(message)


class TransactionError(ReproError, RuntimeError, ValueError):
    """A what-if transaction or defragmentation pass violated its contract.

    Raised for lifecycle violations (operating on a closed transaction,
    resolving a parent while a child is open, a rollback that does not
    restore the captured state) and for argument validation (unknown batch
    policies, negative move budgets).  The transaction layer historically
    raised bare ``RuntimeError`` for the former and bare ``ValueError``
    for the latter; deriving from both keeps every existing ``except``
    clause working while ``except ReproError`` now also sees these
    failures.
    """


class RecoveryError(ReproError):
    """Journal replay could not rebuild the pre-crash engine state.

    Raised by :func:`repro.online.persistence.recover` when the journal is
    unreadable (a torn line anywhere but the tail, a missing genesis
    record) or when re-executing a journalled decision produces a
    different outcome than the one recorded — the recovered state would
    then silently diverge from the pre-crash engine.

    Attributes
    ----------
    record:
        Index of the journal record that failed to replay (``None`` when
        the failure is not tied to one record).
    """

    def __init__(self, message: str, record: int | None = None) -> None:
        if record is not None:
            message = f"journal record {record}: {message}"
        super().__init__(message)
        self.record = record


class FaultError(ReproError):
    """An invalid fault-injection operation on the online engine.

    Cutting a fibre that is already cut (or absent from the topology),
    or repairing one that is not cut.
    """


class ServiceError(ReproError, RuntimeError):
    """An :class:`repro.service.RwaService` lifecycle violation.

    Submitting to a service that was never started (or already stopped),
    starting it twice, or requesting an operation the service was not
    configured for.  Distinct from :class:`SimulationError`, which covers
    malformed *traffic* (out-of-order timestamps, duplicate arrivals) —
    those fail only the offending request's future, while a
    ``ServiceError`` means the caller is holding the service wrong.
    """


class TimedOut(ServiceError, TimeoutError):
    """A caller's wait for a service decision elapsed (client-side).

    Raised by :meth:`repro.service.RwaService.submit` with ``timeout=``
    when the decision does not arrive in time.  This is purely a
    *caller-side* outcome: the submission stays queued and the engine
    still decides it exactly once — re-submitting the same ``request_id``
    with ``retry=True`` (what :class:`repro.service.RetryingClient` does
    on this exception) is answered from the service's decision log, never
    decided a second time.  Derives from the builtin ``TimeoutError`` so
    generic ``except TimeoutError`` / ``except asyncio.TimeoutError``
    handlers see it too.

    Attributes
    ----------
    request_id:
        The undecided submission.
    timeout:
        The elapsed wait, in wall-clock seconds.
    """

    def __init__(self, request_id: int | None, timeout: float) -> None:
        super().__init__(f"request {request_id} undecided after "
                         f"{timeout}s; it remains queued and will be "
                         f"decided exactly once")
        self.request_id = request_id
        self.timeout = timeout


class Expired(ServiceError):
    """A submission's event-time deadline passed before processing.

    Raised through the submission's future when
    :meth:`repro.service.RwaService.submit` was given ``deadline=`` and
    the service clock had already moved past it by the time the arrival
    reached the front of the queue.  Expired arrivals are dropped before
    any routing work or admission-guard accounting, are recorded as
    blocked with the ``"expired"`` rejection reason (their own
    ``result.blocked.expired`` counter partition), and are *not*
    retryable — the deadline does not move, so a retry would expire
    again.

    Attributes
    ----------
    request_id:
        The expired submission.
    deadline:
        Its event-time deadline.
    time:
        The service's event-time clock when the arrival was examined.
    """

    def __init__(self, request_id: int | None, deadline: float | None,
                 time: float | None = None) -> None:
        super().__init__(f"request {request_id} expired: deadline "
                         f"{deadline} is behind the service clock"
                         + (f" at time {time}" if time is not None else ""))
        self.request_id = request_id
        self.deadline = deadline
        self.time = time
