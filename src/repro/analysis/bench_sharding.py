"""Sharded-vs-unsharded engine benchmark (E16).

Two claims, recorded in ``BENCH_sharding.json`` by
``scripts/bench_report.py --suite sharding``:

* **Throughput** (``kind == "throughput"``) — on a multi-region topology
  holding 800+ concurrent lightpaths, the component-sharded engine
  (:class:`~repro.conflict.ShardedConflictGraph` structure +
  :class:`~repro.online.ArcColorIndex` forbidden masks) pushes the same
  admission churn and defragmentation passes at least
  :data:`SHARDING_SPEEDUP_TARGET` times faster than the unsharded
  engine.  The two replays must agree on every outcome: same blocked
  arrivals, same final colouring — the speedup buys nothing away.

* **Differential identity** (``kind == "differential"``) — full
  :func:`~repro.online.simulator.simulate_online` runs (speculative
  routing, defrag triggers, timestamp batching) produce identical
  :class:`~repro.online.OnlineResult` records sharded and unsharded, on
  traces whose inter-region lightpaths force component merges and whose
  departures force splits; and the shard-parallel paths
  (``shard_workers``) are byte-identical to their serial execution.

The unsharded engine pays O(degree) neighbourhood walks on family-width
masks per event; the sharded engine pays O(arcs) per event and
shard-width masks inside each component, so the gap widens with
concurrency — 800+ concurrent lightpaths over 4 regions is where the
ISSUE pins the gate.
"""

from __future__ import annotations

import sys
import time
from dataclasses import asdict
from typing import Dict, List, Optional, Sequence, Tuple

from ..generators.families import random_walk_family
from ..generators.regions import multi_region_topology, multi_region_traffic
from ..online.events import ARRIVAL, Event, churn_trace, poisson_trace
from ..online.simulator import OnlineEngine, simulate_online

__all__ = [
    "SHARDING_SPEEDUP_TARGET",
    "THROUGHPUT_SCENARIOS",
    "DIFFERENTIAL_SCENARIOS",
    "measure_throughput_scenario",
    "measure_differential_scenario",
    "run_sharding_benchmark",
    "sharding_benchmark_document",
    "sharding_problems",
    "sharding_check_against_baseline",
]

#: The tentpole target: sharded admission+defrag throughput must beat the
#: unsharded engine by at least this factor at 800+ concurrent lightpaths
#: on the 4-region topology (gate E16, ``benchmarks/bench_sharding.py``).
SHARDING_SPEEDUP_TARGET = 3.0

#: Allowed absolute drift of a recorded blocking probability (the traces
#: are seeded, so differential records are deterministic).
_BLOCKING_TOLERANCE = 0.02


# ---------------------------------------------------------------------- #
# throughput scenarios
# ---------------------------------------------------------------------- #
#: name -> (regions, region size, coupling, wavelengths, concurrent
#:          lightpaths, timed churn events, defrag every).  Lightpaths
#: are multi-arc random walks (3+ fibres each), so members genuinely
#: conflict — short shortest-path routes would leave the conflict graph
#: too sparse to stress either engine.  Walks cross the bridge fibres
#: whenever they wander onto one, which is what exercises the merges.
THROUGHPUT_SCENARIOS: Dict[str, Tuple[int, int, int, int, int, int, int]] = {
    "shard-4regions-860": (4, 48, 2, 128, 900, 3000, 1500),
    "shard-6regions-850": (6, 36, 2, 128, 900, 3000, 1500),
}


def _throughput_trace(name: str) -> Tuple[object, List[Event], int, int]:
    """The deterministic pre-routed churn trace of a throughput scenario."""
    (regions, size, coupling, wavelengths, concurrent, events,
     defrag_every) = THROUGHPUT_SCENARIOS[name]
    graph = multi_region_topology(regions=regions, region_size=size,
                                  coupling=coupling, seed=929 + regions)
    pool = random_walk_family(graph, 3300, seed=35, min_length=3)
    trace = churn_trace(pool, concurrent, events, seed=47)
    return graph, trace, wavelengths, defrag_every


def _replay(graph, trace: List[Event], wavelengths: int, defrag_every: int,
            sharded: bool) -> Tuple[float, OnlineEngine, List[int]]:
    """Drive one engine through the trace; time churn + defrag passes.

    The warm-up (the leading pure-arrival prefix that fills the system)
    is shared setup; the timed region is the steady-state churn plus one
    defragmentation pass every ``defrag_every`` processed events.
    """
    engine = OnlineEngine(graph, wavelengths, routing="shortest",
                          sharded=sharded)
    cut = 0
    while cut < len(trace) and trace[cut].kind == ARRIVAL:
        cut += 1
    blocked: List[int] = []
    for event in trace[:cut]:
        if engine.admit(event.request_id, dipath=event.dipath) is not None:
            blocked.append(event.request_id)
    start = time.perf_counter()
    processed = 0
    for event in trace[cut:]:
        if event.kind == ARRIVAL:
            if engine.admit(event.request_id,
                            dipath=event.dipath) is not None:
                blocked.append(event.request_id)
        else:
            engine.depart(event.request_id)
        processed += 1
        if processed % defrag_every == 0:
            engine.defrag(order="highest_wavelength")
    elapsed = time.perf_counter() - start
    return elapsed, engine, blocked


def _engine_outcome(engine: OnlineEngine, blocked: List[int]) -> Tuple:
    """The comparable end state of a replay (colouring, routes, blocking)."""
    coloring = dict(engine.assigner.coloring)
    routes = {i: tuple(engine.family[i].vertices)
              for i in engine.family.active_indices()}
    return (tuple(blocked), tuple(sorted(coloring.items())),
            tuple(sorted(routes.items())),
            engine.assigner.colors_in_use(), engine.family.load())


def measure_throughput_scenario(name: str, repeats: int = 3
                                ) -> Dict[str, object]:
    """Time unsharded vs sharded churn+defrag; return one record."""
    graph, trace, wavelengths, defrag_every = _throughput_trace(name)
    (regions, size, _, _, concurrent, events, _) = \
        THROUGHPUT_SCENARIOS[name]

    legacy_total, legacy_engine, legacy_blocked = min(
        (_replay(graph, trace, wavelengths, defrag_every, sharded=False)
         for _ in range(repeats)), key=lambda sample: sample[0])
    new_total, new_engine, new_blocked = min(
        (_replay(graph, trace, wavelengths, defrag_every, sharded=True)
         for _ in range(repeats)), key=lambda sample: sample[0])
    outcomes_equal = (_engine_outcome(legacy_engine, legacy_blocked)
                      == _engine_outcome(new_engine, new_blocked))
    # settle the lazy split-checks before reading the component counters
    shards = len(new_engine.shard_map())
    return {
        "scenario": name,
        "kind": "throughput",
        "regions": regions,
        "concurrent": new_engine.active,
        "wavelengths": wavelengths,
        "churn_events": events,
        "defrag_passes": new_engine.defrag_passes,
        "defrag_moves": new_engine.defrag_moves,
        "legacy_total_s": legacy_total,
        "new_total_s": new_total,
        "legacy_event_us": legacy_total / events * 1e6,
        "new_event_us": new_total / events * 1e6,
        "speedup_total": legacy_total / new_total if new_total
        else float("inf"),
        "outcomes_equal": outcomes_equal,
        "component_merges": new_engine.conflict.component_merges,
        "component_splits": new_engine.conflict.component_splits,
        "shard_rebuilds": new_engine.conflict.shard_rebuilds,
        "shards": shards,
    }


# ---------------------------------------------------------------------- #
# differential scenarios
# ---------------------------------------------------------------------- #
#: name -> (regions, region size, coupling, inter fraction, wavelengths,
#:          arrivals, offered load, simulate_online extras)
DIFFERENTIAL_SCENARIOS: Dict[str, Tuple] = {
    "diff-4regions-defrag": (
        4, 22, 2, 0.12, 6, 400, 60.0,
        dict(routing="k_shortest", defrag_every=40, defrag_on_block=True)),
    "diff-4regions-speculative-batch": (
        4, 22, 2, 0.12, 6, 400, 60.0,
        dict(routing="k_shortest", speculative=True, batch_policy="greedy")),
}


def measure_differential_scenario(name: str) -> Dict[str, object]:
    """Sharded vs unsharded (and parallel vs serial) on one full trace."""
    (regions, size, coupling, inter, wavelengths, arrivals, load,
     extras) = DIFFERENTIAL_SCENARIOS[name]
    graph = multi_region_topology(regions=regions, region_size=size,
                                  coupling=coupling, seed=17 + regions)
    pool = multi_region_traffic(graph, 300, inter_fraction=inter, seed=23)
    trace = poisson_trace(pool, arrivals, arrival_rate=load / 3.0,
                          mean_holding=3.0, seed=5)
    base = simulate_online(graph, trace, wavelengths,
                           record_timeline=False, **extras)
    sharded = simulate_online(graph, trace, wavelengths,
                              record_timeline=False, sharded=True, **extras)
    plain, mirrored = asdict(base), asdict(sharded)
    for field in ("sharded", "component_merges", "component_splits",
                  "shard_rebuilds"):
        plain.pop(field), mirrored.pop(field)
    # metrics diagnostics (shard tracker, colour index) are per-code-path;
    # the deterministic section must and does compare equal
    plain_m, mirrored_m = plain.pop("metrics"), mirrored.pop("metrics")
    metrics_identical = (
        {k: v for k, v in plain_m.items() if k != "diagnostics"}
        == {k: v for k, v in mirrored_m.items() if k != "diagnostics"})
    identical = metrics_identical and plain == mirrored
    # the shard-parallel paths must be byte-identical to their serial run
    parallel_extras = dict(extras)
    parallel_extras.pop("speculative", None)
    serial_run = simulate_online(graph, trace, wavelengths,
                                 record_timeline=False, sharded=True,
                                 shard_workers=1, **parallel_extras)
    parallel_run = simulate_online(graph, trace, wavelengths,
                                   record_timeline=False, sharded=True,
                                   shard_workers=2, **parallel_extras)
    return {
        "scenario": name,
        "kind": "differential",
        "regions": regions,
        "wavelengths": wavelengths,
        "arrivals": arrivals,
        "blocking": sharded.blocking_rate,
        "identical": identical,
        "parallel_identical": asdict(serial_run) == asdict(parallel_run),
        "component_merges": sharded.component_merges,
        "component_splits": sharded.component_splits,
        "shard_rebuilds": sharded.shard_rebuilds,
        "merges_exercised": sharded.component_merges > 0,
        "splits_exercised": sharded.component_splits > 0,
    }


# ---------------------------------------------------------------------- #
# suite plumbing (bench_report.py --suite sharding, gate E16)
# ---------------------------------------------------------------------- #
def run_sharding_benchmark(repeats: int = 3,
                           scenarios: Optional[Sequence[str]] = None
                           ) -> List[Dict[str, object]]:
    """Run every (or the selected) E16 scenario and return the records."""
    names = (list(THROUGHPUT_SCENARIOS) + list(DIFFERENTIAL_SCENARIOS)
             if scenarios is None else list(scenarios))
    records: List[Dict[str, object]] = []
    for name in names:
        if name in THROUGHPUT_SCENARIOS:
            records.append(measure_throughput_scenario(name, repeats=repeats))
        else:
            records.append(measure_differential_scenario(name))
    return records


def sharding_benchmark_document(records: List[Dict[str, object]],
                                repeats: int) -> Dict[str, object]:
    """Wrap benchmark records in the ``BENCH_sharding.json`` schema."""
    return {
        "benchmark": "sharded_online_engine",
        "speedup_target": SHARDING_SPEEDUP_TARGET,
        "python": sys.version.split()[0],
        "repeats": repeats,
        "results": records,
    }


def sharding_problems(records: List[Dict[str, object]]) -> List[str]:
    """Records missing the E16 claims, as messages.

    Throughput records must hit :data:`SHARDING_SPEEDUP_TARGET` with
    outcome-identical replays at 800+ concurrent lightpaths; differential
    records must be identical (sharded vs unsharded, parallel vs serial)
    on traces that exercised both merges and splits.
    """
    problems: List[str] = []
    for record in records:
        name = record["scenario"]
        if record["kind"] == "throughput":
            if float(record["speedup_total"]) < SHARDING_SPEEDUP_TARGET:
                problems.append(
                    f"{name}: sharded speedup {record['speedup_total']:.1f}x "
                    f"is below the {SHARDING_SPEEDUP_TARGET:.0f}x target")
            if not record["outcomes_equal"]:
                problems.append(
                    f"{name}: sharded and unsharded replays disagree on "
                    "blocking or colouring")
            if int(record["concurrent"]) < 800:
                problems.append(
                    f"{name}: only {record['concurrent']} concurrent "
                    "lightpaths — the gate requires 800+")
            continue
        if not record["identical"]:
            problems.append(
                f"{name}: sharded OnlineResult differs from unsharded")
        if not record["parallel_identical"]:
            problems.append(
                f"{name}: shard-parallel run differs from its serial twin")
        if not record["merges_exercised"]:
            problems.append(f"{name}: trace never merged components")
    if records and not any(int(r.get("component_splits", 0)) > 0
                           for r in records):
        problems.append(
            "no scenario ever split a component — the lazy split-check "
            "machinery went unexercised")
    return problems


def sharding_check_against_baseline(records: List[Dict[str, object]],
                                    baseline: Dict[str, object],
                                    tolerance: float = 0.20) -> List[str]:
    """Compare a fresh E16 run against a recorded ``BENCH_sharding.json``.

    Throughput uses the familiar two-signal policy: a regression must
    show in both the absolute sharded time and the speedup ratio.
    Differential records are deterministic — identity flags must hold and
    blocking must reproduce within a small absolute slack.
    """
    recorded = {r["scenario"]: r for r in baseline.get("results", [])}
    problems: List[str] = []
    for record in records:
        name = record["scenario"]
        base = recorded.get(name)
        if base is None:
            continue
        if record["kind"] == "throughput":
            current = float(record["new_total_s"])
            allowed = float(base["new_total_s"]) * (1.0 + tolerance)
            ratio = float(record["speedup_total"])
            ratio_floor = float(base["speedup_total"]) / (1.0 + tolerance)
            if current > allowed and ratio < ratio_floor:
                problems.append(
                    f"{name}: sharded replay took {current * 1000:.1f}ms "
                    f"(recorded {float(base['new_total_s']) * 1000:.1f}ms) "
                    f"and its speedup fell to {ratio:.1f}x (recorded "
                    f"{base['speedup_total']:.1f}x) — beyond "
                    f"{tolerance:.0%} on both")
            continue
        drift = abs(float(record["blocking"]) - float(base["blocking"]))
        if drift > _BLOCKING_TOLERANCE:
            problems.append(
                f"{name}: blocking drifted to {record['blocking']:.4f} "
                f"(recorded {base['blocking']:.4f}) — the engine's "
                "decisions changed")
    return problems
