"""Metrics collected by the experiment drivers.

Each experiment produces per-instance records with the quantities the paper
reports: the load ``pi``, the wavelength number ``w`` (exact or per
algorithm), their ratio, the clique number of the conflict graph and basic
instance sizes.  This module computes those records and aggregates them.
"""

from __future__ import annotations

import math
import time
from typing import Dict, Iterable, Mapping, Sequence

from ..conflict.cliques import clique_number
from ..conflict.conflict_graph import build_conflict_graph
from ..core.load import load as _load
from ..core.wavelengths import assign_wavelengths
from ..cycles.internal import has_internal_cycle, internal_cyclomatic_number
from ..dipaths.family import DipathFamily
from ..graphs.digraph import DiGraph

__all__ = [
    "instance_metrics",
    "ratio",
    "aggregate",
    "timeit_call",
]


def ratio(w: int, pi: int) -> float:
    """The ratio ``w / pi`` (``nan`` for an empty instance)."""
    return w / pi if pi else math.nan


def timeit_call(func, *args, **kwargs):
    """Run ``func`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = func(*args, **kwargs)
    return result, time.perf_counter() - start


def instance_metrics(graph: DiGraph, family: DipathFamily,
                     methods: Sequence[str] = ("auto",),
                     include_clique: bool = False) -> Dict[str, object]:
    """Compute the standard metric record for one instance.

    Parameters
    ----------
    methods:
        Wavelength-assignment methods to run; each contributes
        ``w_<method>`` and ``time_<method>`` fields.
    include_clique:
        Also compute the clique number of the conflict graph (exact; only for
        small instances).
    """
    record: Dict[str, object] = {
        "num_vertices": graph.num_vertices,
        "num_arcs": graph.num_arcs,
        "num_dipaths": len(family),
        "load": _load(graph, family),
        "has_internal_cycle": has_internal_cycle(graph),
        "internal_cycles": internal_cyclomatic_number(graph),
    }
    for method in methods:
        solution, elapsed = timeit_call(
            assign_wavelengths, graph, family, method=method)  # type: ignore[arg-type]
        record[f"w_{method}"] = solution.num_wavelengths
        record[f"time_{method}"] = elapsed
    if include_clique:
        record["clique_number"] = clique_number(build_conflict_graph(family))
    first = f"w_{methods[0]}"
    record["ratio"] = ratio(record[first], record["load"])  # type: ignore[arg-type]
    return record


def aggregate(records: Iterable[Mapping[str, object]], field: str
              ) -> Dict[str, float]:
    """Mean / min / max of a numeric field across records (ignoring missing)."""
    values = [float(r[field]) for r in records
              if field in r and r[field] is not None]
    if not values:
        return {"count": 0, "mean": math.nan, "min": math.nan, "max": math.nan}
    return {
        "count": len(values),
        "mean": sum(values) / len(values),
        "min": min(values),
        "max": max(values),
    }
