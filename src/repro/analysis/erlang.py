"""Erlang-load sweeps, the adaptive-routing benchmark (E14) and the
defragmentation benchmark (E15).

Two questions, one record file (``BENCH_online_routing.json``):

* **Does adaptive routing pay?**  :func:`erlang_sweep` drives the same
  seeded Poisson trace (offered load ``arrival_rate * mean_holding``
  Erlang) through the online engine once per routing policy and reports
  the steady-state blocking probability of each — the curves the paper's
  load/wavelength bounds frame.  :func:`run_routing_benchmark` pins two
  deterministic hotspot scenarios and asserts the tentpole claim: at equal
  offered load, ``least_loaded`` and ``k_shortest`` block *strictly less*
  than fixed shortest-path routing.

* **Is what-if speculation cheap?**  The speculation scenarios time the
  evaluation of candidate admissions two ways on a 500+-concurrent warm
  system: through :class:`~repro.online.transaction.WhatIfTransaction`
  admit→score→rollback (O(touched) per candidate) versus the
  rebuild-per-candidate strategy (copy the family, rebuild the conflict
  graph, re-derive the colour constraints).  Both strategies must agree on
  every decision and the transactional path must be at least
  :data:`SPECULATION_SPEEDUP_TARGET` times faster.

Record kinds share one list: ``kind == "blocking"`` rows carry the
blocking comparison, ``kind == "speculation"`` rows the familiar
``legacy_* / new_* / speedup_total`` timing schema of the other suites.
``scripts/bench_report.py --suite routing`` records/checks the file and
``scripts/run_all_experiments.py`` runs the same checks as gate E14.

**E15 — does defragmentation pay?**  ``BENCH_defrag.json`` holds two
record kinds: ``kind == "defrag_blocking"`` replays the same hotspot
scenarios with and without defrag triggers and asserts blocking with
defrag never exceeds blocking without; ``kind == "defrag_reclaim"``
fragments a warm engine, runs one :class:`~repro.online.defrag.DefragPass`
per walk order and reports the wavelengths reclaimed against the
from-scratch recolouring (DSATUR on the rebuilt conflict graph) and the
true lower bound (the fibre load).  ``scripts/bench_report.py --suite
defrag`` records/checks the file and ``scripts/run_all_experiments.py``
runs the same checks as gate E15.

:func:`erlang_sweep` can also fan the (offered load × routing) grid out
across worker processes (``workers=``) through
:func:`repro.parallel.sweep.run_sweep`; the parallel path is record-for-
record byte-identical to the serial one (the tests assert it), it only
changes where the simulations run.
"""

from __future__ import annotations

import functools
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .._bitops import iter_bits, lowest_missing_bit
from ..coloring.dsatur import dsatur_coloring_masks
from ..coloring.verify import is_proper_coloring
from ..conflict.conflict_graph import build_conflict_graph
from ..conflict.dynamic import DynamicConflictGraph
from ..dipaths.dipath import Dipath
from ..dipaths.family import DipathFamily
from ..dipaths.requests import RequestFamily
from ..generators.families import random_walk_family
from ..generators.random_dags import random_dag, random_internal_cycle_free_dag
from ..graphs.digraph import DiGraph
from ..online.assigner import OnlineWavelengthAssigner
from ..online.events import ARRIVAL, poisson_trace
from ..online.routing import live_load_cost
from ..online.simulator import OnlineEngine, simulate_online
from ..online.transaction import WhatIfTransaction
from ..optical.traffic import hotspot_traffic
from ..parallel.sweep import Sweep, run_sweep

__all__ = [
    "ADAPTIVE_ROUTINGS",
    "DEFRAG_TRIGGERS",
    "SPECULATION_SPEEDUP_TARGET",
    "erlang_sweep",
    "run_routing_benchmark",
    "routing_benchmark_document",
    "routing_check_against_baseline",
    "routing_speedup_problems",
    "run_defrag_benchmark",
    "defrag_benchmark_document",
    "defrag_check_against_baseline",
    "defrag_problems",
]

#: Speculative admit+rollback must beat rebuild-per-candidate by at least
#: this factor on 500+ concurrent dipaths (gate E14 and
#: ``benchmarks/bench_routing.py``).
SPECULATION_SPEEDUP_TARGET = 5.0

#: The adaptive policies the blocking records compare against ``shortest``.
ADAPTIVE_ROUTINGS = ("least_loaded", "k_shortest")

#: Allowed absolute drift of a recorded blocking probability before the
#: baseline check flags a behaviour change (traces are seeded, so the
#: numbers are deterministic; the slack covers cross-version RNG shifts).
_BLOCKING_TOLERANCE = 0.02


# ---------------------------------------------------------------------- #
# Erlang sweeps
# ---------------------------------------------------------------------- #
def _erlang_point(offered_load: float, routing: str, seed: int = 0, *,
                  graph: DiGraph, pool: RequestFamily, wavelengths: int,
                  policy: str, num_arrivals: int, mean_holding: float,
                  trace_seed: Optional[int], kempe_repair: bool,
                  speculative: bool) -> Dict[str, object]:
    """One (offered load, routing) record of :func:`erlang_sweep`.

    Module-level and fully determined by its arguments so the sweep can
    dispatch it to worker processes; the positional ``seed`` injected by
    :func:`repro.parallel.sweep.run_sweep` is ignored — the trace seed is
    pinned by the caller so every grid point replays the same arrivals.
    """
    trace = poisson_trace(pool, num_arrivals,
                          arrival_rate=offered_load / mean_holding,
                          mean_holding=mean_holding, seed=trace_seed)
    result = simulate_online(
        graph, trace, wavelengths, routing=routing, policy=policy,
        kempe_repair=kempe_repair, record_timeline=False,
        speculative=speculative and routing == "k_shortest")
    return {"record": {
        "offered_load": float(offered_load),
        "routing": routing,
        "policy": policy,
        "wavelengths": wavelengths,
        "arrivals": num_arrivals,
        "blocking": result.blocking_rate,
        "blocked_no_route": len(result.blocked_no_route),
        "blocked_no_wavelength": len(result.blocked_no_wavelength),
        "wavelengths_used": result.wavelengths_used,
    }}


def erlang_sweep(graph: DiGraph, pool: RequestFamily, wavelengths: int,
                 offered_loads: Sequence[float],
                 routings: Sequence[str] = ("shortest",) + ADAPTIVE_ROUTINGS,
                 policy: str = "first_fit", num_arrivals: int = 400,
                 mean_holding: float = 3.0, seed: Optional[int] = 0,
                 kempe_repair: bool = False, speculative: bool = False,
                 workers: Optional[int] = 1) -> List[Dict[str, object]]:
    """Steady-state blocking per (offered load, routing policy).

    For each offered load ``L`` (Erlang) one seeded Poisson trace with
    ``arrival_rate = L / mean_holding`` is generated and replayed once per
    routing policy — same arrivals, same holding times, so the blocking
    probabilities are directly comparable.  Returns one record per
    (load, routing) pair with the blocking rate split by rejection reason.

    ``workers`` fans the (load, routing) grid out across processes via
    :func:`repro.parallel.sweep.run_sweep` (``None`` = one per CPU,
    ``1`` = serial).  Every grid point is an independent seeded
    simulation, so the parallel records are byte-identical to the serial
    ones, in the same (load-major) order; on platforms without process
    support the executor transparently degrades to the serial path.
    """
    for load in offered_loads:
        if load <= 0:
            raise ValueError("offered loads must be positive")
    point = functools.partial(
        _erlang_point, graph=graph, pool=pool, wavelengths=wavelengths,
        policy=policy, num_arrivals=num_arrivals, mean_holding=mean_holding,
        trace_seed=seed, kempe_repair=kempe_repair, speculative=speculative)
    grid = Sweep({"offered_load": [float(load) for load in offered_loads],
                  "routing": list(routings)})
    rows = run_sweep(point, grid, workers=workers)
    return [row["record"] for row in rows]


# ---------------------------------------------------------------------- #
# benchmark scenarios
# ---------------------------------------------------------------------- #
def _icf_hotspot() -> Tuple[DiGraph, RequestFamily, int, float]:
    graph = random_internal_cycle_free_dag(36, 90, seed=23)
    pool = hotspot_traffic(graph, 400, num_hotspots=3, seed=23)
    return graph, pool, 5, 75.0


def _dag_hotspot() -> Tuple[DiGraph, RequestFamily, int, float]:
    graph = random_dag(30, 0.25, seed=11)
    pool = hotspot_traffic(graph, 400, num_hotspots=2, seed=11)
    return graph, pool, 5, 75.0


BLOCKING_SCENARIOS: Dict[str, Callable[
    [], Tuple[DiGraph, RequestFamily, int, float]]] = {
    "erlang-icf36-hotspot": _icf_hotspot,
    "erlang-dag30-hotspot": _dag_hotspot,
}

#: Arrivals per blocking scenario (enough for stable steady-state rates).
_BLOCKING_ARRIVALS = 600
_BLOCKING_SEED = 42


def measure_blocking_scenario(name: str) -> Dict[str, object]:
    """One deterministic blocking comparison record for scenario ``name``."""
    graph, pool, wavelengths, offered_load = BLOCKING_SCENARIOS[name]()
    rows = erlang_sweep(graph, pool, wavelengths, [offered_load],
                        num_arrivals=_BLOCKING_ARRIVALS, seed=_BLOCKING_SEED)
    blocking = {row["routing"]: float(row["blocking"]) for row in rows}
    fixed = blocking["shortest"]
    record: Dict[str, object] = {
        "scenario": name,
        "kind": "blocking",
        "wavelengths": wavelengths,
        "offered_load": offered_load,
        "arrivals": _BLOCKING_ARRIVALS,
        "blocking_shortest": fixed,
    }
    for routing in ADAPTIVE_ROUTINGS:
        record[f"blocking_{routing}"] = blocking[routing]
    record["adaptive_beats_fixed"] = all(
        blocking[routing] < fixed for routing in ADAPTIVE_ROUTINGS)
    return record


# ---------------------------------------------------------------------- #
# speculation benchmark
# ---------------------------------------------------------------------- #
def _warm_engine(concurrent: int, seed: int
                 ) -> Tuple[DynamicConflictGraph, OnlineWavelengthAssigner,
                            List[Dipath]]:
    """A 500+-concurrent warm engine plus a pool of candidate dipaths."""
    graph = random_dag(48, 0.12, seed=20260730)
    pool = list(random_walk_family(graph, 1200, seed=seed))
    conflict = DynamicConflictGraph(DipathFamily())
    # first_fit with a roomy budget: the warm-up admits everything, so both
    # evaluation strategies start from an identical provisioned state.
    assigner = OnlineWavelengthAssigner(96, policy="first_fit")
    admitted = 0
    for dipath in pool:
        if admitted >= concurrent:
            break
        idx = conflict.add_dipath(dipath)
        if assigner.assign(conflict, idx) is None:   # pragma: no cover
            conflict.remove_dipath(idx)
        else:
            admitted += 1
    return conflict, assigner, pool


def _evaluate_transactional(conflict: DynamicConflictGraph,
                            assigner: OnlineWavelengthAssigner,
                            candidates: Sequence[Dipath]) -> Optional[int]:
    """Best admissible candidate via admit→score→rollback speculation."""
    best: Optional[Tuple[Tuple[int, int, int], int]] = None
    family = conflict.family
    for pos, dipath in enumerate(candidates):
        with WhatIfTransaction(conflict, assigner) as tx:
            _, color = tx.admit(dipath)
            if color is not None:
                value = live_load_cost(family, dipath)
                if best is None or value < best[0]:
                    best = (value, pos)
    return None if best is None else best[1]


def _evaluate_rebuild(conflict: DynamicConflictGraph,
                      assigner: OnlineWavelengthAssigner,
                      candidates: Sequence[Dipath]) -> Optional[int]:
    """Best admissible candidate via copy + conflict-graph rebuild each.

    The pre-transaction strategy: every what-if clones the family, rebuilds
    the conflict graph from scratch and re-derives the candidate's colour
    constraints from the live colouring.  Decision-equivalent to the
    transactional path (same first-fit colour, same score), just paid in
    O(family) per candidate instead of O(touched).
    """
    family = conflict.family
    wavelengths = assigner.wavelengths
    color_of_slot = assigner.coloring
    best: Optional[Tuple[Tuple[int, int, int], int]] = None
    for pos, dipath in enumerate(candidates):
        fresh = family.copy()               # dense 0..n-1 reindex
        idx = fresh.add(dipath)
        rebuilt = build_conflict_graph(fresh)
        slot_of_pos = family.active_indices()
        forbidden = 0
        for j in iter_bits(rebuilt.neighbor_mask(idx)):
            color = color_of_slot.get(slot_of_pos[j])
            if color is not None:           # pragma: no branch
                forbidden |= 1 << color
        if lowest_missing_bit(forbidden) >= wavelengths:
            continue
        value = live_load_cost(fresh, dipath)
        if best is None or value < best[0]:
            best = (value, pos)
    return None if best is None else best[1]


SPECULATION_SCENARIOS: Dict[str, Tuple[int, int, int, int]] = {
    # name -> (concurrent, what_ifs, candidates per what-if, seed)
    "speculate-walks-550": (550, 60, 4, 7),
    "speculate-walks-620": (620, 60, 4, 9),
}


def measure_speculation_scenario(name: str, repeats: int = 3
                                 ) -> Dict[str, object]:
    """Time rebuild-per-candidate vs transactional what-if evaluation."""
    concurrent, what_ifs, num_candidates, seed = SPECULATION_SCENARIOS[name]
    conflict, assigner, pool = _warm_engine(concurrent, seed)
    candidate_sets = [
        [pool[(i * num_candidates + j) % len(pool)]
         for j in range(num_candidates)]
        for i in range(what_ifs)]

    def run(evaluate) -> Tuple[float, List[Optional[int]]]:
        start = time.perf_counter()  # noqa: REPRO-D1 -- benchmark timing
        decisions = [evaluate(conflict, assigner, cands)
                     for cands in candidate_sets]
        return time.perf_counter() - start, decisions  # noqa: REPRO-D1 -- benchmark timing

    legacy_total, legacy_decisions = min(
        (run(_evaluate_rebuild) for _ in range(repeats)),
        key=lambda sample: sample[0])
    new_total, new_decisions = min(
        (run(_evaluate_transactional) for _ in range(repeats)),
        key=lambda sample: sample[0])
    evaluations = what_ifs * num_candidates
    return {
        "scenario": name,
        "kind": "speculation",
        "num_dipaths": len(conflict.family),
        "what_ifs": what_ifs,
        "candidates_per_what_if": num_candidates,
        "legacy_total_s": legacy_total,
        "new_total_s": new_total,
        "legacy_candidate_us": legacy_total / evaluations * 1e6,
        "new_candidate_us": new_total / evaluations * 1e6,
        "speedup_total": legacy_total / new_total if new_total
        else float("inf"),
        "decisions_equal": new_decisions == legacy_decisions,
        "mask_rebuilds": conflict.family.mask_rebuilds,
    }


# ---------------------------------------------------------------------- #
# defragmentation benchmark (E15)
# ---------------------------------------------------------------------- #
#: The trigger configuration the E15 blocking comparison switches on:
#: a periodic pass every 25 events plus an on-block pass with a single
#: re-try of the blocked arrival.
DEFRAG_TRIGGERS: Dict[str, object] = {
    "defrag_every": 25,
    "defrag_on_block": True,
    "defrag_order": "highest_wavelength",
}

#: Multi-candidate router for the defrag runs, so moves can re-route, not
#: only recolour.
_DEFRAG_ROUTING = "k_shortest"


def _blocking_trace(name: str):
    graph, pool, wavelengths, offered_load = BLOCKING_SCENARIOS[name]()
    trace = poisson_trace(pool, _BLOCKING_ARRIVALS,
                          arrival_rate=offered_load / 3.0, mean_holding=3.0,
                          seed=_BLOCKING_SEED)
    return graph, trace, wavelengths, offered_load


def measure_defrag_blocking_scenario(name: str) -> Dict[str, object]:
    """Blocking with vs without defrag triggers on one hotspot scenario."""
    graph, trace, wavelengths, offered_load = _blocking_trace(name)
    base = simulate_online(graph, trace, wavelengths,
                           routing=_DEFRAG_ROUTING, record_timeline=False)
    defrag = simulate_online(graph, trace, wavelengths,
                             routing=_DEFRAG_ROUTING, record_timeline=False,
                             **DEFRAG_TRIGGERS)
    return {
        "scenario": name,
        "kind": "defrag_blocking",
        "wavelengths": wavelengths,
        "offered_load": offered_load,
        "arrivals": _BLOCKING_ARRIVALS,
        "routing": _DEFRAG_ROUTING,
        "blocking_no_defrag": base.blocking_rate,
        "blocking_defrag": defrag.blocking_rate,
        "defrag_passes": defrag.defrag_passes,
        "defrag_moves": defrag.defrag_moves,
        "wavelengths_reclaimed": defrag.wavelengths_reclaimed,
        "defrag_not_worse": defrag.blocking_rate <= base.blocking_rate,
    }


#: name -> (blocking scenario supplying topology+traffic, wavelength
#: budget, events to replay before measuring).  The budget is roomier
#: than the blocking scenarios' so churn leaves genuine fragmentation to
#: reclaim instead of just blocking.
RECLAIM_SCENARIOS: Dict[str, Tuple[str, int, int]] = {
    "reclaim-icf36-hotspot": ("erlang-icf36-hotspot", 12, 500),
    "reclaim-dag30-hotspot": ("erlang-dag30-hotspot", 12, 500),
}


def _fragmented_engine(base_name: str, wavelengths: int,
                       events: int) -> OnlineEngine:
    """A warm engine after ``events`` churn events of the base scenario."""
    graph, pool, _, offered_load = BLOCKING_SCENARIOS[base_name]()
    trace = poisson_trace(pool, _BLOCKING_ARRIVALS,
                          arrival_rate=offered_load / 3.0, mean_holding=3.0,
                          seed=_BLOCKING_SEED)
    engine = OnlineEngine(graph, wavelengths, routing=_DEFRAG_ROUTING)
    for event in trace[:events]:
        if event.kind == ARRIVAL:
            engine.admit(event.request_id, request=event.request,
                         dipath=event.dipath)
        else:
            engine.depart(event.request_id)
    return engine


def _proper_after_defrag(engine: OnlineEngine) -> bool:
    """Post-defrag colouring verifies against a from-scratch rebuild."""
    active = engine.family.active_indices()
    rebuilt = build_conflict_graph(
        DipathFamily([engine.family[i] for i in active]))
    remap = {slot: pos for pos, slot in enumerate(active)}
    dense = {remap[slot]: color
             for slot, color in engine.assigner.coloring.items()}
    return set(dense) == set(range(len(active))) and \
        is_proper_coloring(rebuilt.adjacency(), dense)


def _recolor_from_scratch(engine: OnlineEngine) -> int:
    """Wavelengths DSATUR needs recolouring the engine's current routes."""
    family = engine.family
    active = [family[i] for i in family.active_indices()]
    if not active:
        return 0
    rebuilt = build_conflict_graph(DipathFamily(active))
    colors, _ = dsatur_coloring_masks(
        [rebuilt.neighbor_mask(v) for v in range(len(active))])
    return len(set(colors))


def measure_defrag_reclaim_scenario(name: str) -> Dict[str, object]:
    """Wavelengths reclaimed per walk order vs the recolouring bounds.

    For each walk order a fresh twin of the fragmented engine runs defrag
    passes to quiescence (a pass committing no move — the strictly
    decreasing move potential guarantees this terminates).  The reclaim is
    compared against two numbers measured on the **fragmented pre-defrag
    state**: DSATUR recolouring the fragmented routes from scratch (what a
    maintenance-window recolouring — no rerouting — could do) and the
    fragmented maximum fibre load.  Defrag moves also *re-route*, so it
    can legitimately beat both; what no proper assignment can beat is the
    final state's own fibre load, recorded per order as
    ``load_after_<order>`` and enforced by :func:`defrag_problems`.
    """
    base_name, wavelengths, events = RECLAIM_SCENARIOS[name]
    record: Dict[str, object] = {
        "scenario": name,
        "kind": "defrag_reclaim",
        "wavelengths": wavelengths,
        "events": events,
    }
    # fragmented-state facts, before any defrag pass
    fragmented = _fragmented_engine(base_name, wavelengths, events)
    record["colors_before"] = fragmented.assigner.colors_in_use()
    record["load_before"] = fragmented.family.load()
    record["recolor_from_scratch"] = _recolor_from_scratch(fragmented)
    proper = True
    bounded = True
    best_after: Optional[int] = None
    for order in ("highest_wavelength", "longest_route", "most_conflicted"):
        engine = _fragmented_engine(base_name, wavelengths, events)
        moves = 0
        while True:
            report = engine.defrag(order=order)
            moves += len(report.moves)
            if not report.moves:
                break
        after = engine.assigner.colors_in_use()
        load_after = engine.family.load()
        record[f"colors_after_{order}"] = after
        record[f"load_after_{order}"] = load_after
        record[f"moves_{order}"] = moves
        proper = proper and _proper_after_defrag(engine)
        bounded = bounded and after >= load_after
        best_after = after if best_after is None else min(best_after, after)
    record["colors_after_best"] = best_after
    record["reclaimed_best"] = record["colors_before"] - best_after
    record["coloring_proper_after"] = proper
    record["within_load_bound"] = bounded
    record["reclaims_capacity"] = record["reclaimed_best"] >= 1
    return record


def run_defrag_benchmark(repeats: int = 3,
                         scenarios: Optional[Sequence[str]] = None
                         ) -> List[Dict[str, object]]:
    """Run every (or the selected) E15 scenario and return the records.

    ``repeats`` is accepted for suite-plumbing symmetry; the records are
    deterministic replays, so repeating cannot change them.
    """
    del repeats
    names = (list(BLOCKING_SCENARIOS) + list(RECLAIM_SCENARIOS)
             if scenarios is None else list(scenarios))
    records: List[Dict[str, object]] = []
    for name in names:
        if name in BLOCKING_SCENARIOS:
            records.append(measure_defrag_blocking_scenario(name))
        else:
            records.append(measure_defrag_reclaim_scenario(name))
    return records


def defrag_benchmark_document(records: List[Dict[str, object]], repeats: int
                              ) -> Dict[str, object]:
    """Wrap benchmark records in the ``BENCH_defrag.json`` schema."""
    return {
        "benchmark": "online_defrag",
        "python": sys.version.split()[0],
        "repeats": repeats,
        "results": records,
    }


def defrag_problems(records: List[Dict[str, object]]) -> List[str]:
    """Records missing the E15 claims, as messages.

    Blocking records must show defrag-enabled blocking no worse than
    defrag-off; reclaim records must reclaim at least one wavelength,
    keep the colouring proper and keep every order's final colour count
    at or above that final state's own fibre load.
    """
    problems: List[str] = []
    for record in records:
        name = record["scenario"]
        if record["kind"] == "defrag_blocking":
            if not record["defrag_not_worse"]:
                problems.append(
                    f"{name}: defrag made blocking worse "
                    f"({record['blocking_defrag']:.4f} vs "
                    f"{record['blocking_no_defrag']:.4f} without)")
            continue
        if not record["coloring_proper_after"]:
            problems.append(f"{name}: post-defrag colouring is not proper")
        if not record["reclaims_capacity"]:
            problems.append(
                f"{name}: defrag reclaimed no wavelength "
                f"({record['colors_before']} before, best "
                f"{record['colors_after_best']} after)")
        if not record["within_load_bound"]:
            problems.append(
                f"{name}: impossible reclaim — some order ended with fewer "
                "colours in use than its own final fibre load")
    return problems


def defrag_check_against_baseline(records: List[Dict[str, object]],
                                  baseline: Dict[str, object],
                                  tolerance: float = 0.20) -> List[str]:
    """Compare a fresh E15 run against a recorded ``BENCH_defrag.json``.

    Everything in this suite is a deterministic seeded replay: blocking
    probabilities must reproduce within the same small absolute slack as
    the routing suite, reclaimed-wavelength counts within one wavelength
    (integer drift can only come from an engine behaviour change).
    ``tolerance`` is accepted for plumbing symmetry but unused — there is
    no timing in these records.
    """
    del tolerance
    recorded = {r["scenario"]: r for r in baseline.get("results", [])}
    problems: List[str] = []
    for record in records:
        name = record["scenario"]
        base = recorded.get(name)
        if base is None:
            continue
        if record["kind"] == "defrag_blocking":
            for key in ("blocking_no_defrag", "blocking_defrag"):
                drift = abs(float(record[key]) - float(base[key]))
                if drift > _BLOCKING_TOLERANCE:
                    problems.append(
                        f"{name}: {key} drifted to {record[key]:.4f} "
                        f"(recorded {base[key]:.4f}) — the engine's "
                        "decisions changed")
            continue
        for key in ("colors_before", "colors_after_best"):
            if abs(int(record[key]) - int(base[key])) > 1:
                problems.append(
                    f"{name}: {key} drifted to {record[key]} "
                    f"(recorded {base[key]}) — the defrag engine's "
                    "decisions changed")
    return problems


# ---------------------------------------------------------------------- #
# suite plumbing (bench_report.py --suite routing, gate E14)
# ---------------------------------------------------------------------- #
def run_routing_benchmark(repeats: int = 3,
                          scenarios: Optional[Sequence[str]] = None
                          ) -> List[Dict[str, object]]:
    """Run every (or the selected) routing scenario and return the records."""
    names = (list(BLOCKING_SCENARIOS) + list(SPECULATION_SCENARIOS)
             if scenarios is None else list(scenarios))
    records: List[Dict[str, object]] = []
    for name in names:
        if name in BLOCKING_SCENARIOS:
            records.append(measure_blocking_scenario(name))
        else:
            records.append(measure_speculation_scenario(name, repeats=repeats))
    return records


def routing_benchmark_document(records: List[Dict[str, object]], repeats: int
                               ) -> Dict[str, object]:
    """Wrap benchmark records in the ``BENCH_online_routing.json`` schema."""
    return {
        "benchmark": "online_adaptive_routing",
        "speedup_target": SPECULATION_SPEEDUP_TARGET,
        "python": sys.version.split()[0],
        "repeats": repeats,
        "results": records,
    }


def routing_speedup_problems(records: List[Dict[str, object]]) -> List[str]:
    """Records missing their tentpole target, as messages.

    Blocking records must show every adaptive policy strictly below fixed
    shortest-path blocking; speculation records must hit
    :data:`SPECULATION_SPEEDUP_TARGET` with both strategies agreeing.
    """
    problems: List[str] = []
    for record in records:
        name = record["scenario"]
        if record["kind"] == "blocking":
            if not record["adaptive_beats_fixed"]:
                rates = ", ".join(
                    f"{routing}={record[f'blocking_{routing}']:.4f}"
                    for routing in ADAPTIVE_ROUTINGS)
                problems.append(
                    f"{name}: adaptive routing does not strictly beat fixed "
                    f"shortest (shortest={record['blocking_shortest']:.4f}, "
                    f"{rates})")
            continue
        if float(record["speedup_total"]) < SPECULATION_SPEEDUP_TARGET:
            problems.append(
                f"{name}: speculation speedup {record['speedup_total']:.1f}x "
                f"is below the {SPECULATION_SPEEDUP_TARGET:.0f}x target")
        if not record["decisions_equal"]:
            problems.append(
                f"{name}: transactional and rebuild evaluation disagree")
    return problems


def routing_check_against_baseline(records: List[Dict[str, object]],
                                   baseline: Dict[str, object],
                                   tolerance: float = 0.20) -> List[str]:
    """Compare a fresh run against a recorded ``BENCH_online_routing.json``.

    Blocking records are deterministic (seeded traces, deterministic
    engine), so they must reproduce the recorded probabilities to within
    a small absolute slack.  Speculation records use the same two-signal
    policy as the other engine gates: a regression must show in both the
    absolute transactional time (10 ms slack) and the speedup ratio.
    Like its conflict/online counterparts this checker does *not* include
    :func:`routing_speedup_problems` — the callers run both.
    """
    recorded = {r["scenario"]: r for r in baseline.get("results", [])}
    problems: List[str] = []
    for record in records:
        name = record["scenario"]
        base = recorded.get(name)
        if base is None:
            continue
        if record["kind"] == "blocking":
            for key in ("blocking_shortest",
                        *(f"blocking_{r}" for r in ADAPTIVE_ROUTINGS)):
                drift = abs(float(record[key]) - float(base[key]))
                if drift > _BLOCKING_TOLERANCE:
                    problems.append(
                        f"{name}: {key} drifted to {record[key]:.4f} "
                        f"(recorded {base[key]:.4f}) — the engine's "
                        "decisions changed")
            continue
        current = float(record["new_total_s"])
        # 10 ms of absolute slack: the transactional side is so fast that
        # its total stays within scheduler-noise territory even with 60
        # what-ifs per scenario, and the speedup-ratio signal plus the
        # separate 5x target still catch any real regression.
        allowed = float(base["new_total_s"]) * (1.0 + tolerance) + 0.010
        ratio = float(record["speedup_total"])
        ratio_floor = float(base["speedup_total"]) / (1.0 + tolerance)
        if current > allowed and ratio < ratio_floor:
            problems.append(
                f"{name}: transactional evaluation took "
                f"{current * 1000:.2f}ms (recorded "
                f"{float(base['new_total_s']) * 1000:.2f}ms) and its speedup "
                f"fell to {ratio:.1f}x (recorded "
                f"{base['speedup_total']:.1f}x) — beyond {tolerance:.0%} on "
                "both")
    return problems
