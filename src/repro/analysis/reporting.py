"""Persisting experiment records (CSV / JSON).

The benchmark harness prints paper-style tables; for downstream analysis
(plotting, regression tracking across versions) the same records can be
written to disk.  Only the standard library is used so reports can be loaded
anywhere.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, List, Mapping, Optional, Sequence, Union

__all__ = ["write_csv", "write_json", "read_json", "summarize_records"]

PathLike = Union[str, Path]


def _columns(records: Sequence[Mapping[str, object]],
             columns: Optional[Sequence[str]]) -> List[str]:
    if columns is not None:
        return list(columns)
    seen: List[str] = []
    for record in records:
        for key in record:
            if key not in seen:
                seen.append(key)
    return seen


def write_csv(records: Sequence[Mapping[str, object]], path: PathLike,
              columns: Optional[Sequence[str]] = None) -> Path:
    """Write records to a CSV file; returns the path.

    Missing fields are left empty; the column order is the first-appearance
    order across records unless ``columns`` is given.
    """
    path = Path(path)
    cols = _columns(records, columns)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=cols, extrasaction="ignore")
        writer.writeheader()
        for record in records:
            writer.writerow({c: record.get(c, "") for c in cols})
    return path


def write_json(records: Sequence[Mapping[str, object]], path: PathLike,
               metadata: Optional[Mapping[str, object]] = None) -> Path:
    """Write records (plus optional metadata) to a JSON file; returns the path.

    Non-JSON-serialisable values (tuples used as vertex labels, sets, ...) are
    converted to strings so any experiment record can be persisted.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"metadata": dict(metadata or {}), "records": [dict(r) for r in records]}
    with path.open("w") as handle:
        json.dump(payload, handle, indent=2, default=str, sort_keys=True)
    return path


def read_json(path: PathLike) -> List[dict]:
    """Read back the records written by :func:`write_json`."""
    with Path(path).open() as handle:
        payload = json.load(handle)
    return list(payload.get("records", []))


def summarize_records(records: Iterable[Mapping[str, object]],
                      group_by: str, value: str) -> List[dict]:
    """Group records by a field and aggregate a numeric value (mean/min/max).

    Handy for turning per-seed sweep records into per-parameter summary rows
    before printing or persisting them.
    """
    groups: dict = {}
    for record in records:
        if group_by not in record or value not in record:
            continue
        groups.setdefault(record[group_by], []).append(float(record[value]))  # type: ignore[arg-type]
    out = []
    for key in sorted(groups, key=repr):
        values = groups[key]
        out.append({
            group_by: key,
            f"{value}_mean": sum(values) / len(values),
            f"{value}_min": min(values),
            f"{value}_max": max(values),
            "count": len(values),
        })
    return out
