"""Observability-overhead benchmark (E18): tracing must be near-free.

Two claims, recorded in ``BENCH_obs.json`` by
``scripts/bench_report.py --suite obs``:

* **Overhead** (``kind == "overhead"``) — running the E13-class
  admission workloads through :func:`~repro.online.simulator.
  simulate_online` with a full :class:`~repro.obs.trace.Tracer` attached
  (ring-buffer sink, spans on every admit/depart/defrag) costs at most
  :data:`OBS_OVERHEAD_TARGET` times the uninstrumented run, *and* the
  instrumented run makes bit-identical decisions: accepted/blocked sets,
  rejection reasons and the deterministic section of the metrics
  snapshot all compare equal, and the serialized registry snapshots are
  byte-identical (``decisions_equal`` / ``metrics_identical``).  The
  ratio is the smaller of two noise-robust estimators — the ratio of
  min-of-repeats and the median of paired back-to-back per-repeat
  ratios; CPU contention only slows runs, so each estimator is biased
  upward and the smaller one is the tighter bound on the true cost.

* **Trace throughput** (``kind == "throughput"``) — raw span-emission
  rates through the bounded :class:`~repro.obs.trace.RingBufferSink`
  and the :class:`~repro.obs.trace.JsonlSink` (serialising to the null
  device), recorded for information.  These are absolute rates on
  whatever machine ran the suite; the gated signal is the overhead
  *ratio* above, not these numbers.

The bit-identity claim is also pinned by ``tests/test_obs_determinism.py``
(50-seed sweep) — this suite is the wall-clock side of the same contract.
"""

from __future__ import annotations

import os
import statistics
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..generators.random_dags import random_internal_cycle_free_dag
from ..obs.trace import JsonlSink, RingBufferSink, Tracer
from ..online.events import Event, churn_trace
from ..online.simulator import OnlineResult, simulate_online
from ..dipaths.routing import route_all
from ..optical.traffic import hotspot_traffic, uniform_random_traffic

__all__ = [
    "OBS_OVERHEAD_TARGET",
    "OVERHEAD_SCENARIOS",
    "THROUGHPUT_SPANS",
    "measure_overhead_scenario",
    "measure_trace_throughput",
    "obs_benchmark_document",
    "obs_check_against_baseline",
    "obs_problems",
    "run_obs_benchmark",
]

#: Full instrumentation may cost at most this ratio of the plain run's
#: wall-clock on the admission workloads (the E18 gate's ceiling).
OBS_OVERHEAD_TARGET = 1.10

#: Spans emitted per sink by the throughput scenario.
THROUGHPUT_SPANS = 20_000


def _hotspot_admission() -> Tuple[object, List[Event], Dict[str, object]]:
    """The E13 hotspot churn workload, replayed through the full engine."""
    graph = random_internal_cycle_free_dag(40, 80, seed=5)
    requests = hotspot_traffic(graph, 1400, num_hotspots=3, seed=5)
    pool = route_all(graph, requests, policy="shortest")
    trace = churn_trace(pool, 1200, 150, seed=17)
    return graph, trace, dict(wavelengths=40)


def _routed_defrag_admission() -> Tuple[object, List[Event],
                                        Dict[str, object]]:
    """Engine-routed churn with periodic defrag — every span kind fires."""
    graph = random_internal_cycle_free_dag(36, 72, seed=9)
    pool = uniform_random_traffic(graph, 700, seed=9)
    trace = churn_trace(pool, 400, 150, seed=19)
    return graph, trace, dict(wavelengths=24, routing="k_shortest",
                              defrag_every=120)


#: name -> workload builder returning (graph, trace, simulate kwargs).
OVERHEAD_SCENARIOS: Dict[str, Callable[[], Tuple]] = {
    "obs-hotspot-routed-1200": _hotspot_admission,
    "obs-routed-defrag-400": _routed_defrag_admission,
}


def _decisions(result: OnlineResult) -> Tuple:
    """The decision-bearing projection of a result, for identity checks."""
    return (result.accepted, result.blocked, result.rejections,
            result.wavelengths_used, result.kempe_repairs,
            result.defrag_moves, result.wavelengths_reclaimed)


def _deterministic_json(result: OnlineResult) -> str:
    """The deterministic metrics section, serialized canonically."""
    import json

    snapshot = {k: v for k, v in result.metrics.items()
                if k != "diagnostics"}
    return json.dumps(snapshot, sort_keys=True, separators=(",", ":"))


def measure_overhead_scenario(name: str, repeats: int = 3
                              ) -> Dict[str, object]:
    """Time one admission workload plain vs fully instrumented."""
    graph, trace, kwargs = OVERHEAD_SCENARIOS[name]()

    simulate_online(graph, trace, **kwargs)    # untimed warm-up
    plain_s = float("inf")
    traced_s = float("inf")
    plain = traced = None
    spans = 0
    ratios: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        plain = simulate_online(graph, trace, **kwargs)
        rep_plain = time.perf_counter() - start
        plain_s = min(plain_s, rep_plain)

        sink = RingBufferSink(capacity=4096)
        tracer = Tracer(sink=sink)
        start = time.perf_counter()
        traced = simulate_online(graph, trace, tracer=tracer, **kwargs)
        rep_traced = time.perf_counter() - start
        traced_s = min(traced_s, rep_traced)
        spans = len(sink.records()) + sink.dropped
        ratios.append(rep_traced / rep_plain if rep_plain else float("inf"))

    # Two upward-biased estimators of the true overhead: the ratio of
    # min-of-repeats (clean when each side gets at least one quiet run)
    # and the median of paired back-to-back ratios (clean when drift is
    # slower than a pair).  Contention only ever slows a run, so the
    # smaller of the two is the tighter estimate; a real regression
    # inflates both.
    min_ratio = traced_s / plain_s if plain_s else float("inf")
    ratio = min(statistics.median(ratios), min_ratio)
    return {
        "kind": "overhead",
        "scenario": name,
        "events": len(trace),
        "wavelengths": kwargs["wavelengths"],
        "blocking": plain.blocking_rate,
        "plain_total_s": plain_s,
        "traced_total_s": traced_s,
        "overhead_ratio": ratio,
        "overhead_target": OBS_OVERHEAD_TARGET,
        "spans_emitted": spans,
        "decisions_equal": _decisions(plain) == _decisions(traced),
        "metrics_identical": (_deterministic_json(plain)
                              == _deterministic_json(traced)),
    }


def measure_trace_throughput(spans: int = THROUGHPUT_SPANS
                             ) -> Dict[str, object]:
    """Raw span-emission rates through the ring and JSONL sinks."""
    ring = Tracer(sink=RingBufferSink(capacity=1024))
    start = time.perf_counter()
    for i in range(spans):
        with ring.span("bench", i=i):
            pass
    ring_s = time.perf_counter() - start

    with open(os.devnull, "w", encoding="utf-8") as devnull:
        jsonl = Tracer(sink=JsonlSink(devnull))
        start = time.perf_counter()
        for i in range(spans):
            with jsonl.span("bench", i=i):
                pass
        jsonl_s = time.perf_counter() - start

    return {
        "kind": "throughput",
        "scenario": "trace-throughput",
        "spans": spans,
        "ring_total_s": ring_s,
        "ring_spans_per_s": spans / ring_s if ring_s else float("inf"),
        "jsonl_total_s": jsonl_s,
        "jsonl_spans_per_s": spans / jsonl_s if jsonl_s else float("inf"),
    }


def run_obs_benchmark(repeats: int = 3,
                      scenarios: Optional[Sequence[str]] = None
                      ) -> List[Dict[str, object]]:
    """Run every (or the selected) E18 scenario and return the records."""
    names = (list(OVERHEAD_SCENARIOS) + ["trace-throughput"]
             if scenarios is None else list(scenarios))
    # The gate reads a median of paired ratios; fewer than five pairs
    # lets a single noisy repeat decide the median, so floor it there.
    repeats = max(repeats, 5)
    records: List[Dict[str, object]] = []
    for name in names:
        if name in OVERHEAD_SCENARIOS:
            records.append(measure_overhead_scenario(name, repeats=repeats))
        else:
            records.append(measure_trace_throughput())
    return records


def obs_benchmark_document(records: List[Dict[str, object]],
                           repeats: int) -> Dict[str, object]:
    """Wrap benchmark records in the ``BENCH_obs.json`` schema."""
    return {
        "benchmark": "observability_overhead",
        "python": sys.version.split()[0],
        "repeats": repeats,
        "results": records,
    }


def obs_problems(records: List[Dict[str, object]]) -> List[str]:
    """Records missing the E18 claims, as messages.

    Overhead records must stay at or under :data:`OBS_OVERHEAD_TARGET`
    and must prove decision and metrics bit-identity; throughput records
    are informational and never fail.
    """
    problems: List[str] = []
    for record in records:
        if record["kind"] != "overhead":
            continue
        name = record["scenario"]
        if not record["decisions_equal"]:
            problems.append(
                f"{name}: the instrumented run changed a decision — "
                "tracing is not observation-only")
        if not record["metrics_identical"]:
            problems.append(
                f"{name}: deterministic metrics snapshots are not "
                "byte-identical between the plain and traced runs")
        if record["overhead_ratio"] > OBS_OVERHEAD_TARGET:
            problems.append(
                f"{name}: full instrumentation costs "
                f"{record['overhead_ratio']:.2f}x the plain run "
                f"(ceiling {OBS_OVERHEAD_TARGET:.2f}x)")
    return problems


def obs_check_against_baseline(records: List[Dict[str, object]],
                               baseline: Dict[str, object],
                               tolerance: float = 0.20) -> List[str]:
    """Compare a fresh E18 run against a recorded ``BENCH_obs.json``.

    The deterministic facts (blocking, span counts, identity flags) must
    reproduce exactly.  Absolute wall-clock is *not* compared across
    runs — the gated timing signal is the within-run overhead ratio,
    checked by :func:`obs_problems` on both the recorded and the fresh
    run.  ``tolerance`` is kept for signature compatibility.
    """
    del tolerance
    recorded = {r["scenario"]: r for r in baseline.get("results", [])}
    problems: List[str] = []
    for record in records:
        name = record["scenario"]
        base = recorded.get(name)
        if base is None:
            continue
        if record["kind"] == "overhead":
            if record["blocking"] != base["blocking"]:
                problems.append(
                    f"{name}: blocking {record['blocking']:.4f} differs "
                    f"from the recorded {base['blocking']:.4f} — the "
                    "workload's decisions changed")
            if record["spans_emitted"] != base["spans_emitted"]:
                problems.append(
                    f"{name}: {record['spans_emitted']} spans emitted "
                    f"(recorded {base['spans_emitted']}) — the span "
                    "schema changed")
    problems.extend(obs_problems(records))
    return problems
