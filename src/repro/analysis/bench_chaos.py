"""Chaos benchmark (E21): live faults, crash-restart, restoration economics.

Four claims, recorded in ``BENCH_chaos.json`` by
``scripts/bench_report.py --suite chaos``:

* **Fault-bearing identity** (``kind == "chaos_identity"``) — a
  flash-crowd trace with injected fibre cuts and a repair replayed
  through :func:`repro.service.serve_trace` makes bit-identical
  decisions to :func:`~repro.online.simulator.simulate_online`:
  accepted/blocked/rejections, stranded/restored counts and the final
  :func:`~repro.online.persistence.engine_fingerprint` all compare
  equal.  Sustained admissions/sec under faults rides along for
  information.

* **Maintenance window** (``kind == "chaos_maintenance"``) —
  :meth:`~repro.service.RwaService.schedule_maintenance` (planned
  cut+repair pairs with pre-emptive drain) is decision- and
  fingerprint-identical to replaying
  :func:`~repro.online.events.maintenance_events` through the simulator.

* **Crash-restart convergence** (``kind == "chaos_crash"``) — a
  journal-backed supervised service killed at random op offsets and
  restarted by :class:`~repro.service.ServiceSupervisor` converges to
  the *uncrashed* supervised run's engine fingerprint on every offset,
  with exactly one restart each.  The uncrashed run's decisions equal
  the simulator oracle's; its fingerprint is compared
  durable-to-durable because a :class:`~repro.online.persistence.
  DurableEngine` canonicalizes adjacency-set iteration order from its
  genesis record (a legitimate fingerprint component — it seeds routing
  tie-breaks — that the in-memory engine does not share).

* **Restoration economics** (``kind == "chaos_restoration"``) — through
  the *service* path, restoration strictly beats restoration-off
  blocking at an equal Kempe move budget on a cut-heavy trace
  (``restoration_pays``) — the service-side twin of the E17 simulator
  claim.

The same contracts are pinned per-construction by
``tests/test_chaos.py`` (marker ``chaos``); this suite is the
replayed-workload side, sized to strand real traffic.
"""

from __future__ import annotations

import asyncio
import random
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..generators.regions import multi_region_topology, multi_region_traffic
from ..obs import Tracer
from ..online.events import (ARRIVAL, CUT, DEPARTURE, REPAIR, cut_event,
                             maintenance_events, poisson_trace, repair_event,
                             sort_events)
from ..online.persistence import engine_fingerprint
from ..online.simulator import OnlineResult, simulate_online
from ..service import RwaService, ServiceSupervisor, serve_trace
from .bench_service import flash_crowd_trace
from .recovery import _hot_arcs

__all__ = [
    "CHAOS_SCENARIOS",
    "measure_chaos_identity",
    "measure_chaos_maintenance",
    "measure_chaos_crash",
    "measure_chaos_restoration",
    "run_chaos_benchmark",
    "chaos_benchmark_document",
    "chaos_problems",
    "chaos_check_against_baseline",
]


def _decisions(result: OnlineResult) -> Tuple:
    """The decision-bearing projection of a result (identity checks)."""
    return (result.accepted, result.blocked, result.rejections,
            result.wavelengths_used, result.kempe_repairs)


def _cut_flash_crowd(seed_topo: int, seed_traffic: int, bursts: int,
                     burst_size: int, cuts: int):
    """A flash crowd with hot-fibre cuts landing mid-run, one repaired."""
    graph = multi_region_topology(regions=2, region_size=16,
                                  arc_probability=0.18, coupling=2,
                                  seed=seed_topo)
    pool = multi_region_traffic(graph, bursts * burst_size,
                                inter_fraction=0.25, seed=seed_traffic)
    trace = flash_crowd_trace(pool.pairs(), bursts, burst_size,
                              spacing=1.0, holding=2.5)
    horizon = trace[-1].time
    hot = _hot_arcs(graph, pool.pairs(), cuts)
    faults = [cut_event((0.35 + 0.08 * i) * horizon, arc,
                        fault_id=10 ** 6 + i)
              for i, arc in enumerate(hot)]
    faults.append(repair_event(0.80 * horizon, hot[0],
                               fault_id=10 ** 6 + len(hot)))
    return graph, sort_events(trace + faults)


def _poisson_fault_workload(seed: int, num_requests: int, cuts: int,
                            arrival_rate: float):
    graph = multi_region_topology(regions=2, region_size=14,
                                  arc_probability=0.2, coupling=2, seed=seed)
    pool = multi_region_traffic(graph, num_requests, inter_fraction=0.3,
                                seed=seed + 1)
    trace = poisson_trace(pool, num_requests, arrival_rate=arrival_rate,
                          mean_holding=2.5, seed=seed + 2)
    horizon = max(event.time for event in trace)
    hot = _hot_arcs(graph, pool.pairs(), cuts)
    return graph, pool, trace, horizon, hot


#: name -> scenario shape.  See the measure_* functions for the keys
#: each kind consumes.
CHAOS_SCENARIOS: Dict[str, Dict] = {
    "chaos-flash-crowd-cuts": {
        "kind": "chaos_identity",
        "seed_topo": 47, "seed_traffic": 53, "bursts": 30,
        "burst_size": 18, "cuts": 2, "wavelengths": 10},
    "chaos-maintenance-window": {
        "kind": "chaos_maintenance",
        "seed": 61, "requests": 140, "arrival_rate": 6.0, "arcs": 2,
        "window": (0.35, 0.30), "wavelengths": 8},
    "chaos-crash-restart": {
        "kind": "chaos_crash",
        "seed": 71, "requests": 90, "arrival_rate": 6.0, "cuts": 1,
        "wavelengths": 8, "offsets": 20, "smoke_offsets": 4},
    "chaos-restoration-budget": {
        "kind": "chaos_restoration",
        "seed": 83, "requests": 320, "arrival_rate": 16.0, "cuts": 3,
        "wavelengths": 8, "move_budget": 8},
}


def measure_chaos_identity(name: str, repeats: int = 3,
                           tracer: Optional[Tracer] = None,
                           warmup: bool = True) -> Dict[str, object]:
    """Fault-bearing flash crowd: serve_trace vs simulate_online."""
    spec = CHAOS_SCENARIOS[name]
    graph, events = _cut_flash_crowd(spec["seed_topo"], spec["seed_traffic"],
                                     spec["bursts"], spec["burst_size"],
                                     spec["cuts"])
    wavelengths = spec["wavelengths"]
    arrivals = sum(1 for e in events if e.kind == ARRIVAL)
    reference = simulate_online(graph, events, wavelengths,
                                record_timeline=False)
    if warmup:
        serve_trace(graph, events, wavelengths, tracer=tracer)
    best_wall = float("inf")
    served = None
    for _ in range(repeats):
        start = time.perf_counter()
        candidate = serve_trace(graph, events, wavelengths, tracer=tracer)
        wall = time.perf_counter() - start
        if wall < best_wall:
            best_wall, served = wall, candidate
    return {
        "kind": "chaos_identity",
        "scenario": name,
        "events": len(events),
        "arrivals": arrivals,
        "wavelengths": wavelengths,
        "fibre_cuts": served.fibre_cuts,
        "fibre_repairs": served.fibre_repairs,
        "stranded": served.lightpaths_stranded,
        "restored": served.lightpaths_restored,
        "blocking": served.blocking_rate,
        "decisions_equal": _decisions(served) == _decisions(reference),
        "fingerprint_identical": (engine_fingerprint(served.engine)
                                  == engine_fingerprint(reference.engine)),
        # wall-clock (informational; never compared across runs)
        "serve_total_s": best_wall,
        "admissions_per_s": arrivals / best_wall if best_wall
        else float("inf"),
    }


async def _serve_with_maintenance(graph, trace, wavelengths, arcs,
                                  start, duration) -> OnlineResult:
    """Drive a trace through a service with a planned maintenance window."""
    service = RwaService(graph.copy(), wavelengths)
    async with service:
        cut_futs, repair_futs = service.schedule_maintenance(arcs, start,
                                                             duration)
        futures = []
        for event in trace:
            if event.kind == ARRIVAL:
                futures.append(service.submit_nowait(
                    event.request_id, request=event.request,
                    time=event.time))
            else:
                futures.append(service.depart_nowait(event.request_id,
                                                     time=event.time))
        for future in futures:
            await future
        result = service.result()
    for future in cut_futs + repair_futs:
        await future                 # surfaces any window failure
    return result


def measure_chaos_maintenance(name: str) -> Dict[str, object]:
    """schedule_maintenance vs the maintenance_events simulator oracle."""
    spec = CHAOS_SCENARIOS[name]
    graph, _, trace, horizon, hot = _poisson_fault_workload(
        spec["seed"], spec["requests"], spec["arcs"], spec["arrival_rate"])
    start_frac, width_frac = spec["window"]
    start, duration = start_frac * horizon, width_frac * horizon
    wavelengths = spec["wavelengths"]

    wall_start = time.perf_counter()
    served = asyncio.run(_serve_with_maintenance(
        graph, trace, wavelengths, hot, start, duration))
    wall = time.perf_counter() - wall_start
    oracle = simulate_online(
        graph,
        sort_events(trace + maintenance_events(hot, start, duration,
                                               fault_id=10 ** 6)),
        wavelengths, record_timeline=False)
    return {
        "kind": "chaos_maintenance",
        "scenario": name,
        "arrivals": spec["requests"],
        "wavelengths": wavelengths,
        "window_arcs": len(hot),
        "fibre_cuts": served.fibre_cuts,
        "fibre_repairs": served.fibre_repairs,
        "stranded": served.lightpaths_stranded,
        "restored": served.lightpaths_restored,
        "blocking": served.blocking_rate,
        "decisions_equal": _decisions(served) == _decisions(oracle),
        "fingerprint_identical": (engine_fingerprint(served.engine)
                                  == engine_fingerprint(oracle.engine)),
        "serve_total_s": wall,       # informational
    }


async def _drive_supervised(graph, events, wavelengths, journal_path,
                            crash_after=None):
    supervisor = ServiceSupervisor(graph.copy(), wavelengths,
                                   journal_path=str(journal_path),
                                   max_restarts=3,
                                   crash_after_n_ops=crash_after)
    async with supervisor:
        futures = []
        for event in events:
            if event.kind == ARRIVAL:
                futures.append(supervisor.submit_nowait(
                    event.request_id, request=event.request,
                    time=event.time))
            elif event.kind == DEPARTURE:
                futures.append(supervisor.depart_nowait(event.request_id,
                                                        time=event.time))
            elif event.kind == CUT:
                futures.append(supervisor.cut_nowait(event.arc,
                                                     time=event.time))
            elif event.kind == REPAIR:
                futures.append(supervisor.repair_nowait(event.arc,
                                                        time=event.time))
        for future in futures:
            await future
        fingerprint = engine_fingerprint(supervisor.service.engine)
        result = supervisor.service.result()
        return fingerprint, result, supervisor.restarts


def measure_chaos_crash(name: str, smoke: bool = False) -> Dict[str, object]:
    """Crash-restart convergence fuzzed over random op offsets."""
    spec = CHAOS_SCENARIOS[name]
    graph, _, trace, horizon, hot = _poisson_fault_workload(
        spec["seed"], spec["requests"], spec["cuts"], spec["arrival_rate"])
    faults = [cut_event(0.4 * horizon, arc, fault_id=10 ** 6 + i)
              for i, arc in enumerate(hot)]
    faults.append(repair_event(0.75 * horizon, hot[0],
                               fault_id=10 ** 6 + len(hot)))
    events = sort_events(trace + faults)
    wavelengths = spec["wavelengths"]
    trials = spec["smoke_offsets"] if smoke else spec["offsets"]
    rng = random.Random(spec["seed"] * 31 + 7)
    offsets = sorted(rng.sample(range(1, len(events)), trials))

    wall_start = time.perf_counter()
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        reference_fp, reference, ref_restarts = asyncio.run(
            _drive_supervised(graph, events, wavelengths,
                              tmp / "uncrashed.jsonl"))
        converged = 0
        single_restart = 0
        for offset in offsets:
            fingerprint, _, restarts = asyncio.run(_drive_supervised(
                graph, events, wavelengths, tmp / f"crash-{offset}.jsonl",
                crash_after=offset))
            converged += fingerprint == reference_fp
            single_restart += restarts == 1
    wall = time.perf_counter() - wall_start
    oracle = simulate_online(graph, events, wavelengths,
                             record_timeline=False)
    return {
        "kind": "chaos_crash",
        "scenario": name,
        "events": len(events),
        "wavelengths": wavelengths,
        "fibre_cuts": reference.fibre_cuts,
        "stranded": reference.lightpaths_stranded,
        "restored": reference.lightpaths_restored,
        "blocking": reference.blocking_rate,
        "crash_offsets": offsets,
        "trials": trials,
        "converged": converged,
        "all_converged": converged == trials,
        "single_restart_each": single_restart == trials,
        "uncrashed_restarts": ref_restarts,
        "decisions_equal_oracle":
            _decisions(reference) == _decisions(oracle),
        "chaos_total_s": wall,       # informational
    }


def measure_chaos_restoration(name: str) -> Dict[str, object]:
    """Service-path restoration on vs off at an equal move budget."""
    spec = CHAOS_SCENARIOS[name]
    graph, _, trace, horizon, hot = _poisson_fault_workload(
        spec["seed"], spec["requests"], spec["cuts"], spec["arrival_rate"])
    faults = [cut_event((0.40 + 0.06 * i) * horizon, arc,
                        fault_id=10 ** 6 + i)
              for i, arc in enumerate(hot)]
    faults.append(repair_event(0.78 * horizon, hot[0],
                               fault_id=10 ** 6 + len(hot)))
    events = sort_events(trace + faults)
    wavelengths = spec["wavelengths"]
    common = dict(routing="k_shortest", speculative=True,
                  restore_move_budget=spec["move_budget"])
    restored = serve_trace(graph, events, wavelengths, restoration=True,
                           **common)
    baseline = serve_trace(graph, events, wavelengths, restoration=False,
                           **common)
    return {
        "kind": "chaos_restoration",
        "scenario": name,
        "arrivals": spec["requests"],
        "wavelengths": wavelengths,
        "move_budget": spec["move_budget"],
        "fibre_cuts": restored.fibre_cuts,
        "fibre_repairs": restored.fibre_repairs,
        "stranded_restoration": restored.lightpaths_stranded,
        "restored_restoration": restored.lightpaths_restored,
        "stranded_baseline": baseline.lightpaths_stranded,
        "restored_baseline": baseline.lightpaths_restored,
        "blocking_restoration": restored.blocking_rate,
        "blocking_baseline": baseline.blocking_rate,
        "restoration_pays":
            restored.blocking_rate < baseline.blocking_rate,
    }


_MEASURE = {
    "chaos_identity": lambda name, repeats, tracer, smoke:
        measure_chaos_identity(name, repeats=repeats, tracer=tracer,
                               warmup=not smoke),
    "chaos_maintenance": lambda name, repeats, tracer, smoke:
        measure_chaos_maintenance(name),
    "chaos_crash": lambda name, repeats, tracer, smoke:
        measure_chaos_crash(name, smoke=smoke),
    "chaos_restoration": lambda name, repeats, tracer, smoke:
        measure_chaos_restoration(name),
}


def run_chaos_benchmark(repeats: int = 3,
                        scenarios: Optional[Sequence[str]] = None,
                        tracer: Optional[Tracer] = None,
                        smoke: bool = False) -> List[Dict[str, object]]:
    """Run every (or the selected) E21 scenario and return the records.

    ``smoke=True`` is the cheap wiring check (``scripts/smoke.py`` and
    the tier-1 smoke test): one identity replay without warm-up and the
    reduced crash-offset count — the deterministic chaos facts still
    gate, only wall-clock samples get noisier and the offset fuzz gets
    thinner.
    """
    if smoke:
        repeats = 1
    names = list(CHAOS_SCENARIOS) if scenarios is None else list(scenarios)
    records: List[Dict[str, object]] = []
    for name in names:
        kind = CHAOS_SCENARIOS[name]["kind"]
        records.append(_MEASURE[kind](name, repeats, tracer, smoke))
    return records


def chaos_benchmark_document(records: List[Dict[str, object]],
                             repeats: int) -> Dict[str, object]:
    """Wrap benchmark records in the ``BENCH_chaos.json`` schema."""
    return {
        "benchmark": "chaos_hardening",
        "python": sys.version.split()[0],
        "repeats": repeats,
        "results": records,
    }


def chaos_problems(records: List[Dict[str, object]]) -> List[str]:
    """Records missing the E21 claims, as messages."""
    problems: List[str] = []
    for record in records:
        name = record["scenario"]
        kind = record["kind"]
        if kind in ("chaos_identity", "chaos_maintenance"):
            if not record["decisions_equal"]:
                problems.append(
                    f"{name}: the service decided differently from "
                    "simulate_online on the fault-bearing trace")
            if not record["fingerprint_identical"]:
                problems.append(
                    f"{name}: service and trace-loop engine fingerprints "
                    "diverged")
            if record["fibre_cuts"] == 0 or record["stranded"] == 0:
                problems.append(
                    f"{name}: the cuts stranded nothing — the scenario "
                    "exercises no fault path")
        elif kind == "chaos_crash":
            if not record["all_converged"]:
                problems.append(
                    f"{name}: only {record['converged']}/{record['trials']} "
                    "crashed runs converged to the uncrashed fingerprint")
            if not record["single_restart_each"]:
                problems.append(
                    f"{name}: some crashed run needed != 1 restart")
            if record["uncrashed_restarts"] != 0:
                problems.append(
                    f"{name}: the uncrashed run restarted "
                    f"{record['uncrashed_restarts']} times")
            if not record["decisions_equal_oracle"]:
                problems.append(
                    f"{name}: the uncrashed supervised run decided "
                    "differently from simulate_online")
        elif kind == "chaos_restoration":
            if not record["restoration_pays"]:
                problems.append(
                    f"{name}: restoration did not strictly beat "
                    f"restoration-off blocking "
                    f"({record['blocking_restoration']:.4f} vs "
                    f"{record['blocking_baseline']:.4f}) at move budget "
                    f"{record['move_budget']}")
            if record["stranded_restoration"] == 0:
                problems.append(
                    f"{name}: the cuts stranded nothing — the A/B "
                    "measures no restoration work")
    return problems


def chaos_check_against_baseline(records: List[Dict[str, object]],
                                 baseline: Dict[str, object],
                                 tolerance: float = 0.20) -> List[str]:
    """Compare a fresh E21 run against a recorded ``BENCH_chaos.json``.

    Deterministic facts (blocking rates, stranded/restored counts,
    convergence tallies) must reproduce exactly; wall-clock numbers are
    never compared across runs.  ``tolerance`` is kept for signature
    compatibility.
    """
    del tolerance
    recorded = {r["scenario"]: r for r in baseline.get("results", [])}
    problems: List[str] = []
    for record in records:
        name = record["scenario"]
        base = recorded.get(name)
        if base is None:
            continue
        for key in ("blocking", "blocking_restoration", "blocking_baseline",
                    "stranded", "restored", "fibre_cuts", "converged"):
            if key in record and key in base and record[key] != base[key]:
                problems.append(
                    f"{name}: {key} {record[key]} differs from the "
                    f"recorded {base[key]} — the chaos decisions changed")
    problems.extend(chaos_problems(records))
    return problems
