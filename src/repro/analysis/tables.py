"""ASCII table rendering for benchmark and example output.

The benchmark harness prints one table per reproduced figure/theorem, in the
same "rows the paper reports" spirit (``pi``, ``w``, ratio, bound...).  This
module renders lists of record dictionaries as aligned plain-text tables so
the output is readable both on a terminal and in the committed
``bench_output.txt``.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_records", "print_records"]


def _fmt(value: object, float_digits: int = 3) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: Optional[str] = None, float_digits: int = 3) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    rendered_rows: List[List[str]] = [
        [_fmt(cell, float_digits) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in rendered_rows)
    return "\n".join(lines)


def format_records(records: Sequence[Mapping[str, object]],
                   columns: Optional[Sequence[str]] = None,
                   title: Optional[str] = None,
                   float_digits: int = 3) -> str:
    """Render record dictionaries as a table (columns default to the first record's keys)."""
    if not records:
        return (title + "\n" if title else "") + "(no records)"
    if columns is None:
        columns = list(records[0].keys())
    rows = [[record.get(col, "") for col in columns] for record in records]
    return format_table(columns, rows, title=title, float_digits=float_digits)


def print_records(records: Sequence[Mapping[str, object]],
                  columns: Optional[Sequence[str]] = None,
                  title: Optional[str] = None) -> None:
    """Print :func:`format_records` (convenience for benches and examples)."""
    print(format_records(records, columns=columns, title=title))
