"""Old-vs-new scaling benchmark for the conflict-graph engine.

Times the two pipelines — the frozen seed reference engine
(:mod:`repro.conflict.baseline`: dict-of-sets adjacency, set-based DSATUR)
against the bitset engine (cached conflict masks →
:func:`~repro.conflict.build_conflict_graph` → mask DSATUR) — on generator
families of 500+ dipaths: random-DAG random walks, Theorem 7 Havet-gadget
blow-ups and ``replicate(h)`` multisets of random families.

Consumed by ``benchmarks/bench_scaling.py`` (pytest harness asserting the
speedup target) and ``scripts/bench_report.py`` (writes/checks
``BENCH_conflict_engine.json`` so the perf trajectory is tracked across PRs).
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..conflict.baseline import (
    baseline_adjacency,
    baseline_arc_index,
    baseline_conflicting_pairs,
    baseline_dsatur_coloring,
)
from ..conflict.conflict_graph import build_conflict_graph
from ..coloring.dsatur import dsatur_coloring
from ..dipaths.family import DipathFamily
from ..generators.families import random_walk_family
from ..generators.gadgets import havet_family
from ..generators.random_dags import random_dag

__all__ = [
    "SCENARIOS",
    "build_scenario",
    "measure_scenario",
    "run_scaling_benchmark",
    "benchmark_document",
    "check_against_baseline",
    "speedup_problems",
    "SPEEDUP_TARGET",
]

#: The tentpole target: the bitset engine must be at least this many times
#: faster than the seed engine on build + DSATUR for families of >= 500
#: dipaths (asserted by ``benchmarks/bench_scaling.py``).
SPEEDUP_TARGET = 5.0

ScenarioBuilder = Callable[[], DipathFamily]


def _random_dag_walks() -> DipathFamily:
    graph = random_dag(48, 0.12, seed=20260730)
    return random_walk_family(graph, 800, seed=7)


def _havet_blowup() -> DipathFamily:
    # Theorem 7 gadget scaled the way the paper does: every dipath of the
    # 8-dipath Havet family replaced by h identical copies.
    return havet_family(64)


def _replicated_multiset() -> DipathFamily:
    graph = random_dag(32, 0.16, seed=99)
    base = random_walk_family(graph, 26, seed=3)
    return base.replicate(20)


SCENARIOS: Dict[str, ScenarioBuilder] = {
    "random-dag-walks": _random_dag_walks,
    "havet-blowup-h64": _havet_blowup,
    "replicated-multiset-x20": _replicated_multiset,
}


def build_scenario(name: str) -> DipathFamily:
    """Materialise the named scenario family (deterministic seeds)."""
    return SCENARIOS[name]()


#: One timed run: (build seconds, colour seconds, colours used, edge count).
RunSample = Tuple[float, float, int, int]


def _best_of(repeats: int, fn: Callable[[], RunSample]) -> RunSample:
    """Run ``fn`` ``repeats`` times, keep the run with the smallest total time."""
    best: Optional[RunSample] = None
    for _ in range(repeats):
        sample = fn()
        if best is None or sample[0] + sample[1] < best[0] + best[1]:
            best = sample
    assert best is not None
    return best


def measure_scenario(name: str, family: DipathFamily, repeats: int = 3
                     ) -> Dict[str, object]:
    """Time legacy vs bitset build+DSATUR on ``family``; return one record.

    Both engines start from equivalent preconditions: the legacy engine gets
    a prebuilt per-arc index (the seed maintained it incrementally in
    ``add``), the bitset engine a fresh ``family.copy()`` per run so its
    conflict-mask cache is cold inside the timed region.
    """
    n = len(family)

    legacy_index = baseline_arc_index(family)

    def run_legacy() -> RunSample:
        t0 = time.perf_counter()
        adjacency = baseline_adjacency(
            n, baseline_conflicting_pairs(legacy_index))
        t1 = time.perf_counter()
        coloring = baseline_dsatur_coloring(adjacency)
        t2 = time.perf_counter()
        return (t1 - t0, t2 - t1, len(set(coloring.values())),
                sum(len(s) for s in adjacency.values()) // 2)

    def run_new() -> RunSample:
        fresh = family.copy()   # cold conflict-mask cache
        t0 = time.perf_counter()
        conflict = build_conflict_graph(fresh)
        t1 = time.perf_counter()
        coloring = dsatur_coloring(conflict)
        t2 = time.perf_counter()
        return (t1 - t0, t2 - t1, len(set(coloring.values())),
                conflict.num_edges)

    legacy_build, legacy_color, legacy_colors, legacy_edges = \
        _best_of(repeats, run_legacy)
    new_build, new_color, new_colors, new_edges = _best_of(repeats, run_new)
    legacy_total = legacy_build + legacy_color
    new_total = new_build + new_color
    return {
        "scenario": name,
        "num_dipaths": n,
        "num_edges": new_edges,
        "legacy_build_s": legacy_build,
        "legacy_color_s": legacy_color,
        "legacy_total_s": legacy_total,
        "new_build_s": new_build,
        "new_color_s": new_color,
        "new_total_s": new_total,
        "speedup_build": legacy_build / new_build if new_build else float("inf"),
        "speedup_total": legacy_total / new_total if new_total else float("inf"),
        "edges_equal": new_edges == legacy_edges,
        "colors_equal": new_colors == legacy_colors,
    }


def run_scaling_benchmark(repeats: int = 3,
                          scenarios: Optional[Sequence[str]] = None
                          ) -> List[Dict[str, object]]:
    """Run every (or the selected) scenario and return the records."""
    names = list(SCENARIOS) if scenarios is None else list(scenarios)
    records = []
    for name in names:
        family = build_scenario(name)
        records.append(measure_scenario(name, family, repeats=repeats))
    return records


def benchmark_document(records: List[Dict[str, object]], repeats: int
                       ) -> Dict[str, object]:
    """Wrap benchmark records in the ``BENCH_conflict_engine.json`` schema."""
    return {
        "benchmark": "conflict_engine_scaling",
        "speedup_target": SPEEDUP_TARGET,
        "python": sys.version.split()[0],
        "repeats": repeats,
        "results": records,
    }


def speedup_problems(records: List[Dict[str, object]]) -> List[str]:
    """Scenarios falling short of :data:`SPEEDUP_TARGET`, as messages.

    Shared by ``scripts/bench_report.py`` and the E12 gate in
    ``scripts/run_all_experiments.py`` so both enforce one policy.
    """
    return [
        f"{r['scenario']}: speedup {r['speedup_total']:.1f}x is below the "
        f"{SPEEDUP_TARGET:.0f}x target"
        for r in records
        if float(r["speedup_total"]) < SPEEDUP_TARGET]  # type: ignore[arg-type]


def check_against_baseline(records: List[Dict[str, object]],
                           baseline: Dict[str, object],
                           tolerance: float = 0.20) -> List[str]:
    """Compare a fresh run against a recorded baseline document.

    A scenario regresses when the bitset engine is slower than the recorded
    baseline by more than ``tolerance`` (default 20%) on *both* of two
    complementary signals, or when the engines stop agreeing on
    edges/colours.  The two signals:

    * **absolute build+colour time**, with a 2 ms slack — recorded times are
      a few milliseconds, where scheduler/CPU-frequency noise between
      processes routinely exceeds 20% on its own;
    * **speedup ratio** (legacy/new, both timed in the same process) — this
      normalises away machine speed, so a uniformly slower host does not
      trip the gate.

    Same-machine timing noise trips at most one signal at a time; a real
    regression (e.g. losing the O(words) build) trips both, and also the
    separate :data:`SPEEDUP_TARGET` gate enforced by the benchmark runners.
    """
    recorded = {r["scenario"]: r for r in baseline.get("results", [])}
    problems: List[str] = []
    for record in records:
        name = record["scenario"]
        base = recorded.get(name)
        if base is None:
            continue
        current = float(record["new_total_s"])       # type: ignore[arg-type]
        allowed = float(base["new_total_s"]) * (1.0 + tolerance) + 0.002  # type: ignore[arg-type]
        ratio = float(record["speedup_total"])       # type: ignore[arg-type]
        ratio_floor = float(base["speedup_total"]) / (1.0 + tolerance)  # type: ignore[arg-type]
        if current > allowed and ratio < ratio_floor:
            problems.append(
                f"{name}: bitset engine took {current * 1000:.2f}ms (recorded "
                f"{float(base['new_total_s']) * 1000:.2f}ms) and its speedup "  # type: ignore[arg-type]
                f"fell to {ratio:.1f}x (recorded "
                f"{base['speedup_total']:.1f}x) — beyond {tolerance:.0%} on both")
        if not record["edges_equal"] or not record["colors_equal"]:
            problems.append(
                f"{name}: engines disagree "
                f"(edges_equal={record['edges_equal']}, "
                f"colors_equal={record['colors_equal']})")
    return problems
